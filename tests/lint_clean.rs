//! Tier-1 guard: the workspace must stay `ppdl-lint`-clean.
//!
//! Equivalent to `ppdl-lint --deny` in CI, but wired into `cargo test`
//! so a violation fails locally before a push. The committed
//! `lint-baseline.txt` may only shrink (DESIGN.md §12).

use std::path::Path;

#[test]
fn workspace_is_lint_clean_against_committed_baseline() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = ppdl_lint::lint_workspace(root).expect("lint workspace");

    let baseline_text =
        std::fs::read_to_string(root.join("lint-baseline.txt")).expect("read lint-baseline.txt");
    let baseline = ppdl_lint::baseline::parse(&baseline_text).expect("parse baseline");
    let diff = ppdl_lint::baseline::diff(&findings, &baseline);

    assert!(
        diff.is_clean(),
        "lint findings exceed lint-baseline.txt — fix them or add a reasoned \
         `// ppdl-lint: allow(rule) -- reason`:\n{:#?}",
        diff.grown
    );
}

#[test]
fn semantic_rules_are_registered_and_workspace_is_fully_clean() {
    // The graph-based rule families from DESIGN.md §12 must stay
    // registered — a regression that drops one would silently stop
    // enforcing layering/taint/reachability on every future change.
    for id in [
        "arch/layering",
        "determinism/tainted-parallel",
        "robustness/panic-reachable",
        "obs/uninstrumented-hot-path",
    ] {
        assert!(
            ppdl_lint::rules::RULES.iter().any(|(r, _)| *r == id),
            "rule '{id}' missing from the RULES registry"
        );
    }

    // Stronger than the baseline diff above: the workspace is fully
    // clean (every finding fixed or reason-annotated), so the committed
    // baseline must be empty and stay that way.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = ppdl_lint::lint_workspace(root).expect("lint workspace");
    assert!(
        findings.is_empty(),
        "workspace must be lint-clean with an empty baseline:\n{findings:#?}"
    );
    let baseline_text =
        std::fs::read_to_string(root.join("lint-baseline.txt")).expect("read lint-baseline.txt");
    assert!(
        baseline_text
            .lines()
            .all(|l| l.trim().is_empty() || l.trim_start().starts_with('#')),
        "lint-baseline.txt must stay empty (shrink-only ratchet at zero):\n{baseline_text}"
    );
}

#[test]
fn baseline_contains_no_determinism_entries() {
    // The determinism rules guard the paper's bitwise-reproducibility
    // claim (DESIGN.md §4); they are never allowed to be grandfathered.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let baseline_text =
        std::fs::read_to_string(root.join("lint-baseline.txt")).expect("read lint-baseline.txt");
    let baseline = ppdl_lint::baseline::parse(&baseline_text).expect("parse baseline");
    let determinism: Vec<_> = baseline
        .keys()
        .filter(|(rule, _)| rule.starts_with("determinism/"))
        .collect();
    assert!(
        determinism.is_empty(),
        "determinism/* findings must be fixed or inline-annotated, never baselined: {determinism:?}"
    );
}

//! End-to-end tests for the networked registry listener: a spawned
//! `ppdl serve --listen 127.0.0.1:0` holding two resident bundles must
//! answer exactly like in-process `TrainedBundle::predict`, survive a
//! mid-stream hot-swap, and refuse bad input with typed errors.

use std::io::{BufRead, BufReader, Write as _};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::OnceLock;

use powerplanningdl::core::{DlFlowConfig, TrainedBundle};
use powerplanningdl::netlist::IbmPgPreset;
use powerplanningdl::service::{parse_line, Command as WireCommand, Json};

const PRESET: IbmPgPreset = IbmPgPreset::Ibmpg1;
const SCALE: f64 = 0.01;

/// Two distinct resident models (different training seeds → different
/// widths), trained once and shared by every test in this binary.
fn bundles() -> &'static (TrainedBundle, TrainedBundle) {
    static BUNDLES: OnceLock<(TrainedBundle, TrainedBundle)> = OnceLock::new();
    BUNDLES.get_or_init(|| {
        let train = |seed| {
            TrainedBundle::train(PRESET, SCALE, seed, DlFlowConfig::fast(), None).expect("train")
        };
        (train(3), train(11))
    })
}

/// Saves both bundles as `a.bundle` / `b.bundle` (registry names come
/// from the file stem) into a per-test temp dir.
fn bundle_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppdl_net_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let (a, b) = bundles();
    a.save(dir.join("a.bundle")).expect("save a");
    b.save(dir.join("b.bundle")).expect("save b");
    dir
}

/// Spawns the listener on an OS-assigned port and parses the bound
/// address from its `listening on <addr>` stderr line.
fn spawn_server(
    dir: &std::path::Path,
) -> (Child, SocketAddr, BufReader<std::process::ChildStderr>) {
    let mut child = Command::new(env!("CARGO_BIN_EXE_ppdl"))
        .args([
            "serve",
            "--listen",
            "127.0.0.1:0",
            "--bundle-dir",
            dir.to_str().unwrap(),
        ])
        .stdin(Stdio::null())
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ppdl serve --listen");
    let mut stderr = BufReader::new(child.stderr.take().unwrap());
    let mut line = String::new();
    let addr = loop {
        line.clear();
        assert!(
            stderr.read_line(&mut line).expect("read server stderr") > 0,
            "server exited before announcing its address"
        );
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            break rest.parse::<SocketAddr>().expect("parse bound address");
        }
    };
    (child, addr, stderr)
}

/// One NDJSON connection: line-oriented writes, parsed-JSON reads.
struct Conn {
    writer: TcpStream,
    reader: BufReader<TcpStream>,
}

impl Conn {
    fn open(addr: SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        let writer = stream.try_clone().expect("clone stream");
        Self {
            writer,
            reader: BufReader::new(stream),
        }
    }

    fn send(&mut self, line: &str) {
        writeln!(self.writer, "{line}").expect("send line");
        self.writer.flush().expect("flush socket");
    }

    fn recv(&mut self) -> Json {
        let mut line = String::new();
        assert!(
            self.reader.read_line(&mut line).expect("read reply") > 0,
            "server closed the connection unexpectedly"
        );
        Json::parse(line.trim()).expect("reply line is JSON")
    }
}

/// The in-process reference answer for a wire line, produced by the
/// exact same parser and entry point the server uses.
fn reference(bundle: &TrainedBundle, wire_line: &str) -> (Vec<f64>, f64) {
    let WireCommand::Request { request, .. } = parse_line(wire_line).expect("parse request") else {
        panic!("not a request line: {wire_line}");
    };
    let prediction = bundle.predict(&request).expect("in-process predict");
    (prediction.response.widths, prediction.response.worst_ir_mv)
}

fn assert_matches(reply: &Json, id: &str, want: &(Vec<f64>, f64)) {
    assert_eq!(
        reply.get("status").unwrap().as_str(),
        Some("ok"),
        "{reply:?}"
    );
    assert_eq!(reply.get("id").unwrap().as_str(), Some(id));
    let widths: Vec<f64> = reply
        .get("widths")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|w| w.as_f64().unwrap())
        .collect();
    // Bitwise equality: same parse, same predict entry point, floats
    // cross the wire in shortest-round-trip form.
    assert_eq!(widths, want.0);
    assert_eq!(reply.get("worst_ir_mv").unwrap().as_f64().unwrap(), want.1);
}

fn shutdown(conn: &mut Conn, mut child: Child) {
    conn.send("{\"cmd\":\"shutdown\"}");
    let status = child.wait().expect("wait for server");
    assert!(status.success(), "server exited with {status}");
}

#[test]
fn tcp_session_with_two_bundles_matches_in_process_predict() {
    let dir = bundle_dir("golden");
    let (child, addr, _stderr) = spawn_server(&dir);

    // Three concurrent clients, each routing to both resident bundles
    // plus the default route (first installed name wins: "a").
    let mut workers = Vec::new();
    for c in 0..3 {
        let handle = std::thread::spawn(move || {
            let (bundle_a, bundle_b) = bundles();
            let line_a = format!(
                "{{\"id\":\"a{c}\",\"gamma\":0.12,\"seed\":{},\"bundle\":\"a\"}}",
                20 + c
            );
            let line_b = format!(
                "{{\"id\":\"b{c}\",\"gamma\":0.12,\"seed\":{},\"bundle\":\"b\"}}",
                20 + c
            );
            let line_d = format!(
                "{{\"id\":\"d{c}\",\"gamma\":0.18,\"kind\":\"loads\",\"seed\":{}}}",
                40 + c
            );
            let mut conn = Conn::open(addr);
            conn.send(&line_a);
            conn.send(&line_b);
            conn.send(&line_d);
            conn.send("{\"cmd\":\"flush\"}");
            assert_matches(
                &conn.recv(),
                &format!("a{c}"),
                &reference(bundle_a, &line_a),
            );
            assert_matches(
                &conn.recv(),
                &format!("b{c}"),
                &reference(bundle_b, &line_b),
            );
            assert_matches(
                &conn.recv(),
                &format!("d{c}"),
                &reference(bundle_a, &line_d),
            );
        });
        workers.push(handle);
    }
    for handle in workers {
        handle.join().expect("client thread");
    }

    // The registry inventory over the same wire.
    let mut conn = Conn::open(addr);
    conn.send("{\"cmd\":\"bundles\"}");
    let inventory = conn.recv();
    assert_eq!(inventory.get("status").unwrap().as_str(), Some("bundles"));
    assert_eq!(inventory.get("default").unwrap().as_str(), Some("a"));
    let listed = inventory.get("bundles").unwrap();
    assert!(listed.get("a").is_some() && listed.get("b").is_some());
    shutdown(&mut conn, child);
}

#[test]
fn hot_swap_mid_stream_and_typed_errors() {
    let dir = bundle_dir("swap");
    let (child, addr, _stderr) = spawn_server(&dir);
    let (bundle_a, bundle_b) = bundles();
    let mut conn = Conn::open(addr);

    // Before the swap, name "a" answers with the first model.
    let line = "{\"id\":\"pre\",\"gamma\":0.15,\"seed\":7,\"bundle\":\"a\"}";
    conn.send(line);
    conn.send("{\"cmd\":\"flush\"}");
    assert_matches(&conn.recv(), "pre", &reference(bundle_a, line));

    // Hot-swap: load b.bundle's weights under the resident name "a",
    // mid-stream, on the same connection.
    let swap_path = dir.join("b.bundle");
    conn.send(&format!(
        "{{\"cmd\":\"load\",\"bundle\":\"a\",\"path\":\"{}\"}}",
        swap_path.display()
    ));
    let loaded = conn.recv();
    assert_eq!(loaded.get("status").unwrap().as_str(), Some("loaded"));
    assert_eq!(loaded.get("bundle").unwrap().as_str(), Some("a"));

    // The same wire line now answers with the swapped-in model,
    // bitwise.
    let line2 = "{\"id\":\"post\",\"gamma\":0.15,\"seed\":7,\"bundle\":\"a\"}";
    conn.send(line2);
    conn.send("{\"cmd\":\"flush\"}");
    assert_matches(&conn.recv(), "post", &reference(bundle_b, line2));

    // Typed errors, all on the same still-healthy connection: unknown
    // bundle, malformed JSON, and an oversized line.
    conn.send("{\"id\":\"ghost\",\"gamma\":0.1,\"bundle\":\"nope\"}");
    let unknown = conn.recv();
    assert_eq!(
        unknown.get("code").unwrap().as_str(),
        Some("service/unknown_bundle")
    );
    assert_eq!(unknown.get("id").unwrap().as_str(), Some("ghost"));

    conn.send("this is not json");
    assert_eq!(
        conn.recv().get("code").unwrap().as_str(),
        Some("service/malformed")
    );

    let oversized = format!("{{\"id\":\"big\",\"pad\":\"{}\"}}", "x".repeat(2 << 20));
    conn.send(&oversized);
    assert_eq!(
        conn.recv().get("code").unwrap().as_str(),
        Some("service/json")
    );

    // The connection still serves after every refusal.
    let line3 = "{\"id\":\"alive\",\"gamma\":0.1,\"seed\":9,\"bundle\":\"b\"}";
    conn.send(line3);
    conn.send("{\"cmd\":\"flush\"}");
    assert_matches(&conn.recv(), "alive", &reference(bundle_b, line3));
    shutdown(&mut conn, child);
}

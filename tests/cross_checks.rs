//! Cross-crate consistency checks: independent algorithms must agree
//! on the same physics.

use powerplanningdl::analysis::{
    AnalysisOptions, EmChecker, IrDropMap, PreconditionerKind, StaticAnalysis,
};
use powerplanningdl::core::{experiment, ConventionalConfig, ConventionalFlow, IrPredictor};
use powerplanningdl::netlist::{parse_spice, IbmPgPreset, NodeId, SyntheticBenchmark};
use powerplanningdl::solver::{GaussSeidel, StationaryOptions};

fn bench() -> SyntheticBenchmark {
    SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg2, 0.004, 17).unwrap()
}

/// The MNA path (analysis crate) must agree with an independent
/// hand-rolled nodal assembly solved by Gauss-Seidel (solver crate).
#[test]
fn mna_agrees_with_independent_gauss_seidel() {
    let b = bench();
    let report = StaticAnalysis::new(AnalysisOptions {
        tolerance: 1e-12,
        ..AnalysisOptions::default()
    })
    .solve(b.network())
    .unwrap();

    // Independent assembly in *drop* coordinates: G d = loads, with
    // source nodes eliminated (drop 0 there).
    let net = b.network();
    let n = net.node_count();
    let mut pinned = vec![false; n];
    for s in net.voltage_sources() {
        pinned[s.node.0] = true;
    }
    let mut index = vec![usize::MAX; n];
    let mut free = Vec::new();
    for i in 0..n {
        if !pinned[i] {
            index[i] = free.len();
            free.push(i);
        }
    }
    let mut t = powerplanningdl::solver::TripletMatrix::new(free.len(), free.len());
    let mut rhs = vec![0.0; free.len()];
    for r in net.resistors() {
        let g = 1.0 / r.ohms;
        match (index[r.a.0], index[r.b.0]) {
            (usize::MAX, usize::MAX) => {}
            (ia, usize::MAX) => t.stamp_grounded_conductance(ia, g),
            (usize::MAX, ib) => t.stamp_grounded_conductance(ib, g),
            (ia, ib) => t.stamp_conductance(ia, ib, g),
        }
    }
    for l in net.current_loads() {
        if index[l.node.0] != usize::MAX {
            rhs[index[l.node.0]] += l.amps;
        }
    }
    let gs = GaussSeidel::new(StationaryOptions {
        tolerance: 1e-10,
        max_sweeps: 200_000,
        relaxation: 1.9,
    })
    .solve(&t.to_csr(), &rhs)
    .unwrap();
    for (k, &node) in free.iter().enumerate() {
        let drop_mna = report.drop_at(NodeId(node));
        assert!(
            (gs.x[k] - drop_mna).abs() < 1e-6,
            "node {node}: GS {} vs MNA {}",
            gs.x[k],
            drop_mna
        );
    }
}

/// The Kirchhoff predictor must track the exact solve within a few
/// percent at the worst-drop level when given the true widths.
#[test]
fn predictor_tracks_solver() {
    let b = bench();
    let truth = StaticAnalysis::default()
        .solve(b.network())
        .unwrap()
        .worst_drop()
        .unwrap()
        .1;
    let est = IrPredictor::new().predict(&b, &b.strap_widths()).unwrap();
    assert!(
        (est.worst - truth).abs() / truth < 0.05,
        "estimate {} vs truth {}",
        est.worst,
        truth
    );
}

/// Conventional vs predicted IR maps must be close cell by cell.
#[test]
fn maps_agree_cellwise() {
    let b = bench();
    let report = StaticAnalysis::default().solve(b.network()).unwrap();
    let conv = IrDropMap::from_report(b.network(), &report, 20).unwrap();
    let est = IrPredictor::new().predict(&b, &b.strap_widths()).unwrap();
    let pred = est.to_map(&b, 20).unwrap();
    let spread = (conv.max_mv() - conv.min_mv()).max(1e-9);
    assert!(
        conv.mean_abs_diff_mv(&pred) < 0.1 * spread,
        "mean |diff| {} vs spread {}",
        conv.mean_abs_diff_mv(&pred),
        spread
    );
}

/// After conventional sizing, both the IR margin and the EM constraint
/// hold — and the deck round-trips through SPICE with the same
/// analysis result.
#[test]
fn sized_design_meets_margins_and_roundtrips() {
    let prepared = experiment::prepare(IbmPgPreset::Ibmpg2, 0.006, 23, 2.5).unwrap();
    let config = ConventionalConfig {
        ir_margin_fraction: prepared.margin_fraction,
        ..ConventionalConfig::default()
    };
    let (sized, result) = ConventionalFlow::new(config.clone())
        .run(&prepared.bench)
        .unwrap();
    assert!(result.worst_ir <= prepared.target_worst_ir + 1e-9);
    let em = EmChecker::new(config.jmax)
        .check(&sized, &result.report)
        .unwrap();
    assert!(em.passes());

    // Round-trip the sized deck through the SPICE writer/parser and
    // re-analyze: identical worst-case drop.
    let deck = sized.network().to_spice();
    let reparsed = parse_spice(&deck).unwrap();
    let report2 = StaticAnalysis::default().solve(&reparsed).unwrap();
    let report1 = StaticAnalysis::default().solve(sized.network()).unwrap();
    assert!((report1.worst_drop().unwrap().1 - report2.worst_drop().unwrap().1).abs() < 1e-9);
}

/// Vectored analysis over a synthetic activity trace agrees with
/// per-step static analyses and with the predictor at its peak step.
#[test]
fn vectored_trace_peak_consistent() {
    use powerplanningdl::analysis::{CurrentTrace, VectoredAnalysis};
    let b = bench();
    let loads = b.network().current_loads().len();
    // Ramp activity 40% -> 160%.
    let steps: Vec<Vec<f64>> = (0..4).map(|t| vec![0.4 + 0.4 * t as f64; loads]).collect();
    let trace = CurrentTrace::new(steps, loads).unwrap();
    let rep = VectoredAnalysis::default()
        .run(b.network(), &trace)
        .unwrap();
    assert_eq!(rep.worst_step, 3);
    // Linearity: each step's worst scales with its activity factor.
    let base = rep.step_worst[0] / 0.4;
    for (t, w) in rep.step_worst.iter().enumerate() {
        let factor = 0.4 + 0.4 * t as f64;
        assert!(
            (w - base * factor).abs() < 1e-6 * w.max(1e-9),
            "step {t}: {w} vs {}",
            base * factor
        );
    }
}

/// The greedy pad placer's final pin set beats the generator's default
/// even-spread placement at equal pin count.
#[test]
fn pad_placer_not_worse_than_default_ring() {
    use powerplanningdl::core::PadPlacer;
    let b = bench();
    let default_pins = b.network().voltage_sources().len();
    let default_worst = StaticAnalysis::default()
        .solve(b.network())
        .unwrap()
        .worst_drop()
        .unwrap()
        .1;
    let placed = PadPlacer::new(default_pins).place(&b).unwrap();
    assert!(
        placed.worst_after[default_pins - 1] <= default_worst * 1.001,
        "greedy {} vs default {}",
        placed.worst_after[default_pins - 1],
        default_worst
    );
}

/// All three preconditioners give the same physical answer on a
/// generated benchmark.
#[test]
fn preconditioner_choice_does_not_change_physics() {
    let b = bench();
    let mut drops = Vec::new();
    for pk in [
        PreconditionerKind::None,
        PreconditionerKind::Jacobi,
        PreconditionerKind::Ic0,
    ] {
        let rep = StaticAnalysis::new(AnalysisOptions {
            preconditioner: pk,
            tolerance: 1e-11,
            max_iterations: 0,
        })
        .solve(b.network())
        .unwrap();
        drops.push(rep.worst_drop().unwrap().1);
    }
    assert!((drops[0] - drops[1]).abs() < 1e-8);
    assert!((drops[0] - drops[2]).abs() < 1e-8);
}

//! Persistence integration tests: models and decks written to disk by
//! one "process" must reload bit-exact for another.

use powerplanningdl::netlist::{parse_spice, IbmPgPreset, SyntheticBenchmark};
use powerplanningdl::nn::{Activation, Matrix, Mlp, MlpBuilder};

#[test]
fn model_file_round_trip() {
    let model = MlpBuilder::new(3)
        .hidden_stack(10, 24, Activation::Relu)
        .output(1)
        .seed(99)
        .build()
        .unwrap();
    let dir = std::env::temp_dir().join("ppdl_persist_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.ppdl");
    std::fs::write(&path, model.to_text()).unwrap();

    let loaded = Mlp::from_text(&std::fs::read_to_string(&path).unwrap()).unwrap();
    let x = Matrix::from_fn(16, 3, |r, c| (r as f64 - 8.0) * 0.3 + c as f64);
    assert_eq!(loaded.predict(&x).unwrap(), model.predict(&x).unwrap());
    assert_eq!(loaded.parameter_count(), model.parameter_count());
}

#[test]
fn deck_file_round_trip_preserves_analysis() {
    use powerplanningdl::analysis::StaticAnalysis;
    let bench = SyntheticBenchmark::from_preset(IbmPgPreset::Ibmpg1, 0.01, 31).unwrap();
    let dir = std::env::temp_dir().join("ppdl_persist_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("grid.spice");
    std::fs::write(&path, bench.network().to_spice()).unwrap();

    let loaded = parse_spice(&std::fs::read_to_string(&path).unwrap()).unwrap();
    assert_eq!(loaded.stats(), bench.network().stats());
    let a = StaticAnalysis::default().solve(bench.network()).unwrap();
    let b = StaticAnalysis::default().solve(&loaded).unwrap();
    assert!((a.worst_drop().unwrap().1 - b.worst_drop().unwrap().1).abs() < 1e-12);
}

/// A committed pre-backend (v1) bundle must keep loading as the MLP it
/// always was, and predict bitwise-identically to the golden widths
/// captured when the fixture was created. Guards the on-disk contract
/// across the layer-graph/backend refactor.
#[test]
fn committed_v1_bundle_loads_as_mlp_and_matches_golden() {
    use powerplanningdl::core::predict::{PredictRequest, TrainedBundle};
    use powerplanningdl::core::{BackendKind, Perturbation, PerturbationKind};

    let bundle = TrainedBundle::load(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/data/v1_mlp.bundle"
    ))
    .unwrap();
    assert_eq!(bundle.backend(), BackendKind::Mlp);
    // Re-encoding upgrades the header to the current version and tags
    // the backend, and the upgraded text still round-trips.
    let upgraded = bundle.to_text();
    assert!(upgraded.starts_with("ppdl-bundle v2\nbackend mlp\ninput_spec rows 3\n"));
    let back = TrainedBundle::from_text(&upgraded).unwrap();
    assert_eq!(back.to_text(), upgraded);

    let request = PredictRequest::new("compat")
        .with_perturbation(Perturbation::new(0.1, PerturbationKind::Both, 5).unwrap());
    let prediction = bundle.predict(&request).unwrap();
    let golden = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/data/v1_mlp_golden.txt"
    ))
    .unwrap();
    let mut lines = golden.lines();
    let mut golden_widths = Vec::new();
    let mut golden_worst_ir = None;
    for line in &mut lines {
        if let Some(v) = line.strip_prefix("worst_ir_mv ") {
            golden_worst_ir = Some(v.parse::<f64>().unwrap());
        } else {
            golden_widths.push(line.parse::<f64>().unwrap());
        }
    }
    assert_eq!(prediction.response.widths, golden_widths);
    assert_eq!(prediction.response.worst_ir_mv, golden_worst_ir.unwrap());
}

#[test]
fn corrupted_model_file_fails_loudly() {
    let model = MlpBuilder::new(2).output(1).build().unwrap();
    let text = model.to_text();
    // Flip the header version.
    let bad = text.replace("ppdl-mlp v1", "ppdl-mlp v9");
    assert!(Mlp::from_text(&bad).is_err());
    // Truncate mid-file.
    let truncated = &text[..text.len() / 2];
    assert!(Mlp::from_text(truncated).is_err());
}

//! Golden tests for the batched prediction service: the spawned
//! `ppdl serve` process and the in-process pipeline Predict stage must
//! answer the same query with bitwise-identical widths and IR — both
//! are thin adapters over `ppdl_core::predict::predict`, and every
//! float crosses the wire in shortest-round-trip form.

use std::io::Write as _;
use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::sync::OnceLock;

use powerplanningdl::core::pipeline::{
    run_stage, FeatureExtractStage, PipelineCtx, PredictStage, TrainStage,
};
use powerplanningdl::core::{experiment, DlFlowConfig, TrainedBundle};
use powerplanningdl::netlist::IbmPgPreset;
use powerplanningdl::service::Json;

const PRESET: IbmPgPreset = IbmPgPreset::Ibmpg1;
const SCALE: f64 = 0.01;
const SEED: u64 = 3;

/// One fast training run shared by every test in this binary.
fn bundle() -> &'static TrainedBundle {
    static BUNDLE: OnceLock<TrainedBundle> = OnceLock::new();
    BUNDLE.get_or_init(|| {
        TrainedBundle::train(PRESET, SCALE, SEED, DlFlowConfig::fast(), None).expect("train")
    })
}

fn saved_bundle(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ppdl_service_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.bundle");
    bundle().save(&path).expect("save bundle");
    path
}

/// Pipes `input` through a spawned `ppdl serve` and returns its parsed
/// stdout lines (panics on a non-zero exit).
fn serve(tag: &str, input: &str) -> Vec<Json> {
    let path = saved_bundle(tag);
    let mut child = Command::new(env!("CARGO_BIN_EXE_ppdl"))
        .args(["serve", "--bundle", path.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn ppdl serve");
    child
        .stdin
        .take()
        .unwrap()
        .write_all(input.as_bytes())
        .expect("write requests");
    let out = child.wait_with_output().expect("wait ppdl serve");
    assert!(
        out.status.success(),
        "serve failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    String::from_utf8(out.stdout)
        .expect("utf-8 replies")
        .lines()
        .map(|l| Json::parse(l).expect("reply line is JSON"))
        .collect()
}

#[test]
fn served_batch_matches_pipeline_predict_stage() {
    // The in-process reference: the same train prefix the bundle ran,
    // then the Predict stage at the config's default perturbation
    // (fast config: gamma 0.10, kind both, seed 1).
    let mut ctx = PipelineCtx::new(DlFlowConfig::fast(), None);
    run_stage(&experiment::preset_source(PRESET, SCALE, SEED), &mut ctx).unwrap();
    run_stage(&FeatureExtractStage, &mut ctx).unwrap();
    run_stage(&TrainStage, &mut ctx).unwrap();
    run_stage(&PredictStage::from_config(), &mut ctx).unwrap();
    let predicted = ctx.predicted().unwrap();

    let replies = serve(
        "golden",
        "{\"id\":\"golden\",\"gamma\":0.1,\"kind\":\"both\",\"seed\":1}\n{\"cmd\":\"quit\"}\n",
    );
    assert_eq!(replies.len(), 1);
    let reply = &replies[0];
    assert_eq!(reply.get("status").unwrap().as_str(), Some("ok"));
    let widths: Vec<f64> = reply
        .get("widths")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|w| w.as_f64().unwrap())
        .collect();
    // Bitwise equality: same entry point, deterministic base
    // regeneration, shortest-round-trip floats on the wire.
    assert_eq!(widths, predicted.predicted_widths);
    assert_eq!(
        reply.get("worst_ir_mv").unwrap().as_f64().unwrap(),
        predicted.predicted_ir.worst_mv()
    );
}

#[test]
fn malformed_lines_keep_the_process_alive() {
    let replies = serve(
        "malformed",
        concat!(
            "{\"id\":\"first\",\"gamma\":0.1,\"seed\":2}\n",
            "this is not json\n",
            "{\"id\":\"bad-gamma\",\"gamma\":9.0}\n",
            "{\"no\":\"id\"}\n",
            "{\"id\":\"last\",\"gamma\":0.1,\"seed\":4}\n",
            "{\"cmd\":\"quit\"}\n",
        ),
    );
    // Three error replies arrive as the lines are read; the two valid
    // requests are answered by the quit flush, in order.
    assert_eq!(replies.len(), 5);
    assert_eq!(replies[0].get("status").unwrap().as_str(), Some("error"));
    assert_eq!(
        replies[0].get("code").unwrap().as_str(),
        Some("service/malformed")
    );
    assert_eq!(replies[1].get("id").unwrap().as_str(), Some("bad-gamma"));
    assert_eq!(
        replies[1].get("code").unwrap().as_str(),
        Some("core/invalid_config")
    );
    assert_eq!(
        replies[2].get("code").unwrap().as_str(),
        Some("service/malformed")
    );
    assert_eq!(replies[3].get("id").unwrap().as_str(), Some("first"));
    assert_eq!(replies[3].get("status").unwrap().as_str(), Some("ok"));
    assert_eq!(replies[4].get("id").unwrap().as_str(), Some("last"));
    assert_eq!(replies[4].get("status").unwrap().as_str(), Some("ok"));
}

#[test]
fn answers_a_hundred_request_eco_batch() {
    let mut input = String::new();
    for i in 0..100 {
        let gamma = 0.05 + 0.002 * f64::from(i);
        input.push_str(&format!(
            "{{\"id\":\"eco{i}\",\"gamma\":{gamma},\"seed\":{}}}\n",
            100 + i
        ));
    }
    input.push_str("{\"cmd\":\"stats\"}\n{\"cmd\":\"quit\"}\n");
    let replies = serve("hundred", &input);

    // 100 ok replies in order (flushed by backpressure and quit), plus
    // the stats snapshot interleaved wherever the queue stood.
    let oks: Vec<&Json> = replies
        .iter()
        .filter(|r| r.get("status").unwrap().as_str() == Some("ok"))
        .collect();
    assert_eq!(oks.len(), 100);
    for (i, reply) in oks.iter().enumerate() {
        assert_eq!(
            reply.get("id").unwrap().as_str(),
            Some(format!("eco{i}").as_str())
        );
        assert!(reply.get("worst_ir_mv").unwrap().as_f64().unwrap() > 0.0);
        assert!(!reply.get("widths").unwrap().as_array().unwrap().is_empty());
    }
    let stats = replies
        .iter()
        .find(|r| r.get("status").unwrap().as_str() == Some("stats"))
        .expect("stats line");
    assert_eq!(stats.get("preset").unwrap().as_str(), Some("ibmpg1"));
}

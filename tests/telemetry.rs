//! End-to-end check of the workspace telemetry layer: with collection
//! enabled, one fast training run plus one service flush must leave a
//! span or counter from every instrumented crate in the snapshots, and
//! the service wire stats must carry the batch-latency percentiles.
//!
//! This lives in its own test binary because `ppdl_obs::set_enabled`
//! and the global registry are process-wide; sharing a process with
//! telemetry-off tests would make their observations order-dependent.

use std::sync::OnceLock;

use powerplanningdl::core::{DlFlowConfig, PredictRequest, TrainedBundle};
use powerplanningdl::netlist::IbmPgPreset;
use powerplanningdl::service::{Json, PredictionService, ServiceConfig};

/// One fast telemetry-enabled training run shared by every test here.
/// Collection is switched on before the first kernel call so the
/// solver, NN, and pipeline instrumentation all observe it.
fn bundle() -> &'static TrainedBundle {
    static BUNDLE: OnceLock<TrainedBundle> = OnceLock::new();
    BUNDLE.get_or_init(|| {
        powerplanningdl::obs::set_enabled(true);
        TrainedBundle::train(IbmPgPreset::Ibmpg1, 0.01, 3, DlFlowConfig::fast(), None)
            .expect("train")
    })
}

fn object_keys(value: &Json) -> Vec<&str> {
    match value {
        Json::Obj(pairs) => pairs.iter().map(|(k, _)| k.as_str()).collect(),
        other => panic!("expected object, got {other:?}"),
    }
}

#[test]
fn every_instrumented_crate_reports_into_the_global_snapshot() {
    let _ = bundle();
    let snapshot = powerplanningdl::obs::global().snapshot_json();
    let parsed = Json::parse(&snapshot).expect("snapshot is valid JSON");

    let counters = parsed.get("counters").expect("counters section");
    let counter_keys = object_keys(counters);
    for expected in [
        "solver/cg/solves",
        "solver/spmv/calls",
        "nn/epochs",
        "pipeline/stages",
    ] {
        assert!(
            counter_keys.contains(&expected),
            "missing counter {expected}; have {counter_keys:?}"
        );
        let count = counters.get(expected).and_then(Json::as_u64).unwrap();
        assert!(count > 0, "counter {expected} never incremented");
    }

    let histograms = parsed.get("histograms").expect("histograms section");
    let histogram_keys = object_keys(histograms);
    for expected in ["solver/cg/iterations", "nn/epoch_ms", "nn/epoch_loss"] {
        assert!(
            histogram_keys.contains(&expected),
            "missing histogram {expected}; have {histogram_keys:?}"
        );
    }

    let spans = parsed.get("spans").expect("spans section");
    let span_keys = object_keys(spans);
    assert!(
        span_keys.iter().any(|k| k.starts_with("pipeline/")),
        "no pipeline stage span recorded; have {span_keys:?}"
    );
    assert!(
        span_keys.iter().any(|k| k.ends_with("nn/fit")),
        "no nn/fit span recorded; have {span_keys:?}"
    );
}

#[test]
fn service_flush_populates_per_instance_registry_and_percentiles() {
    let mut service =
        PredictionService::new(bundle().clone(), ServiceConfig::default()).expect("service");
    service.enqueue(PredictRequest::new("t0")).expect("enqueue");
    let replies = service.flush();
    assert_eq!(replies.len(), 1);

    let stats = Json::parse(&service.stats_json()).expect("stats_json is valid JSON");
    for field in ["p50_ms", "p95_ms", "p99_ms"] {
        let p = stats.get(field).and_then(Json::as_f64);
        assert!(
            p.is_some_and(|v| v >= 0.0),
            "stats_json {field} should be a number after one batch, got {p:?}"
        );
    }

    let telemetry = Json::parse(&service.telemetry_json()).expect("telemetry_json is valid JSON");
    assert_eq!(
        telemetry.get("status").and_then(Json::as_str),
        Some("telemetry")
    );
    let own = telemetry.get("service").expect("service snapshot");
    let batches = own
        .get("counters")
        .and_then(|c| c.get("service/batches"))
        .and_then(Json::as_u64);
    assert_eq!(batches, Some(1));
    let samples = own
        .get("histograms")
        .and_then(|h| h.get("service/batch_ms"))
        .and_then(|h| h.get("count"))
        .and_then(Json::as_u64);
    assert_eq!(samples, Some(1), "one histogram sample per batch");
    // The global section rides along so one stats line captures both
    // the service and the solver/NN hot paths beneath it.
    assert!(telemetry.get("global").is_some());
}

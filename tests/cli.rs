//! End-to-end tests of the `ppdl` command-line tool.

use std::process::Command;

fn ppdl(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ppdl"))
        .args(args)
        .output()
        .expect("spawn ppdl")
}

#[test]
fn help_prints_usage() {
    let out = ppdl(&["--help"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("USAGE"));
    assert!(text.contains("generate"));
}

#[test]
fn unknown_subcommand_fails() {
    let out = ppdl(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown subcommand"));
}

#[test]
fn generate_then_analyze_round_trip() {
    let dir = std::env::temp_dir().join("ppdl_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let deck = dir.join("grid.spice");
    let svg = dir.join("fp.svg");
    let map = dir.join("map.csv");

    let out = ppdl(&[
        "generate",
        "--preset",
        "ibmpg1",
        "--scale",
        "0.005",
        "--seed",
        "3",
        "--out",
        deck.to_str().unwrap(),
        "--svg",
        svg.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "generate failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(deck.exists());
    assert!(std::fs::read_to_string(&svg).unwrap().starts_with("<svg"));

    let out = ppdl(&[
        "analyze",
        deck.to_str().unwrap(),
        "--map",
        map.to_str().unwrap(),
        "--resolution",
        "8",
    ]);
    assert!(
        out.status.success(),
        "analyze failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("worst-case IR drop"));
    let csv = std::fs::read_to_string(&map).unwrap();
    assert_eq!(csv.lines().count(), 8);
}

#[test]
fn analyze_rejects_missing_file() {
    let out = ppdl(&["analyze", "/nonexistent/deck.spice"]);
    assert!(!out.status.success());
}

#[test]
fn flow_fast_runs_and_saves_model() {
    let dir = std::env::temp_dir().join("ppdl_cli_test");
    std::fs::create_dir_all(&dir).unwrap();
    let model = dir.join("model.ppdl");
    let out = ppdl(&[
        "flow",
        "--preset",
        "ibmpg2",
        "--scale",
        "0.004",
        "--fast",
        "--model",
        model.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "flow failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("width model"));
    assert!(text.contains("predicted IR"));
    // The saved model reloads.
    let loaded =
        powerplanningdl::core::WidthPredictor::from_text(&std::fs::read_to_string(&model).unwrap());
    assert!(loaded.is_ok());
}

#[test]
fn generate_requires_preset_and_out() {
    assert!(!ppdl(&["generate", "--out", "/tmp/x.spice"])
        .status
        .success());
    assert!(!ppdl(&["generate", "--preset", "ibmpg1"]).status.success());
    assert!(!ppdl(&["generate", "--preset", "bogus", "--out", "/tmp/x"])
        .status
        .success());
}

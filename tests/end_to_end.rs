//! End-to-end integration tests: the full PowerPlanningDL flow across
//! the crate stack, exercised through the umbrella crate's public API.

use powerplanningdl::core::{experiment, PowerPlanningDl};
use powerplanningdl::netlist::IbmPgPreset;

fn run(preset: IbmPgPreset, scale: f64, seed: u64) -> powerplanningdl::core::DlOutcome {
    let prepared = experiment::prepare(preset, scale, seed, 2.5).expect("prepare");
    let config = experiment::flow_config(&prepared, true);
    PowerPlanningDl::new(config)
        .run(&prepared.bench)
        .expect("flow")
}

#[test]
fn perimeter_benchmark_full_flow() {
    let o = run(IbmPgPreset::Ibmpg2, 0.006, 3);
    assert!(o.width_metrics.r2 > 0.6, "r2 = {}", o.width_metrics.r2);
    assert!(o.conventional_iterations > 1);
    // Predicted IR tracks the conventional analysis.
    let rel =
        (o.predicted_worst_ir_mv - o.conventional_worst_ir_mv).abs() / o.conventional_worst_ir_mv;
    assert!(
        rel < 0.25,
        "IR mismatch: {} vs {} mV",
        o.predicted_worst_ir_mv,
        o.conventional_worst_ir_mv
    );
}

#[test]
fn flipchip_benchmark_full_flow() {
    let o = run(IbmPgPreset::Ibmpg5, 0.002, 5);
    assert!(o.conventional_worst_ir_mv > 0.0);
    assert!(o.predicted_worst_ir_mv > 0.0);
    // Flip-chip grids have spiky widths; the estimate stays in the
    // right ballpark.
    let ratio = o.predicted_worst_ir_mv / o.conventional_worst_ir_mv;
    assert!((0.4..2.5).contains(&ratio), "ratio {ratio}");
}

#[test]
fn flow_is_deterministic_given_seeds() {
    let a = run(IbmPgPreset::Ibmpg1, 0.008, 9);
    let b = run(IbmPgPreset::Ibmpg1, 0.008, 9);
    assert_eq!(a.golden_widths, b.golden_widths);
    assert_eq!(a.predicted_widths, b.predicted_widths);
    assert_eq!(a.conventional_worst_ir_mv, b.conventional_worst_ir_mv);
    assert_eq!(a.predicted_worst_ir_mv, b.predicted_worst_ir_mv);
}

#[test]
fn different_seeds_change_the_design() {
    let a = run(IbmPgPreset::Ibmpg1, 0.008, 1);
    let b = run(IbmPgPreset::Ibmpg1, 0.008, 2);
    assert_ne!(a.golden_widths, b.golden_widths);
}

#[test]
fn calibration_reproduces_table3_targets() {
    use powerplanningdl::analysis::StaticAnalysis;
    // After conventional sizing at the Table III margin, the worst-case
    // drop lands at (just under) the published value.
    for preset in [IbmPgPreset::Ibmpg2, IbmPgPreset::Ibmpg4] {
        let o = run(preset, 0.006, 7);
        let target_mv = preset.table3_worst_ir_mv().unwrap();
        let report = StaticAnalysis::default()
            .solve(o.sized_bench.network())
            .expect("solve");
        let worst_mv = report.worst_drop().unwrap().1 * 1e3;
        assert!(
            worst_mv <= target_mv + 1e-6,
            "{preset}: {worst_mv} > {target_mv}"
        );
        assert!(
            worst_mv > 0.4 * target_mv,
            "{preset}: sized drop {worst_mv} too far below target {target_mv}"
        );
    }
}

#[test]
fn widths_sized_up_only_where_needed() {
    let o = run(IbmPgPreset::Ibmpg2, 0.008, 3);
    let initial = 1.2_f64.max(1.0);
    let max = o.golden_widths.iter().cloned().fold(0.0_f64, f64::max);
    let min = o
        .golden_widths
        .iter()
        .cloned()
        .fold(f64::INFINITY, f64::min);
    assert!(max > initial, "sizing must widen something");
    assert!(
        max / min > 1.1,
        "width variation expected, got {min}..{max}"
    );
}

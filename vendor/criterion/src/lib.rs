//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored
//! crate implements the subset of the criterion API the workspace's
//! `harness = false` benches use: `Criterion::benchmark_group`,
//! `sample_size`, `throughput`, `bench_function` /
//! `bench_with_input`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement is deliberately simple: each benchmark runs a short
//! warm-up, then `sample_size` timed samples; the mean, minimum, and
//! throughput (when configured) are printed to stdout in a stable
//! one-line format that downstream scripts can grep.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier that is only a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let sample_size = self.default_sample_size;
        run_benchmark(name, sample_size, None, f);
        self
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into().id);
        run_benchmark(&full, self.sample_size, self.throughput, f);
        self
    }

    /// Benchmark a closure over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.id);
        run_benchmark(&full, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    /// End the group (printing is incremental, so this is a no-op).
    pub fn finish(self) {}
}

/// Passed to benchmark closures; measures the hot loop.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `f`, running it enough times to get a stable sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_benchmark<F>(name: &str, sample_size: usize, throughput: Option<Throughput>, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up: one untimed sample, also used to pick an iteration count
    // targeting ~20ms per sample (at least 1 iteration).
    let mut warm = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    f(&mut warm);
    let per_iter = warm.elapsed.max(Duration::from_nanos(1));
    let iters =
        (Duration::from_millis(20).as_nanos() / per_iter.as_nanos()).clamp(1, 10_000) as u64;

    let mut best = Duration::MAX;
    let mut total = Duration::ZERO;
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per = b.elapsed / iters as u32;
        best = best.min(per);
        total += per;
    }
    let mean = total / sample_size as u32;
    let thr = match throughput {
        Some(Throughput::Elements(n)) => {
            format!(
                "  thrpt: {:.3} Melem/s",
                n as f64 / mean.as_secs_f64() / 1.0e6
            )
        }
        Some(Throughput::Bytes(n)) => {
            format!(
                "  thrpt: {:.3} MiB/s",
                n as f64 / mean.as_secs_f64() / (1 << 20) as f64
            )
        }
        None => String::new(),
    };
    println!(
        "bench: {name:<48} mean {:>12?}  min {:>12?}  ({} samples x {} iters){thr}",
        mean, best, sample_size, iters
    );
}

/// Collect benchmark functions into a callable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running one or more benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // cargo bench passes harness flags (e.g. `--bench`); accept
            // an optional substring filter as the first free argument.
            let _args: Vec<String> = std::env::args().skip(1).collect();
            $($group();)+
        }
    };
}

//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to a crates.io
//! mirror, so the workspace vendors a minimal, dependency-free
//! implementation of the exact `rand` API surface it consumes:
//!
//! * [`rngs::StdRng`] with [`SeedableRng::seed_from_u64`]
//! * [`Rng::gen_range`] over half-open numeric ranges
//! * [`Rng::gen_bool`]
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates)
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a
//! well-studied, high-quality PRNG. Streams are deterministic for a given
//! seed but are **not** bit-compatible with upstream `rand 0.8`; nothing
//! in the workspace depends on upstream stream values, only on seeded
//! determinism.

#![forbid(unsafe_code)]

/// Low-level entropy source: everything else is derived from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seeding support. Only the `seed_from_u64` constructor used by this
/// workspace is provided.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Uniform sample from a half-open range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p` (`0.0 ..= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<T: RngCore> Rng for T {}

/// `u64` bits mapped to a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high-quality mantissa bits.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Half-open ranges that `Rng::gen_range` accepts.
pub trait SampleRange {
    /// Sampled value type.
    type Output;
    /// Draw one uniform sample.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> Self::Output;
}

impl SampleRange for core::ops::Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty f64 range");
        let span = self.end - self.start;
        let v = self.start + unit_f64(rng.next_u64()) * span;
        // Guard against round-up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty integer range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator (xoshiro256++).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = state;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    /// Alias kept for the `small_rng` feature; same engine as [`StdRng`].
    pub type SmallRng = StdRng;
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling (the only `SliceRandom` method this workspace uses).
    pub trait SliceRandom {
        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(
                a.gen_range(0.0..1.0).to_bits(),
                b.gen_range(0.0..1.0).to_bits()
            );
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen_range(0u64..1 << 60), c.gen_range(0u64..1 << 60));
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(-2.5..3.5);
            assert!((-2.5..3.5).contains(&v));
            let i = rng.gen_range(3usize..9);
            assert!((3..9).contains(&i));
            let n = rng.gen_range(-5i64..-1);
            assert!((-5..-1).contains(&n));
        }
    }

    #[test]
    fn gen_bool_matches_probability_roughly() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..20_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((4000..6000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut StdRng::seed_from_u64(9));
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }
}

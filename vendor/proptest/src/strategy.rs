//! Value-generation strategies.
//!
//! Unlike upstream `proptest` (which builds shrinkable value *trees*),
//! this vendored engine samples plain values: a [`Strategy`] is a seeded
//! recipe mapping an RNG to a value. The combinator surface is the same
//! where the workspace uses it.

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value` from a seeded RNG.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generate a value, then generate from the strategy `f` derives
    /// from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Keep only values satisfying `pred`; other draws are retried.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Type-erase the strategy so heterogeneous strategies can mix
    /// (e.g. inside [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe sampling, used by [`BoxedStrategy`].
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Strategy that always yields a clone of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.sample(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!(
            "prop_filter `{}` rejected 1000 consecutive draws",
            self.whence
        );
    }
}

/// Weighted uniform choice between boxed strategies; the expansion of
/// [`crate::prop_oneof!`].
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Build from `(weight, strategy)` pairs.
    #[must_use]
    pub fn new(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total_weight = options.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total_weight > 0, "prop_oneof! weights sum to zero");
        Union {
            options,
            total_weight,
        }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, s) in &self.options {
            let w = u64::from(*w);
            if pick < w {
                return s.sample(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty float range strategy");
                let span = self.end - self.start;
                let v = self.start + (rng.unit_f64() as $t) * span;
                if v >= self.end { self.start } else { v }
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty float range strategy");
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}

float_range_strategy!(f32, f64);

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let v = rng.below_u128(span);
                (self.start as i128 + v as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty integer range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let v = rng.below_u128(span);
                (lo as i128 + v as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for core::ops::RangeFull {
    type Value = bool;
    fn sample(&self, rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

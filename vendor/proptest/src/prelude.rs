//! The usual `use proptest::prelude::*;` import surface.

pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
pub use crate::test_runner::{Config as ProptestConfig, TestCaseError, TestRng};
pub use crate::TestCaseResult;
pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest};

/// Strategy for "any value" of a few basic types, selected by the type
/// parameter. Only the types the workspace needs are implemented.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Types with a canonical strategy, for [`any`].
pub trait Arbitrary: Sized {
    /// Canonical strategy type.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            type Strategy = core::ops::RangeInclusive<$t>;
            fn arbitrary() -> Self::Strategy {
                <$t>::MIN..=<$t>::MAX
            }
        }
    )*};
}

arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = core::ops::RangeFull;
    fn arbitrary() -> Self::Strategy {
        ..
    }
}

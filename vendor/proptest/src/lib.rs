//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so the workspace
//! vendors a small property-testing engine that speaks the subset of the
//! `proptest` API the test suites use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(...)]`, doc
//!   comments, and `#[test]` attributes on each property),
//! * [`Strategy`] with `prop_map` / `prop_flat_map` / `boxed`,
//! * numeric [`core::ops::Range`] strategies, tuples, [`Just`],
//!   [`collection::vec`], and [`prop_oneof!`],
//! * [`prop_assert!`] / [`prop_assert_eq!`] returning
//!   [`TestCaseError`] from the property body,
//! * `*.proptest-regressions` seed files: every `cc` entry is re-run
//!   before the fresh random cases, so checked-in regressions are
//!   exercised on each `cargo test`.
//!
//! Differences from upstream: failing inputs are reported but not
//! shrunk, and case generation is deterministic per test (seeded from
//! the test's name, overridable with `PROPTEST_RNG_SEED`). Case counts
//! honour `PROPTEST_CASES` exactly like upstream.

#![forbid(unsafe_code)]

pub mod collection;
pub mod prelude;
pub mod strategy;
pub mod test_runner;

pub use strategy::{Just, Strategy};
pub use test_runner::{Config as ProptestConfig, TestCaseError, TestRng};

/// Result type property bodies evaluate to.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Defines property tests.
///
/// Supported grammar (a strict subset of upstream `proptest!`):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     /// Optional docs.
///     #[test]
///     fn my_property(x in 0.0_f64..1.0, v in proptest::collection::vec(0u32..9, 1..20)) {
///         prop_assert!(x < 1.0);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    // With a leading config attribute.
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@fns ($config) $($rest)*);
    };
    // Without one: use the default config.
    (
        $(#[$meta:meta])*
        fn $($rest:tt)*
    ) => {
        $crate::proptest!(
            @fns ($crate::ProptestConfig::default())
            $(#[$meta])*
            fn $($rest)*
        );
    };
    // Expand each test fn in turn.
    (
        @fns ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::test_runner::run_property(
                env!("CARGO_MANIFEST_DIR"),
                file!(),
                stringify!($name),
                &config,
                |__ppdl_rng: &mut $crate::TestRng, __ppdl_seed: u64| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __ppdl_rng);)+
                    let __ppdl_desc =
                        [$(format!("  {} = {:?}\n", stringify!($arg), $arg)),+].concat();
                    let __ppdl_case = move || -> $crate::TestCaseResult {
                        $body
                        Ok(())
                    };
                    match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                        __ppdl_case,
                    )) {
                        Ok(Ok(())) => {}
                        Ok(Err(e)) if e.is_rejection() => {}
                        Ok(Err(e)) => panic!(
                            "proptest property `{}` failed: {}\n  rng seed: {:#x}\n{}",
                            stringify!($name),
                            e,
                            __ppdl_seed,
                            __ppdl_desc,
                        ),
                        Err(payload) => {
                            eprintln!(
                                "proptest property `{}` panicked (rng seed {:#x}) with inputs:\n{}",
                                stringify!($name),
                                __ppdl_seed,
                                __ppdl_desc,
                            );
                            ::std::panic::resume_unwind(payload);
                        }
                    }
                },
            );
        }
        $crate::proptest!(@fns ($config) $($rest)*);
    };
    (@fns ($config:expr)) => {};
}

/// Fails the property with a message unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fails the property unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)*), l, r
        );
    }};
}

/// Fails the property unless the two expressions differ.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (counts as a discard, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::reject(concat!(
                "assumption failed: ",
                stringify!($cond)
            )));
        }
    };
}

/// Uniform choice between strategies producing the same value type.
///
/// Weights (`w => strategy`) are accepted and honoured.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strat))),+
        ])
    };
}

//! Case execution: RNG, config, error type, and the per-property runner
//! (including `*.proptest-regressions` seed replay).

use std::fmt;
use std::path::{Path, PathBuf};

/// Per-property configuration; mirrors the fields of upstream
/// `ProptestConfig` that the workspace sets.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of fresh random cases to run per property.
    pub cases: u32,
}

impl Config {
    /// Config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(256);
        Config { cases }
    }
}

/// Why a property body bailed out of a case.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// A `prop_assert*` failed: the property is falsified.
    Fail(String),
    /// A `prop_assume!` failed: discard the case, try another.
    Reject(String),
}

impl TestCaseError {
    /// Failure with a message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Discarded case.
    #[must_use]
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }

    /// True for discards (assumption failures), false for real failures.
    #[must_use]
    pub fn is_rejection(&self) -> bool {
        matches!(self, TestCaseError::Reject(_))
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) | TestCaseError::Reject(m) => f.write_str(m),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// The runner's RNG (xoshiro256++ seeded via SplitMix64). Deterministic
/// per seed; independent of the vendored `rand` crate.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed through SplitMix64 expansion.
    #[must_use]
    pub fn seed_from_u64(state: u64) -> Self {
        let mut sm = state;
        let mut next = || {
            sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "TestRng::below: zero bound");
        self.next_u64() % bound
    }

    /// Uniform integer in `[0, bound)` for wide bounds.
    pub fn below_u128(&mut self, bound: u128) -> u128 {
        assert!(bound > 0, "TestRng::below_u128: zero bound");
        if bound <= u128::from(u64::MAX) {
            u128::from(self.below(bound as u64))
        } else {
            let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            wide % bound
        }
    }
}

/// FNV-1a, used to derive per-property base seeds from test names.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Locate `<source file stem>.proptest-regressions` next to the test's
/// source file. `file!()` paths are workspace-root-relative, while tests
/// run from the package root, so both interpretations are tried.
fn regression_file(manifest_dir: &str, source_file: &str) -> Option<PathBuf> {
    let with_ext = Path::new(source_file).with_extension("proptest-regressions");
    if with_ext.is_file() {
        return Some(with_ext);
    }
    // Keep only the path from the last `tests/` (or `src/`) component on
    // and resolve it against the package manifest dir.
    let s = with_ext.to_string_lossy();
    for anchor in ["tests/", "src/"] {
        if let Some(pos) = s.rfind(anchor) {
            let candidate = Path::new(manifest_dir).join(&s[pos..]);
            if candidate.is_file() {
                return Some(candidate);
            }
        }
    }
    None
}

/// Parse `cc <hex>` seed lines from a regression file into u64 seeds.
fn regression_seeds(path: &Path) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let rest = line.trim().strip_prefix("cc ")?;
            let hex: String = rest
                .chars()
                .take_while(|c| c.is_ascii_hexdigit())
                .take(16)
                .collect();
            if hex.is_empty() {
                return None;
            }
            u64::from_str_radix(&hex, 16).ok()
        })
        .collect()
}

/// Run one property: first replay every checked-in regression seed for
/// the property's source file, then run `config.cases` fresh cases.
///
/// Case seeds are deterministic per property name so failures are
/// reproducible run-to-run; set `PROPTEST_RNG_SEED` to explore a
/// different part of the space (or to replay a printed seed, which
/// runs that exact seed first).
pub fn run_property(
    manifest_dir: &str,
    source_file: &str,
    name: &str,
    config: &Config,
    mut case: impl FnMut(&mut TestRng, u64),
) {
    let mut seeds: Vec<u64> = Vec::new();
    if let Some(path) = regression_file(manifest_dir, source_file) {
        seeds.extend(regression_seeds(&path));
    }
    if let Ok(v) = std::env::var("PROPTEST_RNG_SEED") {
        if let Ok(s) = v.parse::<u64>() {
            seeds.push(s);
        }
    }
    let base = fnv1a(format!("{source_file}::{name}").as_bytes());
    seeds.extend(
        (0..config.cases).map(|i| base ^ (u64::from(i)).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
    );

    for seed in seeds {
        let mut rng = TestRng::seed_from_u64(seed);
        case(&mut rng, seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeds_parse_from_cc_lines() {
        let dir = std::env::temp_dir().join("ppdl-proptest-shim-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.proptest-regressions");
        std::fs::write(
            &path,
            "# comment\ncc cdddec471069d28d26ca9b86e02d6b1b4ac43121d432ab6ce0b2f70ade2simply # shrinks to x = 1\n",
        )
        .unwrap();
        let seeds = regression_seeds(&path);
        assert_eq!(seeds.len(), 1);
        assert_eq!(seeds[0], 0xcdddec471069d28d);
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::seed_from_u64(5);
        let mut b = TestRng::seed_from_u64(5);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}

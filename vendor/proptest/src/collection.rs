//! Collection strategies (`proptest::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive-exclusive length specification for collection strategies.
///
/// Built from a `usize` (exact length) or a `Range<usize>`.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty collection size range");
        SizeRange {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

impl SizeRange {
    fn pick(self, rng: &mut TestRng) -> usize {
        let span = (self.hi_exclusive - self.lo) as u64;
        self.lo + rng.below(span) as usize
    }
}

/// Strategy producing `Vec`s whose elements come from `element` and
/// whose length lies in `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// See [`vec`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

//! The grandfathering baseline: `lint-baseline.txt`.
//!
//! The baseline is a ratchet, not a suppression list. Each line is
//! `rule-id<TAB>path<TAB>count` — per-(rule, file) *counts*, not line
//! numbers, so ordinary edits that move code around don't churn the
//! file. `--deny` fails when any count grows; `--update-baseline`
//! records shrinkage. Inline `ppdl-lint: allow` comments are for
//! violations that are *correct and permanent*; the baseline is for
//! pre-existing debt that must only ever shrink.

use std::collections::BTreeMap;

use crate::rules::Finding;

/// Per-(rule, path) finding counts — the unit the ratchet compares.
pub type Counts = BTreeMap<(String, String), usize>;

/// Aggregates findings into baseline counts.
#[must_use]
pub fn count_findings(findings: &[Finding]) -> Counts {
    let mut counts = Counts::new();
    for f in findings {
        *counts
            .entry((f.rule.to_string(), f.path.clone()))
            .or_insert(0) += 1;
    }
    counts
}

/// Parses baseline text. Blank lines and `#` comments are skipped;
/// malformed lines are reported as errors (a corrupt ratchet must not
/// silently allow regressions).
pub fn parse(text: &str) -> Result<Counts, String> {
    let mut counts = Counts::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split('\t');
        let (Some(rule), Some(path), Some(count)) = (parts.next(), parts.next(), parts.next())
        else {
            return Err(format!(
                "baseline line {}: expected 'rule<TAB>path<TAB>count', got '{raw}'",
                i + 1
            ));
        };
        let n: usize = count
            .parse()
            .map_err(|_| format!("baseline line {}: bad count '{count}'", i + 1))?;
        counts.insert((rule.to_string(), path.to_string()), n);
    }
    Ok(counts)
}

/// Renders counts as baseline text (sorted, reproducible).
#[must_use]
pub fn render(counts: &Counts) -> String {
    let mut out = String::from(
        "# ppdl-lint baseline: grandfathered findings, per (rule, file) count.\n\
         # This file may only ever shrink. Regenerate with `ppdl-lint --update-baseline`\n\
         # after *reducing* findings; `ppdl-lint --deny` fails if any count grows.\n",
    );
    for ((rule, path), n) in counts {
        out.push_str(&format!("{rule}\t{path}\t{n}\n"));
    }
    out
}

/// The verdict of comparing current findings against the baseline.
#[derive(Debug, Default)]
pub struct Diff {
    /// (rule, path, current, baselined): counts that grew — failures.
    pub grown: Vec<(String, String, usize, usize)>,
    /// (rule, path, baselined, current): counts that shrank — run
    /// `--update-baseline` to record the progress.
    pub stale: Vec<(String, String, usize, usize)>,
    /// Findings not covered by the baseline at all (new rule/file).
    pub new_findings: usize,
}

impl Diff {
    /// True when nothing grew.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.grown.is_empty() && self.new_findings == 0
    }
}

/// Compares current findings against baseline counts.
#[must_use]
pub fn diff(findings: &[Finding], baseline: &Counts) -> Diff {
    let current = count_findings(findings);
    let mut d = Diff::default();
    for ((rule, path), &n) in &current {
        let base = baseline.get(&(rule.clone(), path.clone())).copied();
        match base {
            None => {
                d.new_findings += n;
                d.grown.push((rule.clone(), path.clone(), n, 0));
            }
            Some(b) if n > b => d.grown.push((rule.clone(), path.clone(), n, b)),
            _ => {}
        }
    }
    for ((rule, path), &b) in baseline {
        let n = current
            .get(&(rule.clone(), path.clone()))
            .copied()
            .unwrap_or(0);
        if n < b {
            d.stale.push((rule.clone(), path.clone(), b, n));
        }
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str) -> Finding {
        Finding {
            rule,
            path: path.to_string(),
            line: 1,
            detail: String::new(),
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let findings = vec![
            finding("robustness/unwrap-in-lib", "crates/a/src/lib.rs"),
            finding("robustness/unwrap-in-lib", "crates/a/src/lib.rs"),
            finding("determinism/wall-clock", "crates/b/src/x.rs"),
        ];
        let counts = count_findings(&findings);
        let back = parse(&render(&counts)).unwrap();
        assert_eq!(counts, back);
    }

    #[test]
    fn growth_and_shrinkage_detected() {
        let baseline = parse("robustness/unwrap-in-lib\tcrates/a/src/lib.rs\t2\n").unwrap();
        // Same count: clean.
        let same = vec![
            finding("robustness/unwrap-in-lib", "crates/a/src/lib.rs"),
            finding("robustness/unwrap-in-lib", "crates/a/src/lib.rs"),
        ];
        assert!(diff(&same, &baseline).is_clean());
        // Grown: dirty.
        let mut grown = same.clone();
        grown.push(finding("robustness/unwrap-in-lib", "crates/a/src/lib.rs"));
        let d = diff(&grown, &baseline);
        assert!(!d.is_clean());
        assert_eq!(d.grown.len(), 1);
        // Shrunk: clean but stale.
        let d = diff(&same[..1], &baseline);
        assert!(d.is_clean());
        assert_eq!(d.stale.len(), 1);
        // New file not in baseline: dirty.
        let d = diff(
            &[finding("determinism/hashmap-iter", "crates/c/src/lib.rs")],
            &baseline,
        );
        assert!(!d.is_clean());
        assert_eq!(d.new_findings, 1);
    }

    #[test]
    fn malformed_baseline_is_an_error() {
        assert!(parse("rule only\n").is_err());
        assert!(parse("rule\tpath\tnot-a-number\n").is_err());
        assert!(parse("# comment\n\n").unwrap().is_empty());
    }
}

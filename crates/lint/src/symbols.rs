//! The workspace symbol table: every function the item parser found,
//! qualified by crate, module path, and impl type, with the indexes
//! the call-graph resolver needs.
//!
//! Precision policy: resolution must be *useful*, not perfect. Rust's
//! re-export graph (`pub use` chains) is not modelled; instead, when
//! an exact `lib::module::name` lookup misses, the table falls back to
//! matching by `(crate, type, name)` and then `(crate, name)` across
//! modules. Inside one workspace that fallback is almost always
//! unambiguous, and where it over-approximates it only *adds* edges —
//! safe for the reachability rules, which are may-analyses.

use std::collections::BTreeMap;

use crate::lexer::Tok;
use crate::parse::ParsedFile;
use crate::rules::FileClass;

/// One function in the workspace.
#[derive(Debug, Clone)]
pub struct FnSym {
    /// Index of the owning file in the analysis file list.
    pub file_idx: usize,
    /// Crate directory name (`core`, `solver`, `root`, …).
    pub crate_dir: String,
    /// Lib target name `use` paths refer to (`ppdl_core`, …).
    pub lib_name: String,
    /// Module path within the crate (file path derived + inline mods).
    pub module: Vec<String>,
    /// Bare function name.
    pub name: String,
    /// Impl/trait self type for methods.
    pub self_type: Option<String>,
    /// Whether the fn carries a visibility qualifier.
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Body token range in the owning file's stripped stream.
    pub body: Option<(usize, usize)>,
}

impl FnSym {
    /// Human-readable qualified name
    /// (`ppdl_solver::cg::ConjugateGradient::solve`).
    #[must_use]
    pub fn qualified(&self) -> String {
        let mut parts = vec![self.lib_name.clone()];
        parts.extend(self.module.iter().cloned());
        if let Some(t) = &self.self_type {
            parts.push(t.clone());
        }
        parts.push(self.name.clone());
        parts.join("::")
    }
}

/// One analyzed file: identity, stripped tokens, and parsed items.
/// The call-graph builder walks these; the symbol table indexes them.
#[derive(Debug)]
pub struct FileSem {
    /// Workspace-relative path.
    pub path: String,
    /// Crate directory name.
    pub crate_dir: String,
    /// Lib target name of the owning crate.
    pub lib_name: String,
    /// Lib or bin source.
    pub class: FileClass,
    /// Module path derived from the file's location under `src/`.
    pub module: Vec<String>,
    /// Test-stripped token stream (fn body ranges index into this).
    pub toks: Vec<Tok>,
    /// Items the parser extracted.
    pub parsed: ParsedFile,
}

/// Derives a file's module path from its path relative to the crate
/// `src/` dir: `a/b.rs` → `[a, b]`, `a/mod.rs` → `[a]`,
/// `lib.rs`/`main.rs` → `[]`, `bin/x.rs` → `[]` (bins are their own
/// crate roots).
#[must_use]
pub fn module_path_of(rel_path: &str) -> Vec<String> {
    let Some(pos) = rel_path.find("src/") else {
        return Vec::new();
    };
    let tail = &rel_path[pos + 4..];
    if tail == "lib.rs" || tail == "main.rs" || tail.starts_with("bin/") {
        return Vec::new();
    }
    let tail = tail.strip_suffix(".rs").unwrap_or(tail);
    let mut parts: Vec<String> = tail.split('/').map(str::to_string).collect();
    if parts.last().is_some_and(|p| p == "mod") {
        parts.pop();
    }
    parts
}

/// The workspace symbol table.
#[derive(Debug, Default)]
pub struct Symbols {
    /// All functions, indexed by `FnId` (= position).
    pub fns: Vec<FnSym>,
    /// Exact qualified path → fn id.
    by_qualified: BTreeMap<String, usize>,
    /// (lib name, bare name) → free-fn ids anywhere in the crate.
    free_by_crate: BTreeMap<(String, String), Vec<usize>>,
    /// (type name, method name) → ids.
    methods_by_type: BTreeMap<(String, String), Vec<usize>>,
    /// Method name → ids (receiver type unknown at `.m(…)` call sites).
    methods_by_name: BTreeMap<String, Vec<usize>>,
    /// Type names that have any impl in the workspace.
    type_names: BTreeMap<String, ()>,
}

impl Symbols {
    /// Builds the table from every analyzed file.
    #[must_use]
    pub fn build(files: &[FileSem]) -> Self {
        let mut s = Symbols::default();
        for (file_idx, f) in files.iter().enumerate() {
            for item in &f.parsed.fns {
                let mut module = f.module.clone();
                module.extend(item.module.iter().cloned());
                let id = s.fns.len();
                let sym = FnSym {
                    file_idx,
                    crate_dir: f.crate_dir.clone(),
                    lib_name: f.lib_name.clone(),
                    module,
                    name: item.name.clone(),
                    self_type: item.self_type.clone(),
                    is_pub: item.is_pub,
                    line: item.line,
                    body: item.body,
                };
                s.by_qualified.insert(sym.qualified(), id);
                match &sym.self_type {
                    Some(t) => {
                        s.methods_by_type
                            .entry((t.clone(), sym.name.clone()))
                            .or_default()
                            .push(id);
                        s.methods_by_name
                            .entry(sym.name.clone())
                            .or_default()
                            .push(id);
                        s.type_names.insert(t.clone(), ());
                    }
                    None => {
                        s.free_by_crate
                            .entry((sym.lib_name.clone(), sym.name.clone()))
                            .or_default()
                            .push(id);
                    }
                }
                s.fns.push(sym);
            }
        }
        s
    }

    /// Exact qualified lookup.
    #[must_use]
    pub fn by_qualified(&self, q: &str) -> Option<usize> {
        self.by_qualified.get(q).copied()
    }

    /// Free fns named `name` anywhere in crate `lib_name`.
    #[must_use]
    pub fn free_in_crate(&self, lib_name: &str, name: &str) -> &[usize] {
        self.free_by_crate
            .get(&(lib_name.to_string(), name.to_string()))
            .map_or(&[], Vec::as_slice)
    }

    /// Methods `Type::name` anywhere in the workspace.
    #[must_use]
    pub fn methods_of(&self, ty: &str, name: &str) -> &[usize] {
        self.methods_by_type
            .get(&(ty.to_string(), name.to_string()))
            .map_or(&[], Vec::as_slice)
    }

    /// Methods named `name` on any workspace type.
    #[must_use]
    pub fn methods_named(&self, name: &str) -> &[usize] {
        self.methods_by_name.get(name).map_or(&[], Vec::as_slice)
    }

    /// Whether any workspace impl block targets `ty`.
    #[must_use]
    pub fn is_workspace_type(&self, ty: &str) -> bool {
        self.type_names.contains_key(ty)
    }

    /// Resolves an absolute path (first segment = lib name) to fn
    /// candidates: exact module match first, then crate-wide fallback
    /// (`pub use` re-exports make exact paths unreliable; see module
    /// docs).
    #[must_use]
    pub fn resolve_absolute(&self, path: &[String]) -> Vec<usize> {
        if path.len() < 2 {
            return Vec::new();
        }
        if let Some(id) = self.by_qualified(&path.join("::")) {
            return vec![id];
        }
        let lib = &path[0];
        let name = &path[path.len() - 1];
        // `lib::…::Type::name` method form: second-to-last segment
        // names a workspace type.
        if path.len() >= 3 {
            let ty = &path[path.len() - 2];
            if self.is_workspace_type(ty) {
                let ids: Vec<usize> = self
                    .methods_of(ty, name)
                    .iter()
                    .copied()
                    .filter(|&id| self.fns[id].lib_name == *lib)
                    .collect();
                if !ids.is_empty() {
                    return ids;
                }
            }
        }
        self.free_in_crate(lib, name).to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_code};
    use crate::parse::parse_items;

    fn file(path: &str, crate_dir: &str, lib: &str, src: &str) -> FileSem {
        let toks = strip_test_code(&lex(src));
        let parsed = parse_items(&toks);
        FileSem {
            path: path.to_string(),
            crate_dir: crate_dir.to_string(),
            lib_name: lib.to_string(),
            class: FileClass::Lib,
            module: module_path_of(path),
            toks,
            parsed,
        }
    }

    #[test]
    fn module_paths_from_file_layout() {
        assert!(module_path_of("crates/core/src/lib.rs").is_empty());
        assert_eq!(
            module_path_of("crates/core/src/pipeline/mod.rs"),
            vec!["pipeline"]
        );
        assert_eq!(
            module_path_of("crates/core/src/pipeline/stages.rs"),
            vec!["pipeline", "stages"]
        );
        assert!(module_path_of("src/bin/ppdl.rs").is_empty());
    }

    #[test]
    fn qualified_names_and_lookups() {
        let files = vec![
            file(
                "crates/solver/src/cg.rs",
                "solver",
                "ppdl_solver",
                "pub struct Cg;\nimpl Cg { pub fn solve(&self) {} }\nfn helper() {}",
            ),
            file(
                "crates/core/src/synth.rs",
                "core",
                "ppdl_core",
                "pub fn synthesize() {}",
            ),
        ];
        let s = Symbols::build(&files);
        assert!(s.by_qualified("ppdl_solver::cg::Cg::solve").is_some());
        assert!(s.by_qualified("ppdl_core::synth::synthesize").is_some());
        assert_eq!(s.free_in_crate("ppdl_solver", "helper").len(), 1);
        assert_eq!(s.methods_of("Cg", "solve").len(), 1);
        assert!(s.is_workspace_type("Cg"));
    }

    #[test]
    fn resolve_absolute_handles_reexport_style_paths() {
        let files = vec![file(
            "crates/solver/src/csr.rs",
            "solver",
            "ppdl_solver",
            "pub struct CsrMatrix;\nimpl CsrMatrix { pub fn spmv(&self) {} }\npub fn build() {}",
        )];
        let s = Symbols::build(&files);
        // Exact path.
        let exact: Vec<String> = ["ppdl_solver", "csr", "CsrMatrix", "spmv"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(s.resolve_absolute(&exact).len(), 1);
        // Re-export style path (module omitted) still resolves.
        let reexport: Vec<String> = ["ppdl_solver", "CsrMatrix", "spmv"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(s.resolve_absolute(&reexport).len(), 1);
        // Crate-wide free-fn fallback.
        let free: Vec<String> = ["ppdl_solver", "build"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(s.resolve_absolute(&free).len(), 1);
    }
}

//! `ppdl-lint` — the workspace invariant checker.
//!
//! PRs 1–4 built the reproduction's operational guarantees by hand:
//! bitwise-deterministic parallel reductions (PR 1), cache keys that
//! are pure functions of configuration (PR 2), a serving process that
//! turns every malformed input into a typed `layer/kind` wire error
//! instead of dying (PR 3), and telemetry that never perturbs compute
//! (PR 4). None of those properties are visible to `rustc` — one stray
//! `HashMap` iteration feeding a sum, one `std::thread::spawn` outside
//! the fixed-order reduction layer, one `unwrap()` on the serve path,
//! and the guarantee silently rots until a golden test flakes much
//! later.
//!
//! This crate makes the invariants machine-checked. It is std-only and
//! dependency-free (the same zero-dep discipline as the hand-rolled
//! JSON reader in `crates/service/src/json.rs`): a real lexer
//! ([`lexer`]) that skips strings, raw strings, char literals, and
//! nested block comments; named rules with stable IDs ([`rules`]);
//! explicit, auditable suppressions (inline
//! `// ppdl-lint: allow(rule-id) -- reason` comments); and a
//! shrink-only baseline ratchet ([`baseline`]) for grandfathered debt.
//!
//! The `ppdl-lint` binary drives it:
//!
//! ```text
//! ppdl-lint            # report all findings (informational)
//! ppdl-lint --deny     # CI mode: exit 1 on any non-baselined finding
//! ppdl-lint --json     # machine-readable findings
//! ppdl-lint --update-baseline   # record shrinkage in lint-baseline.txt
//! ```
//!
//! Rule IDs, their rationale, and the suppression policy are
//! documented in DESIGN.md §12.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arch;
pub mod baseline;
pub mod callgraph;
pub mod lexer;
pub mod parse;
pub mod rules;
pub mod symbols;
pub mod walk;

pub use baseline::{count_findings, diff, Counts, Diff};
pub use rules::{lint_file, lint_files, FileClass, FileInput, Finding, RULES};
pub use walk::{discover, lint_workspace, lint_workspace_with_stats, LintStats};

/// Renders findings as one JSON object (deterministic key order), for
/// `--json` mode and machine consumption in CI. With `stats`, appends
/// the size/shape numbers (files, functions, call edges) and per-phase
/// timings from the run.
#[must_use]
pub fn findings_to_json_with_stats(findings: &[Finding], stats: Option<&LintStats>) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"path\":{},\"line\":{},\"detail\":{}}}",
            json_str(f.rule),
            json_str(&f.path),
            f.line,
            json_str(&f.detail),
        ));
    }
    out.push_str(&format!("],\"total\":{}", findings.len()));
    if let Some(s) = stats {
        out.push_str(&format!(
            ",\"stats\":{{\"files\":{},\"functions\":{},\"call_edges\":{}",
            s.files, s.functions, s.call_edges
        ));
        out.push_str(",\"findings_by_rule\":{");
        for (i, (rule, n)) in s.findings_by_rule.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{n}", json_str(rule)));
        }
        out.push_str("},\"timing_ms\":{");
        for (i, (phase, ms)) in s.timing_ms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("{}:{ms:.3}", json_str(phase)));
        }
        out.push_str("}}");
    }
    out.push('}');
    out
}

/// [`findings_to_json_with_stats`] without the stats block.
#[must_use]
pub fn findings_to_json(findings: &[Finding]) -> String {
    findings_to_json_with_stats(findings, None)
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        let findings = vec![Finding {
            rule: "robustness/unwrap-in-lib",
            path: "a\"b".into(),
            line: 7,
            detail: "tab\there".into(),
        }];
        let j = findings_to_json(&findings);
        assert!(j.contains("a\\\"b"));
        assert!(j.contains("tab\\there"));
        assert!(j.ends_with("\"total\":1}"));
    }
}

//! `ppdl-lint` — the workspace invariant checker.
//!
//! PRs 1–4 built the reproduction's operational guarantees by hand:
//! bitwise-deterministic parallel reductions (PR 1), cache keys that
//! are pure functions of configuration (PR 2), a serving process that
//! turns every malformed input into a typed `layer/kind` wire error
//! instead of dying (PR 3), and telemetry that never perturbs compute
//! (PR 4). None of those properties are visible to `rustc` — one stray
//! `HashMap` iteration feeding a sum, one `std::thread::spawn` outside
//! the fixed-order reduction layer, one `unwrap()` on the serve path,
//! and the guarantee silently rots until a golden test flakes much
//! later.
//!
//! This crate makes the invariants machine-checked. It is std-only and
//! dependency-free (the same zero-dep discipline as the hand-rolled
//! JSON reader in `crates/service/src/json.rs`): a real lexer
//! ([`lexer`]) that skips strings, raw strings, char literals, and
//! nested block comments; named rules with stable IDs ([`rules`]);
//! explicit, auditable suppressions (inline
//! `// ppdl-lint: allow(rule-id) -- reason` comments); and a
//! shrink-only baseline ratchet ([`baseline`]) for grandfathered debt.
//!
//! The `ppdl-lint` binary drives it:
//!
//! ```text
//! ppdl-lint            # report all findings (informational)
//! ppdl-lint --deny     # CI mode: exit 1 on any non-baselined finding
//! ppdl-lint --json     # machine-readable findings
//! ppdl-lint --update-baseline   # record shrinkage in lint-baseline.txt
//! ```
//!
//! Rule IDs, their rationale, and the suppression policy are
//! documented in DESIGN.md §12.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod lexer;
pub mod rules;
pub mod walk;

pub use baseline::{count_findings, diff, Counts, Diff};
pub use rules::{lint_file, FileClass, FileInput, Finding, RULES};
pub use walk::{discover, lint_workspace};

/// Renders findings as one JSON object (deterministic key order), for
/// `--json` mode and machine consumption in CI.
#[must_use]
pub fn findings_to_json(findings: &[Finding]) -> String {
    let mut out = String::from("{\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"rule\":{},\"path\":{},\"line\":{},\"detail\":{}}}",
            json_str(f.rule),
            json_str(&f.path),
            f.line,
            json_str(&f.detail),
        ));
    }
    out.push_str(&format!("],\"total\":{}}}", findings.len()));
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escapes_specials() {
        let findings = vec![Finding {
            rule: "robustness/unwrap-in-lib",
            path: "a\"b".into(),
            line: 7,
            detail: "tab\there".into(),
        }];
        let j = findings_to_json(&findings);
        assert!(j.contains("a\\\"b"));
        assert!(j.contains("tab\\there"));
        assert!(j.ends_with("\"total\":1}"));
    }
}

//! The intra-workspace call graph and the reachability rules built on
//! it.
//!
//! Edges are resolved from each function body's token stream using the
//! owning file's `use` imports plus path syntax (`crate::`, `self::`,
//! `super::`, `Self::`, lib-qualified paths, and `.method(…)` calls
//! resolved through workspace `impl` blocks). Resolution is a
//! *may*-analysis: where the receiver type of a method call is
//! unknown, every workspace method of that name becomes a candidate.
//! Over-approximation only adds edges, which is the safe direction for
//! the two rules that consume the graph:
//!
//! * [`check_tainted_parallel`] — `determinism/tainted-parallel`: no
//!   function transitively reachable from a closure handed to the
//!   `ppdl_solver::parallel` entry points may draw from an RNG, read a
//!   wall clock, or touch `HashMap`/`HashSet`. File-local rules catch
//!   direct uses; this rule sees through helper functions.
//! * [`check_panic_reachable`] — `robustness/panic-reachable`:
//!   call-graph reachability from the serving surface (every public
//!   `ppdl-service` function) and the `solve*` public APIs to
//!   `unwrap`/`expect`/`panic!` in non-test library code.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lexer::{Tok, TokKind};
use crate::rules::{FileClass, Finding, PANIC_REACHABLE, TAINTED_PARALLEL};
use crate::symbols::{FileSem, Symbols};

/// The resolved call graph over [`Symbols`] function ids.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// Callee ids per caller id.
    pub callees: Vec<BTreeSet<usize>>,
    /// Caller ids per callee id (reverse edges, for taint).
    pub callers: Vec<BTreeSet<usize>>,
    /// Total resolved edges.
    pub edge_count: usize,
}

/// One extracted call site (before resolution).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Path segments; a lone segment is a bare call, `.m(…)` method
    /// calls carry the marker `"."` as first segment.
    pub path: Vec<String>,
    /// 1-based source line.
    pub line: u32,
}

/// Per-file import environment, with `crate`/`self`/`super` prefixes
/// normalized to lib-rooted absolute paths.
#[derive(Debug, Default)]
pub struct ImportEnv {
    /// Alias → absolute path segments.
    pub aliases: BTreeMap<String, Vec<String>>,
    /// Glob-imported path prefixes.
    pub globs: Vec<Vec<String>>,
}

impl ImportEnv {
    /// Builds the environment for one file.
    #[must_use]
    pub fn of(file: &FileSem) -> Self {
        let mut env = ImportEnv::default();
        for u in &file.parsed.uses {
            let abs = normalize_path(&u.path, &file.lib_name, &file.module);
            if u.alias == "*" {
                env.globs.push(abs);
            } else {
                env.aliases.insert(u.alias.clone(), abs);
            }
        }
        env
    }
}

/// Expands leading `crate`/`self`/`super` segments to a lib-rooted
/// absolute path.
fn normalize_path(path: &[String], lib_name: &str, module: &[String]) -> Vec<String> {
    let mut out: Vec<String>;
    let mut rest = path;
    match path.first().map(String::as_str) {
        Some("crate") => {
            out = vec![lib_name.to_string()];
            rest = &path[1..];
        }
        Some("self") => {
            out = vec![lib_name.to_string()];
            out.extend(module.iter().cloned());
            rest = &path[1..];
        }
        Some("super") => {
            out = vec![lib_name.to_string()];
            let mut m = module.to_vec();
            let mut i = 0;
            while path.get(i).is_some_and(|s| s == "super") {
                m.pop();
                i += 1;
            }
            out.extend(m);
            rest = &path[i..];
        }
        _ => out = Vec::new(),
    }
    out.extend(rest.iter().cloned());
    out
}

/// Extracts call sites from a body token range. `self_type` is the
/// enclosing impl type, used to ground `self.m(…)` / `Self::m(…)`.
#[must_use]
pub fn extract_calls(
    toks: &[Tok],
    range: (usize, usize),
    self_type: Option<&str>,
) -> Vec<CallSite> {
    let mut out = Vec::new();
    let (start, end) = range;
    let t = |k: usize| toks.get(k).map(|t| t.text.as_str());
    let is_ident = |k: usize| toks.get(k).is_some_and(|t| t.kind == TokKind::Ident);
    let mut j = start;
    while j < end.min(toks.len()) {
        if !is_ident(j) {
            j += 1;
            continue;
        }
        // `name(`, `name::<T>(`, `.name(`, `a::b::name(`.
        let mut call_paren = None;
        if t(j + 1) == Some("(") {
            call_paren = Some(j + 1);
        } else if t(j + 1) == Some("::") && t(j + 2) == Some("<") {
            // Turbofish: find the matching `>` then require `(`.
            let mut depth = 0i32;
            let mut k = j + 2;
            while k < end.min(toks.len()) {
                match t(k) {
                    Some("<") => depth += 1,
                    Some(">") => {
                        let arrow = matches!(t(k - 1), Some("-") | Some("="));
                        if !arrow {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                    }
                    Some(";") | Some("{") => break,
                    _ => {}
                }
                k += 1;
            }
            if t(k) == Some(">") && t(k + 1) == Some("(") {
                call_paren = Some(k + 1);
            }
        }
        let Some(_paren) = call_paren else {
            j += 1;
            continue;
        };
        let name = toks[j].text.clone();
        let line = toks[j].line;
        // Keywords that look like calls.
        if matches!(
            name.as_str(),
            "if" | "while" | "for" | "match" | "return" | "fn" | "move" | "loop" | "in" | "as"
        ) {
            j += 1;
            continue;
        }
        // Nested fn declaration, not a call.
        if j > start && t(j - 1) == Some("fn") {
            j += 1;
            continue;
        }
        if j > start && t(j - 1) == Some(".") {
            // Method call; ground a literal `self.` receiver.
            let path = if j >= 2 && t(j - 2) == Some("self") && self_type.is_some() {
                vec![
                    "<self>".to_string(),
                    self_type.unwrap_or_default().to_string(),
                    name,
                ]
            } else {
                vec![".".to_string(), name]
            };
            out.push(CallSite { path, line });
            j += 1;
            continue;
        }
        // Walk the `::` chain backwards.
        let mut k = j;
        while k >= start + 2 && t(k - 1) == Some("::") && is_ident(k - 2) {
            k -= 2;
        }
        let mut path: Vec<String> = (k..=j)
            .step_by(2)
            .filter_map(|p| toks.get(p).map(|t| t.text.clone()))
            .collect();
        if path.first().is_some_and(|s| s == "Self") {
            if let Some(st) = self_type {
                path[0] = st.to_string();
            }
        }
        out.push(CallSite { path, line });
        j += 1;
    }
    out
}

/// Resolves one call site to candidate fn ids.
#[must_use]
pub fn resolve_call(
    site: &CallSite,
    file: &FileSem,
    file_idx: usize,
    env: &ImportEnv,
    symbols: &Symbols,
) -> Vec<usize> {
    let segs = &site.path;
    if segs.is_empty() {
        return Vec::new();
    }
    // `.m(…)` with unknown receiver: every workspace method named `m`.
    if segs[0] == "." {
        return symbols.methods_named(&segs[1]).to_vec();
    }
    // `self.m(…)`: methods of the enclosing impl type, falling back to
    // name-only candidates (trait default methods, blanket impls).
    if segs[0] == "<self>" {
        let ids = symbols.methods_of(&segs[1], &segs[2]);
        if !ids.is_empty() {
            return ids.to_vec();
        }
        return symbols.methods_named(&segs[2]).to_vec();
    }
    if segs.len() == 1 {
        let name = &segs[0];
        // Same file first (any inline module), then same module in
        // crate, then imports, then glob imports.
        let local: Vec<usize> = symbols
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.file_idx == file_idx && f.name == *name && f.self_type.is_none())
            .map(|(id, _)| id)
            .collect();
        if !local.is_empty() {
            return local;
        }
        let mut q = vec![file.lib_name.clone()];
        q.extend(file.module.iter().cloned());
        q.push(name.clone());
        if let Some(id) = symbols.by_qualified(&q.join("::")) {
            return vec![id];
        }
        if let Some(abs) = env.aliases.get(name) {
            return symbols.resolve_absolute(abs);
        }
        for g in &env.globs {
            let mut p = g.clone();
            p.push(name.clone());
            let ids = symbols.resolve_absolute(&p);
            if !ids.is_empty() {
                return ids;
            }
        }
        // Crate-wide free-fn fallback (same-crate helper reached
        // through a re-export or path the parser didn't see).
        return symbols.free_in_crate(&file.lib_name, name).to_vec();
    }
    // Multi-segment: normalize and expand the head.
    let abs = normalize_path(segs, &file.lib_name, &file.module);
    let head = &abs[0];
    // Import alias head: `synth::run()` after `use ppdl_core::synth;`.
    if let Some(expansion) = env.aliases.get(head) {
        let mut p = expansion.clone();
        p.extend(abs[1..].iter().cloned());
        let ids = symbols.resolve_absolute(&p);
        if !ids.is_empty() {
            return ids;
        }
        // The alias may name a type: `Type::new()` with `use x::Type;`.
        if abs.len() == 2 && symbols.is_workspace_type(head) {
            return symbols.methods_of(head, &abs[1]).to_vec();
        }
        return Vec::new();
    }
    // Workspace type head: `CsrMatrix::from_triplets(…)`.
    if abs.len() == 2 && symbols.is_workspace_type(head) {
        return symbols.methods_of(head, &abs[1]).to_vec();
    }
    // Absolute lib-rooted path (includes normalized crate/self/super).
    let ids = symbols.resolve_absolute(&abs);
    if !ids.is_empty() {
        return ids;
    }
    // Module-relative path: `helpers::go()` for a sibling module.
    let mut p = vec![file.lib_name.clone()];
    p.extend(file.module.iter().cloned());
    p.extend(abs.iter().cloned());
    symbols.resolve_absolute(&p)
}

impl CallGraph {
    /// Builds the graph for all files.
    #[must_use]
    pub fn build(files: &[FileSem], symbols: &Symbols) -> Self {
        let n = symbols.fns.len();
        let mut g = CallGraph {
            callees: vec![BTreeSet::new(); n],
            callers: vec![BTreeSet::new(); n],
            edge_count: 0,
        };
        let envs: Vec<ImportEnv> = files.iter().map(ImportEnv::of).collect();
        for (id, sym) in symbols.fns.iter().enumerate() {
            let Some(body) = sym.body else { continue };
            let file = &files[sym.file_idx];
            for site in extract_calls(&file.toks, body, sym.self_type.as_deref()) {
                for callee in resolve_call(&site, file, sym.file_idx, &envs[sym.file_idx], symbols)
                {
                    if callee != id && g.callees[id].insert(callee) {
                        g.callers[callee].insert(id);
                        g.edge_count += 1;
                    }
                }
            }
        }
        g
    }
}

// ---------------------------------------------------------------------------
// determinism/tainted-parallel
// ---------------------------------------------------------------------------

/// What a function body does that is unsafe inside a parallel closure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum TaintKind {
    /// Draws from an RNG (`gen_range`, `next_u64`, `shuffle`, …).
    Rng,
    /// Reads a wall clock (`Instant::now`, `SystemTime::now`).
    Clock,
    /// Touches `HashMap`/`HashSet` (iteration order leaks).
    HashIter,
}

impl TaintKind {
    const ALL: [TaintKind; 3] = [TaintKind::Rng, TaintKind::Clock, TaintKind::HashIter];

    fn index(self) -> usize {
        match self {
            TaintKind::Rng => 0,
            TaintKind::Clock => 1,
            TaintKind::HashIter => 2,
        }
    }

    fn label(self) -> &'static str {
        match self {
            TaintKind::Rng => "an RNG draw",
            TaintKind::Clock => "a wall-clock read",
            TaintKind::HashIter => "HashMap/HashSet",
        }
    }
}

/// RNG draw method/fn names from the vendored `rand` surface.
const RNG_DRAWS: &[&str] = &[
    "gen_range",
    "gen_bool",
    "next_u32",
    "next_u64",
    "shuffle",
    "sample_from",
];

/// The `ppdl_solver::parallel` entry points whose closures must stay
/// deterministic.
pub const PAR_ENTRIES: &[&str] = &[
    "par_map_vec",
    "par_chunks_mut",
    "par_row_chunks_mut",
    "par_reduce",
];

/// Scans a token range for primitive taint sources. Returns
/// (kind, line, short description) per kind found (first hit wins).
fn scan_taints(toks: &[Tok], range: (usize, usize)) -> BTreeMap<TaintKind, (u32, String)> {
    let mut out = BTreeMap::new();
    let (start, end) = range;
    let t = |k: usize| toks.get(k).map(|t| t.text.as_str());
    for (j, tok) in toks
        .iter()
        .enumerate()
        .take(end.min(toks.len()))
        .skip(start)
    {
        if tok.kind != TokKind::Ident {
            continue;
        }
        let name = tok.text.as_str();
        if RNG_DRAWS.contains(&name) && t(j + 1) == Some("(") {
            out.entry(TaintKind::Rng)
                .or_insert((tok.line, format!("{name}()")));
        }
        if (name == "Instant" || name == "SystemTime")
            && t(j + 1) == Some("::")
            && t(j + 2) == Some("now")
        {
            out.entry(TaintKind::Clock)
                .or_insert((tok.line, format!("{name}::now()")));
        }
        if name == "HashMap" || name == "HashSet" {
            out.entry(TaintKind::HashIter)
                .or_insert((tok.line, name.to_string()));
        }
    }
    out
}

/// One entry per fn: `Some((description, via))` when tainted, where
/// `via` is the callee the taint arrived through (`None` for
/// primitive sources).
type TaintSlots = Vec<Option<(String, Option<usize>)>>;

/// Per-kind taint state over all fns, with witness links for chain
/// reconstruction.
pub struct Taint {
    /// Indexed `state[kind.index()][fn]`.
    state: [TaintSlots; 3],
}

impl Taint {
    /// Computes the fixpoint: a fn is tainted if its body has a
    /// primitive source or any callee is tainted. Functions in the
    /// blessed telemetry/reporting crates (`obs`, `bench`) are never
    /// sources and do not propagate.
    #[must_use]
    pub fn compute(files: &[FileSem], symbols: &Symbols, graph: &CallGraph) -> Self {
        let n = symbols.fns.len();
        let exempt: Vec<bool> = symbols
            .fns
            .iter()
            .map(|f| matches!(f.crate_dir.as_str(), "obs" | "bench"))
            .collect();
        let mut state: [TaintSlots; 3] = [vec![None; n], vec![None; n], vec![None; n]];
        let mut queue: VecDeque<(TaintKind, usize)> = VecDeque::new();
        for (id, sym) in symbols.fns.iter().enumerate() {
            if exempt[id] {
                continue;
            }
            let Some(body) = sym.body else { continue };
            for (kind, (_, desc)) in scan_taints(&files[sym.file_idx].toks, body) {
                state[kind.index()][id] = Some((desc, None));
                queue.push_back((kind, id));
            }
        }
        while let Some((kind, id)) = queue.pop_front() {
            for &caller in &graph.callers[id] {
                if exempt[caller] {
                    continue;
                }
                let slot = &mut state[kind.index()][caller];
                if slot.is_none() {
                    *slot = Some((String::new(), Some(id)));
                    queue.push_back((kind, caller));
                }
            }
        }
        Taint { state }
    }

    /// Whether `id` is tainted with `kind`.
    #[must_use]
    pub fn is_tainted(&self, kind: TaintKind, id: usize) -> bool {
        self.state[kind.index()][id].is_some()
    }

    /// Reconstructs a `helper_a → helper_b → sink` witness chain.
    #[must_use]
    pub fn chain(&self, kind: TaintKind, id: usize, symbols: &Symbols) -> String {
        let mut parts = Vec::new();
        let mut cur = Some(id);
        let mut hops = 0;
        while let Some(c) = cur {
            if hops >= 6 {
                parts.push("…".to_string());
                break;
            }
            parts.push(symbols.fns[c].qualified());
            match &self.state[kind.index()][c] {
                Some((desc, via)) => {
                    if via.is_none() && !desc.is_empty() {
                        parts.push(desc.clone());
                    }
                    cur = *via;
                }
                None => break,
            }
            hops += 1;
        }
        parts.join(" → ")
    }
}

/// `determinism/tainted-parallel`: at each `parallel::*` call site,
/// nothing reachable from the argument region (the closures and any
/// function references passed) may draw RNG, read a clock, or touch a
/// hash collection.
pub fn check_tainted_parallel(
    files: &[FileSem],
    symbols: &Symbols,
    taint: &Taint,
    out: &mut Vec<Finding>,
) {
    let envs: Vec<ImportEnv> = files.iter().map(ImportEnv::of).collect();
    for (file_idx, file) in files.iter().enumerate() {
        // The parallel layer itself hosts the entry points.
        if file.path.ends_with("solver/src/parallel.rs") {
            continue;
        }
        for item in &file.parsed.fns {
            let Some((bstart, bend)) = item.body else {
                continue;
            };
            let toks = &file.toks;
            let mut j = bstart;
            while j < bend.min(toks.len()) {
                let is_entry = toks[j].kind == TokKind::Ident
                    && PAR_ENTRIES.contains(&toks[j].text.as_str())
                    && toks.get(j + 1).is_some_and(|t| t.text == "(");
                if !is_entry {
                    j += 1;
                    continue;
                }
                let site_line = toks[j].line;
                let entry_name = toks[j].text.clone();
                // Argument region: balanced parens.
                let mut depth = 0i32;
                let mut k = j + 1;
                while k < bend.min(toks.len()) {
                    match toks[k].text.as_str() {
                        "(" => depth += 1,
                        ")" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    k += 1;
                }
                let region = (j + 2, k);
                let mut hits: BTreeMap<TaintKind, String> = BTreeMap::new();
                // Direct sources inside the region.
                for (kind, (_, desc)) in scan_taints(toks, region) {
                    hits.entry(kind)
                        .or_insert_with(|| format!("closure body: {desc}"));
                }
                // Calls inside the region.
                let mut callees = BTreeSet::new();
                for site in extract_calls(toks, region, item.self_type.as_deref()) {
                    if site.path.len() == 1 && PAR_ENTRIES.contains(&site.path[0].as_str()) {
                        continue;
                    }
                    callees.extend(resolve_call(
                        &site,
                        file,
                        file_idx,
                        &envs[file_idx],
                        symbols,
                    ));
                }
                // Function references passed by name (`par_map_vec(&v, helper)`).
                for p in region.0..region.1.min(toks.len()) {
                    if toks[p].kind != TokKind::Ident {
                        continue;
                    }
                    let followed_by_call = toks.get(p + 1).is_some_and(|t| t.text == "(");
                    let preceded = p > 0
                        && matches!(toks[p - 1].text.as_str(), "." | "::" | "fn" | "let" | "mut");
                    if followed_by_call || preceded {
                        continue;
                    }
                    let site = CallSite {
                        path: vec![toks[p].text.clone()],
                        line: toks[p].line,
                    };
                    // Only free fns resolve here; bare idents that are
                    // locals simply fail to resolve.
                    for id in resolve_call(&site, file, file_idx, &envs[file_idx], symbols) {
                        if symbols.fns[id].self_type.is_none() {
                            callees.insert(id);
                        }
                    }
                }
                for kind in TaintKind::ALL {
                    if hits.contains_key(&kind) {
                        continue;
                    }
                    if let Some(&id) = callees.iter().find(|&&id| taint.is_tainted(kind, id)) {
                        hits.insert(kind, taint.chain(kind, id, symbols));
                    }
                }
                for (kind, chain) in hits {
                    out.push(Finding {
                        rule: TAINTED_PARALLEL,
                        path: file.path.clone(),
                        line: site_line,
                        detail: format!("{entry_name} closure reaches {}: {chain}", kind.label()),
                    });
                }
                j = k.max(j + 1);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// robustness/panic-reachable
// ---------------------------------------------------------------------------

/// Panic sites (line, description) in one body.
fn scan_panics(toks: &[Tok], range: (usize, usize), arithmetic_index: bool) -> Vec<(u32, String)> {
    let mut out = Vec::new();
    let (start, end) = range;
    let t = |k: usize| toks.get(k).map(|t| t.text.as_str());
    for j in start..end.min(toks.len()) {
        if toks[j].kind != TokKind::Ident {
            continue;
        }
        let name = toks[j].text.as_str();
        match name {
            "unwrap" | "expect" if t(j.wrapping_sub(1)) == Some(".") && t(j + 1) == Some("(") => {
                out.push((toks[j].line, format!(".{name}()")));
            }
            "panic" | "unreachable" | "todo" if t(j + 1) == Some("!") => {
                out.push((toks[j].line, format!("{name}!")));
            }
            _ if arithmetic_index
                && t(j + 1) == Some("[")
                && toks[j].text.chars().next().is_some_and(char::is_lowercase) =>
            {
                // Slice subscript with arithmetic inside: offset math
                // on wire-facing buffers.
                let mut depth = 0i32;
                let mut arith = false;
                let mut k = j + 1;
                while k < end.min(toks.len()) {
                    match t(k) {
                        Some("[") => depth += 1,
                        Some("]") => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        Some("+") | Some("-") | Some("*") => arith = true,
                        _ => {}
                    }
                    k += 1;
                }
                if arith {
                    out.push((toks[j].line, format!("{}[…arith…]", toks[j].text)));
                }
            }
            _ => {}
        }
    }
    out
}

/// `robustness/panic-reachable`: every `unwrap`/`expect`/`panic!` (and
/// arithmetic slice indexing in the `service` crate) in library code
/// that the serving surface or a `solve*` public API can reach.
pub fn check_panic_reachable(
    files: &[FileSem],
    symbols: &Symbols,
    graph: &CallGraph,
    out: &mut Vec<Finding>,
) {
    // Entry points: public service-crate lib fns; public solve* APIs.
    let mut queue: VecDeque<usize> = VecDeque::new();
    let n = symbols.fns.len();
    let mut entry_of: Vec<Option<usize>> = vec![None; n];
    let mut parent: Vec<Option<usize>> = vec![None; n];
    for (id, sym) in symbols.fns.iter().enumerate() {
        let class = files[sym.file_idx].class;
        let is_entry = sym.is_pub
            && class == FileClass::Lib
            && (sym.crate_dir == "service" || sym.name.starts_with("solve"));
        if is_entry {
            entry_of[id] = Some(id);
            queue.push_back(id);
        }
    }
    while let Some(id) = queue.pop_front() {
        for &callee in &graph.callees[id] {
            if entry_of[callee].is_none() {
                entry_of[callee] = entry_of[id];
                parent[callee] = Some(id);
                queue.push_back(callee);
            }
        }
    }
    for (id, sym) in symbols.fns.iter().enumerate() {
        let Some(entry) = entry_of[id] else { continue };
        let file = &files[sym.file_idx];
        if file.class != FileClass::Lib || matches!(sym.crate_dir.as_str(), "bench") {
            continue;
        }
        let Some(body) = sym.body else { continue };
        let arith_idx = sym.crate_dir == "service";
        for (line, desc) in scan_panics(&file.toks, body, arith_idx) {
            // Reconstruct entry → … → here (shortest-path parents).
            let mut chain = vec![sym.qualified()];
            let mut cur = parent[id];
            let mut hops = 0;
            while let Some(c) = cur {
                if hops >= 5 {
                    chain.push("…".into());
                    break;
                }
                chain.push(symbols.fns[c].qualified());
                cur = parent[c];
                hops += 1;
            }
            chain.reverse();
            let via = if id == entry {
                String::new()
            } else {
                format!(" via {}", chain.join(" → "))
            };
            out.push(Finding {
                rule: PANIC_REACHABLE,
                path: file.path.clone(),
                line,
                detail: format!(
                    "{desc} reachable from {}{via}",
                    symbols.fns[entry].qualified()
                ),
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, strip_test_code};
    use crate::parse::parse_items;
    use crate::symbols::module_path_of;

    fn file(path: &str, crate_dir: &str, lib: &str, src: &str) -> FileSem {
        let toks = strip_test_code(&lex(src));
        let parsed = parse_items(&toks);
        FileSem {
            path: path.to_string(),
            crate_dir: crate_dir.to_string(),
            lib_name: lib.to_string(),
            class: FileClass::Lib,
            module: module_path_of(path),
            toks,
            parsed,
        }
    }

    fn build(files: &[FileSem]) -> (Symbols, CallGraph) {
        let symbols = Symbols::build(files);
        let graph = CallGraph::build(files, &symbols);
        (symbols, graph)
    }

    fn edge(symbols: &Symbols, graph: &CallGraph, from: &str, to: &str) -> bool {
        let f = symbols
            .by_qualified(from)
            .unwrap_or_else(|| panic!("no {from}"));
        let t = symbols
            .by_qualified(to)
            .unwrap_or_else(|| panic!("no {to}"));
        graph.callees[f].contains(&t)
    }

    #[test]
    fn bare_and_path_calls_resolve_same_file_and_module() {
        let files = vec![file(
            "crates/a/src/lib.rs",
            "a",
            "lib_a",
            "fn helper() {}\npub fn entry() { helper(); crate::helper(); self::helper(); }",
        )];
        let (s, g) = build(&files);
        assert!(edge(&s, &g, "lib_a::entry", "lib_a::helper"));
        let entry = s.by_qualified("lib_a::entry").unwrap();
        assert_eq!(g.callees[entry].len(), 1, "all three spellings dedupe");
    }

    #[test]
    fn aliased_imports_resolve_cross_crate() {
        let files = vec![
            file("crates/a/src/util.rs", "a", "lib_a", "pub fn work() {}"),
            file(
                "crates/b/src/lib.rs",
                "b",
                "lib_b",
                "use lib_a::util::work as w;\nuse lib_a::util as u;\n\
                 pub fn go() { w(); u::work(); lib_a::util::work(); }",
            ),
        ];
        let (s, g) = build(&files);
        assert!(edge(&s, &g, "lib_b::go", "lib_a::util::work"));
        let go = s.by_qualified("lib_b::go").unwrap();
        assert_eq!(g.callees[go].len(), 1);
    }

    #[test]
    fn method_calls_resolve_through_impl() {
        let files = vec![
            file(
                "crates/a/src/grid.rs",
                "a",
                "lib_a",
                "pub struct Grid;\nimpl Grid {\n  pub fn solve(&self) { self.inner(); }\n  fn inner(&self) {}\n}",
            ),
            file(
                "crates/b/src/lib.rs",
                "b",
                "lib_b",
                "use lib_a::grid::Grid;\npub fn drive(g: &Grid) { g.solve(); Grid::solve(g); }",
            ),
        ];
        let (s, g) = build(&files);
        assert!(edge(&s, &g, "lib_b::drive", "lib_a::grid::Grid::solve"));
        assert!(edge(
            &s,
            &g,
            "lib_a::grid::Grid::solve",
            "lib_a::grid::Grid::inner"
        ));
    }

    #[test]
    fn super_paths_and_globs_resolve() {
        let files = vec![
            file(
                "crates/a/src/deep/inner.rs",
                "a",
                "lib_a",
                "pub fn leaf() { super::mid(); }",
            ),
            file("crates/a/src/deep/mod.rs", "a", "lib_a", "pub fn mid() {}"),
            file(
                "crates/b/src/lib.rs",
                "b",
                "lib_b",
                "use lib_a::deep::*;\npub fn go() { mid(); }",
            ),
        ];
        let (s, g) = build(&files);
        assert!(edge(&s, &g, "lib_a::deep::inner::leaf", "lib_a::deep::mid"));
        assert!(edge(&s, &g, "lib_b::go", "lib_a::deep::mid"));
    }

    #[test]
    fn taint_propagates_through_helper_fns() {
        let files = vec![file(
            "crates/a/src/lib.rs",
            "a",
            "lib_a",
            "fn draw(rng: &mut R) -> f64 { rng.gen_range(0.0..1.0) }\n\
             fn helper(rng: &mut R) -> f64 { draw(rng) }\n\
             pub fn outer() { par_map_vec(&v, |_, x| helper(x)); }\n\
             pub fn clean() { par_map_vec(&v, |_, x| x + 1.0); }",
        )];
        let (s, g) = build(&files);
        let taint = Taint::compute(&files, &s, &g);
        let helper = s.by_qualified("lib_a::helper").unwrap();
        assert!(taint.is_tainted(TaintKind::Rng, helper), "one-hop taint");
        let mut findings = Vec::new();
        check_tainted_parallel(&files, &s, &taint, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].detail.contains("RNG"), "{findings:?}");
        assert!(findings[0].detail.contains("gen_range"), "{findings:?}");
    }

    #[test]
    fn panic_reachable_from_solve_entry() {
        let files = vec![file(
            "crates/solver/src/x.rs",
            "solver",
            "ppdl_solver",
            "pub fn solve_grid(v: Option<u8>) { step(v); }\n\
             fn step(v: Option<u8>) { v.unwrap(); }\n\
             fn unreached(v: Option<u8>) { v.unwrap(); }",
        )];
        let (s, g) = build(&files);
        let mut findings = Vec::new();
        check_panic_reachable(&files, &s, &g, &mut findings);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(findings[0].detail.contains("solve_grid"), "{findings:?}");
        assert!(findings[0].detail.contains("via"), "{findings:?}");
    }
}

//! A hand-rolled Rust lexer, just deep enough for invariant linting.
//!
//! The linter must never report `unwrap()` inside a string literal or a
//! doc comment, and must never lose its place inside `r#"…"#` raw
//! strings or nested `/* /* */ */` block comments — so the lexer is a
//! real tokenizer, not a regex scan. It deliberately stays shallow
//! everywhere precision is not needed (number suffixes, raw
//! identifiers): rule matching only ever compares identifier text and
//! single punctuation tokens.
//!
//! Comments are emitted as ordinary tokens: the suppression collector
//! reads `// ppdl-lint: allow(…)` markers out of them, and the rule
//! engine drops them before pattern matching.

/// What a token is, as far as the linter cares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword (`unwrap`, `fn`, `HashMap`, …).
    Ident,
    /// One punctuation token. Multi-character operators are split into
    /// single characters except `::`, which rules match as a unit.
    Punct,
    /// A string, raw string, byte string, char, or number literal. The
    /// text is *not* preserved — literal contents must never trigger a
    /// rule, so the token carries a placeholder.
    Literal,
    /// A `//…` line comment or `/*…*/` block comment, text preserved
    /// verbatim (without trailing newline) for suppression parsing.
    Comment,
    /// A lifetime or loop label (`'a`, `'static`, `'outer`).
    Lifetime,
}

/// One lexed token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    /// Token class.
    pub kind: TokKind,
    /// Token text (placeholder `"<lit>"` for literals).
    pub text: String,
    /// 1-based line the token starts on.
    pub line: u32,
}

impl Tok {
    fn new(kind: TokKind, text: impl Into<String>, line: u32) -> Self {
        Tok {
            kind,
            text: text.into(),
            line,
        }
    }
}

/// Lexes `source` into tokens, comments included.
///
/// The lexer is total: any byte sequence produces *some* token stream
/// (unknown characters become `Punct`), so a syntactically broken file
/// degrades to weaker linting instead of a crash.
#[must_use]
pub fn lex(source: &str) -> Vec<Tok> {
    let b: Vec<char> = source.chars().collect();
    let mut toks = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => i += 1,
            '/' if b.get(i + 1) == Some(&'/') => {
                let start = i;
                while i < b.len() && b[i] != '\n' {
                    i += 1;
                }
                toks.push(Tok::new(
                    TokKind::Comment,
                    b[start..i].iter().collect::<String>(),
                    line,
                ));
            }
            '/' if b.get(i + 1) == Some(&'*') => {
                let start = i;
                let start_line = line;
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == '/' && b.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if b[i] == '*' && b.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        if b[i] == '\n' {
                            line += 1;
                        }
                        i += 1;
                    }
                }
                toks.push(Tok::new(
                    TokKind::Comment,
                    b[start..i].iter().collect::<String>(),
                    start_line,
                ));
            }
            '"' => {
                i = skip_plain_string(&b, i, &mut line);
                toks.push(Tok::new(TokKind::Literal, "<lit>", line));
            }
            '\'' => {
                // Lifetime/label vs char literal: a lifetime is `'`
                // followed by an identifier char with no closing quote
                // right after it (`'a'` is a char, `'a` a lifetime).
                let next = b.get(i + 1).copied();
                let is_lifetime = match next {
                    Some(n) if n == '_' || n.is_alphabetic() => b.get(i + 2) != Some(&'\''),
                    _ => false,
                };
                if is_lifetime {
                    let start = i;
                    i += 1;
                    while i < b.len() && (b[i] == '_' || b[i].is_alphanumeric()) {
                        i += 1;
                    }
                    toks.push(Tok::new(
                        TokKind::Lifetime,
                        b[start..i].iter().collect::<String>(),
                        line,
                    ));
                } else {
                    // Char literal: skip escapes, stop at closing quote.
                    i += 1;
                    while i < b.len() {
                        match b[i] {
                            '\\' => i += 2,
                            '\'' => {
                                i += 1;
                                break;
                            }
                            '\n' => {
                                // Unterminated char on this line; bail
                                // so a stray quote can't eat the file.
                                break;
                            }
                            _ => i += 1,
                        }
                    }
                    toks.push(Tok::new(TokKind::Literal, "<lit>", line));
                }
            }
            c if c.is_ascii_digit() => {
                i = skip_number(&b, i);
                toks.push(Tok::new(TokKind::Literal, "<lit>", line));
            }
            c if c == '_' || c.is_alphabetic() => {
                let start = i;
                while i < b.len() && (b[i] == '_' || b[i].is_alphanumeric()) {
                    i += 1;
                }
                let ident: String = b[start..i].iter().collect();
                // String-literal prefixes: r"…", r#"…"#, b"…", br#"…"#.
                if matches!(ident.as_str(), "r" | "b" | "br") {
                    if let Some(end) = try_raw_or_byte_string(&b, i, &ident, &mut line) {
                        i = end;
                        toks.push(Tok::new(TokKind::Literal, "<lit>", line));
                        continue;
                    }
                }
                toks.push(Tok::new(TokKind::Ident, ident, line));
            }
            ':' if b.get(i + 1) == Some(&':') => {
                toks.push(Tok::new(TokKind::Punct, "::", line));
                i += 2;
            }
            _ => {
                toks.push(Tok::new(TokKind::Punct, c.to_string(), line));
                i += 1;
            }
        }
    }
    toks
}

/// Skips a `"…"` string starting at the opening quote; returns the
/// index one past the closing quote and counts embedded newlines.
fn skip_plain_string(b: &[char], mut i: usize, line: &mut u32) -> usize {
    i += 1;
    while i < b.len() {
        match b[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// If position `i` (just past a `r`/`b`/`br` prefix ident) starts a
/// raw/byte string, skips it and returns the end index.
fn try_raw_or_byte_string(b: &[char], i: usize, prefix: &str, line: &mut u32) -> Option<usize> {
    match prefix {
        // b"…" — an ordinary escaped string with a byte prefix.
        "b" if b.get(i) == Some(&'"') => Some(skip_plain_string(b, i, line)),
        // r#"…"#, br##"…"## — raw: no escapes, delimited by quote plus
        // the same number of hashes.
        "r" | "br" => {
            let mut hashes = 0usize;
            while b.get(i + hashes) == Some(&'#') {
                hashes += 1;
            }
            if b.get(i + hashes) != Some(&'"') {
                return None; // raw identifier like r#type, or plain ident
            }
            let mut j = i + hashes + 1;
            while j < b.len() {
                if b[j] == '\n' {
                    *line += 1;
                    j += 1;
                } else if b[j] == '"' && (1..=hashes).all(|k| b.get(j + k) == Some(&'#')) {
                    return Some(j + 1 + hashes);
                } else {
                    j += 1;
                }
            }
            Some(j)
        }
        _ => None,
    }
}

/// Skips a number literal: digits, `0x…`, `1_000`, `0.006`, `1e999`,
/// suffixes like `f64`. A `.` is part of the number only when followed
/// by a digit, so `0..n` ranges lex as number, `.`, `.`, ident.
fn skip_number(b: &[char], mut i: usize) -> usize {
    while i < b.len() {
        let c = b[i];
        if c == '_' || c.is_ascii_alphanumeric() {
            // `1e-9` / `1E+30`: a sign directly after an exponent `e`
            // belongs to the literal.
            if (c == 'e' || c == 'E')
                && matches!(b.get(i + 1), Some('+') | Some('-'))
                && matches!(b.get(i + 2), Some(d) if d.is_ascii_digit())
            {
                i += 2;
            }
            i += 1;
        } else if c == '.' && matches!(b.get(i + 1), Some(d) if d.is_ascii_digit()) {
            i += 1;
        } else {
            break;
        }
    }
    i
}

/// Removes test-only code from a token stream: items annotated
/// `#[test]`, `#[cfg(test)]` (including `mod tests { … }` bodies) and
/// `#[cfg(any(test, …))]` disappear along with their attributes.
///
/// Detection is lexical: an attribute whose tokens mention `test`
/// outside a `not(…)` marks the *next item* as test-only; the item is
/// skipped through its balanced `{…}` body (or trailing `;`). This is
/// exactly the granularity the rules need — production rules must not
/// fire on test scaffolding, and test scaffolding may not hide
/// production code (a `#[cfg(not(test))]` item is production and is
/// kept).
#[must_use]
pub fn strip_test_code(toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].kind == TokKind::Punct && toks[i].text == "#" {
            let (end, is_test) = scan_attribute(toks, i);
            if is_test {
                i = skip_item(toks, end);
                continue;
            }
            // Keep the attribute itself.
            out.extend_from_slice(&toks[i..end]);
            i = end;
            continue;
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

/// Scans an attribute starting at `#`; returns (index one past the
/// closing `]`, whether it marks test-only code).
fn scan_attribute(toks: &[Tok], start: usize) -> (usize, bool) {
    let mut i = start + 1;
    // Inner attribute `#![…]`.
    if toks.get(i).is_some_and(|t| t.text == "!") {
        i += 1;
    }
    if !toks.get(i).is_some_and(|t| t.text == "[") {
        return (start + 1, false);
    }
    let mut depth = 0usize;
    let mut is_test = false;
    let mut not_depth: Option<usize> = None;
    while i < toks.len() {
        let t = &toks[i];
        match (t.kind, t.text.as_str()) {
            (TokKind::Punct, "[") | (TokKind::Punct, "(") => depth += 1,
            (TokKind::Punct, "]") | (TokKind::Punct, ")") => {
                depth -= 1;
                if let Some(nd) = not_depth {
                    if depth <= nd {
                        not_depth = None;
                    }
                }
                if depth == 0 {
                    return (i + 1, is_test);
                }
            }
            (TokKind::Ident, "not") => not_depth = not_depth.or(Some(depth)),
            (TokKind::Ident, "test") if not_depth.is_none() => is_test = true,
            _ => {}
        }
        i += 1;
    }
    (i, is_test)
}

/// Skips one item starting at `start`: any further attributes, then
/// tokens up to and including a balanced `{…}` body or a `;` at
/// nesting depth zero.
fn skip_item(toks: &[Tok], mut start: usize) -> usize {
    // Consume stacked attributes on the same item.
    while toks.get(start).is_some_and(|t| t.text == "#") {
        let (end, _) = scan_attribute(toks, start);
        start = end;
    }
    let mut i = start;
    let mut depth = 0usize;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "{" | "(" | "[" => depth += 1,
            "}" | ")" | "]" => {
                depth = depth.saturating_sub(1);
                if depth == 0 && toks[i].text == "}" {
                    return i + 1;
                }
            }
            ";" if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn raw_string_containing_unwrap_is_a_literal() {
        let src = r##"let s = r#"x.unwrap() // not code"#; s.len()"##;
        let ids = idents(src);
        assert!(ids.contains(&"len".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()), "{ids:?}");
    }

    #[test]
    fn line_comment_marker_inside_string_is_not_a_comment() {
        let toks = lex(r#"let url = "https://example.com"; after()"#);
        assert!(toks.iter().all(|t| t.kind != TokKind::Comment));
        assert!(toks.iter().any(|t| t.text == "after"));
    }

    #[test]
    fn nested_block_comments_close_correctly() {
        let toks = lex("/* outer /* inner */ still comment */ visible()");
        let comments: Vec<&Tok> = toks.iter().filter(|t| t.kind == TokKind::Comment).collect();
        assert_eq!(comments.len(), 1);
        assert!(comments[0].text.contains("inner"));
        assert!(toks.iter().any(|t| t.text == "visible"));
    }

    #[test]
    fn unterminated_block_comment_swallows_rest() {
        let toks = lex("/* never closed\ncode()");
        assert_eq!(toks.len(), 1);
        assert_eq!(toks[0].kind, TokKind::Comment);
    }

    #[test]
    fn char_literals_and_lifetimes_distinguished() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; }");
        let lifetimes: Vec<&Tok> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        let lits = toks.iter().filter(|t| t.kind == TokKind::Literal).count();
        assert_eq!(lits, 2); // 'x' and '\''
    }

    #[test]
    fn escaped_quote_in_string_does_not_end_it() {
        let toks = lex(r#"let s = "he said \"unwrap()\""; done()"#);
        assert!(toks.iter().any(|t| t.text == "done"));
        assert!(!toks.iter().any(|t| t.text == "unwrap"));
    }

    #[test]
    fn numbers_do_not_eat_range_dots() {
        let ids = idents("for i in 0..m { g(i); } let x = 1e-9 + 0.5_f64;");
        assert!(ids.contains(&"m".to_string()));
        assert!(ids.contains(&"g".to_string()));
    }

    #[test]
    fn byte_and_raw_byte_strings_skipped() {
        let toks = lex(r###"let a = b"unwrap()"; let c = br#"panic!"#; ok()"###);
        assert!(toks.iter().any(|t| t.text == "ok"));
        assert!(!toks.iter().any(|t| t.text == "unwrap" || t.text == "panic"));
    }

    #[test]
    fn lines_tracked_through_multiline_strings_and_comments() {
        let src = "let a = \"x\ny\";\n/* c\nc */\nmarker()";
        let toks = lex(src);
        let marker = toks.iter().find(|t| t.text == "marker").unwrap();
        assert_eq!(marker.line, 5);
    }

    #[test]
    fn cfg_test_module_is_stripped() {
        let src = "fn keep() {}\n#[cfg(test)]\nmod tests {\n  fn gone() { x.unwrap(); }\n}\nfn also_kept() {}";
        let kept = strip_test_code(&lex(src));
        let ids: Vec<&str> = kept.iter().map(|t| t.text.as_str()).collect();
        assert!(ids.contains(&"keep"));
        assert!(ids.contains(&"also_kept"));
        assert!(!ids.contains(&"gone"));
        assert!(!ids.contains(&"unwrap"));
    }

    #[test]
    fn test_attribute_fn_is_stripped() {
        let src = "#[test]\nfn a_test() { v.unwrap(); }\nfn prod() {}";
        let kept = strip_test_code(&lex(src));
        assert!(kept.iter().any(|t| t.text == "prod"));
        assert!(!kept.iter().any(|t| t.text == "unwrap"));
    }

    #[test]
    fn cfg_not_test_is_kept() {
        let src = "#[cfg(not(test))]\nfn prod() { x.unwrap(); }";
        let kept = strip_test_code(&lex(src));
        assert!(kept.iter().any(|t| t.text == "unwrap"));
    }

    #[test]
    fn cfg_any_with_test_is_stripped() {
        let src = "#[cfg(any(test, feature = \"x\"))]\nfn helper() { x.unwrap(); }\nfn prod() {}";
        let kept = strip_test_code(&lex(src));
        assert!(!kept.iter().any(|t| t.text == "unwrap"));
        assert!(kept.iter().any(|t| t.text == "prod"));
    }

    #[test]
    fn braces_inside_strings_do_not_unbalance_item_skip() {
        let src =
            "#[cfg(test)]\nmod tests { fn f() { let s = \"}}}\"; s.unwrap(); } }\nfn prod() {}";
        let kept = strip_test_code(&lex(src));
        assert!(!kept.iter().any(|t| t.text == "unwrap"));
        assert!(kept.iter().any(|t| t.text == "prod"));
    }

    #[test]
    fn double_colon_is_one_token() {
        let toks = lex("std::thread::spawn");
        let punct: Vec<&str> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Punct)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(punct, vec!["::", "::"]);
    }
}

//! A recursive-descent *item* parser over the lexer's token stream.
//!
//! The semantic rules need to know which functions exist, what each
//! file imports, and which impl block a method lives in — nothing
//! more. So this parser recognises item structure only: `use` trees,
//! `mod` declarations, `impl`/`trait` headers, and `fn` signatures.
//! Function *bodies* are never parsed into an expression tree; each is
//! recorded as a token index range and handed back to the call-graph
//! builder ([`crate::callgraph`]) as a flat stream. Like the lexer,
//! the parser is total: unrecognised tokens are skipped, so a
//! syntactically creative file degrades to weaker analysis instead of
//! a crash.

use crate::lexer::{Tok, TokKind};

/// One binding introduced by a `use` declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseImport {
    /// Full path segments (`["ppdl_solver", "parallel", "par_map_vec"]`).
    pub path: Vec<String>,
    /// The name the binding is visible as in this file (the last
    /// segment, or the `as` alias; `"*"` for glob imports).
    pub alias: String,
    /// 1-based source line of the `use`.
    pub line: u32,
}

/// One function item (free fn, or method in an `impl`/`trait` block).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// The `impl`/`trait` self type the fn is a method of, if any.
    pub self_type: Option<String>,
    /// Inline `mod` path within the file (usually empty; file-level
    /// module structure comes from the walk).
    pub module: Vec<String>,
    /// Whether the fn is `pub` (any visibility qualifier counts).
    pub is_pub: bool,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Token index range of the body *contents* (exclusive of the
    /// braces) within the parsed stream; `None` for bodyless trait
    /// methods.
    pub body: Option<(usize, usize)>,
}

/// Everything the item parser extracts from one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    /// All `use` bindings, flattened (groups expanded).
    pub uses: Vec<UseImport>,
    /// All function items, in source order.
    pub fns: Vec<FnItem>,
}

/// Parses the item structure of a (test-stripped) token stream.
#[must_use]
pub fn parse_items(toks: &[Tok]) -> ParsedFile {
    let sig: Vec<(usize, &Tok)> = toks
        .iter()
        .enumerate()
        .filter(|(_, t)| !matches!(t.kind, TokKind::Comment))
        .collect();
    let mut out = ParsedFile::default();
    let mut p = Parser {
        toks,
        sig: &sig,
        i: 0,
    };
    p.items(&mut out, &mut Vec::new(), None, usize::MAX);
    out
}

struct Parser<'a> {
    /// The full token stream (body ranges index into this).
    toks: &'a [Tok],
    /// (index-into-toks, token) with comments removed.
    sig: &'a [(usize, &'a Tok)],
    /// Cursor into `sig`.
    i: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&'a Tok> {
        self.sig.get(self.i).map(|(_, t)| *t)
    }

    fn peek_at(&self, k: usize) -> Option<&'a Tok> {
        self.sig.get(self.i + k).map(|(_, t)| *t)
    }

    fn bump(&mut self) -> Option<&'a Tok> {
        let t = self.peek();
        self.i += 1;
        t
    }

    fn eat(&mut self, text: &str) -> bool {
        if self.peek().is_some_and(|t| t.text == text) {
            self.i += 1;
            true
        } else {
            false
        }
    }

    /// Parses items until `stop` sig-index (exclusive) or EOF.
    fn items(
        &mut self,
        out: &mut ParsedFile,
        module: &mut Vec<String>,
        self_type: Option<&str>,
        stop: usize,
    ) {
        let mut is_pub = false;
        while self.i < stop.min(self.sig.len()) {
            let Some(t) = self.peek() else { break };
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "#") => {
                    self.skip_attribute();
                    continue; // attributes don't reset pending visibility
                }
                (TokKind::Ident, "pub") => {
                    self.i += 1;
                    // pub(crate) / pub(in path)
                    if self.peek().is_some_and(|t| t.text == "(") {
                        self.skip_balanced("(", ")");
                    }
                    is_pub = true;
                    continue;
                }
                (TokKind::Ident, "use") => {
                    self.i += 1;
                    self.parse_use(out, t.line);
                }
                (TokKind::Ident, "mod") => {
                    self.i += 1;
                    let name = match self.peek() {
                        Some(n) if n.kind == TokKind::Ident => n.text.clone(),
                        _ => {
                            self.i += 1;
                            is_pub = false;
                            continue;
                        }
                    };
                    self.i += 1;
                    if self.eat("{") {
                        let end = self.matching_close("{", "}");
                        module.push(name);
                        self.items(out, module, None, end);
                        module.pop();
                        self.i = end + 1; // past the `}`
                    } else {
                        self.eat(";");
                    }
                }
                (TokKind::Ident, "impl") => {
                    self.i += 1;
                    let ty = self.parse_impl_header();
                    if self.peek().is_some_and(|t| t.text == "{") {
                        self.i += 1;
                        let end = self.matching_close("{", "}");
                        self.items(out, module, ty.as_deref(), end);
                        self.i = end + 1;
                    }
                }
                (TokKind::Ident, "trait") => {
                    self.i += 1;
                    let ty = match self.peek() {
                        Some(n) if n.kind == TokKind::Ident => Some(n.text.clone()),
                        _ => None,
                    };
                    // Skip to the trait body `{` (supertraits, generics,
                    // where clauses may intervene).
                    while let Some(t) = self.peek() {
                        if t.text == "{" || t.text == ";" {
                            break;
                        }
                        self.i += 1;
                    }
                    if self.eat("{") {
                        let end = self.matching_close_from(self.i, "{", "}");
                        self.items(out, module, ty.as_deref(), end);
                        self.i = end + 1;
                    }
                }
                (TokKind::Ident, "fn") => {
                    let line = t.line;
                    self.i += 1;
                    if let Some(f) = self.parse_fn(line, is_pub, module, self_type) {
                        out.fns.push(f);
                    }
                }
                // Qualifiers that may precede `fn`.
                (TokKind::Ident, "const" | "async" | "unsafe" | "extern" | "default") => {
                    self.i += 1;
                    if t.text == "extern" && self.peek().is_some_and(|t| t.kind == TokKind::Literal)
                    {
                        self.i += 1; // extern "C"
                    }
                    if t.text == "const" && self.peek().is_some_and(|t| t.kind == TokKind::Ident) {
                        // `const NAME: Ty = …;` (not `const fn`): skip the item.
                        if self.peek().is_some_and(|t| t.text != "fn") {
                            self.skip_to_semicolon();
                            is_pub = false;
                        }
                    }
                    continue;
                }
                (TokKind::Ident, "static" | "type") => {
                    self.i += 1;
                    self.skip_to_semicolon();
                }
                (TokKind::Ident, "struct" | "enum" | "union") => {
                    self.i += 1;
                    // Skip to `;` (tuple/unit struct) or balanced `{…}`.
                    while let Some(t) = self.peek() {
                        match t.text.as_str() {
                            ";" => {
                                self.i += 1;
                                break;
                            }
                            "{" => {
                                self.i += 1;
                                let end = self.matching_close("{", "}");
                                self.i = end + 1;
                                break;
                            }
                            "(" => {
                                self.i += 1;
                                let end = self.matching_close("(", ")");
                                self.i = end + 1;
                            }
                            _ => self.i += 1,
                        }
                    }
                }
                (TokKind::Ident, "macro_rules") => {
                    self.i += 1;
                    while let Some(t) = self.peek() {
                        if t.text == "{" {
                            self.i += 1;
                            let end = self.matching_close("{", "}");
                            self.i = end + 1;
                            break;
                        }
                        if t.text == ";" {
                            self.i += 1;
                            break;
                        }
                        self.i += 1;
                    }
                }
                _ => {
                    self.i += 1;
                }
            }
            is_pub = false;
        }
    }

    /// Parses one `fn` after the keyword; returns the item and leaves
    /// the cursor past the body (or `;`).
    fn parse_fn(
        &mut self,
        line: u32,
        is_pub: bool,
        module: &[String],
        self_type: Option<&str>,
    ) -> Option<FnItem> {
        let name = match self.peek() {
            Some(n) if n.kind == TokKind::Ident => n.text.clone(),
            _ => return None,
        };
        self.i += 1;
        if self.peek().is_some_and(|t| t.text == "<") {
            self.skip_angles();
        }
        if !self.eat("(") {
            return None;
        }
        let end = self.matching_close("(", ")");
        self.i = end + 1;
        // Return type / where clause: scan to the body `{` or `;` at
        // bracket depth zero.
        let mut depth = 0i32;
        let body = loop {
            let Some(t) = self.peek() else { break None };
            match t.text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => {
                    self.i += 1;
                    let close = self.matching_close("{", "}");
                    let body_start = self.sig.get(self.i).map_or(self.toks.len(), |(j, _)| *j);
                    let body_end = self.sig.get(close).map_or(self.toks.len(), |(j, _)| *j);
                    self.i = close + 1;
                    break Some((body_start, body_end));
                }
                ";" if depth == 0 => {
                    self.i += 1;
                    break None;
                }
                _ => {}
            }
            self.i += 1;
        };
        Some(FnItem {
            name,
            self_type: self_type.map(str::to_string),
            module: module.to_vec(),
            is_pub,
            line,
            body,
        })
    }

    /// Parses an `impl` header (cursor just past `impl`); returns the
    /// self-type name and leaves the cursor at the body `{` (or
    /// wherever scanning stopped).
    fn parse_impl_header(&mut self) -> Option<String> {
        if self.peek().is_some_and(|t| t.text == "<") {
            self.skip_angles();
        }
        // Collect idents at angle depth 0 until `{`/`where`; if a
        // top-level `for` appears, restart (the self type follows it).
        let mut last_ident: Option<String> = None;
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            match (t.kind, t.text.as_str()) {
                (TokKind::Punct, "<") => {
                    angle += 1;
                    self.i += 1;
                }
                (TokKind::Punct, ">") if angle > 0 => {
                    angle -= 1;
                    self.i += 1;
                }
                (TokKind::Punct, "{") if angle == 0 => break,
                (TokKind::Ident, "where") if angle == 0 => break,
                (TokKind::Ident, "for") if angle == 0 => {
                    last_ident = None;
                    self.i += 1;
                }
                (TokKind::Ident, name) if angle == 0 => {
                    if !matches!(name, "dyn" | "crate" | "self" | "super") {
                        last_ident = Some(name.to_string());
                    }
                    self.i += 1;
                }
                (TokKind::Punct, "-") if self.peek_at(1).is_some_and(|n| n.text == ">") => {
                    self.i += 2; // `->` in an Fn() bound: not an angle close
                }
                _ => self.i += 1,
            }
        }
        // Skip a trailing where clause to the `{`.
        while let Some(t) = self.peek() {
            if t.text == "{" {
                break;
            }
            self.i += 1;
        }
        last_ident
    }

    /// Parses a use tree after the `use` keyword, flattening groups.
    fn parse_use(&mut self, out: &mut ParsedFile, line: u32) {
        let mut prefix = Vec::new();
        self.parse_use_tree(&mut prefix, out, line);
        self.eat(";");
    }

    fn parse_use_tree(&mut self, prefix: &mut Vec<String>, out: &mut ParsedFile, line: u32) {
        loop {
            match self.peek() {
                Some(t) if t.kind == TokKind::Ident => {
                    let seg = t.text.clone();
                    self.i += 1;
                    if self.peek().is_some_and(|t| t.text == "::") {
                        self.i += 1;
                        prefix.push(seg);
                        continue;
                    }
                    // Leaf: `seg`, `seg as alias`, or end of tree.
                    let mut alias = seg.clone();
                    if self.peek().is_some_and(|t| t.text == "as") {
                        self.i += 1;
                        if let Some(a) = self.peek() {
                            if a.kind == TokKind::Ident {
                                alias = a.text.clone();
                                self.i += 1;
                            }
                        }
                    }
                    let mut path = prefix.clone();
                    if seg != "self" {
                        path.push(seg);
                    } else if alias == "self" {
                        // `use a::b::{self}` binds `b`.
                        alias = prefix.last().cloned().unwrap_or(alias);
                    }
                    out.uses.push(UseImport { path, alias, line });
                    return;
                }
                Some(t) if t.text == "*" => {
                    self.i += 1;
                    out.uses.push(UseImport {
                        path: prefix.clone(),
                        alias: "*".into(),
                        line,
                    });
                    return;
                }
                Some(t) if t.text == "{" => {
                    self.i += 1;
                    loop {
                        if self.peek().is_none() || self.eat("}") {
                            return;
                        }
                        let mut sub = prefix.clone();
                        self.parse_use_tree(&mut sub, out, line);
                        if !self.eat(",") {
                            self.eat("}");
                            return;
                        }
                    }
                }
                _ => return,
            }
        }
    }

    /// Skips a balanced `<…>` group (cursor on the opening `<`),
    /// treating `->` and `=>` arrows as non-closers.
    fn skip_angles(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => {
                    let arrow = self.i > 0
                        && self
                            .sig
                            .get(self.i - 1)
                            .is_some_and(|(_, p)| p.text == "-" || p.text == "=");
                    if !arrow {
                        depth -= 1;
                        if depth == 0 {
                            self.i += 1;
                            return;
                        }
                    }
                }
                ";" | "{" => return, // malformed; bail without consuming
                _ => {}
            }
            self.i += 1;
        }
    }

    /// With the cursor just past an opening delimiter, returns the
    /// sig-index of its matching closer (or EOF).
    fn matching_close(&self, open: &str, close: &str) -> usize {
        self.matching_close_from(self.i, open, close)
    }

    fn matching_close_from(&self, from: usize, open: &str, close: &str) -> usize {
        let mut depth = 1i32;
        let mut j = from;
        while j < self.sig.len() {
            let t = self.sig[j].1;
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    return j;
                }
            }
            j += 1;
        }
        j
    }

    fn skip_balanced(&mut self, open: &str, close: &str) {
        if self.eat(open) {
            let end = self.matching_close(open, close);
            self.i = (end + 1).min(self.sig.len());
        }
    }

    /// Skips to just past the next `;` at delimiter depth zero.
    fn skip_to_semicolon(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.bump() {
            match t.text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => depth -= 1,
                ";" if depth <= 0 => return,
                _ => {}
            }
        }
    }

    /// Skips an attribute `#[…]` / `#![…]` (cursor on `#`).
    fn skip_attribute(&mut self) {
        self.i += 1; // `#`
        self.eat("!");
        self.skip_balanced("[", "]");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_items(&lex(src))
    }

    #[test]
    fn free_fns_and_visibility() {
        let p = parse("pub fn a() {}\nfn b(x: usize) -> usize { x }\npub(crate) fn c() {}");
        let names: Vec<(&str, bool)> = p.fns.iter().map(|f| (f.name.as_str(), f.is_pub)).collect();
        assert_eq!(names, vec![("a", true), ("b", false), ("c", true)]);
        assert!(p.fns.iter().all(|f| f.self_type.is_none()));
        assert!(p.fns.iter().all(|f| f.body.is_some() == (f.name != "zzz")));
    }

    #[test]
    fn impl_methods_carry_self_type() {
        let p = parse(
            "struct Grid;\nimpl Grid { pub fn solve(&self) {} fn helper() {} }\n\
             impl Display for Grid { fn fmt(&self) {} }",
        );
        let methods: Vec<(&str, Option<&str>)> = p
            .fns
            .iter()
            .map(|f| (f.name.as_str(), f.self_type.as_deref()))
            .collect();
        assert_eq!(
            methods,
            vec![
                ("solve", Some("Grid")),
                ("helper", Some("Grid")),
                ("fmt", Some("Grid")),
            ]
        );
    }

    #[test]
    fn generic_impl_headers_resolve_type() {
        let p = parse("impl<T: Clone> Stack<T> { fn push(&mut self, t: T) {} }");
        assert_eq!(p.fns[0].self_type.as_deref(), Some("Stack"));
        let p = parse("impl<F: Fn(usize) -> f64> Runner<F> { fn go(&self) {} }");
        assert_eq!(p.fns[0].self_type.as_deref(), Some("Runner"));
        let p = parse("impl Stage for TrainStage { fn execute(&self) {} }");
        assert_eq!(p.fns[0].self_type.as_deref(), Some("TrainStage"));
    }

    #[test]
    fn use_trees_flatten_with_aliases_and_globs() {
        let p = parse(
            "use ppdl_solver::parallel::par_map_vec;\n\
             use ppdl_core::{predict, synth as synthesis, pipeline::{Stage, self}};\n\
             use ppdl_obs::*;",
        );
        let got: Vec<(String, String)> = p
            .uses
            .iter()
            .map(|u| (u.path.join("::"), u.alias.clone()))
            .collect();
        assert_eq!(
            got,
            vec![
                (
                    "ppdl_solver::parallel::par_map_vec".into(),
                    "par_map_vec".into()
                ),
                ("ppdl_core::predict".into(), "predict".into()),
                ("ppdl_core::synth".into(), "synthesis".into()),
                ("ppdl_core::pipeline::Stage".into(), "Stage".into()),
                ("ppdl_core::pipeline".into(), "pipeline".into()),
                ("ppdl_obs".into(), "*".into()),
            ]
        );
    }

    #[test]
    fn inline_modules_track_path_and_bodies_are_ranges() {
        let p = parse("mod inner { pub fn deep() { helper(); } }\nfn outer() {}");
        let deep = p.fns.iter().find(|f| f.name == "deep").unwrap();
        assert_eq!(deep.module, vec!["inner".to_string()]);
        let (a, b) = deep.body.unwrap();
        assert!(b > a, "non-empty body range");
        let outer = p.fns.iter().find(|f| f.name == "outer").unwrap();
        assert!(outer.module.is_empty());
    }

    #[test]
    fn trait_default_methods_and_bodyless_sigs() {
        let p = parse("trait Kernel { fn required(&self); fn provided(&self) -> usize { 4 } }");
        let req = p.fns.iter().find(|f| f.name == "required").unwrap();
        assert!(req.body.is_none());
        assert_eq!(req.self_type.as_deref(), Some("Kernel"));
        let prov = p.fns.iter().find(|f| f.name == "provided").unwrap();
        assert!(prov.body.is_some());
    }

    #[test]
    fn consts_statics_structs_do_not_confuse_items() {
        let p = parse(
            "const LIMIT: usize = 8;\nstatic NAME: &str = \"x\";\n\
             pub struct S { pub field: usize }\nenum E { A, B(usize) }\n\
             pub const fn cfn() -> usize { LIMIT }\nfn after() {}",
        );
        let names: Vec<&str> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["cfn", "after"]);
        assert!(p.fns.iter().find(|f| f.name == "cfn").unwrap().is_pub);
    }

    #[test]
    fn generic_fn_signatures_parse() {
        let p = parse(
            "pub fn par_map<T, R, F>(items: &[T], f: F) -> Vec<R>\n\
             where F: Fn(usize, &T) -> R + Sync { Vec::new() }",
        );
        assert_eq!(p.fns[0].name, "par_map");
        assert!(p.fns[0].body.is_some());
    }
}

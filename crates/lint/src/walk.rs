//! Workspace discovery: which crates exist, what they may depend on,
//! and which `.rs` files are linted as what.
//!
//! Discovery is driven by the workspace's own manifests, not a
//! hand-pinned list: the root `Cargo.toml` names the member crates
//! (glob patterns like `crates/*` are expanded), each member's
//! `Cargo.toml` contributes its package name and workspace-local
//! dependencies (consumed by the `arch/layering` rule), and module
//! files are found by following `mod foo;` declarations from each
//! crate's target roots. A directory sweep is unioned in as a
//! backstop, so an orphan `.rs` file that nobody `mod`-declares is
//! still linted rather than silently skipped.
//!
//! Scope policy (deliberate, not incidental):
//!
//! * Member crates under `vendor/` hold third-party stand-ins we do
//!   not own — excluded.
//! * `tests/`, `benches/`, and `examples/` trees are test/demo
//!   scaffolding — excluded, same as `#[cfg(test)]` modules.
//! * `target/` and hidden directories — excluded.
//! * `src/bin/**` and `main.rs` are [`FileClass::Bin`], which relaxes
//!   the library-only rules.

use std::collections::BTreeSet;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::{FileClass, FileInput, Finding};

/// One discovered source file.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Library or binary source.
    pub class: FileClass,
    /// Crate directory name (`core`, `solver`, …; `root` for `src/`).
    pub crate_name: String,
    /// Whether the file is a crate root (`src/lib.rs`).
    pub is_crate_root: bool,
    /// Absolute path for reading.
    pub abs_path: PathBuf,
}

/// One workspace member crate, as read from its `Cargo.toml`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CrateInfo {
    /// Directory name (`core`, `solver`, …; `root` for the top-level
    /// package). This is the name findings and the baseline use.
    pub dir_name: String,
    /// Cargo package name (`ppdl-core`, …).
    pub pkg_name: String,
    /// The lib target name `use` paths refer to (`ppdl_core`, …—
    /// package name with `-` mapped to `_`).
    pub lib_name: String,
    /// Workspace-relative directory (`crates/core`, `.` for root).
    pub rel_dir: String,
    /// Workspace-local dependencies as package names, sorted.
    pub deps: Vec<String>,
    /// 1-based `Cargo.toml` line of each dependency, parallel to
    /// `deps` (for `arch/layering` findings that point at the
    /// manifest).
    pub dep_lines: Vec<u32>,
}

/// Everything discovery learns about the workspace.
#[derive(Debug, Clone)]
pub struct WorkspaceInfo {
    /// Member crates (vendor members excluded), sorted by `dir_name`.
    pub crates: Vec<CrateInfo>,
    /// Every linted source file, sorted by path.
    pub files: Vec<SourceFile>,
}

impl WorkspaceInfo {
    /// The crate record for a directory name, if present.
    #[must_use]
    pub fn crate_by_dir(&self, dir_name: &str) -> Option<&CrateInfo> {
        self.crates.iter().find(|c| c.dir_name == dir_name)
    }

    /// Maps a lib target name (`ppdl_core`) back to its crate.
    #[must_use]
    pub fn crate_by_lib(&self, lib_name: &str) -> Option<&CrateInfo> {
        self.crates.iter().find(|c| c.lib_name == lib_name)
    }
}

/// Discovers the workspace under `root`: crates from the root
/// `Cargo.toml` members list, files from `mod` declarations plus a
/// directory sweep.
pub fn discover_workspace(root: &Path) -> io::Result<WorkspaceInfo> {
    let mut crates = Vec::new();
    let manifest = fs::read_to_string(root.join("Cargo.toml")).unwrap_or_default();

    // The root package itself (if the root manifest has a [package]).
    if toml_section(&manifest, "package").is_some() {
        crates.push(read_crate(root, ".", "root", &manifest));
    }

    // Member crates, expanding `dir/*` globs; vendored stand-ins are
    // third-party code and out of lint scope.
    let mut member_dirs: BTreeSet<String> = BTreeSet::new();
    for m in workspace_members(&manifest) {
        if m.starts_with("vendor/") || m == "vendor" {
            continue;
        }
        if let Some(prefix) = m.strip_suffix("/*") {
            let dir = root.join(prefix);
            if let Ok(rd) = fs::read_dir(&dir) {
                for e in rd.filter_map(|e| e.ok()) {
                    let p = e.path();
                    if p.is_dir() && p.join("Cargo.toml").is_file() {
                        if let Some(name) = p.file_name().and_then(|n| n.to_str()) {
                            member_dirs.insert(format!("{prefix}/{name}"));
                        }
                    }
                }
            }
        } else if root.join(&m).join("Cargo.toml").is_file() {
            member_dirs.insert(m);
        }
    }
    for rel_dir in member_dirs {
        let crate_manifest = fs::read_to_string(root.join(&rel_dir).join("Cargo.toml"))?;
        let dir_name = rel_dir
            .rsplit('/')
            .next()
            .unwrap_or(rel_dir.as_str())
            .to_string();
        crates.push(read_crate(root, &rel_dir, &dir_name, &crate_manifest));
    }
    crates.sort_by(|a, b| a.dir_name.cmp(&b.dir_name));

    // Files: follow `mod` declarations from each crate's target roots,
    // then union a directory sweep so nothing hides unmodded.
    let mut files: BTreeSet<SourceFile> = BTreeSet::new();
    for c in &crates {
        let src = if c.rel_dir == "." {
            root.join("src")
        } else {
            root.join(&c.rel_dir).join("src")
        };
        let rel_src = if c.rel_dir == "." {
            "src".to_string()
        } else {
            format!("{}/src", c.rel_dir)
        };
        follow_targets(&src, &rel_src, &c.dir_name, &mut files);
        collect_src_tree(&src, &c.dir_name, &rel_src, &mut files)?;
    }
    Ok(WorkspaceInfo {
        crates,
        files: files.into_iter().collect(),
    })
}

/// Enumerates every linted source file under `root`, sorted by path so
/// output and baselines are reproducible.
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    Ok(discover_workspace(root)?.files)
}

/// Reads one crate's identity and workspace-local deps from its
/// manifest text.
fn read_crate(_root: &Path, rel_dir: &str, dir_name: &str, manifest: &str) -> CrateInfo {
    let pkg_name = toml_section(manifest, "package")
        .and_then(|s| toml_string_value(s, "name"))
        .unwrap_or_else(|| dir_name.to_string());
    let (deps, dep_lines) = manifest_deps(manifest);
    CrateInfo {
        dir_name: dir_name.to_string(),
        pkg_name: pkg_name.clone(),
        lib_name: pkg_name.replace('-', "_"),
        rel_dir: rel_dir.to_string(),
        deps,
        dep_lines,
    }
}

/// Extracts `[workspace] members = [...]` entries from manifest text.
fn workspace_members(manifest: &str) -> Vec<String> {
    let Some(ws) = toml_section(manifest, "workspace") else {
        return Vec::new();
    };
    let Some(start) = ws.find("members") else {
        return Vec::new();
    };
    let Some(open) = ws[start..].find('[') else {
        return Vec::new();
    };
    let after = &ws[start + open + 1..];
    let Some(close) = after.find(']') else {
        return Vec::new();
    };
    after[..close]
        .split(',')
        .map(|s| s.trim().trim_matches('"').to_string())
        .filter(|s| !s.is_empty())
        .collect()
}

/// The body of a `[section]` (up to the next `[header]` line).
fn toml_section<'a>(manifest: &'a str, name: &str) -> Option<&'a str> {
    let header = format!("[{name}]");
    let mut offset = 0usize;
    for line in manifest.lines() {
        if line.trim() == header {
            let start = offset + line.len();
            let rest = &manifest[start..];
            let end = rest
                .lines()
                .scan(0usize, |pos, l| {
                    let here = *pos;
                    *pos += l.len() + 1;
                    Some((here, l))
                })
                .find(|(_, l)| l.trim_start().starts_with('[') && !l.trim_start().starts_with("[["))
                .map_or(rest.len(), |(p, _)| p);
            return Some(&rest[..end]);
        }
        offset += line.len() + 1;
    }
    None
}

/// A `key = "value"` string entry inside a section body.
fn toml_string_value(section: &str, key: &str) -> Option<String> {
    for line in section.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix(key) {
            let rest = rest.trim_start();
            if let Some(v) = rest.strip_prefix('=') {
                return Some(v.trim().trim_matches('"').to_string());
            }
        }
    }
    None
}

/// Dependency package names (with manifest line numbers) from
/// `[dependencies]`. Dotted forms (`ppdl-core.workspace = true`) and
/// table forms (`ppdl-core = { path = ... }`) both count; the
/// `arch/layering` rule later filters to workspace-local names.
fn manifest_deps(manifest: &str) -> (Vec<String>, Vec<u32>) {
    let mut deps = Vec::new();
    let mut lines = Vec::new();
    let mut in_deps = false;
    for (i, raw) in manifest.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let name = line
            .split(['=', '.'])
            .next()
            .map(str::trim)
            .unwrap_or_default();
        if !name.is_empty() {
            deps.push(name.to_string());
            lines.push(i as u32 + 1);
        }
    }
    (deps, lines)
}

/// Follows `mod` declarations from each target root (`lib.rs`,
/// `main.rs`, `bin/*.rs`) so files get accurate crate-root/bin
/// classification even when the directory sweep would misread them.
fn follow_targets(src: &Path, rel_src: &str, crate_name: &str, out: &mut BTreeSet<SourceFile>) {
    let lib = src.join("lib.rs");
    if lib.is_file() {
        out.insert(SourceFile {
            rel_path: format!("{rel_src}/lib.rs"),
            class: FileClass::Lib,
            crate_name: crate_name.to_string(),
            is_crate_root: true,
            abs_path: lib.clone(),
        });
        follow_mods(&lib, src, rel_src, crate_name, FileClass::Lib, out);
    }
    let main = src.join("main.rs");
    if main.is_file() {
        out.insert(SourceFile {
            rel_path: format!("{rel_src}/main.rs"),
            class: FileClass::Bin,
            crate_name: crate_name.to_string(),
            is_crate_root: false,
            abs_path: main.clone(),
        });
        follow_mods(&main, src, rel_src, crate_name, FileClass::Bin, out);
    }
    if let Ok(rd) = fs::read_dir(src.join("bin")) {
        for e in rd.filter_map(|e| e.ok()) {
            let p = e.path();
            let Some(name) = p.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            if p.is_file() && name.ends_with(".rs") {
                out.insert(SourceFile {
                    rel_path: format!("{rel_src}/bin/{name}"),
                    class: FileClass::Bin,
                    crate_name: crate_name.to_string(),
                    is_crate_root: false,
                    abs_path: p,
                });
            }
        }
    }
}

/// Resolves `mod foo;` declarations in `file` to `foo.rs` /
/// `foo/mod.rs` siblings, recursively.
fn follow_mods(
    file: &Path,
    dir: &Path,
    rel_dir: &str,
    crate_name: &str,
    class: FileClass,
    out: &mut BTreeSet<SourceFile>,
) {
    let Ok(source) = fs::read_to_string(file) else {
        return;
    };
    for name in mod_declarations(&source) {
        let flat = dir.join(format!("{name}.rs"));
        let nested = dir.join(&name).join("mod.rs");
        let (path, rel, subdir, sub_rel) = if flat.is_file() {
            (
                flat,
                format!("{rel_dir}/{name}.rs"),
                dir.join(&name),
                format!("{rel_dir}/{name}"),
            )
        } else if nested.is_file() {
            (
                nested,
                format!("{rel_dir}/{name}/mod.rs"),
                dir.join(&name),
                format!("{rel_dir}/{name}"),
            )
        } else {
            continue;
        };
        let inserted = out.insert(SourceFile {
            rel_path: rel,
            class,
            crate_name: crate_name.to_string(),
            is_crate_root: false,
            abs_path: path.clone(),
        });
        if inserted {
            follow_mods(&path, &subdir, &sub_rel, crate_name, class, out);
        }
    }
}

/// File-level `mod name;` declarations in a source text (lexed, so a
/// `mod` keyword inside a string or comment does not count).
fn mod_declarations(source: &str) -> Vec<String> {
    use crate::lexer::{lex, TokKind};
    let toks = lex(source);
    let mut mods = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if t.kind == TokKind::Ident && t.text == "mod" {
            if let (Some(name), Some(semi)) = (toks.get(i + 1), toks.get(i + 2)) {
                if name.kind == TokKind::Ident && semi.text == ";" {
                    mods.push(name.text.clone());
                }
            }
        }
    }
    mods
}

fn collect_src_tree(
    src: &Path,
    crate_name: &str,
    rel_prefix: &str,
    out: &mut BTreeSet<SourceFile>,
) -> io::Result<()> {
    if !src.is_dir() {
        return Ok(());
    }
    collect_dir(src, crate_name, rel_prefix, false, out)
}

fn collect_dir(
    dir: &Path,
    crate_name: &str,
    rel_prefix: &str,
    in_bin: bool,
    out: &mut BTreeSet<SourceFile>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with('.') {
            continue;
        }
        let rel = format!("{rel_prefix}/{name}");
        if path.is_dir() {
            collect_dir(&path, crate_name, &rel, in_bin || name == "bin", out)?;
        } else if name.ends_with(".rs") {
            let is_bin = in_bin || name == "main.rs";
            let candidate = SourceFile {
                rel_path: rel,
                class: if is_bin {
                    FileClass::Bin
                } else {
                    FileClass::Lib
                },
                crate_name: crate_name.to_string(),
                is_crate_root: !is_bin && name == "lib.rs" && !rel_prefix.contains("/src/"),
                abs_path: path,
            };
            // The mod-following pass may already hold this file with
            // a more accurate classification; the sweep only fills
            // gaps (BTreeSet equality includes class, so check by
            // path).
            if !out.iter().any(|f| f.rel_path == candidate.rel_path) {
                out.insert(candidate);
            }
        }
    }
    Ok(())
}

/// Discovers and lints the whole workspace under `root`, including the
/// workspace-wide semantic rules (symbol graph, call-graph
/// reachability, crate layering).
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(lint_workspace_with_stats(root)?.0)
}

/// Accumulated size/shape numbers from one workspace lint run,
/// reported in `--json` output.
#[derive(Debug, Default, Clone)]
pub struct LintStats {
    /// Files linted.
    pub files: usize,
    /// Functions in the symbol table.
    pub functions: usize,
    /// Resolved intra-workspace call edges.
    pub call_edges: usize,
    /// Per-rule finding counts (rule id → count), zero-count rules
    /// omitted.
    pub findings_by_rule: std::collections::BTreeMap<String, usize>,
    /// Per-phase wall time in milliseconds (`lex+parse`, `file-rules`,
    /// `graph-build`, and one entry per graph rule).
    pub timing_ms: std::collections::BTreeMap<String, f64>,
}

/// [`lint_workspace`], also returning [`LintStats`] for `--json`.
pub fn lint_workspace_with_stats(root: &Path) -> io::Result<(Vec<Finding>, LintStats)> {
    let ws = discover_workspace(root)?;
    let mut inputs = Vec::new();
    let mut sources = Vec::new();
    for file in &ws.files {
        sources.push(fs::read_to_string(&file.abs_path)?);
    }
    for (file, source) in ws.files.iter().zip(&sources) {
        inputs.push(FileInput {
            path: &file.rel_path,
            class: file.class,
            crate_name: &file.crate_name,
            is_crate_root: file.is_crate_root,
            source,
        });
    }
    let layering = crate::arch::load_layering(root);
    let (findings, stats) = crate::rules::lint_files(&inputs, &ws, layering.as_ref());
    Ok((findings, stats))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The linter applied to its own workspace must find the real
    /// crates purely from manifests + `mod` declarations, and classify
    /// bins as bins.
    #[test]
    fn discovers_own_workspace() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let ws = discover_workspace(&root).unwrap();
        let files = &ws.files;
        assert!(files
            .iter()
            .any(|f| f.rel_path == "crates/lint/src/lib.rs" && f.is_crate_root));
        assert!(
            files
                .iter()
                .any(|f| f.rel_path == "crates/lint/src/bin/ppdl-lint.rs"
                    && f.class == FileClass::Bin)
        );
        assert!(files
            .iter()
            .any(|f| f.rel_path == "src/lib.rs" && f.crate_name == "root"));
        // Crate metadata comes from the manifests, not a pinned list.
        let core = ws.crate_by_dir("core").expect("core crate");
        assert_eq!(core.pkg_name, "ppdl-core");
        assert_eq!(core.lib_name, "ppdl_core");
        assert!(core.deps.iter().any(|d| d == "ppdl-solver"));
        assert!(ws.crate_by_lib("ppdl_service").is_some());
        // Exclusions hold.
        assert!(files.iter().all(|f| !f.rel_path.starts_with("vendor/")));
        assert!(files.iter().all(|f| !f.rel_path.contains("/tests/")));
        assert!(files.iter().all(|f| !f.rel_path.contains("/benches/")));
    }

    /// Every `.rs` file under each crate's `src/` is discovered — the
    /// mod-following pass plus the sweep must never lose a module, so
    /// no hand-pinned module list is needed.
    #[test]
    fn every_src_file_is_discovered() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let ws = discover_workspace(&root).unwrap();
        for c in &ws.crates {
            let src = if c.rel_dir == "." {
                root.join("src")
            } else {
                root.join(&c.rel_dir).join("src")
            };
            let mut expected = BTreeSet::new();
            walk_all_rs(&src, &mut expected);
            for path in expected {
                assert!(
                    ws.files.iter().any(|f| f.abs_path == path),
                    "walk missed {path:?}"
                );
            }
        }
    }

    fn walk_all_rs(dir: &Path, out: &mut BTreeSet<PathBuf>) {
        let Ok(rd) = fs::read_dir(dir) else { return };
        for e in rd.filter_map(|e| e.ok()) {
            let p = e.path();
            if p.is_dir() {
                walk_all_rs(&p, out);
            } else if p.extension().is_some_and(|x| x == "rs") {
                out.insert(p);
            }
        }
    }

    /// Nested module files under src/ are Lib, not crate roots.
    #[test]
    fn nested_files_are_not_crate_roots() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = discover(&root).unwrap();
        let nested = files
            .iter()
            .find(|f| f.rel_path == "crates/core/src/pipeline/mod.rs")
            .expect("pipeline module present");
        assert_eq!(nested.class, FileClass::Lib);
        assert!(!nested.is_crate_root);
    }

    /// A brand-new crate in a fixture workspace is picked up from its
    /// `Cargo.toml` membership alone — no lint code changes needed.
    #[test]
    fn new_fixture_crate_is_auto_discovered() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/discovery");
        let ws = discover_workspace(&root).unwrap();
        let newcomer = ws.crate_by_dir("newcomer").expect("newcomer crate found");
        assert_eq!(newcomer.pkg_name, "fixture-newcomer");
        assert_eq!(newcomer.lib_name, "fixture_newcomer");
        assert!(ws
            .files
            .iter()
            .any(|f| f.rel_path == "crates/newcomer/src/lib.rs" && f.is_crate_root));
        // A module reached only via `mod helper;` is discovered too.
        assert!(ws
            .files
            .iter()
            .any(|f| f.rel_path == "crates/newcomer/src/helper.rs" && f.class == FileClass::Lib));
    }
}

//! Workspace file discovery: which `.rs` files are linted, and as what.
//!
//! Scope is deliberate, not incidental:
//!
//! * `crates/*/src/**` and the root `src/**` are production code — all
//!   rules apply (`src/bin/**` files are [`FileClass::Bin`], which
//!   relaxes the library-only rules).
//! * `tests/`, `benches/`, and `examples/` trees are test/demo
//!   scaffolding — excluded entirely, same as `#[cfg(test)]` modules.
//! * `vendor/` holds third-party stand-ins we do not own — excluded.
//! * `target/` and hidden directories — excluded.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::rules::{FileClass, FileInput, Finding};

/// One discovered source file.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators.
    pub rel_path: String,
    /// Library or binary source.
    pub class: FileClass,
    /// Crate directory name (`core`, `solver`, …; `root` for `src/`).
    pub crate_name: String,
    /// Whether the file is a crate root (`src/lib.rs`).
    pub is_crate_root: bool,
    /// Absolute path for reading.
    pub abs_path: PathBuf,
}

/// Enumerates every linted source file under `root`, sorted by path so
/// output and baselines are reproducible.
pub fn discover(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    // Root crate: src/.
    collect_src_tree(&root.join("src"), "root", "src", &mut files)?;
    // Member crates: crates/*/src/.
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut names: Vec<String> = fs::read_dir(&crates_dir)?
            .filter_map(|e| e.ok())
            .filter(|e| e.path().is_dir())
            .filter_map(|e| e.file_name().into_string().ok())
            .collect();
        names.sort();
        for name in names {
            collect_src_tree(
                &crates_dir.join(&name).join("src"),
                &name,
                &format!("crates/{name}/src"),
                &mut files,
            )?;
        }
    }
    files.sort();
    Ok(files)
}

fn collect_src_tree(
    src: &Path,
    crate_name: &str,
    rel_prefix: &str,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    if !src.is_dir() {
        return Ok(());
    }
    collect_dir(src, crate_name, rel_prefix, false, out)
}

fn collect_dir(
    dir: &Path,
    crate_name: &str,
    rel_prefix: &str,
    in_bin: bool,
    out: &mut Vec<SourceFile>,
) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if name.starts_with('.') {
            continue;
        }
        let rel = format!("{rel_prefix}/{name}");
        if path.is_dir() {
            collect_dir(&path, crate_name, &rel, in_bin || name == "bin", out)?;
        } else if name.ends_with(".rs") {
            let is_bin = in_bin || name == "main.rs";
            out.push(SourceFile {
                rel_path: rel,
                class: if is_bin {
                    FileClass::Bin
                } else {
                    FileClass::Lib
                },
                crate_name: crate_name.to_string(),
                is_crate_root: !is_bin && name == "lib.rs" && !rel_prefix.contains("/src/"),
                abs_path: path,
            });
        }
    }
    Ok(())
}

/// Discovers and lints the whole workspace under `root`.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for file in discover(root)? {
        let source = fs::read_to_string(&file.abs_path)?;
        findings.extend(crate::rules::lint_file(&FileInput {
            path: &file.rel_path,
            class: file.class,
            crate_name: &file.crate_name,
            is_crate_root: file.is_crate_root,
            source: &source,
        }));
    }
    Ok(findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The linter applied to its own workspace must at minimum find the
    /// real crates and classify bins as bins.
    #[test]
    fn discovers_own_workspace() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = discover(&root).unwrap();
        assert!(files
            .iter()
            .any(|f| f.rel_path == "crates/lint/src/lib.rs" && f.is_crate_root));
        assert!(
            files
                .iter()
                .any(|f| f.rel_path == "crates/lint/src/bin/ppdl-lint.rs"
                    && f.class == FileClass::Bin)
        );
        assert!(files
            .iter()
            .any(|f| f.rel_path == "src/lib.rs" && f.crate_name == "root"));
        // The layer-graph and backend modules added by the multi-backend
        // refactor are walked (and therefore linted) like everything
        // else.
        for new_module in [
            "crates/nn/src/engine.rs",
            "crates/nn/src/conv.rs",
            "crates/nn/src/network.rs",
            "crates/nn/src/net_persist.rs",
            "crates/nn/src/trainer.rs",
            "crates/core/src/spatial.rs",
            "crates/core/src/backend.rs",
            "crates/bench/src/experiments/transfer_matrix.rs",
        ] {
            assert!(
                files
                    .iter()
                    .any(|f| f.rel_path == new_module && f.class == FileClass::Lib),
                "walk missed {new_module}"
            );
        }
        // Exclusions hold.
        assert!(files.iter().all(|f| !f.rel_path.starts_with("vendor/")));
        assert!(files.iter().all(|f| !f.rel_path.contains("/tests/")));
        assert!(files.iter().all(|f| !f.rel_path.contains("/benches/")));
    }

    /// Nested module files under src/ are Lib, not crate roots.
    #[test]
    fn nested_files_are_not_crate_roots() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
        let files = discover(&root).unwrap();
        let nested = files
            .iter()
            .find(|f| f.rel_path == "crates/core/src/pipeline/mod.rs")
            .expect("pipeline module present");
        assert_eq!(nested.class, FileClass::Lib);
        assert!(!nested.is_crate_root);
    }
}

//! The named invariant rules and the engine that applies them to one
//! file's token stream.
//!
//! Every rule has a stable ID (`layer/kind`, mirroring the error-code
//! registry): CI output, suppression comments, and the baseline file
//! all refer to rules by these IDs, so they are append-only. The
//! rationale for each rule — which PR-1..4 invariant it guards — lives
//! in DESIGN.md §12.

use crate::lexer::{lex, strip_test_code, Tok, TokKind};

/// `determinism/hashmap-iter`: no `HashMap`/`HashSet` in production
/// code. Iteration order can silently leak into numeric accumulation
/// or serialized output; use `BTreeMap`/`BTreeSet`, or suppress with a
/// reason explaining why iteration order never escapes (lookup-only).
pub const HASHMAP_ITER: &str = "determinism/hashmap-iter";
/// `determinism/wall-clock`: no `Instant::now()`/`SystemTime::now()`
/// outside `ppdl-obs`/`ppdl-bench`. Wall-clock reads in compute code
/// are how timing data sneaks into deterministic outputs.
pub const WALL_CLOCK: &str = "determinism/wall-clock";
/// `parallel/raw-spawn`: no `std::thread::spawn`/`thread::scope`
/// outside `ppdl_solver::parallel`. All parallelism goes through the
/// fixed-order reduction layer or determinism is lost.
pub const RAW_SPAWN: &str = "parallel/raw-spawn";
/// `robustness/unwrap-in-lib`: no `unwrap()`/`expect()`/`panic!` in
/// non-test library code — malformed inputs must surface as typed
/// `layer/kind` wire errors, not abort the serving process.
pub const UNWRAP_IN_LIB: &str = "robustness/unwrap-in-lib";
/// `robustness/print-in-lib`: no `println!`/`eprintln!`/`print!`/
/// `eprint!` in library crates (CLI binaries and the reporting crate
/// `ppdl-bench` excepted) — libraries return data, they don't write to
/// the service's wire.
pub const PRINT_IN_LIB: &str = "robustness/print-in-lib";
/// `hygiene/forbid-unsafe`: every library crate root carries
/// `#![forbid(unsafe_code)]`, and the `unsafe` keyword appears nowhere
/// (allowlisted: `bench/src/memtrack.rs`, whose `GlobalAlloc` impl is
/// the one necessary exception).
pub const FORBID_UNSAFE: &str = "hygiene/forbid-unsafe";
/// `perf/scalar-matmul`: a triple-nested (or deeper) `for` loop whose
/// innermost body subscripts a slice with an arithmetic index
/// expression (`a[i * k + j]`) — the shape of a scalar matmul/stencil.
/// Dense inner kernels belong in the blessed kernel modules
/// (`nn/gemm.rs`, `solver/csr.rs`, …), which are register-tiled,
/// cache-blocked, and covered by bitwise-determinism tests; ad-hoc
/// triple loops elsewhere silently forfeit that work.
pub const SCALAR_MATMUL: &str = "perf/scalar-matmul";
/// `hygiene/unused-allow`: a `ppdl-lint: allow(…)` comment that
/// suppresses nothing. Dead suppressions hide rot: the next violation
/// on that line would be silently excused.
pub const UNUSED_ALLOW: &str = "hygiene/unused-allow";
/// `hygiene/allow-without-reason`: a suppression missing the
/// `-- reason` clause. Suppressions are part of the audit trail; a
/// reasonless one is rejected *and* does not suppress.
pub const ALLOW_WITHOUT_REASON: &str = "hygiene/allow-without-reason";
/// `hygiene/unknown-rule`: a suppression naming a rule ID that does
/// not exist (typo, or a rule that was renamed — IDs are append-only
/// precisely so this cannot happen silently).
pub const UNKNOWN_RULE: &str = "hygiene/unknown-rule";
/// `arch/layering`: a crate depends on (via `Cargo.toml` or a resolved
/// `use`/path reference) a workspace crate the declared layering DAG
/// in `lint-layers.txt` does not allow. The DAG is the architecture;
/// manifests merely implement it.
pub const ARCH_LAYERING: &str = "arch/layering";
/// `determinism/tainted-parallel`: a closure (or fn reference) passed
/// to a `ppdl_solver::parallel` entry point transitively reaches an
/// RNG draw, a wall-clock read, or `HashMap`/`HashSet` — through any
/// number of helper fns. The file-local determinism rules see one
/// file; this one sees the call graph.
pub const TAINTED_PARALLEL: &str = "determinism/tainted-parallel";
/// `robustness/panic-reachable`: an `unwrap`/`expect`/`panic!` (or, in
/// the `service` crate, arithmetic slice indexing) in library code
/// that is reachable on the call graph from a serving entry point
/// (public `ppdl-service` fn) or a `solve*` public API. Panics there
/// abort the serving process, not a test.
pub const PANIC_REACHABLE: &str = "robustness/panic-reachable";
/// `obs/uninstrumented-hot-path`: a function on the blessed hot-path
/// list (CG inner solve, GEMM kernels, pipeline stage driver, service
/// batch flush) carries no span/counter telemetry — or has vanished
/// from its declared location, which would silently drop coverage.
pub const UNINSTRUMENTED_HOT_PATH: &str = "obs/uninstrumented-hot-path";

/// Every rule ID with a one-line summary, in stable display order.
pub const RULES: &[(&str, &str)] = &[
    (
        HASHMAP_ITER,
        "HashMap/HashSet in production code; use BTreeMap/BTreeSet or justify lookup-only use",
    ),
    (
        WALL_CLOCK,
        "Instant::now()/SystemTime::now() outside ppdl-obs/ppdl-bench",
    ),
    (
        RAW_SPAWN,
        "std::thread::spawn/scope outside ppdl_solver::parallel",
    ),
    (
        UNWRAP_IN_LIB,
        "unwrap()/expect()/panic! in non-test library code",
    ),
    (
        PRINT_IN_LIB,
        "println!/eprintln!/print!/eprint! in library crates",
    ),
    (
        FORBID_UNSAFE,
        "crate root missing #![forbid(unsafe_code)], or unsafe keyword used",
    ),
    (
        SCALAR_MATMUL,
        "triple-nested index loop outside the blessed kernel modules",
    ),
    (UNUSED_ALLOW, "suppression comment that matches no finding"),
    (
        ALLOW_WITHOUT_REASON,
        "suppression comment without a `-- reason` clause",
    ),
    (
        UNKNOWN_RULE,
        "suppression naming a rule ID that does not exist",
    ),
    (
        ARCH_LAYERING,
        "crate dependency or use path outside the declared layering DAG (lint-layers.txt)",
    ),
    (
        TAINTED_PARALLEL,
        "parallel closure transitively reaches RNG, wall clock, or HashMap",
    ),
    (
        PANIC_REACHABLE,
        "unwrap/expect/panic! reachable from serve or solve* entry points",
    ),
    (
        UNINSTRUMENTED_HOT_PATH,
        "blessed hot-path fn without a span/counter call (or missing entirely)",
    ),
];

/// True iff `id` is a known rule ID.
#[must_use]
pub fn is_known_rule(id: &str) -> bool {
    RULES.iter().any(|(r, _)| *r == id)
}

/// How a file participates in linting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FileClass {
    /// Library source (`crates/*/src/**`, root `src/lib.rs`): all rules.
    Lib,
    /// Binary source (`src/bin/**`): CLIs may print and unwrap at the
    /// top level, but determinism and parallelism rules still apply.
    Bin,
}

/// One file handed to the engine.
#[derive(Debug, Clone, Copy)]
pub struct FileInput<'a> {
    /// Workspace-relative path with `/` separators (stable across
    /// platforms; this exact string appears in the baseline).
    pub path: &'a str,
    /// Library or binary source.
    pub class: FileClass,
    /// The crate directory name (`core`, `solver`, …; `root` for the
    /// top-level `src/`).
    pub crate_name: &'a str,
    /// Whether this file is a crate root (`lib.rs`) that must carry
    /// `#![forbid(unsafe_code)]`.
    pub is_crate_root: bool,
    /// File contents.
    pub source: &'a str,
}

/// One rule violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable rule ID.
    pub rule: &'static str,
    /// Workspace-relative path.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// Human-readable description of the exact hit.
    pub detail: String,
}

/// A parsed `// ppdl-lint: allow(rule, …) -- reason` suppression.
#[derive(Debug)]
struct Allow {
    rules: Vec<String>,
    line: u32,
    has_reason: bool,
    used: bool,
}

/// The marker suppression comments carry.
pub const ALLOW_MARKER: &str = "ppdl-lint: allow(";

fn parse_allows(toks: &[Tok]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for t in toks {
        if t.kind != TokKind::Comment {
            continue;
        }
        // The marker must *start* the comment (after the `//`/`/*`
        // delimiters): a doc sentence that merely mentions the syntax,
        // like this one, is not a suppression.
        let body = t.text.trim_start_matches(['/', '*', '!']).trim_start();
        if !body.starts_with(ALLOW_MARKER) {
            continue;
        }
        let rest = &body[ALLOW_MARKER.len()..];
        let Some(close) = rest.find(')') else {
            continue;
        };
        let rules: Vec<String> = rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect();
        let has_reason = rest[close + 1..]
            .split_once("--")
            .is_some_and(|(_, reason)| !reason.trim().is_empty());
        allows.push(Allow {
            rules,
            line: t.line,
            has_reason,
            used: false,
        });
    }
    allows
}

/// Lints one file in isolation: lexes, collects suppressions, strips
/// test code, applies every *file-local* rule, then resolves
/// suppressions (a valid allow on the finding's line or the line above
/// removes it). The workspace-wide semantic rules (call-graph
/// reachability, layering, hot-path coverage) need every file at once
/// and run only under [`lint_files`].
#[must_use]
pub fn lint_file(input: &FileInput<'_>) -> Vec<Finding> {
    let toks = lex(input.source);
    let mut allows = parse_allows(&toks);
    let raw = file_local_findings(input, &toks);
    resolve_with_allows(input.path, &mut allows, raw)
}

/// The file-local rules applied to one file's full token stream.
fn file_local_findings(input: &FileInput<'_>, toks: &[Tok]) -> Vec<Finding> {
    let code = strip_test_code(toks);
    let sig: Vec<&Tok> = code
        .iter()
        .filter(|t| matches!(t.kind, TokKind::Ident | TokKind::Punct))
        .collect();
    let mut raw = Vec::new();
    scan_token_rules(input, &sig, &mut raw);
    check_scalar_matmul(input, &sig, &mut raw);
    if input.is_crate_root && input.crate_name != "bench" {
        check_forbid_unsafe_root(input, toks, &mut raw);
    }
    raw
}

/// Applies a file's suppressions to its raw findings and appends the
/// suppression-hygiene findings (which are never suppressible).
fn resolve_with_allows(path: &str, allows: &mut [Allow], raw: Vec<Finding>) -> Vec<Finding> {
    let mut findings = Vec::new();
    for a in allows.iter() {
        if !a.has_reason {
            findings.push(Finding {
                rule: ALLOW_WITHOUT_REASON,
                path: path.to_string(),
                line: a.line,
                detail: "suppression must carry `-- reason`; it is ignored until it does".into(),
            });
        }
        for r in &a.rules {
            if !is_known_rule(r) {
                findings.push(Finding {
                    rule: UNKNOWN_RULE,
                    path: path.to_string(),
                    line: a.line,
                    detail: format!("allow names unknown rule '{r}'"),
                });
            }
        }
    }

    for f in raw {
        let suppressed = allows.iter_mut().any(|a| {
            a.has_reason
                && (a.line == f.line || a.line + 1 == f.line)
                && a.rules.iter().any(|r| r == f.rule)
                && {
                    a.used = true;
                    true
                }
        });
        if !suppressed {
            findings.push(f);
        }
    }

    for a in allows.iter() {
        if a.has_reason && !a.used && a.rules.iter().all(|r| is_known_rule(r)) {
            findings.push(Finding {
                rule: UNUSED_ALLOW,
                path: path.to_string(),
                line: a.line,
                detail: format!("allow({}) suppresses nothing", a.rules.join(", ")),
            });
        }
    }

    findings.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    findings
}

/// Lints a whole workspace at once: every file-local rule per file,
/// plus the semantic rules over the symbol table and call graph built
/// from all files together. Semantic findings are attributed to
/// (path, line) and flow through the same suppression resolution as
/// file-local ones; findings on non-source paths (`Cargo.toml`) pass
/// through unsuppressed. Returns the findings and the size/shape/
/// timing stats the CLI reports under `--json`.
#[must_use]
pub fn lint_files(
    inputs: &[FileInput<'_>],
    ws: &crate::walk::WorkspaceInfo,
    layering: Option<&crate::arch::Layering>,
) -> (Vec<Finding>, crate::walk::LintStats) {
    use crate::callgraph::{check_panic_reachable, check_tainted_parallel, CallGraph, Taint};
    use crate::symbols::{module_path_of, FileSem, Symbols};
    use std::time::Instant;

    let mut stats = crate::walk::LintStats {
        files: inputs.len(),
        ..Default::default()
    };
    // ppdl-lint: allow(determinism/wall-clock) -- phase timing reported in --json; the linter is a reporting tool and its output never feeds computation
    let t0 = Instant::now();
    let mut last_ms = 0.0f64;
    let mut mark = |stats: &mut crate::walk::LintStats, phase: &str| {
        let now_ms = t0.elapsed().as_secs_f64() * 1e3;
        stats.timing_ms.insert(phase.to_string(), now_ms - last_ms);
        last_ms = now_ms;
    };

    // Phase 1: lex, collect suppressions, strip tests, parse items.
    let mut allows_by_file: Vec<Vec<Allow>> = Vec::with_capacity(inputs.len());
    let mut full_toks: Vec<Vec<Tok>> = Vec::with_capacity(inputs.len());
    let mut sems: Vec<FileSem> = Vec::with_capacity(inputs.len());
    for input in inputs {
        let toks = lex(input.source);
        allows_by_file.push(parse_allows(&toks));
        let code = strip_test_code(&toks);
        let parsed = crate::parse::parse_items(&code);
        let lib_name = ws
            .crate_by_dir(input.crate_name)
            .map_or_else(|| input.crate_name.to_string(), |c| c.lib_name.clone());
        sems.push(FileSem {
            path: input.path.to_string(),
            crate_dir: input.crate_name.to_string(),
            lib_name,
            class: input.class,
            module: module_path_of(input.path),
            toks: code,
            parsed,
        });
        full_toks.push(toks);
    }
    mark(&mut stats, "lex+parse");

    // Phase 2: file-local rules.
    let mut raw_by_file: Vec<Vec<Finding>> = inputs
        .iter()
        .zip(&full_toks)
        .map(|(input, toks)| file_local_findings(input, toks))
        .collect();
    mark(&mut stats, "file-rules");

    // Phase 3: the semantic layer.
    let symbols = Symbols::build(&sems);
    let graph = CallGraph::build(&sems, &symbols);
    stats.functions = symbols.fns.len();
    stats.call_edges = graph.edge_count;
    let taint = Taint::compute(&sems, &symbols, &graph);
    mark(&mut stats, "graph-build");

    let mut semantic = Vec::new();
    check_tainted_parallel(&sems, &symbols, &taint, &mut semantic);
    mark(&mut stats, TAINTED_PARALLEL);
    check_panic_reachable(&sems, &symbols, &graph, &mut semantic);
    mark(&mut stats, PANIC_REACHABLE);
    if let Some(l) = layering {
        crate::arch::check_layering(ws, &sems, l, &mut semantic);
    }
    mark(&mut stats, ARCH_LAYERING);
    crate::arch::check_hot_paths(&sems, &symbols, &graph, &mut semantic);
    mark(&mut stats, UNINSTRUMENTED_HOT_PATH);

    // Merge: semantic findings join their file's raw set so one allow
    // line can cover both; findings on non-source paths pass through.
    let mut findings = Vec::new();
    let path_index: std::collections::BTreeMap<&str, usize> = inputs
        .iter()
        .enumerate()
        .map(|(i, f)| (f.path, i))
        .collect();
    for f in semantic {
        match path_index.get(f.path.as_str()) {
            Some(&i) => raw_by_file[i].push(f),
            None => findings.push(f),
        }
    }
    for ((input, allows), raw) in inputs
        .iter()
        .zip(&mut allows_by_file)
        .zip(raw_by_file.drain(..))
    {
        findings.extend(resolve_with_allows(input.path, allows, raw));
    }
    findings.sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    for f in &findings {
        *stats
            .findings_by_rule
            .entry(f.rule.to_string())
            .or_default() += 1;
    }
    (findings, stats)
}

/// Applies the token-pattern rules to the significant (non-comment,
/// non-literal) token stream.
fn scan_token_rules(input: &FileInput<'_>, sig: &[&Tok], out: &mut Vec<Finding>) {
    let is_lib = input.class == FileClass::Lib;
    let wall_clock_applies = !matches!(input.crate_name, "obs" | "bench");
    let raw_spawn_applies = !input.path.ends_with("solver/src/parallel.rs");
    let print_applies = is_lib && input.crate_name != "bench";
    let unsafe_applies = !input.path.ends_with("bench/src/memtrack.rs");
    let push = |out: &mut Vec<Finding>, rule: &'static str, line: u32, detail: String| {
        out.push(Finding {
            rule,
            path: input.path.to_string(),
            line,
            detail,
        });
    };

    for (i, t) in sig.iter().enumerate() {
        if t.kind != TokKind::Ident {
            continue;
        }
        let next = |k: usize| sig.get(i + k).map(|t| t.text.as_str());
        let prev_is_dot = i > 0 && sig[i - 1].text == ".";
        match t.text.as_str() {
            // Every mention counts (the `use` import is where the fix
            // happens), deduplicated to one finding per line.
            "HashMap" | "HashSet"
                if out
                    .last()
                    .map_or(true, |f| !(f.rule == HASHMAP_ITER && f.line == t.line)) =>
            {
                push(
                    out,
                    HASHMAP_ITER,
                    t.line,
                    format!("{} in production code", t.text),
                );
            }
            "Instant" | "SystemTime"
                if wall_clock_applies && next(1) == Some("::") && next(2) == Some("now") =>
            {
                push(out, WALL_CLOCK, t.line, format!("{}::now()", t.text));
            }
            "thread"
                if raw_spawn_applies
                    && next(1) == Some("::")
                    && matches!(next(2), Some("spawn") | Some("scope")) =>
            {
                push(
                    out,
                    RAW_SPAWN,
                    t.line,
                    format!("thread::{}", next(2).unwrap_or_default()),
                );
            }
            "unwrap" | "expect" if is_lib && prev_is_dot && next(1) == Some("(") => {
                push(out, UNWRAP_IN_LIB, t.line, format!(".{}()", t.text));
            }
            "panic" if is_lib && next(1) == Some("!") => {
                push(out, UNWRAP_IN_LIB, t.line, "panic!".into());
            }
            "println" | "eprintln" | "print" | "eprint"
                if print_applies && next(1) == Some("!") =>
            {
                push(out, PRINT_IN_LIB, t.line, format!("{}!", t.text));
            }
            "unsafe" if unsafe_applies => {
                push(out, FORBID_UNSAFE, t.line, "unsafe code".into());
            }
            _ => {}
        }
    }
}

/// The modules allowed to hold dense inner kernels: register-tiled,
/// cache-blocked, and covered by bitwise-determinism tests. The
/// `perf/scalar-matmul` rule is silent here and nowhere else.
const KERNEL_MODULES: &[&str] = &[
    "nn/src/gemm.rs",
    "nn/src/conv.rs",
    "solver/src/csr.rs",
    "solver/src/dense.rs",
    "solver/src/sparse_chol.rs",
    "solver/src/precond.rs",
];

/// Flags triple-nested `for` loops that subscript with arithmetic
/// index expressions outside [`KERNEL_MODULES`].
///
/// Loop nesting is tracked by brace depth: a `for` whose header
/// contains `in` before the body brace opens a loop; the loop closes
/// with its body brace. Inside three or more open loops, the first
/// `ident[…]` subscript per line whose brackets contain `*` or `+` is
/// a finding.
fn check_scalar_matmul(input: &FileInput<'_>, sig: &[&Tok], out: &mut Vec<Finding>) {
    if KERNEL_MODULES.iter().any(|m| input.path.ends_with(m)) {
        return;
    }
    let mut depth = 0u32; // brace depth
    let mut pending_for = false; // saw a for-loop header, body brace next
    let mut loops: Vec<u32> = Vec::new(); // body depth of each open loop
    for (i, t) in sig.iter().enumerate() {
        match (t.kind, t.text.as_str()) {
            // `impl Trait for Type` also lexes a `for`; a real loop
            // header carries `in` before its body brace.
            (TokKind::Ident, "for") => {
                pending_for = sig[i + 1..]
                    .iter()
                    .take_while(|n| n.text != "{" && n.text != ";")
                    .any(|n| n.kind == TokKind::Ident && n.text == "in");
            }
            (TokKind::Punct, "{") => {
                depth += 1;
                if pending_for {
                    loops.push(depth);
                    pending_for = false;
                }
            }
            (TokKind::Punct, "}") => {
                while loops.last() == Some(&depth) {
                    loops.pop();
                }
                depth = depth.saturating_sub(1);
            }
            (TokKind::Punct, "[")
                if loops.len() >= 3 && i > 0 && sig[i - 1].kind == TokKind::Ident =>
            {
                let mut brackets = 1u32;
                let mut has_arith = false;
                for inner in &sig[i + 1..] {
                    match inner.text.as_str() {
                        "[" => brackets += 1,
                        "]" => {
                            brackets -= 1;
                            if brackets == 0 {
                                break;
                            }
                        }
                        "*" | "+" => has_arith = true,
                        _ => {}
                    }
                }
                let new_line = out
                    .last()
                    .map_or(true, |f| !(f.rule == SCALAR_MATMUL && f.line == t.line));
                if has_arith && new_line {
                    out.push(Finding {
                        rule: SCALAR_MATMUL,
                        path: input.path.to_string(),
                        line: t.line,
                        detail: format!(
                            "{}[…] indexed arithmetically inside a {}-deep loop nest; \
                             use the blessed kernels (nn::gemm, CsrMatrix) instead",
                            sig[i - 1].text,
                            loops.len()
                        ),
                    });
                }
            }
            _ => {}
        }
    }
}

/// Checks that a crate root opens with `#![forbid(unsafe_code)]`.
fn check_forbid_unsafe_root(input: &FileInput<'_>, toks: &[Tok], out: &mut Vec<Finding>) {
    let sig: Vec<&Tok> = toks
        .iter()
        .filter(|t| matches!(t.kind, TokKind::Ident | TokKind::Punct))
        .collect();
    let found = sig.windows(8).any(|w| {
        let texts: Vec<&str> = w.iter().map(|t| t.text.as_str()).collect();
        texts == ["#", "!", "[", "forbid", "(", "unsafe_code", ")", "]"]
    });
    if !found {
        out.push(Finding {
            rule: FORBID_UNSAFE,
            path: input.path.to_string(),
            line: 1,
            detail: "crate root missing #![forbid(unsafe_code)]".into(),
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib_file<'a>(source: &'a str) -> FileInput<'a> {
        FileInput {
            path: "crates/fake/src/lib.rs",
            class: FileClass::Lib,
            crate_name: "fake",
            is_crate_root: false,
            source,
        }
    }

    fn rules_hit(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn hashmap_iter_positive_and_negative() {
        let bad = lint_file(&lib_file(
            "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, f64> = HashMap::new(); }",
        ));
        assert_eq!(rules_hit(&bad), vec![HASHMAP_ITER, HASHMAP_ITER]);
        let good = lint_file(&lib_file(
            "use std::collections::BTreeMap;\nfn f() { let m: BTreeMap<u32, f64> = BTreeMap::new(); }",
        ));
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn hashmap_in_test_module_is_fine() {
        let f = lint_file(&lib_file(
            "#[cfg(test)]\nmod tests { use std::collections::HashMap; fn f() { HashMap::<u8, u8>::new(); } }",
        ));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn wall_clock_positive_and_negative() {
        let bad = lint_file(&lib_file("fn f() { let t = Instant::now(); }"));
        assert_eq!(rules_hit(&bad), vec![WALL_CLOCK]);
        let bad2 = lint_file(&lib_file(
            "fn f() { let t = std::time::SystemTime::now(); }",
        ));
        assert_eq!(rules_hit(&bad2), vec![WALL_CLOCK]);
        // Naming the type without reading the clock is fine.
        let good = lint_file(&lib_file("fn f(t: std::time::Instant) -> Instant { t }"));
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn wall_clock_exempt_in_obs_and_bench() {
        for name in ["obs", "bench"] {
            let f = lint_file(&FileInput {
                path: "crates/x/src/lib.rs",
                class: FileClass::Lib,
                crate_name: name,
                is_crate_root: false,
                source: "fn f() { Instant::now(); }",
            });
            assert!(!rules_hit(&f).contains(&WALL_CLOCK), "{name}: {f:?}");
        }
    }

    #[test]
    fn raw_spawn_positive_and_negative() {
        let bad = lint_file(&lib_file("fn f() { std::thread::spawn(|| {}); }"));
        assert_eq!(rules_hit(&bad), vec![RAW_SPAWN]);
        let bad2 = lint_file(&lib_file("fn f() { thread::scope(|s| {}); }"));
        assert_eq!(rules_hit(&bad2), vec![RAW_SPAWN]);
        let good = lint_file(&lib_file(
            "fn f() { ppdl_solver::parallel::par_map_vec(&v, |_, x| x); }",
        ));
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn raw_spawn_exempt_in_parallel_layer() {
        let f = lint_file(&FileInput {
            path: "crates/solver/src/parallel.rs",
            class: FileClass::Lib,
            crate_name: "solver",
            is_crate_root: false,
            source: "fn f() { std::thread::scope(|s| {}); }",
        });
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unwrap_in_lib_positive_and_negative() {
        let bad = lint_file(&lib_file(
            "fn f(v: Option<u8>) { v.unwrap(); v.expect(\"x\"); panic!(\"boom\"); }",
        ));
        assert_eq!(
            rules_hit(&bad),
            vec![UNWRAP_IN_LIB, UNWRAP_IN_LIB, UNWRAP_IN_LIB]
        );
        // unwrap_or and friends are fine; so is test code; so are bins.
        let good = lint_file(&lib_file("fn f(v: Option<u8>) -> u8 { v.unwrap_or(0) }"));
        assert!(good.is_empty(), "{good:?}");
        let in_bin = lint_file(&FileInput {
            path: "src/bin/ppdl.rs",
            class: FileClass::Bin,
            crate_name: "root",
            is_crate_root: false,
            source: "fn main() { run().unwrap(); }",
        });
        assert!(in_bin.is_empty(), "{in_bin:?}");
    }

    #[test]
    fn unwrap_in_doc_comment_or_string_is_fine() {
        let good = lint_file(&lib_file(
            "/// call `x.unwrap()` at your peril\nfn f() { let s = \"don't panic!\"; let _ = s; }",
        ));
        assert!(good.is_empty(), "{good:?}");
    }

    #[test]
    fn print_in_lib_positive_and_negative() {
        let bad = lint_file(&lib_file("fn f() { println!(\"x\"); eprint!(\"y\"); }"));
        assert_eq!(rules_hit(&bad), vec![PRINT_IN_LIB, PRINT_IN_LIB]);
        let in_bench = lint_file(&FileInput {
            path: "crates/bench/src/harness.rs",
            class: FileClass::Lib,
            crate_name: "bench",
            is_crate_root: false,
            source: "fn f() { println!(\"report\"); }",
        });
        assert!(in_bench.is_empty(), "{in_bench:?}");
        let in_bin = lint_file(&FileInput {
            path: "src/bin/ppdl.rs",
            class: FileClass::Bin,
            crate_name: "root",
            is_crate_root: false,
            source: "fn main() { println!(\"usage\"); }",
        });
        assert!(in_bin.is_empty(), "{in_bin:?}");
    }

    #[test]
    fn forbid_unsafe_positive_and_negative() {
        let missing = lint_file(&FileInput {
            path: "crates/fake/src/lib.rs",
            class: FileClass::Lib,
            crate_name: "fake",
            is_crate_root: true,
            source: "//! docs\npub fn f() {}",
        });
        assert_eq!(rules_hit(&missing), vec![FORBID_UNSAFE]);
        let present = lint_file(&FileInput {
            path: "crates/fake/src/lib.rs",
            class: FileClass::Lib,
            crate_name: "fake",
            is_crate_root: true,
            source: "#![forbid(unsafe_code)]\npub fn f() {}",
        });
        assert!(present.is_empty(), "{present:?}");
        let usage = lint_file(&lib_file(
            "fn f() { unsafe { core::hint::unreachable_unchecked() } }",
        ));
        assert_eq!(rules_hit(&usage), vec![FORBID_UNSAFE]);
        let memtrack = lint_file(&FileInput {
            path: "crates/bench/src/memtrack.rs",
            class: FileClass::Lib,
            crate_name: "bench",
            is_crate_root: false,
            source: "unsafe impl Sync for X {}",
        });
        assert!(memtrack.is_empty(), "{memtrack:?}");
    }

    #[test]
    fn scalar_matmul_positive_and_negative() {
        let triple = "fn mm(m: usize, a: &[f64], out: &mut [f64]) {\n\
                      for i in 0..m { for j in 0..m { for k in 0..m {\n\
                      out[i * m + j] += a[i * m + k] * a[k * m + j]; } } } }";
        let bad = lint_file(&lib_file(triple));
        assert_eq!(rules_hit(&bad), vec![SCALAR_MATMUL]);
        // Two loops deep is fine; so is plain (non-arithmetic) indexing
        // three deep.
        let two_deep = lint_file(&lib_file(
            "fn f(m: usize, a: &mut [f64]) { for i in 0..m { for j in 0..m { a[i * m + j] = 0.0; } } }",
        ));
        assert!(two_deep.is_empty(), "{two_deep:?}");
        let flat_index = lint_file(&lib_file(
            "fn f(m: usize, a: &mut [f64]) { for i in 0..m { for j in 0..m { for k in 0..m { a[k] = a[j]; } } } }",
        ));
        assert!(flat_index.is_empty(), "{flat_index:?}");
    }

    #[test]
    fn scalar_matmul_ignores_impl_for_and_kernel_modules() {
        // `impl Trait for Type` must not count as a loop level.
        let impl_for = lint_file(&lib_file(
            "impl Kernel for Dense {\n\
             fn mm(&self, m: usize, a: &[f64], out: &mut [f64]) {\n\
             for i in 0..m { for j in 0..m { out[i * m + j] = a[j]; } } } }",
        ));
        assert!(impl_for.is_empty(), "{impl_for:?}");
        let kernel = lint_file(&FileInput {
            path: "crates/nn/src/gemm.rs",
            class: FileClass::Lib,
            crate_name: "nn",
            is_crate_root: false,
            source: "fn mm(m: usize, a: &[f64], out: &mut [f64]) {\n\
                     for i in 0..m { for j in 0..m { for k in 0..m {\n\
                     out[i * m + j] += a[i * m + k] * a[k * m + j]; } } } }",
        });
        assert!(kernel.is_empty(), "{kernel:?}");
    }

    #[test]
    fn same_line_allow_suppresses() {
        let f = lint_file(&lib_file(
            "fn f(v: Option<u8>) { v.unwrap(); } // ppdl-lint: allow(robustness/unwrap-in-lib) -- fixture",
        ));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn line_above_allow_suppresses() {
        let f = lint_file(&lib_file(
            "// ppdl-lint: allow(determinism/wall-clock) -- fixture reason\nfn f() { Instant::now(); }",
        ));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn allow_without_reason_is_rejected_and_does_not_suppress() {
        let f = lint_file(&lib_file(
            "fn f(v: Option<u8>) { v.unwrap(); } // ppdl-lint: allow(robustness/unwrap-in-lib)",
        ));
        assert_eq!(rules_hit(&f), vec![ALLOW_WITHOUT_REASON, UNWRAP_IN_LIB]);
    }

    #[test]
    fn unused_allow_is_flagged() {
        let f = lint_file(&lib_file(
            "// ppdl-lint: allow(determinism/wall-clock) -- nothing here uses the clock\nfn f() {}",
        ));
        assert_eq!(rules_hit(&f), vec![UNUSED_ALLOW]);
    }

    #[test]
    fn doc_prose_mentioning_the_marker_is_not_a_suppression() {
        let f = lint_file(&lib_file(
            "//! Suppress with `ppdl-lint: allow(rule-id) -- reason` comments.\nfn f() {}",
        ));
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unknown_rule_in_allow_is_flagged() {
        let f = lint_file(&lib_file(
            "// ppdl-lint: allow(determinism/hashmp-iter) -- typo'd\nfn f() {}",
        ));
        assert_eq!(rules_hit(&f), vec![UNKNOWN_RULE]);
    }

    #[test]
    fn allow_does_not_leak_to_unrelated_rule_or_line() {
        let f = lint_file(&lib_file(
            "// ppdl-lint: allow(robustness/unwrap-in-lib) -- wrong rule\nfn f() { Instant::now(); }",
        ));
        assert_eq!(rules_hit(&f), vec![UNUSED_ALLOW, WALL_CLOCK]);
        let far = lint_file(&lib_file(
            "// ppdl-lint: allow(determinism/wall-clock) -- too far away\n\n\nfn f() { Instant::now(); }",
        ));
        assert_eq!(rules_hit(&far), vec![UNUSED_ALLOW, WALL_CLOCK]);
    }
}

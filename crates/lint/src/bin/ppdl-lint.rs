//! The `ppdl-lint` CLI: lint the workspace, compare against the
//! baseline ratchet, and report.
//!
//! Exit codes: `0` clean (or baselined), `1` findings in `--deny`
//! mode, `2` usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use ppdl_lint::{baseline, findings_to_json_with_stats, lint_workspace_with_stats, Finding, RULES};

const USAGE: &str = "\
ppdl-lint — workspace invariant checker (DESIGN.md §12)

USAGE:
    ppdl-lint [OPTIONS]

OPTIONS:
    --root <dir>        Workspace root to lint (default: .)
    --baseline <file>   Baseline file (default: <root>/lint-baseline.txt)
    --deny              Exit 1 on any finding not covered by the baseline
    --json              Emit findings as JSON (with call-graph stats and per-rule timing)
    --update-baseline   Rewrite the baseline with current counts
    --check-dag         Exit 1 unless lint-layers.txt matches Cargo.toml deps exactly
    --rules             List every rule ID and exit
    --help              Show this help
";

struct Args {
    root: PathBuf,
    baseline_path: Option<PathBuf>,
    deny: bool,
    json: bool,
    update_baseline: bool,
    check_dag: bool,
    list_rules: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        baseline_path: None,
        deny: false,
        json: false,
        update_baseline: false,
        check_dag: false,
        list_rules: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => {
                args.root = PathBuf::from(it.next().ok_or("--root needs a value")?);
            }
            "--baseline" => {
                args.baseline_path =
                    Some(PathBuf::from(it.next().ok_or("--baseline needs a value")?));
            }
            "--deny" => args.deny = true,
            "--json" => args.json = true,
            "--update-baseline" => args.update_baseline = true,
            "--check-dag" => args.check_dag = true,
            "--rules" => args.list_rules = true,
            "--help" | "-h" => {
                print!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument '{other}'")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("error: {msg}\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.list_rules {
        for (id, summary) in RULES {
            println!("{id:32} {summary}");
        }
        return ExitCode::SUCCESS;
    }

    if args.check_dag {
        return check_dag(&args.root);
    }

    let (findings, stats) = match lint_workspace_with_stats(&args.root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: linting {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };
    let baseline_path = args
        .baseline_path
        .clone()
        .unwrap_or_else(|| args.root.join("lint-baseline.txt"));

    if args.update_baseline {
        let counts = baseline::count_findings(&findings);
        let text = baseline::render(&counts);
        if let Err(e) = std::fs::write(&baseline_path, text) {
            eprintln!("error: writing {}: {e}", baseline_path.display());
            return ExitCode::from(2);
        }
        println!(
            "wrote {} ({} entries, {} findings)",
            baseline_path.display(),
            counts.len(),
            findings.len()
        );
        return ExitCode::SUCCESS;
    }

    let baseline_counts = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match baseline::parse(&text) {
            Ok(c) => c,
            Err(e) => {
                eprintln!("error: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(_) => baseline::Counts::new(), // no baseline: everything is new
    };
    let diff = baseline::diff(&findings, &baseline_counts);

    if args.json {
        println!("{}", findings_to_json_with_stats(&findings, Some(&stats)));
    } else {
        report_text(&findings, &diff, &baseline_counts);
    }

    if args.deny && !diff.is_clean() {
        eprintln!(
            "ppdl-lint: {} finding group(s) exceed the baseline — fix them or add an \
             inline `// ppdl-lint: allow(rule) -- reason`",
            diff.grown.len()
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// `--check-dag`: the declared layering DAG must match the manifests'
/// workspace-local dependency edges exactly, both directions.
fn check_dag(root: &std::path::Path) -> ExitCode {
    let ws = match ppdl_lint::walk::discover_workspace(root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("error: discovering {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let Some(layering) = ppdl_lint::arch::load_layering(root) else {
        eprintln!(
            "error: {} not found under {}",
            ppdl_lint::arch::LAYERS_FILE,
            root.display()
        );
        return ExitCode::from(2);
    };
    let mismatches = ppdl_lint::arch::dag_mismatches(&ws, &layering);
    if mismatches.is_empty() {
        println!(
            "layering DAG matches Cargo.toml workspace deps exactly ({} crates)",
            ws.crates.len()
        );
        return ExitCode::SUCCESS;
    }
    for m in &mismatches {
        eprintln!("DAG MISMATCH: {m}");
    }
    eprintln!(
        "ppdl-lint: {} mismatch(es) between lint-layers.txt and Cargo.toml",
        mismatches.len()
    );
    ExitCode::FAILURE
}

fn report_text(findings: &[Finding], diff: &baseline::Diff, baseline_counts: &baseline::Counts) {
    let current = baseline::count_findings(findings);
    for f in findings {
        let key = (f.rule.to_string(), f.path.clone());
        let grandfathered = baseline_counts.get(&key).copied().unwrap_or(0)
            >= current.get(&key).copied().unwrap_or(0);
        let tag = if grandfathered { " [baselined]" } else { "" };
        println!("{}:{}: {} — {}{}", f.path, f.line, f.rule, f.detail, tag);
    }
    for (rule, path, n, b) in &diff.grown {
        println!("GROWN  {rule} {path}: {n} > baseline {b}");
    }
    for (rule, path, b, n) in &diff.stale {
        println!("STALE  {rule} {path}: baseline {b} > current {n} (run --update-baseline)");
    }
    println!(
        "{} finding(s), {} over baseline, {} stale baseline entr(y/ies)",
        findings.len(),
        diff.grown.len(),
        diff.stale.len()
    );
}

//! Architecture rules: the declared crate-layering DAG and the blessed
//! hot-path instrumentation list.
//!
//! The DAG lives in `lint-layers.txt` at the workspace root — one line
//! per crate, `crate: dep dep …` using crate *directory* names — and
//! is enforced in both directions:
//!
//! * `arch/layering` flags any `Cargo.toml` dependency or resolved
//!   `use`/path reference that the DAG does not allow.
//! * [`dag_mismatches`] (the CLI's `--check-dag`) asserts the DAG
//!   matches the manifests *exactly*, so the declared architecture can
//!   never drift loose (an allowed-but-unused edge is as much rot as a
//!   forbidden one).
//!
//! `obs/uninstrumented-hot-path` closes the loop with `ppdl-obs`: the
//! functions on the blessed hot-path list ([`HOT_PATHS`]: CG inner
//! solve, the GEMM kernels, pipeline stage driver, service batch
//! flush) must contain telemetry — directly or in a direct callee —
//! and must keep *existing* at their declared locations, so a rename
//! can't silently drop coverage.

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::path::Path;

use crate::lexer::TokKind;
use crate::rules::{Finding, ARCH_LAYERING, UNINSTRUMENTED_HOT_PATH};
use crate::symbols::{FileSem, Symbols};
use crate::walk::WorkspaceInfo;

/// The declared crate-layering DAG, keyed by crate directory name.
#[derive(Debug, Default, Clone)]
pub struct Layering {
    /// Crate dir → the crate dirs it may depend on.
    pub allowed: BTreeMap<String, BTreeSet<String>>,
}

/// The file the DAG is declared in, relative to the workspace root.
pub const LAYERS_FILE: &str = "lint-layers.txt";

/// Parses `lint-layers.txt` text: `crate: dep dep …` lines, `#`
/// comments, blank lines ignored.
#[must_use]
pub fn parse_layering(text: &str) -> Layering {
    let mut layering = Layering::default();
    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let Some((name, deps)) = line.split_once(':') else {
            continue;
        };
        layering.allowed.insert(
            name.trim().to_string(),
            deps.split_whitespace().map(str::to_string).collect(),
        );
    }
    layering
}

/// Loads the DAG from `root`; `None` (rule inert) when the file is
/// absent — fixture workspaces without one are lexed-only.
#[must_use]
pub fn load_layering(root: &Path) -> Option<Layering> {
    let text = fs::read_to_string(root.join(LAYERS_FILE)).ok()?;
    Some(parse_layering(&text))
}

/// `arch/layering`: manifests and source references must stay inside
/// the declared DAG.
pub fn check_layering(
    ws: &WorkspaceInfo,
    files: &[FileSem],
    layering: &Layering,
    out: &mut Vec<Finding>,
) {
    // Package name → crate dir, for mapping Cargo.toml deps.
    let pkg_to_dir: BTreeMap<&str, &str> = ws
        .crates
        .iter()
        .map(|c| (c.pkg_name.as_str(), c.dir_name.as_str()))
        .collect();
    let lib_to_dir: BTreeMap<&str, &str> = ws
        .crates
        .iter()
        .map(|c| (c.lib_name.as_str(), c.dir_name.as_str()))
        .collect();

    for c in &ws.crates {
        let manifest_path = if c.rel_dir == "." {
            "Cargo.toml".to_string()
        } else {
            format!("{}/Cargo.toml", c.rel_dir)
        };
        let Some(allowed) = layering.allowed.get(&c.dir_name) else {
            out.push(Finding {
                rule: ARCH_LAYERING,
                path: manifest_path,
                line: 1,
                detail: format!("crate '{}' is not declared in {LAYERS_FILE}", c.dir_name),
            });
            continue;
        };
        for (dep, line) in c.deps.iter().zip(&c.dep_lines) {
            let Some(dep_dir) = pkg_to_dir.get(dep.as_str()) else {
                continue; // external dependency; out of DAG scope
            };
            if !allowed.contains(*dep_dir) {
                out.push(Finding {
                    rule: ARCH_LAYERING,
                    path: manifest_path.clone(),
                    line: *line,
                    detail: format!(
                        "'{}' may not depend on '{dep_dir}' per {LAYERS_FILE}",
                        c.dir_name
                    ),
                });
            }
        }
    }

    // Source references: `use other_lib::…` and fully-qualified
    // `other_lib::…` paths in code.
    for file in files {
        let Some(allowed) = layering.allowed.get(&file.crate_dir) else {
            continue; // already reported once at the manifest
        };
        let mut seen_lines: BTreeSet<u32> = BTreeSet::new();
        let mut check = |lib: &str, line: u32, out: &mut Vec<Finding>| {
            let Some(dep_dir) = lib_to_dir.get(lib) else {
                return;
            };
            if *dep_dir == file.crate_dir || allowed.contains(*dep_dir) {
                return;
            }
            if seen_lines.insert(line) {
                out.push(Finding {
                    rule: ARCH_LAYERING,
                    path: file.path.clone(),
                    line,
                    detail: format!(
                        "'{}' references '{dep_dir}' ({lib}) not allowed by {LAYERS_FILE}",
                        file.crate_dir
                    ),
                });
            }
        };
        for u in &file.parsed.uses {
            if let Some(head) = u.path.first() {
                check(head, u.line, out);
            }
        }
        for (j, t) in file.toks.iter().enumerate() {
            if t.kind == TokKind::Ident
                && file.toks.get(j + 1).is_some_and(|n| n.text == "::")
                && (j == 0 || file.toks[j - 1].text != "::")
            {
                check(&t.text, t.line, out);
            }
        }
    }
}

/// Differences between the declared DAG and the manifests' actual
/// workspace-local dependency edges. Empty means they match exactly.
#[must_use]
pub fn dag_mismatches(ws: &WorkspaceInfo, layering: &Layering) -> Vec<String> {
    let pkg_to_dir: BTreeMap<&str, &str> = ws
        .crates
        .iter()
        .map(|c| (c.pkg_name.as_str(), c.dir_name.as_str()))
        .collect();
    let mut out = Vec::new();
    let mut seen_dirs = BTreeSet::new();
    for c in &ws.crates {
        seen_dirs.insert(c.dir_name.clone());
        let actual: BTreeSet<String> = c
            .deps
            .iter()
            .filter_map(|d| pkg_to_dir.get(d.as_str()).map(|s| (*s).to_string()))
            .collect();
        let declared = layering
            .allowed
            .get(&c.dir_name)
            .cloned()
            .unwrap_or_default();
        if !layering.allowed.contains_key(&c.dir_name) {
            out.push(format!("crate '{}' missing from {LAYERS_FILE}", c.dir_name));
            continue;
        }
        for extra in declared.difference(&actual) {
            out.push(format!(
                "{LAYERS_FILE} allows '{}' -> '{extra}' but Cargo.toml has no such dependency",
                c.dir_name
            ));
        }
        for missing in actual.difference(&declared) {
            out.push(format!(
                "Cargo.toml has '{}' -> '{missing}' but {LAYERS_FILE} does not allow it",
                c.dir_name
            ));
        }
    }
    for dir in layering.allowed.keys() {
        if !seen_dirs.contains(dir) {
            out.push(format!(
                "{LAYERS_FILE} declares '{dir}' which is not a workspace crate"
            ));
        }
    }
    out
}

/// The blessed hot-path list: (file path suffix, fn name). These are
/// the kernels and drivers DESIGN.md commits to keeping instrumented.
pub const HOT_PATHS: &[(&str, &str)] = &[
    ("solver/src/cg.rs", "solve_core"),
    ("nn/src/gemm.rs", "gemm_nn"),
    ("nn/src/gemm.rs", "gemm_nt"),
    ("nn/src/gemm.rs", "gemm_tn"),
    ("nn/src/gemm.rs", "gemm_nt_bias_rows"),
    ("core/src/pipeline/mod.rs", "run_stage"),
    ("service/src/lib.rs", "run_batch"),
];

/// Whether a body token range contains telemetry: an `ppdl_obs` path,
/// a span/counter/histogram call, or a metric-handle method.
fn has_obs_marker(file: &FileSem, range: (usize, usize)) -> bool {
    let (start, end) = range;
    for j in start..end.min(file.toks.len()) {
        let t = &file.toks[j];
        if t.kind != TokKind::Ident {
            continue;
        }
        match t.text.as_str() {
            "ppdl_obs" | "span" | "counter" | "counter_add" | "histogram" | "observe"
            | "record_span" => return true,
            "inc" | "record" | "add_sample"
                if j > 0
                    && file.toks[j - 1].text == "."
                    && file.toks.get(j + 1).is_some_and(|n| n.text == "(") =>
            {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// `obs/uninstrumented-hot-path`: each [`HOT_PATHS`] entry must exist
/// and carry telemetry in its body or a direct callee's body.
///
/// An entry whose *crate* is absent from the workspace is skipped
/// silently (fixture workspaces); an entry whose crate exists but
/// whose fn is gone reports loudly, so a rename can't shed coverage.
pub fn check_hot_paths(
    files: &[FileSem],
    symbols: &Symbols,
    graph: &crate::callgraph::CallGraph,
    out: &mut Vec<Finding>,
) {
    for (suffix, name) in HOT_PATHS {
        let crate_dir = suffix.split('/').next().unwrap_or_default();
        if !files.iter().any(|f| f.crate_dir == crate_dir) {
            continue;
        }
        let ids: Vec<usize> = symbols
            .fns
            .iter()
            .enumerate()
            .filter(|(_, f)| f.name == *name && files[f.file_idx].path.ends_with(suffix))
            .map(|(id, _)| id)
            .collect();
        if ids.is_empty() {
            out.push(Finding {
                rule: UNINSTRUMENTED_HOT_PATH,
                path: (*suffix).to_string(),
                line: 1,
                detail: format!(
                    "blessed hot-path fn '{name}' not found; update the HOT_PATHS list \
                     if it moved"
                ),
            });
            continue;
        }
        for id in ids {
            let sym = &symbols.fns[id];
            let file = &files[sym.file_idx];
            let instrumented = sym.body.is_some_and(|b| has_obs_marker(file, b))
                || graph.callees[id].iter().any(|&c| {
                    let cs = &symbols.fns[c];
                    cs.body
                        .is_some_and(|b| has_obs_marker(&files[cs.file_idx], b))
                });
            if !instrumented {
                out.push(Finding {
                    rule: UNINSTRUMENTED_HOT_PATH,
                    path: file.path.clone(),
                    line: sym.line,
                    detail: format!(
                        "hot-path fn '{name}' has no span/counter call (directly or in a \
                         direct callee)"
                    ),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::callgraph::CallGraph;
    use crate::lexer::{lex, strip_test_code};
    use crate::parse::parse_items;
    use crate::rules::FileClass;
    use crate::symbols::module_path_of;
    use crate::walk::CrateInfo;

    fn file(path: &str, crate_dir: &str, lib: &str, src: &str) -> FileSem {
        let toks = strip_test_code(&lex(src));
        let parsed = parse_items(&toks);
        FileSem {
            path: path.to_string(),
            crate_dir: crate_dir.to_string(),
            lib_name: lib.to_string(),
            class: FileClass::Lib,
            module: module_path_of(path),
            toks,
            parsed,
        }
    }

    fn krate(dir: &str, pkg: &str, deps: &[&str]) -> CrateInfo {
        CrateInfo {
            dir_name: dir.to_string(),
            pkg_name: pkg.to_string(),
            lib_name: pkg.replace('-', "_"),
            rel_dir: format!("crates/{dir}"),
            deps: deps.iter().map(|d| (*d).to_string()).collect(),
            dep_lines: deps
                .iter()
                .enumerate()
                .map(|(i, _)| i as u32 + 10)
                .collect(),
        }
    }

    fn ws(crates: Vec<CrateInfo>) -> WorkspaceInfo {
        WorkspaceInfo {
            crates,
            files: Vec::new(),
        }
    }

    #[test]
    fn parse_and_roundtrip() {
        let l = parse_layering("# comment\nobs:\nsolver: obs\ncore: solver obs\n");
        assert!(l.allowed["obs"].is_empty());
        assert_eq!(l.allowed["solver"].len(), 1);
        assert!(l.allowed["core"].contains("solver"));
    }

    #[test]
    fn manifest_dep_outside_dag_is_flagged() {
        let w = ws(vec![
            krate("obs", "ppdl-obs", &[]),
            krate("solver", "ppdl-solver", &["ppdl-service"]),
            krate("service", "ppdl-service", &[]),
        ]);
        let l = parse_layering("obs:\nsolver: obs\nservice: solver\n");
        let mut out = Vec::new();
        check_layering(&w, &[], &l, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert_eq!(out[0].rule, ARCH_LAYERING);
        assert_eq!(out[0].path, "crates/solver/Cargo.toml");
        assert!(out[0].detail.contains("service"), "{out:?}");
    }

    #[test]
    fn use_path_outside_dag_is_flagged_and_allowed_edge_is_not() {
        let w = ws(vec![
            krate("obs", "ppdl-obs", &[]),
            krate("solver", "ppdl-solver", &["ppdl-obs"]),
            krate("service", "ppdl-service", &[]),
        ]);
        let l = parse_layering("obs:\nsolver: obs\nservice: solver\n");
        let files = vec![file(
            "crates/solver/src/lib.rs",
            "solver",
            "ppdl_solver",
            "use ppdl_obs::span;\nuse ppdl_service::ServiceCore;\n\
             fn f() { ppdl_service::net::listen(); }",
        )];
        let mut out = Vec::new();
        check_layering(&w, &files, &l, &mut out);
        let lines: Vec<u32> = out.iter().map(|f| f.line).collect();
        assert_eq!(lines, vec![2, 3], "{out:?}");
    }

    #[test]
    fn dag_mismatch_detects_both_directions() {
        let w = ws(vec![
            krate("obs", "ppdl-obs", &[]),
            krate("solver", "ppdl-solver", &["ppdl-obs"]),
        ]);
        let exact = parse_layering("obs:\nsolver: obs\n");
        assert!(dag_mismatches(&w, &exact).is_empty());
        let loose = parse_layering("obs: solver\nsolver: obs\n");
        let m = dag_mismatches(&w, &loose);
        assert_eq!(m.len(), 1, "{m:?}");
        assert!(m[0].contains("no such dependency"), "{m:?}");
        let tight = parse_layering("obs:\nsolver:\n");
        let m = dag_mismatches(&w, &tight);
        assert_eq!(m.len(), 1, "{m:?}");
        assert!(m[0].contains("does not allow"), "{m:?}");
    }

    #[test]
    fn hot_path_instrumented_directly_or_via_callee_passes() {
        let files = vec![file(
            "crates/solver/src/cg.rs",
            "solver",
            "ppdl_solver",
            "fn record_it(n: usize) { ppdl_obs::counter_add(n); }\n\
             fn solve_core(n: usize) { record_it(n); }",
        )];
        let symbols = Symbols::build(&files);
        let graph = CallGraph::build(&files, &symbols);
        let mut out = Vec::new();
        check_hot_paths(&files, &symbols, &graph, &mut out);
        let cg: Vec<_> = out.iter().filter(|f| f.path.contains("cg.rs")).collect();
        assert!(cg.is_empty(), "{cg:?}");
    }

    #[test]
    fn hot_path_without_telemetry_or_missing_is_flagged() {
        let files = vec![file(
            "crates/solver/src/cg.rs",
            "solver",
            "ppdl_solver",
            "fn solve_core(n: usize) -> usize { n * 2 }",
        )];
        let symbols = Symbols::build(&files);
        let graph = CallGraph::build(&files, &symbols);
        let mut out = Vec::new();
        check_hot_paths(&files, &symbols, &graph, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].path.contains("cg.rs"));
        assert!(out[0].detail.contains("no span/counter"));
    }

    #[test]
    fn hot_path_fn_gone_from_present_crate_reports_not_found() {
        // The solver crate exists but solve_core was renamed away: the
        // rule must say so rather than silently dropping coverage.
        let files = vec![file(
            "crates/solver/src/cg.rs",
            "solver",
            "ppdl_solver",
            "fn solve_core_renamed(n: usize) -> usize { n }",
        )];
        let symbols = Symbols::build(&files);
        let graph = CallGraph::build(&files, &symbols);
        let mut out = Vec::new();
        check_hot_paths(&files, &symbols, &graph, &mut out);
        assert_eq!(out.len(), 1, "{out:?}");
        assert!(out[0].detail.contains("not found"), "{out:?}");
        // Entries whose crate is absent entirely (nn, core, service)
        // are skipped: fixture workspaces stay clean.
        assert!(out.iter().all(|f| f.path.contains("cg.rs")), "{out:?}");
    }
}

//! Reached only through `mod helper;` in lib.rs.

pub fn double(x: u64) -> u64 {
    x * 2
}

//! A crate nobody hand-registered: discovery must find it from the
//! workspace members list, and `helper` from the `mod` declaration.
#![forbid(unsafe_code)]

mod helper;

/// Doubles via the helper module.
pub fn twice(x: u64) -> u64 {
    helper::double(x)
}

//! The lower layer — which illegally reaches up into `app`.
#![forbid(unsafe_code)]

use fixture_app::run;

/// Calls upward against the declared DAG.
pub fn leaf_value() -> u64 {
    run()
}

//! The upper layer; depending downward on `leaf` would be legal.
#![forbid(unsafe_code)]

/// A value for the fixture call chain.
pub fn run() -> u64 {
    7
}

//! Positive/negative fixtures for the semantic (graph-based) rules:
//! `arch/layering` over the committed two-crate fixture workspace,
//! `determinism/tainted-parallel`, `robustness/panic-reachable`, and
//! `obs/uninstrumented-hot-path` over throwaway workspaces, plus the
//! `--check-dag` CLI contract on both a mismatching fixture and the
//! real repository.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn run_lint(root: &Path, extra: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_ppdl-lint"))
        .arg("--root")
        .arg(root)
        .args(extra)
        .output()
        .expect("spawn ppdl-lint")
}

/// The committed layering-violation fixture: `leaf` depends on `app`
/// in its manifest and via `use`, but `lint-layers.txt` only allows
/// the reverse edge.
fn layering_fixture() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/layering")
}

/// A unique-per-test throwaway workspace under the target tmpdir.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Self {
        let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("lint-sem-{tag}"));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(&root).unwrap();
        fs::write(
            root.join("Cargo.toml"),
            "[workspace]\nmembers = [\"crates/*\"]\n",
        )
        .unwrap();
        Self { root }
    }

    /// Adds a package `crates/<dir>` with the given lib.rs source.
    fn krate(&self, dir: &str, lib_src: &str) {
        self.write(
            &format!("crates/{dir}/Cargo.toml"),
            &format!(
                "[package]\nname = \"fixture-{dir}\"\nversion = \"0.1.0\"\n\n[dependencies]\n"
            ),
        );
        self.write(&format!("crates/{dir}/src/lib.rs"), lib_src);
    }

    fn write(&self, rel: &str, source: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, source).unwrap();
    }

    fn json(&self) -> String {
        let out = run_lint(&self.root, &["--json"]);
        String::from_utf8_lossy(&out.stdout).into_owned()
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn layering_fixture_flags_manifest_dep_and_use_path() {
    let out = run_lint(&layering_fixture(), &["--json"]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("\"rule\":\"arch/layering\""),
        "expected arch/layering findings: {text}"
    );
    // Both halves of the violation are reported: the Cargo.toml
    // dependency edge and the resolved `use fixture_app::…` path.
    assert!(text.contains("crates/leaf/Cargo.toml"), "{text}");
    assert!(text.contains("crates/leaf/src/lib.rs"), "{text}");
    // The allowed direction (app -> leaf is declared, unused) is not an
    // arch/layering finding — only --check-dag complains about drift.
    assert!(!text.contains("crates/app/Cargo.toml\",\"line"), "{text}");

    // Fresh violations with no baseline: --deny fails.
    let denied = run_lint(&layering_fixture(), &["--deny"]);
    assert_eq!(denied.status.code(), Some(1), "expected deny failure");
}

#[test]
fn check_dag_rejects_fixture_and_accepts_real_workspace() {
    // The fixture DAG drifts from its manifests in both directions:
    // `app: leaf` is declared but not a real dependency, and the real
    // leaf -> app edge is not declared.
    let out = run_lint(&layering_fixture(), &["--check-dag"]);
    assert_eq!(out.status.code(), Some(1), "expected mismatch exit");
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("DAG MISMATCH"), "{text}");
    assert!(text.contains("no such dependency"), "{text}");
    assert!(text.contains("does not allow"), "{text}");

    // The repository's own lint-layers.txt must match its manifests
    // exactly — the same assertion CI runs.
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = run_lint(&repo_root, &["--check-dag"]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(0), "{text}");
    assert!(text.contains("matches"), "{text}");
}

#[test]
fn tainted_parallel_flags_transitive_rng_and_passes_pure_closure() {
    let positive = Fixture::new("taint-pos");
    positive.krate(
        "demo",
        "#![forbid(unsafe_code)]\n\
         pub fn noisy(xs: &[u64]) -> Vec<u64> {\n\
             par_map_vec(xs, |_, x| jitter(*x))\n\
         }\n\
         fn jitter(x: u64) -> u64 { x + rng_handle().gen_range(0..4) }\n",
    );
    let text = positive.json();
    assert!(
        text.contains("\"rule\":\"determinism/tainted-parallel\""),
        "expected tainted-parallel finding: {text}"
    );
    assert!(
        text.contains("jitter"),
        "witness chain names the source: {text}"
    );

    let negative = Fixture::new("taint-neg");
    negative.krate(
        "demo",
        "#![forbid(unsafe_code)]\n\
         pub fn clean(xs: &[u64]) -> Vec<u64> {\n\
             par_map_vec(xs, |_, x| double(*x))\n\
         }\n\
         fn double(x: u64) -> u64 { x * 2 }\n",
    );
    let text = negative.json();
    // NB: per-rule timing in `stats` always names every rule, so the
    // negative check must match the finding shape, not the bare id.
    assert!(
        !text.contains("\"rule\":\"determinism/tainted-parallel\""),
        "pure closure must not be flagged: {text}"
    );
}

#[test]
fn panic_reachable_flags_solve_entry_and_passes_total_path() {
    let positive = Fixture::new("panic-pos");
    positive.krate(
        "demo",
        "#![forbid(unsafe_code)]\n\
         pub fn solve_widths(v: &[u32]) -> u32 { pick(v) }\n\
         fn pick(v: &[u32]) -> u32 { *v.first().unwrap() }\n",
    );
    let text = positive.json();
    assert!(
        text.contains("\"rule\":\"robustness/panic-reachable\""),
        "expected panic-reachable finding: {text}"
    );
    assert!(
        text.contains("solve_widths"),
        "witness chain names the public entry: {text}"
    );

    let negative = Fixture::new("panic-neg");
    negative.krate(
        "demo",
        "#![forbid(unsafe_code)]\n\
         pub fn solve_widths(v: &[u32]) -> Option<u32> { pick(v) }\n\
         fn pick(v: &[u32]) -> Option<u32> { v.first().copied() }\n",
    );
    let text = negative.json();
    assert!(
        !text.contains("\"rule\":\"robustness/panic-reachable\""),
        "total path must not be flagged: {text}"
    );
}

#[test]
fn hot_path_without_telemetry_is_flagged_and_instrumented_passes() {
    let positive = Fixture::new("hot-pos");
    positive.krate("solver", "#![forbid(unsafe_code)]\nmod cg;\n");
    positive.write(
        "crates/solver/src/cg.rs",
        "pub fn solve_core(n: usize) -> usize { n + 1 }\n",
    );
    let text = positive.json();
    assert!(
        text.contains("\"rule\":\"obs/uninstrumented-hot-path\""),
        "expected uninstrumented finding: {text}"
    );
    assert!(text.contains("crates/solver/src/cg.rs"), "{text}");

    let negative = Fixture::new("hot-neg");
    negative.krate("solver", "#![forbid(unsafe_code)]\nmod cg;\n");
    negative.write(
        "crates/solver/src/cg.rs",
        "pub fn solve_core(n: usize) -> usize { let _s = span(\"cg.solve\"); n + 1 }\n",
    );
    let text = negative.json();
    assert!(
        !text.contains("\"rule\":\"obs/uninstrumented-hot-path\""),
        "instrumented hot path must not be flagged: {text}"
    );
}

#[test]
fn json_report_carries_call_graph_stats() {
    let fx = Fixture::new("stats");
    fx.krate(
        "demo",
        "#![forbid(unsafe_code)]\n\
         pub fn a() -> u64 { b() }\n\
         fn b() -> u64 { 7 }\n",
    );
    let text = fx.json();
    assert!(text.contains("\"stats\":{"), "{text}");
    assert!(text.contains("\"functions\":"), "{text}");
    assert!(text.contains("\"call_edges\":"), "{text}");
    assert!(text.contains("\"timing_ms\":"), "{text}");
}

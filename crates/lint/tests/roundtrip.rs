//! End-to-end CLI round trip over a throwaway fixture workspace:
//! `--deny` fails on fresh violations, `--update-baseline` grandfathers
//! them, `--deny` is green afterwards, and the ratchet still catches
//! *new* growth while merely warning about stale (shrunk) entries.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// A unique-per-test fixture workspace under the target tmpdir, removed
/// on drop so reruns start clean.
struct Fixture {
    root: PathBuf,
}

impl Fixture {
    fn new(tag: &str) -> Self {
        let root = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("lint-rt-{tag}"));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/demo/src")).unwrap();
        // Discovery is manifest-driven: the fixture needs a members
        // list and a package manifest, same as a real workspace.
        fs::write(
            root.join("Cargo.toml"),
            "[workspace]\nmembers = [\"crates/*\"]\n",
        )
        .unwrap();
        fs::write(
            root.join("crates/demo/Cargo.toml"),
            "[package]\nname = \"demo\"\nversion = \"0.1.0\"\n\n[dependencies]\n",
        )
        .unwrap();
        Self { root }
    }

    fn write(&self, rel: &str, source: &str) {
        let path = self.root.join(rel);
        fs::create_dir_all(path.parent().unwrap()).unwrap();
        fs::write(path, source).unwrap();
    }

    fn lint(&self, extra: &[&str]) -> Output {
        Command::new(env!("CARGO_BIN_EXE_ppdl-lint"))
            .arg("--root")
            .arg(&self.root)
            .args(extra)
            .output()
            .expect("spawn ppdl-lint")
    }
}

impl Drop for Fixture {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const VIOLATING_LIB: &str = r#"
use std::collections::HashMap;

pub fn lookup(m: &HashMap<u32, u32>, k: u32) -> u32 {
    *m.get(&k).unwrap()
}
"#;

#[test]
fn update_baseline_then_deny_is_green() {
    let fx = Fixture::new("green");
    fx.write("crates/demo/src/lib.rs", VIOLATING_LIB);

    // Fresh violations with no baseline: --deny fails.
    let denied = fx.lint(&["--deny"]);
    assert_eq!(denied.status.code(), Some(1), "expected deny failure");
    let text = String::from_utf8_lossy(&denied.stdout);
    assert!(text.contains("determinism/hashmap-iter"), "{text}");
    assert!(text.contains("robustness/unwrap-in-lib"), "{text}");

    // Grandfather them.
    let updated = fx.lint(&["--update-baseline"]);
    assert_eq!(updated.status.code(), Some(0));
    let baseline = fs::read_to_string(fx.root.join("lint-baseline.txt")).unwrap();
    assert!(baseline.contains("determinism/hashmap-iter"), "{baseline}");

    // Same workspace, same baseline: --deny is green.
    let green = fx.lint(&["--deny"]);
    assert_eq!(
        green.status.code(),
        Some(0),
        "stdout: {}\nstderr: {}",
        String::from_utf8_lossy(&green.stdout),
        String::from_utf8_lossy(&green.stderr)
    );
    let text = String::from_utf8_lossy(&green.stdout);
    assert!(text.contains("[baselined]"), "{text}");
}

#[test]
fn baseline_catches_growth_and_tolerates_shrink() {
    let fx = Fixture::new("ratchet");
    fx.write("crates/demo/src/lib.rs", VIOLATING_LIB);
    assert_eq!(fx.lint(&["--update-baseline"]).status.code(), Some(0));

    // A new violation in the same file GROWs past the baseline.
    fx.write(
        "crates/demo/src/lib.rs",
        &format!("{VIOLATING_LIB}\npub fn second(v: &[u32]) -> u32 {{ *v.first().unwrap() }}\n"),
    );
    let grown = fx.lint(&["--deny"]);
    assert_eq!(grown.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&grown.stdout).contains("GROWN"));

    // Shrinking below the baseline only warns (STALE), never fails.
    fx.write(
        "crates/demo/src/lib.rs",
        "pub fn fine(v: &[u32]) -> Option<u32> { v.first().copied() }\n",
    );
    let shrunk = fx.lint(&["--deny"]);
    assert_eq!(shrunk.status.code(), Some(0));
    assert!(String::from_utf8_lossy(&shrunk.stdout).contains("STALE"));
}

#[test]
fn inline_allow_with_reason_suppresses_in_deny_mode() {
    let fx = Fixture::new("allow");
    fx.write(
        "crates/demo/src/lib.rs",
        "#![forbid(unsafe_code)]\n\
         // ppdl-lint: allow(determinism/hashmap-iter) -- lookup only, never iterated\n\
         use std::collections::HashMap;\n\
         \n\
         // ppdl-lint: allow(determinism/hashmap-iter) -- lookup only, never iterated\n\
         pub fn get(m: &HashMap<u32, u32>, k: u32) -> Option<u32> { m.get(&k).copied() }\n",
    );
    let out = fx.lint(&["--deny"]);
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
}

#[test]
fn json_output_is_parseable_shape() {
    let fx = Fixture::new("json");
    fx.write("crates/demo/src/lib.rs", VIOLATING_LIB);
    let out = fx.lint(&["--json"]);
    let text = String::from_utf8_lossy(&out.stdout);
    let line = text.lines().next().unwrap_or("");
    assert!(line.starts_with("{\"findings\":["), "{text}");
    assert!(line.trim_end().ends_with('}'), "{text}");
    assert!(
        line.contains("\"rule\":\"determinism/hashmap-iter\""),
        "{text}"
    );
    assert!(
        line.contains("\"path\":\"crates/demo/src/lib.rs\""),
        "{text}"
    );
    assert!(line.contains("\"line\":"), "{text}");
}

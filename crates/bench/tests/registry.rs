//! Registry-level smoke tests: experiments run end to end through
//! `execute`, write manifests, and hit the artifact cache on repeat
//! runs with identical configuration.

use ppdl_bench::experiments::{execute, find};
use ppdl_bench::harness::Options;

fn opts_for(tag: &str, scale: f64) -> Options {
    let dir = std::env::temp_dir().join(format!("ppdl_registry_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut opts = Options::defaults(scale);
    opts.out_dir = dir;
    opts.fast = true;
    opts.seed = 3;
    opts
}

#[test]
fn fig7_warm_run_is_full_cache_hit() {
    let def = find("fig7").expect("registered");
    let opts = opts_for("fig7", 0.006);
    let cold = execute(def, &opts).expect("cold run");
    assert_eq!(cold.manifest.stages.len(), 5, "full five-stage pipeline");
    assert_eq!(
        cold.manifest.cache_hits(),
        0,
        "first run executes everything"
    );

    let warm = execute(def, &opts).expect("warm run");
    assert!(
        warm.manifest.full_cache_hit(),
        "identical config must serve every stage from the cache"
    );
    // Bitwise-identical headline metrics, cold vs warm.
    assert_eq!(cold.manifest.metrics, warm.manifest.metrics);

    let manifest_path = opts.out_dir.join("fig7_width_prediction_manifest.json");
    let json = std::fs::read_to_string(manifest_path).expect("manifest written");
    assert!(json.contains("\"full_cache_hit\": true"));
    assert!(json.contains("\"experiment\": \"fig7_width_prediction\""));
}

#[test]
fn table2_caches_generation_and_honours_no_cache() {
    let def = find("table2").expect("registered");
    let mut opts = opts_for("table2", 0.01);
    let cold = execute(def, &opts).expect("cold run");
    assert!(!cold.manifest.stages.is_empty());
    let warm = execute(def, &opts).expect("warm run");
    assert!(warm.manifest.full_cache_hit());
    assert_eq!(cold.manifest.metrics, warm.manifest.metrics);

    opts.no_cache = true;
    let uncached = execute(def, &opts).expect("uncached run");
    assert_eq!(uncached.manifest.cache_hits(), 0, "--no-cache must bypass");
    assert_eq!(cold.manifest.metrics, uncached.manifest.metrics);
}

//! Allocation tracking: the `mprof` substitute.
//!
//! Install [`TrackingAllocator`] as the global allocator in an
//! experiment binary:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: ppdl_bench::memtrack::TrackingAllocator =
//!     ppdl_bench::memtrack::TrackingAllocator::new();
//! ```
//!
//! then read [`current_bytes`]/[`peak_bytes`] around the phase of
//! interest (Table V peak memory), or start a [`Sampler`] to record a
//! memory-vs-time profile (Fig. 10).

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

static CURRENT: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A global allocator that counts live and peak heap bytes while
/// delegating all allocation to [`System`].
pub struct TrackingAllocator;

impl TrackingAllocator {
    /// Creates the allocator (const, so it can be a `static`).
    #[must_use]
    pub const fn new() -> Self {
        Self
    }
}

impl Default for TrackingAllocator {
    fn default() -> Self {
        Self::new()
    }
}

fn on_alloc(size: usize) {
    let now = CURRENT.fetch_add(size, Ordering::Relaxed) + size;
    // Lock-free peak update.
    let mut peak = PEAK.load(Ordering::Relaxed);
    while now > peak {
        match PEAK.compare_exchange_weak(peak, now, Ordering::Relaxed, Ordering::Relaxed) {
            Ok(_) => break,
            Err(p) => peak = p,
        }
    }
}

fn on_dealloc(size: usize) {
    CURRENT.fetch_sub(size, Ordering::Relaxed);
}

// SAFETY: delegates directly to the System allocator; the counter
// updates have no effect on allocation correctness.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = unsafe { System.alloc(layout) };
        if !p.is_null() {
            on_alloc(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        on_dealloc(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = unsafe { System.realloc(ptr, layout, new_size) };
        if !p.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        p
    }
}

/// Live heap bytes right now.
#[must_use]
pub fn current_bytes() -> usize {
    CURRENT.load(Ordering::Relaxed)
}

/// Peak heap bytes since start (or the last [`reset_peak`]).
#[must_use]
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak to the current live size, so a subsequent
/// [`peak_bytes`] reflects only the phase under measurement.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Bytes rendered as mebibytes (the paper's Table V unit; it reminds
/// the reader that 1 GB = 953.674 MiB).
#[must_use]
pub fn to_mib(bytes: usize) -> f64 {
    bytes as f64 / (1024.0 * 1024.0)
}

/// One sample of a memory profile.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MemorySample {
    /// Seconds since the sampler started.
    pub elapsed: f64,
    /// Live heap bytes at the sample instant.
    pub bytes: usize,
}

/// A background sampler recording `(elapsed, live bytes)` pairs — the
/// Fig. 10 memory-vs-time trace.
#[derive(Debug)]
pub struct Sampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<Vec<MemorySample>>>,
}

impl Sampler {
    /// Starts sampling every `interval` until [`stop`](Self::stop).
    #[must_use]
    pub fn start(interval: Duration) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        // ppdl-lint: allow(parallel/raw-spawn) -- single long-lived sampler thread with its own stop flag, not compute fan-out; the solver pool's thread budget does not apply
        let handle = std::thread::spawn(move || {
            let t0 = Instant::now();
            let mut samples = Vec::new();
            while !stop2.load(Ordering::Relaxed) {
                samples.push(MemorySample {
                    elapsed: t0.elapsed().as_secs_f64(),
                    bytes: current_bytes(),
                });
                std::thread::sleep(interval);
            }
            samples.push(MemorySample {
                elapsed: t0.elapsed().as_secs_f64(),
                bytes: current_bytes(),
            });
            samples
        });
        Self {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops sampling and returns the recorded profile.
    #[must_use]
    pub fn stop(mut self) -> Vec<MemorySample> {
        self.stop.store(true, Ordering::Relaxed);
        self.handle
            .take()
            // ppdl-lint: allow(robustness/unwrap-in-lib) -- stop() consumes self, so the handle is present exactly once by move semantics
            .expect("sampler stopped twice")
            .join()
            // ppdl-lint: allow(robustness/unwrap-in-lib) -- bench-only sampler; a panicked sampler thread should fail the bench run loudly
            .expect("sampler thread panicked")
    }
}

impl Drop for Sampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the tracking allocator is only installed in the experiment
    // binaries, not in this test harness, so counter values stay at
    // whatever the unit under test pushes through on_alloc/on_dealloc.

    #[test]
    fn counters_track_alloc_dealloc() {
        reset_peak();
        let before = current_bytes();
        on_alloc(1000);
        assert_eq!(current_bytes(), before + 1000);
        assert!(peak_bytes() >= before + 1000);
        on_dealloc(1000);
        assert_eq!(current_bytes(), before);
    }

    #[test]
    fn peak_is_monotone_until_reset() {
        on_alloc(5000);
        let p1 = peak_bytes();
        on_dealloc(5000);
        assert!(peak_bytes() >= p1);
        reset_peak();
        assert!(peak_bytes() <= p1);
    }

    #[test]
    fn mib_conversion() {
        assert!((to_mib(1024 * 1024) - 1.0).abs() < 1e-12);
        // The paper's footnote: 1 GB = 953.674 MiB.
        assert!((to_mib(1_000_000_000) - 953.674).abs() < 1e-2);
    }

    #[test]
    fn sampler_records_monotone_timestamps() {
        let s = Sampler::start(Duration::from_millis(1));
        std::thread::sleep(Duration::from_millis(10));
        let profile = s.stop();
        assert!(profile.len() >= 2);
        for w in profile.windows(2) {
            assert!(w[1].elapsed >= w[0].elapsed);
        }
    }
}

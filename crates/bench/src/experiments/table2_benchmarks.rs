//! Table II: the benchmark suite itself — published node / resistor /
//! source / load counts vs what the synthetic generator produces at
//! the requested scale.
//!
//! The generator targets the scaled node count and the per-net source
//! density (half the published `#v`, which counts both supply nets);
//! resistor and load counts follow from the two-layer crossbar
//! topology, so their ratios are structural rather than fitted.

use std::fmt::Write as _;

use ppdl_core::pipeline::{run_stage, ArtifactCache, BenchmarkSourceStage, PipelineCtx};
use ppdl_netlist::IbmPgPreset;

use super::{base_config, manifest_for, DynError, RunOutput};
use crate::harness::{format_table, write_primary_csv, Options};

pub(super) fn run(opts: &Options, cache: Option<&ArtifactCache>) -> Result<RunOutput, DynError> {
    let mut manifest = manifest_for("table2_benchmarks", opts);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Table II reproduction (scale {} of published sizes, seed {})\n",
        opts.scale, opts.seed
    );
    let mut rows = Vec::new();
    for preset in IbmPgPreset::ALL {
        // Generation only — the uncalibrated source stage, so repeated
        // table runs decode the benchmark from the artifact cache.
        let mut ctx = PipelineCtx::new(base_config(opts), cache);
        let stage = BenchmarkSourceStage::uncalibrated(preset, opts.scale, opts.seed);
        if let Err(e) = run_stage(&stage, &mut ctx) {
            let _ = writeln!(report, "{preset}: {e}");
            continue;
        }
        manifest.record_stages(preset.name(), &ctx.records);
        let got = ctx.bench()?.bench.network().stats();
        let pub_stats = preset.published_stats();
        let scale_pub = |v: usize| -> String { format!("{:.0}", v as f64 * opts.scale) };
        manifest.add_metric(&format!("{preset}_nodes"), got.nodes as f64);
        rows.push(vec![
            preset.name().to_string(),
            got.nodes.to_string(),
            scale_pub(pub_stats.nodes),
            got.resistors.to_string(),
            scale_pub(pub_stats.resistors),
            got.sources.to_string(),
            // One of the two symmetric nets is modelled.
            scale_pub(pub_stats.sources / 2),
            got.loads.to_string(),
            scale_pub(pub_stats.loads),
        ]);
    }
    let header = [
        "PG circuit",
        "#n",
        "scaled paper #n",
        "#r",
        "scaled paper #r",
        "#v",
        "scaled paper #v/2",
        "#i",
        "scaled paper #i",
    ];
    let _ = writeln!(report, "{}", format_table(&header, &rows));
    let path = write_primary_csv(opts, "table2_benchmarks.csv", &header, &rows)?;
    manifest.add_output(&path);
    let _ = writeln!(report, "wrote {}", path.display());
    let _ = writeln!(
        report,
        "\nnote: the generator fits #n and the per-net #v density; #r and #i\n\
         follow from the two-layer crossbar topology (ratios differ from the\n\
         multi-layer IBM extractions; see DESIGN.md section 2)."
    );
    Ok(RunOutput { manifest, report })
}

//! Networked serving under concurrent load: client count vs batch
//! latency percentiles.
//!
//! `serve_throughput` measures the in-process batching engine; this
//! experiment measures the whole networked path the registry listener
//! adds — TCP framing, per-connection sessions, routed admission —
//! under increasing client concurrency. One [`TrainedBundle`] is
//! trained once (cached pipeline), installed into a [`ModelRegistry`],
//! and served on a loopback TCP port; each round spawns N concurrent
//! clients that stream flush-delimited request batches and verify
//! every reply. The reported p50/p95/p99 come from the per-bundle
//! `service/batch_ms` telemetry histogram — the same numbers a
//! production operator would scrape — alongside lifetime throughput.

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Write as IoWrite};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Instant;

use ppdl_core::pipeline::ArtifactCache;
use ppdl_core::predict::TrainedBundle;
use ppdl_netlist::IbmPgPreset;
use ppdl_service::{serve_tcp, Json, ModelRegistry, NetConfig, ServiceConfig};

use super::{base_builder, manifest_for, DynError, RunOutput};
use crate::harness::{format_table, write_primary_csv, Options};

/// Flush-delimited batches each client sends per round.
const BATCHES_PER_CLIENT: usize = 3;
/// Requests per batch; small enough that every client count finishes
/// quickly, large enough that batches actually form.
const REQUESTS_PER_BATCH: usize = 8;
/// The concurrency sweep.
const CLIENT_COUNTS: [usize; 4] = [1, 2, 4, 8];

/// One client's workload: unique payloads (no cross-client cache
/// hits), every reply verified. Returns the ok-reply count.
fn run_client(addr: SocketAddr, client: usize) -> Result<usize, String> {
    let stream = TcpStream::connect(addr).map_err(|e| e.to_string())?;
    let mut writer = stream.try_clone().map_err(|e| e.to_string())?;
    let mut reader = BufReader::new(stream);
    let mut ok = 0usize;
    let mut line = String::new();
    for batch in 0..BATCHES_PER_CLIENT {
        for i in 0..REQUESTS_PER_BATCH {
            let seed = 1 + (client * 10_000 + batch * 100 + i) as u64;
            let gamma = 0.05 + 0.002 * (i as f64);
            writeln!(
                writer,
                "{{\"id\":\"c{client}-b{batch}-{i}\",\"gamma\":{gamma},\"seed\":{seed}}}"
            )
            .map_err(|e| e.to_string())?;
        }
        writeln!(writer, "{{\"cmd\":\"flush\"}}").map_err(|e| e.to_string())?;
        writer.flush().map_err(|e| e.to_string())?;
        for _ in 0..REQUESTS_PER_BATCH {
            line.clear();
            let n = reader.read_line(&mut line).map_err(|e| e.to_string())?;
            if n == 0 {
                return Err("server closed the connection mid-batch".to_string());
            }
            let reply = Json::parse(line.trim()).map_err(|e| e.to_string())?;
            match reply.get("status").and_then(Json::as_str) {
                Some("ok") => ok += 1,
                _ => return Err(format!("unexpected reply: {}", line.trim())),
            }
        }
    }
    let _ = writeln!(writer, "{{\"cmd\":\"quit\"}}");
    Ok(ok)
}

pub(super) fn run(opts: &Options, cache: Option<&ArtifactCache>) -> Result<RunOutput, DynError> {
    let mut manifest = manifest_for("serve_saturation", opts);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Networked serving saturation on ibmpg2 (scale {}, seed {}, \
         {BATCHES_PER_CLIENT}x{REQUESTS_PER_BATCH} requests/client)\n",
        opts.scale, opts.seed
    );

    let bundle = TrainedBundle::train(
        IbmPgPreset::Ibmpg2,
        opts.scale,
        opts.seed,
        base_builder(opts).build(),
        cache,
    )?;
    manifest.set_config("straps", bundle.golden_widths.len());

    let mut rows = Vec::new();
    for clients in CLIENT_COUNTS {
        // Fresh registry and listener per point: zeroed counters, a
        // cold (disabled) cache so latency measures inference, and a
        // client-count-independent admission bound.
        let registry = Arc::new(ModelRegistry::new(ServiceConfig {
            queue_capacity: REQUESTS_PER_BATCH * BATCHES_PER_CLIENT,
            max_batch: REQUESTS_PER_BATCH,
            cache_capacity: 0,
            max_pending: 4096,
        }));
        registry.install("m", bundle.clone())?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let net = NetConfig {
            max_clients: clients + 1,
            ..NetConfig::default()
        };
        let server = {
            let registry = Arc::clone(&registry);
            // ppdl-lint: allow(parallel/raw-spawn) -- the listener must run beside the clients this harness drives; its compute still goes through par_map_vec
            std::thread::spawn(move || serve_tcp(&registry, &listener, &net))
        };

        let t0 = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|client| {
                // ppdl-lint: allow(parallel/raw-spawn) -- concurrent load generators blocking on socket I/O are the experiment's independent variable
                std::thread::spawn(move || run_client(addr, client))
            })
            .collect();
        let mut ok = 0usize;
        for handle in handles {
            ok += handle
                .join()
                .map_err(|_| "client thread panicked")?
                .map_err(DynError::from)?;
        }
        let wall = t0.elapsed().as_secs_f64();
        let expected = clients * BATCHES_PER_CLIENT * REQUESTS_PER_BATCH;
        if ok != expected {
            return Err(format!("{ok} ok replies, expected {expected}").into());
        }

        let mut shutdown = TcpStream::connect(addr)?;
        shutdown.write_all(b"{\"cmd\":\"shutdown\"}\n")?;
        drop(shutdown);
        server.join().map_err(|_| "server thread panicked")??;

        let core = registry
            .get("m")
            .ok_or("bundle 'm' missing after the round")?;
        let batch_ms = core
            .obs()
            .histogram("service/batch_ms", &ppdl_obs::latency_buckets_ms());
        let quantile = |q: f64| {
            batch_ms
                .quantile(q)
                .ok_or("no batch latency samples recorded")
        };
        let (p50, p95, p99) = (quantile(0.50)?, quantile(0.95)?, quantile(0.99)?);
        let stats = core.stats();
        let rps = ok as f64 / wall;
        manifest.add_metric(&format!("c{clients}_p50_ms"), p50);
        manifest.add_metric(&format!("c{clients}_p95_ms"), p95);
        manifest.add_metric(&format!("c{clients}_p99_ms"), p99);
        manifest.add_metric(&format!("c{clients}_rps"), rps);
        rows.push(vec![
            clients.to_string(),
            ok.to_string(),
            stats.batches.to_string(),
            format!("{p50:.2}"),
            format!("{p95:.2}"),
            format!("{p99:.2}"),
            format!("{rps:.1}"),
        ]);
    }

    let header = [
        "clients",
        "replies",
        "batches",
        "p50 (ms)",
        "p95 (ms)",
        "p99 (ms)",
        "throughput (req/s)",
    ];
    let _ = writeln!(report, "{}", format_table(&header, &rows));
    let path = write_primary_csv(opts, "serve_saturation.csv", &header, &rows)?;
    manifest.add_output(&path);
    let _ = writeln!(report, "wrote {}", path.display());
    Ok(RunOutput { manifest, report })
}

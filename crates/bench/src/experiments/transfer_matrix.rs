//! Cross-preset transfer: how well does a width surrogate trained on
//! one IBM-PG benchmark generalise to the others?
//!
//! For each backend (MLP, CNN, and — outside `--fast` — the
//! encoder-decoder) the experiment trains one model per train preset
//! and evaluates it on every preset's conventionally sized design,
//! emitting a train-preset × test-preset error matrix. The diagonal is
//! in-sample accuracy; the off-diagonal entries measure transfer. The
//! generate + size prefix runs once per preset through the cached
//! pipeline and is shared across backends.

use std::fmt::Write as _;

use ppdl_core::experiment;
use ppdl_core::pipeline::{run_stage, ArtifactCache, FeatureExtractStage, PipelineCtx, TrainStage};
use ppdl_core::BackendKind;
use ppdl_netlist::IbmPgPreset;

use super::{base_config, manifest_for, DynError, RunOutput};
use crate::harness::{format_table, write_primary_csv, Options};

pub(super) fn run(opts: &Options, cache: Option<&ArtifactCache>) -> Result<RunOutput, DynError> {
    let mut manifest = manifest_for("transfer_matrix", opts);
    let presets: &[IbmPgPreset] = if opts.fast {
        &[IbmPgPreset::Ibmpg1, IbmPgPreset::Ibmpg2]
    } else {
        &[
            IbmPgPreset::Ibmpg1,
            IbmPgPreset::Ibmpg2,
            IbmPgPreset::Ibmpg3,
            IbmPgPreset::Ibmpg4,
        ]
    };
    let backends: &[BackendKind] = if opts.fast {
        &[BackendKind::Mlp, BackendKind::Cnn]
    } else {
        &BackendKind::ALL
    };
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Cross-preset transfer matrix (scale {}, seed {}, backends {})\n",
        opts.scale,
        opts.seed,
        backends
            .iter()
            .map(|b| b.tag())
            .collect::<Vec<_>>()
            .join("/")
    );

    // Generate + conventionally size every preset once; all backends
    // train and test against the same golden substrates.
    let mut sized = Vec::new();
    for &preset in presets {
        let mut ctx = PipelineCtx::new(base_config(opts), cache);
        run_stage(
            &experiment::preset_source(preset, opts.scale, opts.seed),
            &mut ctx,
        )?;
        run_stage(&FeatureExtractStage, &mut ctx)?;
        manifest.record_stages(preset.name(), &ctx.records);
        sized.push((preset, ctx));
    }

    let mut csv_rows = Vec::new();
    for &backend in backends {
        let mut matrix_rows = Vec::new();
        for (train_preset, train_ctx) in &sized {
            let mut ctx = train_ctx.clone();
            ctx.records.clear();
            ctx.config.backend = backend;
            run_stage(&TrainStage, &mut ctx)?;
            let prefix = format!("{}_{}", backend.tag(), train_preset.name());
            manifest.record_stages(&prefix, &ctx.records);
            let trained = ctx.trained()?;
            let mut row = vec![train_preset.name().to_string()];
            for (test_preset, test_ctx) in &sized {
                let s = test_ctx.sizing()?;
                let m = trained.predictor.evaluate(&s.sized, &s.golden_widths)?;
                let key = format!(
                    "{}.{}.{}",
                    backend.tag(),
                    train_preset.name(),
                    test_preset.name()
                );
                manifest.add_metric(&format!("{key}.r2"), m.r2);
                manifest.add_metric(&format!("{key}.mse"), m.mse_scaled);
                row.push(format!("{:.3}", m.r2));
                csv_rows.push(vec![
                    backend.tag().to_string(),
                    train_preset.name().to_string(),
                    test_preset.name().to_string(),
                    format!("{}", m.r2),
                    format!("{}", m.mse_scaled),
                    if train_preset == test_preset {
                        "in-sample"
                    } else {
                        "transfer"
                    }
                    .to_string(),
                ]);
            }
            matrix_rows.push(row);
        }
        let mut header = vec![format!("{} train\\test", backend.tag())];
        header.extend(presets.iter().map(|p| p.name().to_string()));
        let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
        let _ = writeln!(
            report,
            "{} (r², rows train / columns test)\n{}",
            backend.label(),
            format_table(&header_refs, &matrix_rows)
        );
    }

    let header = ["backend", "train", "test", "r2", "mse_scaled", "kind"];
    let path = write_primary_csv(opts, "transfer_matrix.csv", &header, &csv_rows)?;
    manifest.add_output(&path);
    let _ = writeln!(report, "wrote {}", path.display());
    Ok(RunOutput { manifest, report })
}

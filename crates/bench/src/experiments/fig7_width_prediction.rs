//! Fig. 7: width-prediction quality on ibmpg2 — (a) predicted vs
//! golden scatter, (b) signed error histogram.
//!
//! The scatter pairs come from the *same* trained predictor the
//! pipeline produced (the legacy binary re-trained a second model just
//! to get them — the exact double-training foot-gun the artifact cache
//! exists to prevent).

use std::fmt::Write as _;

use ppdl_core::experiment;
use ppdl_core::pipeline::{ArtifactCache, Pipeline, PipelineCtx};
use ppdl_netlist::IbmPgPreset;

use super::{base_config, manifest_for, DynError, RunOutput};
use crate::harness::{format_table, histogram, write_csv, write_primary_csv, Options};

pub(super) fn run(opts: &Options, cache: Option<&ArtifactCache>) -> Result<RunOutput, DynError> {
    let mut manifest = manifest_for("fig7_width_prediction", opts);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Fig. 7 reproduction on ibmpg2 (scale {}, seed {})\n",
        opts.scale, opts.seed
    );
    let mut ctx = PipelineCtx::new(base_config(opts), cache);
    Pipeline::standard(experiment::preset_source(
        IbmPgPreset::Ibmpg2,
        opts.scale,
        opts.seed,
    ))
    .run(&mut ctx)?;
    manifest.record_stages("ibmpg2", &ctx.records);

    // (golden, predicted) pairs on the test design, from the one
    // trained predictor in the train slot.
    let predictor = &ctx.trained()?.predictor;
    let pairs =
        predictor.scatter_data(&ctx.predicted()?.test_bench, &ctx.sizing()?.golden_widths)?;
    let metrics = &ctx.validated()?.metrics;

    // (a) scatter: write all pairs; print summary statistics.
    let scatter_rows: Vec<Vec<String>> = pairs
        .iter()
        .map(|(g, p)| vec![format!("{g:.4}"), format!("{p:.4}")])
        .collect();
    let scatter_path = write_primary_csv(
        opts,
        "fig7a_scatter.csv",
        &["golden_um", "predicted_um"],
        &scatter_rows,
    )?;
    manifest.add_output(&scatter_path);
    let _ = writeln!(
        report,
        "scatter: {} interconnects, correlation {:.3}, r2 {:.3}",
        pairs.len(),
        metrics.correlation,
        metrics.r2
    );
    manifest.add_metric("r2", metrics.r2);
    manifest.add_metric("correlation", metrics.correlation);

    // (b) error histogram over golden - predicted.
    let errors: Vec<f64> = pairs.iter().map(|(g, p)| g - p).collect();
    let lo = errors.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = errors.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-9);
    let bins = histogram(&errors, lo - 0.05 * span, hi + 0.05 * span, 41);
    let hist_rows: Vec<Vec<String>> = bins
        .iter()
        .map(|(c, n)| vec![format!("{c:.4}"), n.to_string()])
        .collect();
    let hist_path = write_csv(
        &opts.out_dir,
        "fig7b_error_histogram.csv",
        &["error_um", "count"],
        &hist_rows,
    )?;
    manifest.add_output(&hist_path);

    // Shape check the paper emphasises: mass concentrated near zero.
    let near_zero = errors.iter().filter(|e| e.abs() <= 0.1 * span).count();
    let mut rows = vec![
        vec![
            "fraction within 10% of error span of 0".into(),
            format!("{:.1}%", 100.0 * near_zero as f64 / errors.len() as f64),
        ],
        vec![
            "overpredicted (error < 0)".into(),
            errors.iter().filter(|e| **e < 0.0).count().to_string(),
        ],
        vec![
            "underpredicted (error > 0)".into(),
            errors.iter().filter(|e| **e > 0.0).count().to_string(),
        ],
        vec![
            "max |error| (um)".into(),
            format!("{:.3}", lo.abs().max(hi.abs())),
        ],
    ];
    rows.push(vec!["mse (um^2)".into(), format!("{:.4}", metrics.mse_um2)]);
    manifest.add_metric("mse_um2", metrics.mse_um2);
    let _ = writeln!(report, "{}", format_table(&["statistic", "value"], &rows));
    let _ = writeln!(
        report,
        "wrote {} and {}",
        scatter_path.display(),
        hist_path.display()
    );
    Ok(RunOutput { manifest, report })
}

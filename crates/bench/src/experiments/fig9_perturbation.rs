//! Fig. 9: prediction MSE vs perturbation size γ ∈ {10..30 %} for the
//! three perturbation kinds, on ibmpg2 and ibmpg6.
//!
//! The model is trained once per benchmark on the sized design — the
//! generate/size/train prefix runs through the cached pipeline stages,
//! and the cache layer *asserts* the sweep itself never retrains. For
//! each (γ, kind) the *initial* design is re-perturbed, re-sized by the
//! conventional flow (its widths are the golden answer for the
//! perturbed spec), and the model's MSE against those golden widths is
//! reported as MSE(%).

use std::fmt::Write as _;

use ppdl_core::pipeline::{run_stage, ArtifactCache, FeatureExtractStage, PipelineCtx, TrainStage};
use ppdl_core::{
    experiment, run_perturbation_sweep, ConventionalConfig, ConventionalFlow, PerturbationKind,
};
use ppdl_netlist::IbmPgPreset;

use super::{base_builder, manifest_for, DynError, RunOutput};
use crate::harness::{format_table, write_csv, write_primary_csv, Options};

pub(super) fn run(opts: &Options, cache: Option<&ArtifactCache>) -> Result<RunOutput, DynError> {
    let mut manifest = manifest_for("fig9_perturbation", opts);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Fig. 9 reproduction (MSE vs perturbation size, scale {}, seed {})\n",
        opts.scale, opts.seed
    );
    let gammas = [0.10, 0.15, 0.20, 0.25, 0.30];
    let mut combined_rows = Vec::new();

    for preset in [IbmPgPreset::Ibmpg2, IbmPgPreset::Ibmpg6] {
        // A finer widening step than the default keeps the golden
        // widths from jumping in coarse quanta between gamma points;
        // it feeds the feature-extract cache key, so these sizings
        // never collide with the default-widen artifacts.
        let config = base_builder(opts)
            .conventional(ConventionalConfig {
                widen_factor: 1.15,
                ..ConventionalConfig::default()
            })
            .build();
        let mut ctx = PipelineCtx::new(config, cache);
        run_stage(
            &experiment::preset_source(preset, opts.scale, opts.seed),
            &mut ctx,
        )?;
        run_stage(&FeatureExtractStage, &mut ctx)?;
        run_stage(&TrainStage, &mut ctx)?;
        manifest.record_stages(preset.name(), &ctx.records);
        let initial = ctx.bench()?.bench.clone();
        let predictor = ctx.trained()?.predictor.clone();
        let conventional = ConventionalFlow::new(ctx.config.conventional.clone());

        let mut rows = Vec::new();
        let mut csv_rows = Vec::new();
        let repeats = 3u64;
        // Kind-major grid with `repeats` seeded draws per (kind, γ)
        // point — the random signs make any single draw noisy. Every
        // point re-sizes the perturbed spec independently, so the whole
        // grid evaluates in parallel across PPDL_THREADS.
        let points =
            experiment::perturbation_grid(&gammas, &PerturbationKind::ALL, opts.seed, repeats)?;
        let trains_before_sweep = cache.map(|c| c.stats().executions("train"));
        let results = run_perturbation_sweep(&initial, &points, |perturbed, _| {
            // Golden answer for the perturbed spec.
            let (sized_p, golden_p) = conventional.run(perturbed)?;
            let m = predictor.evaluate(&sized_p, &golden_p.widths)?;
            // MSE(%): squared error relative to the mean golden width —
            // a scale-free percentage that does not blow up when the
            // golden widths are tightly clustered.
            let mean_w = golden_p.widths.iter().sum::<f64>() / golden_p.widths.len() as f64;
            Ok(100.0 * m.mse_um2 / (mean_w * mean_w))
        });
        // The sweep train-once guarantee, enforced by the cache layer:
        // training happened in the prefix (at most once per key), never
        // inside the per-point sweep.
        if let (Some(c), Some(before)) = (cache, trains_before_sweep) {
            assert_eq!(
                c.stats().executions("train"),
                before,
                "perturbation sweep must not retrain the predictor"
            );
        }
        let mut point = results.iter().zip(&points);
        for kind in PerturbationKind::ALL {
            let mut cells = vec![kind.label().to_string()];
            for &gamma in &gammas {
                let mut sum = 0.0;
                let mut count = 0usize;
                for _ in 0..repeats {
                    let Some((res, p)) = point.next() else {
                        return Err(
                            "perturbation grid exhausted early (kind x gamma x repeats)".into()
                        );
                    };
                    match res {
                        Ok(mse_pct) => {
                            sum += mse_pct;
                            count += 1;
                        }
                        Err(e) => {
                            let _ = writeln!(
                                report,
                                "{preset} gamma={gamma} {kind:?} seed={}: {e}",
                                p.seed()
                            );
                        }
                    }
                }
                let mse_pct = if count > 0 {
                    sum / count as f64
                } else {
                    f64::NAN
                };
                cells.push(format!("{mse_pct:.1}"));
                csv_rows.push(vec![
                    kind.label().to_string(),
                    format!("{gamma:.2}"),
                    format!("{mse_pct:.3}"),
                ]);
                combined_rows.push(vec![
                    preset.name().to_string(),
                    kind.label().to_string(),
                    format!("{gamma:.2}"),
                    format!("{mse_pct:.3}"),
                ]);
            }
            rows.push(cells);
        }
        let header = ["perturbation", "10%", "15%", "20%", "25%", "30%"];
        let _ = writeln!(
            report,
            "{}:\n{}",
            preset.name(),
            format_table(&header, &rows)
        );
        let path = write_csv(
            &opts.out_dir,
            &format!("fig9_{preset}_mse_vs_gamma.csv"),
            &["kind", "gamma", "mse_pct"],
            &csv_rows,
        )?;
        manifest.add_output(&path);
    }
    if opts.csv.is_some() {
        // --csv asks for a single file: the combined grid with a
        // preset column.
        let path = write_primary_csv(
            opts,
            "fig9_mse_vs_gamma.csv",
            &["preset", "kind", "gamma", "mse_pct"],
            &combined_rows,
        )?;
        manifest.add_output(&path);
    }
    let _ = writeln!(
        report,
        "wrote fig9_*_mse_vs_gamma.csv to {}",
        opts.out_dir.display()
    );
    Ok(RunOutput { manifest, report })
}

//! Table IV: convergence time of the conventional flow vs
//! PowerPlanningDL, and the resulting speedup, for all 8 benchmarks.
//!
//! Conventional time = one full power-grid analysis of the test design
//! (the paper's best-case, single-design-iteration cost); DL time =
//! width inference + Kirchhoff IR-drop prediction. Both are stored in
//! the stage artifacts, so a cache-warm run reports the timings from
//! when the stages actually executed.

use std::fmt::Write as _;

use ppdl_core::pipeline::ArtifactCache;
use ppdl_netlist::IbmPgPreset;

use super::{manifest_for, DynError, RunOutput};
use crate::harness::{format_table, run_preset_cached, write_primary_csv, Options};

/// The paper's Table IV, for side-by-side comparison.
fn paper_speedup(preset: IbmPgPreset) -> f64 {
    match preset {
        IbmPgPreset::Ibmpg1 => 1.92,
        IbmPgPreset::Ibmpg2 => 1.97,
        IbmPgPreset::Ibmpg3 => 3.59,
        IbmPgPreset::Ibmpg4 => 4.42,
        IbmPgPreset::Ibmpg5 => 5.87,
        IbmPgPreset::Ibmpg6 => 5.60,
        IbmPgPreset::IbmpgNew1 => 4.77,
        IbmPgPreset::IbmpgNew2 => 4.47,
    }
}

pub(super) fn run(opts: &Options, cache: Option<&ArtifactCache>) -> Result<RunOutput, DynError> {
    let mut manifest = manifest_for("table4_speedup", opts);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Table IV reproduction (scale {} of Table II sizes, seed {})\n",
        opts.scale, opts.seed
    );
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    for preset in IbmPgPreset::ALL {
        let (outcome, records) = match run_preset_cached(preset, opts, cache) {
            Ok(o) => o,
            Err(e) => {
                let _ = writeln!(report, "{preset}: {e}");
                continue;
            }
        };
        manifest.record_stages(preset.name(), &records);
        manifest.add_metric(&format!("{preset}_speedup"), outcome.timing.speedup);
        speedups.push(outcome.timing.speedup);
        rows.push(vec![
            preset.name().to_string(),
            format!("{:.4}", outcome.timing.conventional.as_secs_f64()),
            format!("{:.4}", outcome.timing.dl.as_secs_f64()),
            format!("{:.2}x", outcome.timing.speedup),
            format!("{:.2}x", paper_speedup(preset)),
        ]);
    }
    if !speedups.is_empty() {
        manifest.add_metric(
            "mean_speedup",
            speedups.iter().sum::<f64>() / speedups.len() as f64,
        );
    }
    let header = [
        "PG circuit",
        "Conventional (s)",
        "PowerPlanningDL (s)",
        "Speedup",
        "paper speedup",
    ];
    let _ = writeln!(report, "{}", format_table(&header, &rows));
    let path = write_primary_csv(opts, "table4_speedup.csv", &header, &rows)?;
    manifest.add_output(&path);
    let _ = writeln!(report, "wrote {}", path.display());
    Ok(RunOutput { manifest, report })
}

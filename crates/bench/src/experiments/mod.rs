//! The experiment registry: every paper table/figure reproduction as a
//! named entry over the shared pipeline engine.
//!
//! Each experiment is a function from [`Options`] (one parser, one
//! `--help`) and an optional [`ArtifactCache`] to a [`RunOutput`]: a
//! structured [`RunManifest`] plus the human-readable report text. The
//! `ppdl-bench` binary dispatches `run <name>` through [`find`]; the
//! legacy per-table binaries are thin aliases over [`run_cli`].

use std::time::Instant;

use ppdl_core::pipeline::{ArtifactCache, RunManifest};
use ppdl_core::DlFlowConfig;

use crate::harness::{help_text, Options, ParseError};

mod ablation_depth;
mod ablation_optimizer;
mod fig10_memory_profile;
mod fig4b_table1;
mod fig7_width_prediction;
mod fig8_ir_maps;
mod fig9_perturbation;
mod kernels;
mod serve_saturation;
mod serve_throughput;
mod synth_oracle;
mod table2_benchmarks;
mod table3_worst_ir;
mod table4_speedup;
mod table5_accuracy_memory;
mod transfer_matrix;

/// Error type experiments propagate: anything printable.
pub type DynError = Box<dyn std::error::Error + Send + Sync>;

/// What one experiment run produces.
pub struct RunOutput {
    /// The structured run record (stages, cache hits, metrics).
    pub manifest: RunManifest,
    /// The human-readable report (tables, notes).
    pub report: String,
}

/// The signature every registered experiment implements.
pub type RunFn = fn(&Options, Option<&ArtifactCache>) -> Result<RunOutput, DynError>;

/// One registry entry.
pub struct ExperimentDef {
    /// Canonical name (`ppdl-bench run <name>`; also the legacy binary
    /// name).
    pub name: &'static str,
    /// Shorthand aliases (`table3` for `table3_worst_ir`, …).
    pub aliases: &'static [&'static str],
    /// One-line description for `ppdl-bench list`.
    pub title: &'static str,
    /// Default `--scale` when the flag is absent.
    pub default_scale: f64,
    /// The experiment body.
    pub run: RunFn,
}

/// Every registered experiment, in paper order.
pub const REGISTRY: &[ExperimentDef] = &[
    ExperimentDef {
        name: "table2_benchmarks",
        aliases: &["table2"],
        title: "Table II: generated benchmark suite vs published sizes",
        default_scale: 0.02,
        run: table2_benchmarks::run,
    },
    ExperimentDef {
        name: "table3_worst_ir",
        aliases: &["table3"],
        title: "Table III: worst-case IR drop, conventional vs DL",
        default_scale: 0.02,
        run: table3_worst_ir::run,
    },
    ExperimentDef {
        name: "table4_speedup",
        aliases: &["table4"],
        title: "Table IV: convergence-time speedup on all 8 benchmarks",
        default_scale: 0.02,
        run: table4_speedup::run,
    },
    ExperimentDef {
        name: "table5_accuracy_memory",
        aliases: &["table5"],
        title: "Table V: r², MSE, and peak memory per benchmark",
        default_scale: 0.02,
        run: table5_accuracy_memory::run,
    },
    ExperimentDef {
        name: "fig4b_table1",
        aliases: &["fig4b", "table1"],
        title: "Table I / Fig. 4(b): feature ablation + windowed r²",
        default_scale: 0.02,
        run: fig4b_table1::run,
    },
    ExperimentDef {
        name: "fig7_width_prediction",
        aliases: &["fig7"],
        title: "Fig. 7: width-prediction scatter and error histogram",
        default_scale: 0.02,
        run: fig7_width_prediction::run,
    },
    ExperimentDef {
        name: "fig8_ir_maps",
        aliases: &["fig8"],
        title: "Fig. 8: 100x100 IR-drop maps, conventional vs predicted",
        default_scale: 0.02,
        run: fig8_ir_maps::run,
    },
    ExperimentDef {
        name: "fig9_perturbation",
        aliases: &["fig9"],
        title: "Fig. 9: prediction MSE vs perturbation size γ",
        default_scale: 0.015,
        run: fig9_perturbation::run,
    },
    ExperimentDef {
        name: "fig10_memory_profile",
        aliases: &["fig10"],
        title: "Fig. 10: memory-vs-time profile of the DL flow",
        default_scale: 0.02,
        run: fig10_memory_profile::run,
    },
    ExperimentDef {
        name: "serve_throughput",
        aliases: &["serve"],
        title: "Service: ECO batch throughput vs batch size, warm-cache replay",
        default_scale: 0.015,
        run: serve_throughput::run,
    },
    ExperimentDef {
        name: "serve_saturation",
        aliases: &["saturation"],
        title: "Service: networked latency percentiles vs concurrent client count",
        default_scale: 0.015,
        run: serve_saturation::run,
    },
    ExperimentDef {
        name: "ablation_depth",
        aliases: &["depth"],
        title: "Ablation: hidden-layer depth of the width model",
        default_scale: 0.015,
        run: ablation_depth::run,
    },
    ExperimentDef {
        name: "ablation_optimizer",
        aliases: &["optimizer"],
        title: "Ablation: Adam vs SGD/momentum/RMSProp",
        default_scale: 0.015,
        run: ablation_optimizer::run,
    },
    ExperimentDef {
        name: "transfer_matrix",
        aliases: &["transfer"],
        title: "Transfer: per-backend train-preset x test-preset error matrix",
        default_scale: 0.015,
        run: transfer_matrix::run,
    },
    ExperimentDef {
        name: "kernels",
        aliases: &["kernel_bench"],
        title: "Kernels: tiled GEMM vs scalar, blocked SpMV, CG iterations per preconditioner",
        default_scale: 0.02,
        run: kernels::run,
    },
    ExperimentDef {
        name: "synth_oracle",
        aliases: &["synth"],
        title:
            "Synthesis: predictor-in-the-loop template annealing vs conventional full-solve count",
        default_scale: 0.01,
        run: synth_oracle::run,
    },
];

/// Looks up an experiment by canonical name or alias.
#[must_use]
pub fn find(name: &str) -> Option<&'static ExperimentDef> {
    REGISTRY
        .iter()
        .find(|d| d.name == name || d.aliases.contains(&name))
}

/// The base flow configuration every experiment derives from `--fast`
/// ([`base_builder`] with no extra knobs).
#[must_use]
pub fn base_config(opts: &Options) -> DlFlowConfig {
    base_builder(opts).build()
}

/// A flow-configuration builder seeded from the shared options; chain
/// experiment-specific knobs before `build()` instead of mutating
/// [`DlFlowConfig`] fields.
#[must_use]
pub fn base_builder(opts: &Options) -> ppdl_core::DlFlowConfigBuilder {
    let mut builder = DlFlowConfig::builder();
    if opts.fast {
        builder = builder.fast();
    }
    if let Some(kind) = opts.precond {
        builder = builder.preconditioner(kind);
    }
    builder
}

/// Starts a manifest with the shared configuration echoed.
#[must_use]
pub fn manifest_for(name: &str, opts: &Options) -> RunManifest {
    let mut m = RunManifest::new(name);
    m.set_config("scale", opts.scale);
    m.set_config("seed", opts.seed);
    m.set_config("fast", opts.fast);
    m.set_config("cache", !opts.no_cache);
    m.set_config("out_dir", opts.out_dir.display());
    if let Some(kind) = opts.precond {
        m.set_config("precond", kind.name());
    }
    m
}

/// Runs one registered experiment end to end: applies `--threads`,
/// opens the cache, times the run, and writes the manifest JSON next to
/// the experiment's CSVs. With `--telemetry <out.json>`, process-wide
/// span/counter collection is enabled for the run, the snapshot is
/// written to the path, and a copy is embedded in the manifest.
///
/// # Errors
///
/// Propagates experiment, manifest-write, and snapshot-write errors.
pub fn execute(def: &ExperimentDef, opts: &Options) -> Result<RunOutput, DynError> {
    opts.apply_threads();
    if opts.telemetry.is_some() {
        ppdl_obs::set_enabled(true);
    }
    let cache = opts.open_cache();
    let t0 = Instant::now();
    let mut out = (def.run)(opts, cache.as_ref())?;
    out.manifest.wall = t0.elapsed();
    use std::fmt::Write as _;
    if let Some(telemetry_path) = &opts.telemetry {
        let snapshot = ppdl_obs::global().snapshot_json();
        if let Some(parent) = telemetry_path
            .parent()
            .filter(|p| !p.as_os_str().is_empty())
        {
            std::fs::create_dir_all(parent)?;
        }
        std::fs::write(telemetry_path, format!("{snapshot}\n"))?;
        out.manifest.telemetry = Some(snapshot);
        let _ = writeln!(out.report, "telemetry: {}", telemetry_path.display());
    }
    let path = out.manifest.write(&opts.out_dir)?;
    let _ = writeln!(out.report, "manifest: {}", path.display());
    Ok(out)
}

/// Prints a run's output with `--json` routing: manifest JSON on
/// stdout and the report on stderr when `--json` is set, the report on
/// stdout otherwise.
pub fn emit(opts: &Options, out: &RunOutput) {
    if opts.json {
        eprint!("{}", out.report);
        print!("{}", out.manifest.to_json());
    } else {
        print!("{}", out.report);
    }
}

/// The whole main-function body of a legacy alias binary: parse the
/// shared flags with the experiment's default scale, run it, emit, and
/// exit non-zero on failure.
pub fn run_cli(name: &str) {
    let def = find(name).unwrap_or_else(|| {
        eprintln!("error: unknown experiment '{name}'");
        std::process::exit(2);
    });
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match Options::parse(&args, def.default_scale) {
        Ok(opts) => opts,
        Err(ParseError::Help) => {
            println!("{}: {}\n", def.name, def.title);
            print!("{}", help_text(def.default_scale));
            std::process::exit(0);
        }
        Err(ParseError::Bad(msg)) => {
            eprintln!("error: {msg}\n{}", help_text(def.default_scale));
            std::process::exit(2);
        }
    };
    match execute(def, &opts) {
        Ok(out) => emit(&opts, &out),
        Err(e) => {
            eprintln!("{}: {e}", def.name);
            std::process::exit(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_names_and_aliases_resolve_uniquely() {
        assert_eq!(REGISTRY.len(), 16);
        let mut seen = std::collections::BTreeSet::new();
        for def in REGISTRY {
            assert!(seen.insert(def.name), "duplicate name {}", def.name);
            for alias in def.aliases {
                assert!(seen.insert(alias), "duplicate alias {alias}");
            }
            assert!(def.default_scale > 0.0);
        }
        assert_eq!(find("table3").unwrap().name, "table3_worst_ir");
        assert_eq!(find("fig9_perturbation").unwrap().name, "fig9_perturbation");
        assert!(find("nope").is_none());
    }
}

//! Table I and Fig. 4(b): r² of single input features vs the combined
//! `(X, Y, Id)` feature set, plus the per-interconnect windowed-r²
//! trace over the first 1000 interconnects of ibmpg1.
//!
//! The benchmark generation and conventional sizing run once through
//! the pipeline prefix; each feature set then trains its own cached
//! model on the shared golden widths (the train key includes the
//! feature set, so the four models cache independently).

use std::fmt::Write as _;

use ppdl_core::pipeline::{run_stage, ArtifactCache, FeatureExtractStage, PipelineCtx, TrainStage};
use ppdl_core::{experiment, FeatureSet};
use ppdl_netlist::IbmPgPreset;

use super::{base_config, manifest_for, DynError, RunOutput};
use crate::harness::{format_table, windowed_r2, write_csv, write_primary_csv, Options};

pub(super) fn run(opts: &Options, cache: Option<&ArtifactCache>) -> Result<RunOutput, DynError> {
    let mut manifest = manifest_for("fig4b_table1", opts);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Table I / Fig. 4(b) reproduction on ibmpg1 (scale {}, seed {})\n",
        opts.scale, opts.seed
    );
    // Shared prefix: generate + calibrate + conventionally size, once.
    let mut ctx = PipelineCtx::new(base_config(opts), cache);
    run_stage(
        &experiment::preset_source(IbmPgPreset::Ibmpg1, opts.scale, opts.seed),
        &mut ctx,
    )?;
    run_stage(&FeatureExtractStage, &mut ctx)?;
    manifest.record_stages("ibmpg1", &ctx.records);

    // Table I: one model per feature set, all on the shared labels.
    let paper = [0.34, 0.39, 0.61, 0.89];
    let mut rows = Vec::new();
    let mut combined_pairs = Vec::new();
    for (fs, paper_r2) in FeatureSet::ALL.into_iter().zip(paper) {
        let mut fs_ctx = ctx.clone();
        fs_ctx.records.clear();
        fs_ctx.config.predictor.feature_set = fs;
        run_stage(&TrainStage, &mut fs_ctx)?;
        manifest.record_stages(fs.label(), &fs_ctx.records);
        let sizing = fs_ctx.sizing()?;
        let predictor = &fs_ctx.trained()?.predictor;
        let m = predictor.evaluate(&sizing.sized, &sizing.golden_widths)?;
        if fs == FeatureSet::Combined {
            combined_pairs = predictor.scatter_data(&sizing.sized, &sizing.golden_widths)?;
        }
        manifest.add_metric(&format!("r2_{}", fs.label()), m.r2);
        rows.push(vec![
            fs.label().to_string(),
            format!("{:.2}", m.r2),
            format!("{paper_r2:.2}"),
        ]);
    }
    let header = ["Input features", "r2 score", "paper r2"];
    let _ = writeln!(report, "{}", format_table(&header, &rows));
    let table1_path = write_csv(&opts.out_dir, "table1_feature_r2.csv", &header, &rows)?;
    manifest.add_output(&table1_path);

    // Fig. 4(b): windowed r² over 1000 interconnects. Segments are
    // stored strap by strap, so a raw window would often see a single
    // strap (constant golden width, degenerate r²); a deterministic
    // shuffle mixes straps within each window like the benchmark's
    // file order does in the paper.
    {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);
        combined_pairs.shuffle(&mut rng);
    }
    let n = combined_pairs.len().min(1000);
    let series = windowed_r2(&combined_pairs[..n], 50);
    let fig_rows: Vec<Vec<String>> = series
        .iter()
        .map(|(idx, r2)| vec![idx.to_string(), format!("{r2:.4}")])
        .collect();
    let path = write_primary_csv(
        opts,
        "fig4b_windowed_r2.csv",
        &["interconnect", "r2"],
        &fig_rows,
    )?;
    manifest.add_output(&path);
    let _ = writeln!(
        report,
        "wrote {} ({} windows over {n} interconnects)",
        path.display(),
        series.len()
    );
    let mean_r2: f64 = series.iter().map(|(_, r)| r).sum::<f64>() / series.len().max(1) as f64;
    manifest.add_metric("mean_windowed_r2", mean_r2);
    let _ = writeln!(report, "mean windowed r2 (combined features): {mean_r2:.3}");
    Ok(RunOutput { manifest, report })
}

//! Fig. 8: 100x100 IR-drop maps of ibmpg2 and ibmpg6, conventional
//! analysis vs the PowerPlanningDL prediction.

use std::fmt::Write as _;

use ppdl_analysis::IrDropMap;
use ppdl_core::pipeline::ArtifactCache;
use ppdl_netlist::IbmPgPreset;

use super::{manifest_for, DynError, RunOutput};
use crate::harness::{format_table, run_preset_cached, write_primary_csv, Options};

const RESOLUTION: usize = 100;

pub(super) fn run(opts: &Options, cache: Option<&ArtifactCache>) -> Result<RunOutput, DynError> {
    let mut manifest = manifest_for("fig8_ir_maps", opts);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Fig. 8 reproduction (100x100 IR maps, scale {}, seed {})\n",
        opts.scale, opts.seed
    );
    let mut rows = Vec::new();
    for preset in [IbmPgPreset::Ibmpg2, IbmPgPreset::Ibmpg6] {
        let (outcome, records) = match run_preset_cached(preset, opts, cache) {
            Ok(o) => o,
            Err(e) => {
                let _ = writeln!(report, "{preset}: {e}");
                continue;
            }
        };
        manifest.record_stages(preset.name(), &records);
        let conventional = IrDropMap::from_report(
            outcome.test_bench.network(),
            &outcome.test_report,
            RESOLUTION,
        )?;
        let predicted = outcome
            .predicted_ir
            .to_map(&outcome.test_bench, RESOLUTION)?;

        std::fs::create_dir_all(&opts.out_dir)?;
        let conv_path = opts.out_dir.join(format!("fig8_{preset}_conventional.csv"));
        let pred_path = opts.out_dir.join(format!("fig8_{preset}_predicted.csv"));
        std::fs::write(&conv_path, conventional.to_csv())?;
        std::fs::write(&pred_path, predicted.to_csv())?;
        manifest.add_output(&conv_path);
        manifest.add_output(&pred_path);
        manifest.add_metric(
            &format!("{preset}_mean_abs_diff_mv"),
            conventional.mean_abs_diff_mv(&predicted),
        );

        rows.push(vec![
            preset.name().to_string(),
            format!(
                "{:.1} / {:.1} / {:.1}",
                conventional.min_mv(),
                conventional.mean_mv(),
                conventional.max_mv()
            ),
            format!(
                "{:.1} / {:.1} / {:.1}",
                predicted.min_mv(),
                predicted.mean_mv(),
                predicted.max_mv()
            ),
            format!("{:.2}", conventional.mean_abs_diff_mv(&predicted)),
        ]);
        let _ = writeln!(
            report,
            "wrote {} and {}",
            conv_path.display(),
            pred_path.display()
        );
    }
    let header = [
        "PG circuit",
        "conventional min/mean/max (mV)",
        "predicted min/mean/max (mV)",
        "mean |diff| (mV)",
    ];
    let _ = writeln!(report, "\n{}", format_table(&header, &rows));
    let path = write_primary_csv(opts, "fig8_summary.csv", &header, &rows)?;
    manifest.add_output(&path);
    Ok(RunOutput { manifest, report })
}

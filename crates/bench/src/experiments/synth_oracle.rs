//! Predictor-in-the-loop synthesis vs the conventional flow: same
//! margins, a fraction of the full MNA solves.
//!
//! The pipeline's cached prefix (generate → conventionally size →
//! train) provides both sides of the comparison at once: the sizing
//! stage's iteration count *is* the conventional flow's full-solve
//! bill, and its trained surrogate plus golden widths become the
//! [`TrainedBundle`] the synthesizer uses as its cheap oracle. The
//! manifest records the headline pair the ROADMAP asks for — the
//! full-solve reduction factor and the worst-IR gap against the
//! conventional result — which `bench_results/BENCH_synth.json` pins
//! in CI.

use std::fmt::Write as _;

use ppdl_core::experiment;
use ppdl_core::pipeline::{run_stage, ArtifactCache, FeatureExtractStage, PipelineCtx, TrainStage};
use ppdl_core::predict::BundleMeta;
use ppdl_core::{synthesize, SynthConfig, TrainedBundle};
use ppdl_netlist::IbmPgPreset;

use super::{base_builder, manifest_for, DynError, RunOutput};
use crate::harness::{format_table, write_primary_csv, Options};

/// Widening multiplier of the conventional reference. The registry
/// default (1.3) overshoots the margin in a handful of coarse steps;
/// a signoff-fidelity 5% schedule converges a tight margin and pays
/// the honest per-iteration full-solve bill the paper's §V timing
/// comparison is about — that bill is this experiment's denominator.
const REFERENCE_WIDEN_FACTOR: f64 = 1.05;

pub(super) fn run(opts: &Options, cache: Option<&ArtifactCache>) -> Result<RunOutput, DynError> {
    let mut manifest = manifest_for("synth_oracle", opts);
    let preset = IbmPgPreset::Ibmpg2;
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Predictor-in-the-loop synthesis vs conventional flow ({}, scale {}, seed {})\n",
        preset.name(),
        opts.scale,
        opts.seed
    );

    // Cached prefix: generate + size + train once; warm runs decode
    // everything from the artifact cache.
    let config = base_builder(opts)
        .widen_factor(REFERENCE_WIDEN_FACTOR)
        .build();
    let mut ctx = PipelineCtx::new(config, cache);
    run_stage(
        &experiment::preset_source(preset, opts.scale, opts.seed),
        &mut ctx,
    )?;
    run_stage(&FeatureExtractStage, &mut ctx)?;
    run_stage(&TrainStage, &mut ctx)?;
    manifest.record_stages(preset.name(), &ctx.records);

    // The conventional side of the ledger comes straight from the
    // sizing stage: one full MNA solve per widening iteration, and the
    // verified worst drop it converged to.
    let sizing = ctx.sizing()?;
    let conventional_solves = sizing.iterations;
    let conventional_worst = sizing.worst_ir;
    let conventional_area = sizing.sized.total_metal_area();

    let bench_slot = ctx.bench()?;
    let bundle = TrainedBundle {
        predictor: ctx.trained()?.predictor.clone(),
        meta: BundleMeta {
            preset,
            scale: opts.scale,
            seed: opts.seed,
            margin_fraction: bench_slot.margin_fraction,
            inference_stride: ctx.config.inference_stride,
        },
        loads: bench_slot
            .bench
            .network()
            .current_loads()
            .iter()
            .map(|l| l.amps)
            .collect(),
        golden_widths: sizing.golden_widths.clone(),
    };
    bundle.validate()?;

    let mut config = if opts.fast {
        SynthConfig::fast()
    } else {
        SynthConfig::default()
    };
    config.seed = opts.seed;
    if let Some(kind) = opts.precond {
        config.precond = kind;
    }
    // Track the conventional flow's verified margin: the annealer aims
    // its cost at that exact worst drop, so the comparison below is
    // same-margin, fewer-solves rather than different-margin.
    config.aim_worst_ir = Some(conventional_worst);
    // The conventional flow's verified worst drop anchors the oracle's
    // calibration for free — it was already paid for by the sizing
    // stage above.
    let result = synthesize(&bundle, &config, Some(conventional_worst))?;

    let solve_reduction = conventional_solves as f64 / result.full_solves.max(1) as f64;
    let gap_pct = if conventional_worst > 0.0 {
        100.0 * (result.worst_ir - conventional_worst).abs() / conventional_worst
    } else {
        0.0
    };
    let acceptance = if result.proposed > 0 {
        result.accepted as f64 / result.proposed as f64
    } else {
        0.0
    };

    manifest.add_metric("conventional_full_solves", conventional_solves as f64);
    manifest.add_metric("conventional_worst_ir_mv", conventional_worst * 1e3);
    manifest.add_metric("synth_full_solves", result.full_solves as f64);
    manifest.add_metric("synth_oracle_calls", result.oracle_calls as f64);
    manifest.add_metric("solve_reduction", solve_reduction);
    manifest.add_metric("worst_ir_gap_pct", gap_pct);
    manifest.add_metric("synth_worst_ir_mv", result.worst_ir_mv());
    manifest.add_metric("target_worst_ir_mv", result.target_worst_ir * 1e3);
    manifest.add_metric("synth_feasible", f64::from(u8::from(result.feasible)));
    manifest.add_metric("acceptance_rate", acceptance);
    manifest.add_metric(
        "area_vs_conventional",
        result.metal_area / conventional_area,
    );
    manifest.add_metric("synth_accepted", result.accepted as f64);
    manifest.add_metric("synth_repair_rounds", result.repair_rounds as f64);

    let header = ["quantity", "conventional", "synth"];
    let rows = vec![
        vec![
            "full MNA solves".into(),
            format!("{conventional_solves}"),
            format!("{}", result.full_solves),
        ],
        vec![
            "oracle calls".into(),
            "-".into(),
            format!("{}", result.oracle_calls),
        ],
        vec![
            "worst IR (mV)".into(),
            format!("{:.3}", conventional_worst * 1e3),
            format!("{:.3}", result.worst_ir_mv()),
        ],
        vec![
            "metal area (µm²)".into(),
            format!("{conventional_area:.0}"),
            format!("{:.0}", result.metal_area),
        ],
    ];
    let _ = writeln!(report, "{}", format_table(&header, &rows));
    let _ = writeln!(
        report,
        "solve reduction {solve_reduction:.1}x, worst-IR gap {gap_pct:.2}% \
         (target {:.3} mV), acceptance {acceptance:.2}, {} repair round(s)\n",
        result.target_worst_ir * 1e3,
        result.repair_rounds
    );

    let csv_header = ["metric", "value"];
    let csv_rows: Vec<Vec<String>> = manifest
        .metrics
        .iter()
        .map(|(k, v)| vec![k.clone(), format!("{v}")])
        .collect();
    let path = write_primary_csv(opts, "synth_oracle.csv", &csv_header, &csv_rows)?;
    manifest.add_output(&path);
    let _ = writeln!(report, "wrote {}", path.display());
    Ok(RunOutput { manifest, report })
}

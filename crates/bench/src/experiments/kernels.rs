//! Kernel microbenches as a registered experiment: tiled GEMM against
//! the scalar triple loop it replaced, blocked SpMV throughput, and CG
//! iteration counts per preconditioner on a power-grid Laplacian.
//!
//! The criterion benches (`parallel_scaling`, `solver_kernels`) measure
//! the same kernels with statistical rigour; this experiment exists so
//! the numbers land in a [`RunManifest`](ppdl_core::pipeline::RunManifest)
//! that `ppdl-bench baseline` can diff against a committed snapshot in
//! CI.

use std::fmt::Write as _;
use std::time::Instant;

use ppdl_core::pipeline::ArtifactCache;
use ppdl_nn::Matrix;
use ppdl_solver::{CgOptions, ConjugateGradient, CsrMatrix, PrecondKind, TripletMatrix};

use super::{manifest_for, DynError, RunOutput};
use crate::harness::{format_table, write_primary_csv, Options};

/// 2-D grid Laplacian with grounded corner — the structure of a
/// power-grid conductance matrix.
fn grid(side: usize) -> CsrMatrix {
    let n = side * side;
    let mut t = TripletMatrix::new(n, n);
    for r in 0..side {
        for c in 0..side {
            let i = r * side + c;
            if c + 1 < side {
                t.stamp_conductance(i, i + 1, 1.0);
            }
            if r + 1 < side {
                t.stamp_conductance(i, i + side, 1.0);
            }
        }
    }
    t.stamp_grounded_conductance(0, 2.0);
    t.to_csr()
}

/// The naive triple-loop matmul the tiled GEMM replaced, kept as the
/// speedup baseline.
fn scalar_matmul(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for kk in 0..k {
                // ppdl-lint: allow(perf/scalar-matmul) -- the deliberate scalar baseline the speedup is measured against
                acc += a[i * k + kk] * b[kk * n + j];
            }
            out[i * n + j] = acc;
        }
    }
}

/// Best-of-`reps` wall time in seconds; best-of suppresses scheduler
/// noise better than the mean at these sub-second scales.
fn time_best(reps: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

pub(super) fn run(opts: &Options, _cache: Option<&ArtifactCache>) -> Result<RunOutput, DynError> {
    let mut manifest = manifest_for("kernels", opts);
    let mut report = String::new();
    opts.apply_threads();
    let reps = if opts.fast { 3 } else { 7 };

    // --- GEMM: tiled vs scalar, paper-scale shapes ------------------
    let shapes: &[(usize, usize, usize)] = if opts.fast {
        &[(512, 24, 24), (96, 96, 96)]
    } else {
        &[(4096, 24, 24), (256, 256, 256)]
    };
    let _ = writeln!(report, "GEMM: register-tiled vs scalar triple loop\n");
    let mut gemm_rows = Vec::new();
    for &(m, k, n) in shapes {
        let a = Matrix::from_fn(m, k, |r, c| ((r * 31 + c * 7) % 113) as f64 / 113.0 - 0.5);
        let b = Matrix::from_fn(k, n, |r, c| ((r * 13 + c * 17) % 127) as f64 / 127.0 - 0.5);
        a.matmul(&b)?; // validate shapes once, outside the timed closure
        let scalar = time_best(reps, || {
            // Allocate the output inside the closure like matmul does,
            // so both paths pay the same allocation cost.
            let mut out = vec![0.0f64; m * n];
            scalar_matmul(m, k, n, a.as_slice(), b.as_slice(), &mut out);
        });
        let tiled = time_best(reps, || {
            // ppdl-lint: allow(robustness/unwrap-in-lib) -- timed closure; the same call was validated just above
            let _ = a.matmul(&b).expect("matmul");
        });
        let speedup = scalar / tiled;
        let gflops = 2.0 * (m * k * n) as f64 / tiled / 1e9;
        manifest.add_metric(&format!("gemm_speedup_{m}x{k}x{n}"), speedup);
        manifest.add_metric(&format!("gemm_gflops_{m}x{k}x{n}"), gflops);
        gemm_rows.push(vec![
            format!("{m}x{k}x{n}"),
            format!("{:.3}", scalar * 1e3),
            format!("{:.3}", tiled * 1e3),
            format!("{speedup:.2}"),
            format!("{gflops:.2}"),
        ]);
    }
    let gemm_header = ["shape", "scalar (ms)", "tiled (ms)", "speedup", "GFLOP/s"];
    let _ = writeln!(report, "{}", format_table(&gemm_header, &gemm_rows));

    // --- SpMV: blocked/interleaved CSR kernel -----------------------
    let sides: &[usize] = if opts.fast { &[64, 150] } else { &[150, 400] };
    let _ = writeln!(report, "SpMV: row-blocked CSR kernel\n");
    let mut spmv_rows = Vec::new();
    for &side in sides {
        let a = grid(side);
        let x = vec![1.0; a.ncols()];
        let mut y = vec![0.0; a.nrows()];
        a.mul_vec_into(&x, &mut y)?; // validate shapes once, outside the timed closure
        let secs = time_best(reps * 3, || {
            // ppdl-lint: allow(robustness/unwrap-in-lib) -- timed closure; the same call was validated just above
            a.mul_vec_into(&x, &mut y).expect("spmv");
        });
        let gflops = 2.0 * a.nnz() as f64 / secs / 1e9;
        manifest.add_metric(&format!("spmv_gflops_n{}", side * side), gflops);
        spmv_rows.push(vec![
            format!("{}", side * side),
            format!("{}", a.nnz()),
            format!("{:.1}", secs * 1e6),
            format!("{gflops:.2}"),
        ]);
    }
    let spmv_header = ["unknowns", "nnz", "time (us)", "GFLOP/s"];
    let _ = writeln!(report, "{}", format_table(&spmv_header, &spmv_rows));

    // --- CG iterations per preconditioner ---------------------------
    let side = if opts.fast { 96 } else { 200 };
    let a = grid(side);
    let b_vec: Vec<f64> = (0..a.nrows()).map(|i| (i % 7) as f64 * 0.1).collect();
    let _ = writeln!(
        report,
        "CG iterations on a {side}x{side} grid (tolerance 1e-8)\n"
    );
    let mut cg_rows = Vec::new();
    let mut jacobi_iters = None;
    for kind in PrecondKind::ALL {
        let cg = ConjugateGradient::new(CgOptions::builder().tolerance(1e-8).precond(kind).build());
        let t0 = Instant::now();
        let sol = cg.solve(&a, &b_vec)?;
        let secs = t0.elapsed().as_secs_f64();
        if kind == PrecondKind::Jacobi {
            jacobi_iters = Some(sol.iterations as f64);
        }
        let cut = jacobi_iters
            .map(|j| 100.0 * (1.0 - sol.iterations as f64 / j))
            .unwrap_or(0.0);
        manifest.add_metric(&format!("cg_iters_{}", kind.name()), sol.iterations as f64);
        cg_rows.push(vec![
            kind.name().to_string(),
            format!("{}", sol.iterations),
            format!("{cut:.1}"),
            format!("{:.3}", secs),
        ]);
    }
    let cg_header = [
        "preconditioner",
        "iterations",
        "cut vs jacobi (%)",
        "time (s)",
    ];
    let _ = writeln!(report, "{}", format_table(&cg_header, &cg_rows));

    let header = ["metric", "value"];
    let rows: Vec<Vec<String>> = manifest
        .metrics
        .iter()
        .map(|(k, v)| vec![k.clone(), format!("{v:.4}")])
        .collect();
    let path = write_primary_csv(opts, "kernels.csv", &header, &rows)?;
    manifest.add_output(&path);
    let _ = writeln!(report, "wrote {}", path.display());
    Ok(RunOutput { manifest, report })
}

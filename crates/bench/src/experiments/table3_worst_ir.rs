//! Table III: worst-case IR drop, conventional vs PowerPlanningDL.

use std::fmt::Write as _;

use ppdl_core::pipeline::ArtifactCache;
use ppdl_netlist::IbmPgPreset;

use super::{manifest_for, DynError, RunOutput};
use crate::harness::{format_table, run_preset_cached, write_primary_csv, Options};

pub(super) fn run(opts: &Options, cache: Option<&ArtifactCache>) -> Result<RunOutput, DynError> {
    let mut manifest = manifest_for("table3_worst_ir", opts);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Table III reproduction (scale {} of Table II sizes, seed {})\n",
        opts.scale, opts.seed
    );
    let mut rows = Vec::new();
    for preset in IbmPgPreset::TABLE3 {
        let (outcome, records) = match run_preset_cached(preset, opts, cache) {
            Ok(o) => o,
            Err(e) => {
                let _ = writeln!(report, "{preset}: {e}");
                continue;
            }
        };
        manifest.record_stages(preset.name(), &records);
        manifest.add_metric(
            &format!("{preset}_conv_mv"),
            outcome.conventional_worst_ir_mv,
        );
        manifest.add_metric(&format!("{preset}_dl_mv"), outcome.predicted_worst_ir_mv);
        let paper = preset
            .table3_worst_ir_mv()
            .ok_or_else(|| format!("{preset} has no published Table III value"))?;
        rows.push(vec![
            preset.name().to_string(),
            format!("{:.1}", outcome.conventional_worst_ir_mv),
            format!("{:.1}", outcome.predicted_worst_ir_mv),
            format!(
                "{:+.1}%",
                100.0 * (outcome.predicted_worst_ir_mv - outcome.conventional_worst_ir_mv)
                    / outcome.conventional_worst_ir_mv
            ),
            format!("{paper:.1}"),
        ]);
    }
    let header = [
        "PG circuit",
        "Conventional (mV)",
        "PowerPlanningDL (mV)",
        "delta",
        "paper conv. (mV)",
    ];
    let _ = writeln!(report, "{}", format_table(&header, &rows));
    let path = write_primary_csv(opts, "table3_worst_ir.csv", &header, &rows)?;
    manifest.add_output(&path);
    let _ = writeln!(report, "wrote {}", path.display());
    Ok(RunOutput { manifest, report })
}

//! Fig. 10: memory-vs-time profile of the PowerPlanningDL flow for
//! ibmpg2 and ibmpg6, sampled from the tracking allocator (the paper
//! used `mprof`). Cache-warm runs profile the artifact decode path —
//! pass `--no-cache` to profile full recomputation.

use std::fmt::Write as _;
use std::time::Duration;

use ppdl_core::pipeline::ArtifactCache;
use ppdl_netlist::IbmPgPreset;

use super::{manifest_for, DynError, RunOutput};
use crate::harness::{format_table, run_preset_cached, write_csv, Options};
use crate::memtrack::{peak_bytes, reset_peak, to_mib, Sampler};

pub(super) fn run(opts: &Options, cache: Option<&ArtifactCache>) -> Result<RunOutput, DynError> {
    let mut manifest = manifest_for("fig10_memory_profile", opts);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Fig. 10 reproduction (memory profile, scale {}, seed {})\n",
        opts.scale, opts.seed
    );
    let mut rows = Vec::new();
    for preset in [IbmPgPreset::Ibmpg2, IbmPgPreset::Ibmpg6] {
        reset_peak();
        let sampler = Sampler::start(Duration::from_millis(5));
        let outcome = run_preset_cached(preset, opts, cache);
        let profile = sampler.stop();
        let records = match outcome {
            Ok((_, records)) => records,
            Err(e) => {
                let _ = writeln!(report, "{preset}: {e}");
                continue;
            }
        };
        manifest.record_stages(preset.name(), &records);
        let csv_rows: Vec<Vec<String>> = profile
            .iter()
            .map(|s| {
                vec![
                    format!("{:.4}", s.elapsed),
                    format!("{:.3}", to_mib(s.bytes)),
                ]
            })
            .collect();
        let name = format!("fig10_{preset}_memory.csv");
        let path = write_csv(&opts.out_dir, &name, &["seconds", "mib"], &csv_rows)?;
        manifest.add_output(&path);
        manifest.add_metric(&format!("{preset}_peak_mib"), to_mib(peak_bytes()));
        rows.push(vec![
            preset.name().to_string(),
            profile.len().to_string(),
            format!("{:.1}", profile.last().map_or(0.0, |s| s.elapsed)),
            format!("{:.1}", to_mib(peak_bytes())),
        ]);
        let _ = writeln!(report, "wrote {}", path.display());
    }
    let header = ["PG circuit", "samples", "duration (s)", "peak MiB"];
    let _ = writeln!(report, "\n{}", format_table(&header, &rows));
    Ok(RunOutput { manifest, report })
}

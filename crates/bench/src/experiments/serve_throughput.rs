//! Batched prediction-service throughput vs batch size.
//!
//! The paper's headline use case is incremental (ECO) redesign: a model
//! trained once on a signed-off grid answers streams of small-change
//! queries. This experiment measures that serving path end to end: a
//! [`TrainedBundle`] is trained once (through the cached pipeline
//! stages), loaded into a [`PredictionService`], and a fixed stream of
//! perturbation requests is replayed at increasing `max_batch` settings
//! — the knob that bounds how many requests one `par_map_vec` batch
//! executes in parallel. A final pass replays the same stream against a
//! warm response cache to show the cache-hit fast path.

use std::fmt::Write as _;

use ppdl_core::pipeline::ArtifactCache;
use ppdl_core::predict::{PredictRequest, TrainedBundle};
use ppdl_core::{Perturbation, PerturbationKind};
use ppdl_netlist::IbmPgPreset;
use ppdl_service::{PredictionService, ServiceConfig};

use super::{base_builder, manifest_for, DynError, RunOutput};
use crate::harness::{format_table, write_primary_csv, Options};

/// Requests per replay; enough to fill every batch size evenly.
const REQUESTS: usize = 64;

fn request_stream(seed: u64) -> Result<Vec<PredictRequest>, DynError> {
    let kinds = [
        PerturbationKind::NodeVoltages,
        PerturbationKind::CurrentWorkloads,
        PerturbationKind::Both,
    ];
    (0..REQUESTS)
        .map(|i| {
            let gamma = 0.05 + 0.20 * (i as f64) / (REQUESTS - 1) as f64;
            let kind = kinds[i % kinds.len()];
            let p = Perturbation::new(gamma, kind, seed + i as u64)?;
            Ok(PredictRequest::new(format!("q{i}")).with_perturbation(p))
        })
        .collect()
}

pub(super) fn run(opts: &Options, cache: Option<&ArtifactCache>) -> Result<RunOutput, DynError> {
    let mut manifest = manifest_for("serve_throughput", opts);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Prediction-service throughput on ibmpg2 (scale {}, seed {}, {REQUESTS} requests)\n",
        opts.scale, opts.seed
    );

    let bundle = TrainedBundle::train(
        IbmPgPreset::Ibmpg2,
        opts.scale,
        opts.seed,
        base_builder(opts).build(),
        cache,
    )?;
    manifest.set_config("straps", bundle.golden_widths.len());
    manifest.set_config("inference_stride", bundle.meta.inference_stride);

    let mut rows = Vec::new();
    for max_batch in [1usize, 2, 4, 8, 16, 32, 64] {
        // A fresh service per point: cold response cache (disabled, so
        // the numbers measure inference, not memoization) and zeroed
        // counters.
        let mut service = PredictionService::new(
            bundle.clone(),
            ServiceConfig {
                queue_capacity: REQUESTS,
                max_batch,
                cache_capacity: 0,
                ..ServiceConfig::default()
            },
        )?;
        for request in request_stream(opts.seed)? {
            service.enqueue(request)?;
        }
        let replies = service.flush();
        let failed = replies.iter().filter(|r| r.result.is_err()).count();
        if failed > 0 {
            return Err(format!("{failed} requests failed in batch sweep").into());
        }
        let stats = service.stats();
        manifest.add_metric(&format!("batch{max_batch}_rps"), stats.throughput_rps());
        rows.push(vec![
            max_batch.to_string(),
            stats.batches.to_string(),
            format!("{:.1}", stats.busy_secs * 1e3),
            format!("{:.1}", stats.throughput_rps()),
        ]);
    }
    let header = ["max batch", "batches", "busy (ms)", "throughput (req/s)"];
    let _ = writeln!(report, "{}", format_table(&header, &rows));
    let path = write_primary_csv(opts, "serve_throughput.csv", &header, &rows)?;
    manifest.add_output(&path);

    // Warm-cache replay: same payload stream twice through one service
    // with the response cache on — the second pass must be all hits.
    let mut service = PredictionService::new(
        bundle,
        ServiceConfig {
            queue_capacity: REQUESTS,
            max_batch: 64,
            cache_capacity: REQUESTS,
            ..ServiceConfig::default()
        },
    )?;
    for pass in 0..2 {
        for mut request in request_stream(opts.seed)? {
            request.id = format!("p{pass}-{}", request.id);
            service.enqueue(request)?;
        }
        service.flush();
    }
    let stats = service.stats();
    manifest.add_metric("warm_cache_hits", stats.cache_hits as f64);
    let _ = writeln!(
        report,
        "warm-cache replay: {} of {} repeat requests answered from cache",
        stats.cache_hits, REQUESTS
    );
    if stats.cache_hits as usize != REQUESTS {
        return Err(format!(
            "expected {REQUESTS} cache hits on the warm replay, saw {}",
            stats.cache_hits
        )
        .into());
    }
    let _ = writeln!(report, "wrote {}", path.display());
    Ok(RunOutput { manifest, report })
}

//! Ablation: Adam (the paper's optimizer, ref. 13) vs SGD, momentum,
//! and RMSProp on the width-regression task.
//!
//! Uses the raw `ppdl-nn` training loop on the standardised ibmpg2
//! dataset so every optimizer sees identical batches. The generate +
//! size prefix runs through the cached pipeline; the optimizer loop
//! itself is deliberately uncached (it *is* the thing under test).

use std::fmt::Write as _;
use std::time::Instant;

use ppdl_core::pipeline::{run_stage, ArtifactCache, FeatureExtractStage, PipelineCtx};
use ppdl_core::{experiment, segment_dataset, FeatureSet};
use ppdl_netlist::IbmPgPreset;
use ppdl_nn::{
    metrics, Activation, Adam, Dataset, Loss, MlpBuilder, Momentum, Optimizer, RmsProp, Sgd,
    StandardScaler,
};

use super::{base_config, manifest_for, DynError, RunOutput};
use crate::harness::{format_table, write_primary_csv, Options};

fn train_with<O: Optimizer>(
    data: &Dataset,
    mut opt: O,
    epochs: usize,
) -> Result<(f64, f64), DynError> {
    let mut model = MlpBuilder::new(3)
        .hidden_stack(4, 24, Activation::Relu)
        .output(1)
        .seed(3)
        .build()?;
    let t0 = Instant::now();
    for epoch in 0..epochs {
        for (xb, yb) in data.shuffled(epoch as u64).batches(64) {
            model.train_batch(&xb, &yb, Loss::Mse, &mut opt)?;
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    let pred = model.predict(data.x())?;
    let r2 = metrics::r2_score(&pred, data.y())?;
    Ok((r2, secs))
}

pub(super) fn run(opts: &Options, cache: Option<&ArtifactCache>) -> Result<RunOutput, DynError> {
    let mut manifest = manifest_for("ablation_optimizer", opts);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Optimizer ablation on ibmpg2 (scale {}, seed {})\n",
        opts.scale, opts.seed
    );
    let mut ctx = PipelineCtx::new(base_config(opts), cache);
    run_stage(
        &experiment::preset_source(IbmPgPreset::Ibmpg2, opts.scale, opts.seed),
        &mut ctx,
    )?;
    run_stage(&FeatureExtractStage, &mut ctx)?;
    manifest.record_stages("ibmpg2", &ctx.records);
    let sizing = ctx.sizing()?;
    let sized = &sizing.sized;
    let golden = &sizing.golden_widths;

    let raw = segment_dataset(sized, golden, FeatureSet::Combined)?;
    // Restrict to one strap direction: a combined-direction regression
    // has two conflicting targets per (X, Y) location, which would cap
    // every optimizer identically and mask their differences. Pick the
    // direction whose golden widths actually vary.
    let variance = |orient: ppdl_netlist::Orientation| -> f64 {
        let w: Vec<f64> = sized
            .straps()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.orientation == orient)
            .map(|(i, _)| golden[i])
            .collect();
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        w.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / w.len() as f64
    };
    let chosen = if variance(ppdl_netlist::Orientation::Vertical)
        >= variance(ppdl_netlist::Orientation::Horizontal)
    {
        ppdl_netlist::Orientation::Vertical
    } else {
        ppdl_netlist::Orientation::Horizontal
    };
    let _ = writeln!(
        report,
        "training on {chosen:?} straps (higher width variance)\n"
    );
    let picked: Vec<usize> = sized
        .segments()
        .iter()
        .enumerate()
        .filter(|(_, seg)| sized.straps()[seg.strap].orientation == chosen)
        .map(|(i, _)| i)
        .collect();
    let raw_x = raw.x().gather_rows(&picked);
    let raw_y = raw.y().gather_rows(&picked);
    let xs = StandardScaler::fit(&raw_x)?;
    let ys = StandardScaler::fit(&raw_y)?;
    let data = Dataset::new(xs.transform(&raw_x)?, ys.transform(&raw_y)?)?;

    let epochs = 120;
    let mut rows = Vec::new();
    let mut push = |name: &str, r2: f64, secs: f64, rows: &mut Vec<Vec<String>>| {
        manifest.add_metric(&format!("{name}_r2"), r2);
        rows.push(vec![name.into(), format!("{r2:.3}"), format!("{secs:.2}")]);
    };
    let (r2, secs) = train_with(&data, Adam::new(2e-3)?, epochs)?;
    push("adam", r2, secs, &mut rows);
    let (r2, secs) = train_with(&data, Sgd::new(2e-2)?, epochs)?;
    push("sgd", r2, secs, &mut rows);
    let (r2, secs) = train_with(&data, Momentum::new(5e-3, 0.9)?, epochs)?;
    push("momentum", r2, secs, &mut rows);
    let (r2, secs) = train_with(&data, RmsProp::new(2e-3)?, epochs)?;
    push("rmsprop", r2, secs, &mut rows);

    let header = ["optimizer", "r2 (train)", "time (s)"];
    let _ = writeln!(report, "{}", format_table(&header, &rows));
    let path = write_primary_csv(opts, "ablation_optimizer.csv", &header, &rows)?;
    manifest.add_output(&path);
    let _ = writeln!(report, "wrote {}", path.display());
    Ok(RunOutput { manifest, report })
}

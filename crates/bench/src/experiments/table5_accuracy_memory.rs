//! Table V: r² score, MSE, and peak memory per benchmark.
//!
//! Peak memory is measured by the tracking global allocator (the
//! paper used `mprof`), reset right before each benchmark's flow.
//! Cache-warm runs decode artifacts instead of solving/training, so
//! their peaks reflect the decode path — run with `--no-cache` for a
//! faithful memory measurement.

use std::fmt::Write as _;

use ppdl_core::pipeline::ArtifactCache;
use ppdl_netlist::IbmPgPreset;

use super::{manifest_for, DynError, RunOutput};
use crate::harness::{format_table, run_preset_cached, write_primary_csv, Options};
use crate::memtrack::{peak_bytes, reset_peak, to_mib};

/// The paper's Table V (r², MSE, peak MiB) for side-by-side reference.
fn paper_row(preset: IbmPgPreset) -> (f64, f64, u32) {
    match preset {
        IbmPgPreset::Ibmpg1 => (0.933, 0.0231, 66),
        IbmPgPreset::Ibmpg2 => (0.937, 0.0230, 318),
        IbmPgPreset::Ibmpg3 => (0.932, 0.0212, 730),
        IbmPgPreset::Ibmpg4 => (0.941, 0.0210, 749),
        IbmPgPreset::Ibmpg5 => (0.944, 0.0225, 511),
        IbmPgPreset::Ibmpg6 => (0.945, 0.0208, 841),
        IbmPgPreset::IbmpgNew1 => (0.943, 0.0201, 1025),
        IbmPgPreset::IbmpgNew2 => (0.945, 0.0209, 745),
    }
}

pub(super) fn run(opts: &Options, cache: Option<&ArtifactCache>) -> Result<RunOutput, DynError> {
    let mut manifest = manifest_for("table5_accuracy_memory", opts);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Table V reproduction (scale {} of Table II sizes, seed {})\n",
        opts.scale, opts.seed
    );
    let mut rows = Vec::new();
    for preset in IbmPgPreset::ALL {
        reset_peak();
        let (outcome, records) = match run_preset_cached(preset, opts, cache) {
            Ok(o) => o,
            Err(e) => {
                let _ = writeln!(report, "{preset}: {e}");
                continue;
            }
        };
        manifest.record_stages(preset.name(), &records);
        let peak = to_mib(peak_bytes());
        manifest.add_metric(&format!("{preset}_r2"), outcome.width_metrics.r2);
        manifest.add_metric(&format!("{preset}_mse"), outcome.width_metrics.mse_scaled);
        manifest.add_metric(&format!("{preset}_peak_mib"), peak);
        let (paper_r2, paper_mse, paper_mib) = paper_row(preset);
        rows.push(vec![
            preset.name().to_string(),
            outcome.test_bench.segments().len().to_string(),
            format!("{:.3}", outcome.width_metrics.r2),
            format!("{:.4}", outcome.width_metrics.mse_scaled),
            format!("{peak:.0}"),
            format!("{paper_r2:.3}"),
            format!("{paper_mse:.4}"),
            paper_mib.to_string(),
        ]);
        drop(outcome);
    }
    let header = [
        "PG circuit",
        "#interconnects",
        "r2",
        "MSE",
        "Peak MiB",
        "paper r2",
        "paper MSE",
        "paper MiB",
    ];
    let _ = writeln!(report, "{}", format_table(&header, &rows));
    if manifest.cache_hits() > 0 {
        let _ = writeln!(
            report,
            "note: {} stages decoded from the artifact cache; peak MiB reflects\n\
             the decode path, not full recomputation (use --no-cache to measure).",
            manifest.cache_hits()
        );
    }
    let path = write_primary_csv(opts, "table5_accuracy_memory.csv", &header, &rows)?;
    manifest.add_output(&path);
    let _ = writeln!(report, "wrote {}", path.display());
    Ok(RunOutput { manifest, report })
}

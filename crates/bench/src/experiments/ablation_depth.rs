//! Ablation: how many hidden layers does the width model need?
//!
//! The paper fixes 10 hidden layers "obtained by hyperparameter
//! optimization". This ablation sweeps the depth on an ibmpg2-style
//! benchmark and reports accuracy and training cost. The generate +
//! size prefix runs once through the cached pipeline; each depth
//! trains (and caches) its own model against the shared golden widths.

use std::fmt::Write as _;

use ppdl_core::experiment;
use ppdl_core::pipeline::{run_stage, ArtifactCache, FeatureExtractStage, PipelineCtx, TrainStage};
use ppdl_netlist::IbmPgPreset;

use super::{base_config, manifest_for, DynError, RunOutput};
use crate::harness::{format_table, write_primary_csv, Options};

pub(super) fn run(opts: &Options, cache: Option<&ArtifactCache>) -> Result<RunOutput, DynError> {
    let mut manifest = manifest_for("ablation_depth", opts);
    let mut report = String::new();
    let _ = writeln!(
        report,
        "Depth ablation on ibmpg2 (scale {}, seed {})\n",
        opts.scale, opts.seed
    );
    let mut ctx = PipelineCtx::new(base_config(opts), cache);
    run_stage(
        &experiment::preset_source(IbmPgPreset::Ibmpg2, opts.scale, opts.seed),
        &mut ctx,
    )?;
    run_stage(&FeatureExtractStage, &mut ctx)?;
    manifest.record_stages("ibmpg2", &ctx.records);

    let mut rows = Vec::new();
    for depth in [1usize, 2, 4, 6, 10, 14] {
        let mut depth_ctx = ctx.clone();
        depth_ctx.records.clear();
        depth_ctx.config.predictor.hidden_layers = depth;
        run_stage(&TrainStage, &mut depth_ctx)?;
        let prefix = format!("depth{depth}");
        manifest.record_stages(&prefix, &depth_ctx.records);
        let record = depth_ctx
            .records
            .last()
            .ok_or("TrainStage recorded no stage")?;
        let train_secs = record.wall.as_secs_f64();
        let sizing = depth_ctx.sizing()?;
        let trained = depth_ctx.trained()?;
        let m = trained
            .predictor
            .evaluate(&sizing.sized, &sizing.golden_widths)?;
        manifest.add_metric(&format!("{prefix}_r2"), m.r2);
        rows.push(vec![
            depth.to_string(),
            format!("{:.3}", m.r2),
            format!("{:.4}", m.mse_scaled),
            if record.cache_hit {
                "(cached)".to_string()
            } else {
                format!("{train_secs:.2}")
            },
            trained.summary.total_epochs().to_string(),
        ]);
    }
    let header = ["hidden layers", "r2", "MSE", "train (s)", "epochs"];
    let _ = writeln!(report, "{}", format_table(&header, &rows));
    let path = write_primary_csv(opts, "ablation_depth.csv", &header, &rows)?;
    manifest.add_output(&path);
    let _ = writeln!(report, "wrote {}", path.display());
    Ok(RunOutput { manifest, report })
}

//! Manifest-diff baseline checks: compare a run-manifest's metrics
//! against a committed, tolerance-tagged baseline file and fail on
//! regression.
//!
//! The baseline is a small JSON document kept under version control
//! (e.g. `bench_results/BENCH_kernels.json`):
//!
//! ```json
//! {
//!   "experiment": "kernels",
//!   "checks": [
//!     {"metric": "gemm_speedup_4096x24x24", "min": 2.0},
//!     {"metric": "cg_iters_ic0", "baseline": 210, "rel_tol": 0.15, "direction": "lower"}
//!   ]
//! }
//! ```
//!
//! Every check names a metric from the manifest's `metrics` object and
//! carries its own tolerance: hard bounds (`min`/`max`) or a recorded
//! `baseline` value with a relative tolerance and a direction
//! (`"higher"` = bigger is better, `"lower"` = smaller is better).
//! `ppdl-bench baseline <baseline.json> <manifest.json>` prints one
//! verdict line per check and exits non-zero if any check regressed —
//! the CI bench-smoke job runs exactly that.

use ppdl_service::Json;

/// Typed failure modes of the baseline machinery. Every fallible path
/// returns one of these (not a bare string), so callers — and the CI
/// exit-code mapping in [`run_cli`] — can distinguish an unusable
/// input (exit 2) from a genuine regression verdict (exit 1).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The committed baseline document is malformed.
    BadBaseline {
        /// What was wrong with it.
        detail: String,
    },
    /// The candidate run manifest is malformed.
    BadManifest {
        /// What was wrong with it.
        detail: String,
    },
    /// A file could not be read.
    Io {
        /// The path involved.
        path: String,
        /// The operating-system error text.
        detail: String,
    },
    /// The run manifest lacks a metric the baseline declares a check
    /// for — a deleted metric must fail loudly, never silently pass by
    /// diffing only the intersection.
    MissingMetric {
        /// The declared metric that the manifest does not carry.
        metric: String,
    },
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadBaseline { detail } => write!(f, "baseline: {detail}"),
            Self::BadManifest { detail } => write!(f, "manifest: {detail}"),
            Self::Io { path, detail } => write!(f, "cannot read {path}: {detail}"),
            Self::MissingMetric { metric } => {
                write!(f, "metric '{metric}' missing from manifest")
            }
        }
    }
}

impl std::error::Error for BaselineError {}

/// Which way a metric is allowed to drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Bigger is better: fail when the candidate drops below
    /// `baseline * (1 - rel_tol)`.
    Higher,
    /// Smaller is better: fail when the candidate rises above
    /// `baseline * (1 + rel_tol)`.
    Lower,
}

/// One tolerance-tagged metric check.
#[derive(Debug, Clone)]
pub struct Check {
    /// Metric name, as recorded in the manifest's `metrics` object.
    pub metric: String,
    /// Hard lower bound (inclusive), checked when present.
    pub min: Option<f64>,
    /// Hard upper bound (inclusive), checked when present.
    pub max: Option<f64>,
    /// Recorded baseline value for relative comparison.
    pub baseline: Option<f64>,
    /// Allowed relative degradation from `baseline` (e.g. `0.15`).
    pub rel_tol: f64,
    /// Which direction counts as a regression from `baseline`.
    pub direction: Direction,
}

/// A parsed baseline file.
#[derive(Debug, Clone)]
pub struct Baseline {
    /// The experiment the baseline was recorded for (documentation
    /// only; the diff does not enforce it).
    pub experiment: String,
    /// The checks, in file order.
    pub checks: Vec<Check>,
}

/// One check's outcome against a candidate manifest.
#[derive(Debug, Clone)]
pub struct Verdict {
    /// The metric checked.
    pub metric: String,
    /// The candidate's value, when the manifest had the metric.
    pub value: Option<f64>,
    /// Whether the check passed.
    pub ok: bool,
    /// Human-readable pass/fail explanation.
    pub detail: String,
}

fn field_f64(obj: &Json, key: &str) -> Option<f64> {
    obj.get(key).and_then(Json::as_f64)
}

impl Baseline {
    /// Parses a baseline document.
    ///
    /// # Errors
    ///
    /// Returns [`BaselineError::BadBaseline`] describing the first
    /// malformed field.
    pub fn parse(text: &str) -> Result<Self, BaselineError> {
        let bad = |detail: String| BaselineError::BadBaseline { detail };
        let root = Json::parse(text).map_err(|e| bad(format!("not valid JSON: {e}")))?;
        let experiment = root
            .get("experiment")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("needs a string 'experiment' field".into()))?
            .to_string();
        let entries = root
            .get("checks")
            .and_then(Json::as_array)
            .ok_or_else(|| bad("needs a 'checks' array".into()))?;
        let mut checks = Vec::new();
        for entry in entries {
            let metric = entry
                .get("metric")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("every check needs a string 'metric' field".into()))?
                .to_string();
            let direction = match entry.get("direction").and_then(Json::as_str) {
                None | Some("higher") => Direction::Higher,
                Some("lower") => Direction::Lower,
                Some(other) => {
                    return Err(bad(format!(
                        "check '{metric}': direction must be 'higher' or 'lower', got '{other}'"
                    )))
                }
            };
            let check = Check {
                min: field_f64(entry, "min"),
                max: field_f64(entry, "max"),
                baseline: field_f64(entry, "baseline"),
                rel_tol: field_f64(entry, "rel_tol").unwrap_or(0.0),
                direction,
                metric,
            };
            if check.min.is_none() && check.max.is_none() && check.baseline.is_none() {
                return Err(bad(format!(
                    "check '{}' has no bound: set 'min', 'max', or 'baseline'",
                    check.metric
                )));
            }
            checks.push(check);
        }
        Ok(Self { experiment, checks })
    }
}

impl Check {
    /// Evaluates this check against a candidate metric value (or its
    /// absence).
    #[must_use]
    pub fn evaluate(&self, value: Option<f64>) -> Verdict {
        let Some(v) = value else {
            // Absence is a hard failure, not a skip: a metric deleted
            // from the run must never pass by intersection. The detail
            // carries the typed error's message.
            return Verdict {
                metric: self.metric.clone(),
                value: None,
                ok: false,
                detail: BaselineError::MissingMetric {
                    metric: self.metric.clone(),
                }
                .to_string(),
            };
        };
        let mut failures = Vec::new();
        if let Some(min) = self.min {
            if v < min {
                failures.push(format!("{v:.4} below min {min:.4}"));
            }
        }
        if let Some(max) = self.max {
            if v > max {
                failures.push(format!("{v:.4} above max {max:.4}"));
            }
        }
        if let Some(base) = self.baseline {
            let (bound, bad) = match self.direction {
                Direction::Higher => {
                    let bound = base * (1.0 - self.rel_tol);
                    (bound, v < bound)
                }
                Direction::Lower => {
                    let bound = base * (1.0 + self.rel_tol);
                    (bound, v > bound)
                }
            };
            if bad {
                failures.push(format!(
                    "{v:.4} regressed past {bound:.4} (baseline {base:.4}, rel_tol {})",
                    self.rel_tol
                ));
            }
        }
        if failures.is_empty() {
            Verdict {
                metric: self.metric.clone(),
                value: Some(v),
                ok: true,
                detail: format!("{v:.4} ok"),
            }
        } else {
            Verdict {
                metric: self.metric.clone(),
                value: Some(v),
                ok: false,
                detail: failures.join("; "),
            }
        }
    }
}

/// Extracts the `metrics` object of a run-manifest JSON document.
///
/// # Errors
///
/// Returns [`BaselineError::BadManifest`] when the document is not
/// JSON or has no metrics object.
pub fn manifest_metrics(text: &str) -> Result<Vec<(String, f64)>, BaselineError> {
    let root = Json::parse(text).map_err(|e| BaselineError::BadManifest {
        detail: format!("not valid JSON: {e}"),
    })?;
    let Some(Json::Obj(fields)) = root.get("metrics") else {
        return Err(BaselineError::BadManifest {
            detail: "no 'metrics' object".into(),
        });
    };
    Ok(fields
        .iter()
        .filter_map(|(k, v)| v.as_f64().map(|n| (k.clone(), n)))
        .collect())
}

/// Diffs a candidate manifest against a baseline: one verdict per
/// check, in baseline order. Every declared check is evaluated — a
/// metric absent from the manifest yields a failing
/// [`BaselineError::MissingMetric`] verdict rather than being skipped.
///
/// # Errors
///
/// Propagates manifest-parse errors as [`BaselineError::BadManifest`].
pub fn diff(baseline: &Baseline, manifest_json: &str) -> Result<Vec<Verdict>, BaselineError> {
    let metrics = manifest_metrics(manifest_json)?;
    let lookup = |name: &str| {
        metrics
            .iter()
            .rev()
            .find(|(k, _)| k == name)
            .map(|(_, v)| *v)
    };
    Ok(baseline
        .checks
        .iter()
        .map(|c| c.evaluate(lookup(&c.metric)))
        .collect())
}

/// The whole body of `ppdl-bench baseline <baseline.json>
/// <manifest.json>`: prints one verdict line per check and returns the
/// process exit code (0 = all pass, 1 = regression, 2 = usage or I/O).
#[must_use]
pub fn run_cli(args: &[String]) -> i32 {
    let (Some(baseline_path), Some(manifest_path)) = (args.first(), args.get(1)) else {
        eprintln!("usage: ppdl-bench baseline <baseline.json> <manifest.json>");
        return 2;
    };
    let read = |path: &str| {
        std::fs::read_to_string(path).map_err(|e| BaselineError::Io {
            path: path.to_string(),
            detail: e.to_string(),
        })
    };
    let outcome = read(baseline_path)
        .and_then(|text| Baseline::parse(&text))
        .and_then(|baseline| {
            read(manifest_path).and_then(|m| diff(&baseline, &m).map(|v| (baseline, v)))
        });
    match outcome {
        Err(msg) => {
            eprintln!("error: {msg}");
            2
        }
        Ok((baseline, verdicts)) => {
            println!(
                "baseline '{}': {} checks vs {}",
                baseline.experiment,
                verdicts.len(),
                manifest_path
            );
            let mut failed = 0;
            for v in &verdicts {
                let mark = if v.ok { "PASS" } else { "FAIL" };
                println!("  {mark} {:<32} {}", v.metric, v.detail);
                if !v.ok {
                    failed += 1;
                }
            }
            if failed > 0 {
                eprintln!("{failed} baseline check(s) regressed");
                1
            } else {
                0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BASELINE: &str = r#"{
        "experiment": "kernels",
        "checks": [
            {"metric": "gemm_speedup", "min": 2.0},
            {"metric": "cg_iters", "baseline": 200, "rel_tol": 0.1, "direction": "lower"},
            {"metric": "spmv_gflops", "baseline": 1.0, "rel_tol": 0.5}
        ]
    }"#;

    fn manifest(gemm: f64, iters: f64, gflops: f64) -> String {
        format!(
            "{{\"metrics\": {{\"gemm_speedup\": {gemm}, \"cg_iters\": {iters}, \
             \"spmv_gflops\": {gflops}}}}}"
        )
    }

    #[test]
    fn all_checks_pass_within_tolerance() {
        let b = Baseline::parse(BASELINE).unwrap();
        assert_eq!(b.experiment, "kernels");
        let verdicts = diff(&b, &manifest(2.4, 215.0, 0.6)).unwrap();
        assert!(verdicts.iter().all(|v| v.ok), "{verdicts:?}");
    }

    #[test]
    fn regression_in_each_direction_fails() {
        let b = Baseline::parse(BASELINE).unwrap();
        // gemm below hard min.
        assert!(!diff(&b, &manifest(1.5, 200.0, 1.0)).unwrap()[0].ok);
        // iteration count grew past +10%.
        assert!(!diff(&b, &manifest(2.5, 230.0, 1.0)).unwrap()[1].ok);
        // throughput dropped past -50%.
        assert!(!diff(&b, &manifest(2.5, 200.0, 0.4)).unwrap()[2].ok);
    }

    #[test]
    fn missing_metric_fails_every_declared_check() {
        let b = Baseline::parse(BASELINE).unwrap();
        // Two of three declared metrics deleted from the run: both must
        // fail — the diff covers the baseline's checks, never just the
        // intersection.
        let verdicts = diff(&b, "{\"metrics\": {\"gemm_speedup\": 3.0}}").unwrap();
        assert_eq!(verdicts.len(), b.checks.len());
        assert!(verdicts[0].ok);
        for v in &verdicts[1..] {
            assert!(!v.ok, "{v:?}");
            assert_eq!(
                v.detail,
                BaselineError::MissingMetric {
                    metric: v.metric.clone()
                }
                .to_string()
            );
        }
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        assert!(matches!(
            Baseline::parse("not json").unwrap_err(),
            BaselineError::BadBaseline { .. }
        ));
        assert!(Baseline::parse("{\"experiment\": \"x\"}").is_err());
        let unbounded = r#"{"experiment": "x", "checks": [{"metric": "m"}]}"#;
        assert!(Baseline::parse(unbounded)
            .unwrap_err()
            .to_string()
            .contains("no bound"));
        let bad_dir =
            r#"{"experiment": "x", "checks": [{"metric": "m", "min": 0, "direction": "up"}]}"#;
        assert!(Baseline::parse(bad_dir).is_err());
        assert!(matches!(
            manifest_metrics("42").unwrap_err(),
            BaselineError::BadManifest { .. }
        ));
    }

    /// End-to-end exit-code contract of `ppdl-bench baseline`: 0 when
    /// every check passes, 1 when the manifest is missing a declared
    /// metric (or regressed), 2 for unusable inputs.
    #[test]
    fn run_cli_exit_codes_cover_missing_metrics_and_bad_inputs() {
        let dir = std::env::temp_dir().join(format!("ppdl-baseline-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let write = |name: &str, text: &str| {
            let path = dir.join(name);
            std::fs::write(&path, text).unwrap();
            path.to_string_lossy().into_owned()
        };
        let baseline = write("baseline.json", BASELINE);
        let ok_manifest = write("ok.json", &manifest(2.4, 215.0, 0.6));
        let missing_manifest = write("missing.json", "{\"metrics\": {\"gemm_speedup\": 3.0}}");
        let garbage = write("garbage.json", "not json");
        let run =
            |paths: &[&str]| run_cli(&paths.iter().map(|s| s.to_string()).collect::<Vec<_>>());

        assert_eq!(run(&[&baseline, &ok_manifest]), 0);
        // A deleted metric is a regression, not a silent pass.
        assert_eq!(run(&[&baseline, &missing_manifest]), 1);
        // Unusable inputs (unreadable or unparseable) and bad usage.
        assert_eq!(run(&[&baseline, &garbage]), 2);
        let absent = dir.join("absent.json").to_string_lossy().into_owned();
        assert_eq!(run(&[&baseline, &absent]), 2);
        assert_eq!(run(&[&baseline]), 2);
        std::fs::remove_dir_all(&dir).ok();
    }
}

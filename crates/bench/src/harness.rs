//! Shared plumbing for the table/figure binaries.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use ppdl_core::{experiment, DlOutcome, PowerPlanningDl};
use ppdl_netlist::IbmPgPreset;

/// Command-line options shared by every experiment binary.
///
/// Supported arguments: `--scale <f>` (fraction of the published
/// benchmark size, default per binary), `--seed <n>`, `--fast`
/// (reduced model + training for smoke runs), and `--out <dir>`
/// (CSV output directory, default `bench_results`).
#[derive(Debug, Clone)]
pub struct Options {
    /// Grid scale relative to Table II sizes.
    pub scale: f64,
    /// Base seed for generation/perturbation.
    pub seed: u64,
    /// Use the reduced ("fast") model configuration.
    pub fast: bool,
    /// Output directory for CSV artefacts.
    pub out_dir: PathBuf,
}

impl Options {
    /// Parses `std::env::args`, with a per-binary default scale.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed arguments — these are
    /// developer-facing binaries, so failing loudly is the right UX.
    #[must_use]
    pub fn from_args(default_scale: f64) -> Self {
        let mut opts = Self {
            scale: default_scale,
            seed: 7,
            fast: false,
            out_dir: PathBuf::from("bench_results"),
        };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    opts.scale = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--scale needs a number"));
                }
                "--seed" => {
                    i += 1;
                    opts.seed = args
                        .get(i)
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| panic!("--seed needs an integer"));
                }
                "--fast" => opts.fast = true,
                "--out" => {
                    i += 1;
                    opts.out_dir = PathBuf::from(
                        args.get(i).unwrap_or_else(|| panic!("--out needs a path")),
                    );
                }
                other => panic!(
                    "unknown argument '{other}' (expected --scale, --seed, --fast, --out)"
                ),
            }
            i += 1;
        }
        opts
    }
}

/// Runs the full PowerPlanningDL flow for one preset under the
/// standard experiment recipe (calibrated loads, Table III margin).
///
/// # Errors
///
/// Propagates framework errors.
pub fn run_preset(
    preset: IbmPgPreset,
    opts: &Options,
) -> ppdl_core::Result<DlOutcome> {
    let prepared = experiment::prepare(preset, opts.scale, opts.seed, 2.5)?;
    let config = experiment::flow_config(&prepared, opts.fast);
    PowerPlanningDl::new(config).run(&prepared.bench)
}

/// Formats an aligned text table.
#[must_use]
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{c:<w$}");
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_string()).collect();
    fmt_row(&header_cells, &widths, &mut out);
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        fmt_row(row, &widths, &mut out);
    }
    out
}

/// Writes a CSV file (creating the directory), returning the path.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or file.
pub fn write_csv(
    dir: &Path,
    name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(name);
    let mut content = header.join(",");
    content.push('\n');
    for row in rows {
        content.push_str(&row.join(","));
        content.push('\n');
    }
    std::fs::write(&path, content)?;
    Ok(path)
}

/// Bins `values` into `bins` equal-width buckets over `[lo, hi]`,
/// returning `(bin_center, count)` pairs — the Fig. 7(b) histogram.
#[must_use]
pub fn histogram(values: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<(f64, usize)> {
    assert!(bins > 0 && hi > lo, "histogram needs a positive range");
    let width = (hi - lo) / bins as f64;
    let mut counts = vec![0usize; bins];
    for &v in values {
        if v < lo || v > hi {
            continue;
        }
        let idx = (((v - lo) / width) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| (lo + (i as f64 + 0.5) * width, c))
        .collect()
}

/// Windowed r² over an index-ordered series of (golden, predicted)
/// pairs — the Fig. 4(b) per-interconnect r² trace.
#[must_use]
pub fn windowed_r2(pairs: &[(f64, f64)], window: usize) -> Vec<(usize, f64)> {
    assert!(window >= 2, "window must cover at least 2 samples");
    let mut out = Vec::new();
    let mut start = 0;
    while start + window <= pairs.len() {
        let chunk = &pairs[start..start + window];
        let mean: f64 = chunk.iter().map(|(g, _)| g).sum::<f64>() / window as f64;
        let ss_tot: f64 = chunk.iter().map(|(g, _)| (g - mean) * (g - mean)).sum();
        let ss_res: f64 = chunk.iter().map(|(g, p)| (g - p) * (g - p)).sum();
        let r2 = if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else if ss_res == 0.0 {
            1.0
        } else {
            0.0
        };
        out.push((start + window / 2, r2));
        start += window;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = format_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a   "));
    }

    #[test]
    fn histogram_bins_and_clips() {
        let h = histogram(&[0.1, 0.1, 0.9, 5.0, -3.0], 0.0, 1.0, 2);
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].1, 2);
        assert_eq!(h[1].1, 1);
        assert!((h[0].0 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn histogram_boundary_lands_in_last_bin() {
        let h = histogram(&[1.0], 0.0, 1.0, 4);
        assert_eq!(h[3].1, 1);
    }

    #[test]
    fn windowed_r2_perfect_prediction() {
        let pairs: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, i as f64)).collect();
        let series = windowed_r2(&pairs, 5);
        assert_eq!(series.len(), 4);
        assert!(series.iter().all(|(_, r2)| (*r2 - 1.0).abs() < 1e-12));
    }

    #[test]
    fn windowed_r2_mean_prediction_is_zero() {
        // Predict the window mean: r2 = 0 per window.
        let golden: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let pairs: Vec<(f64, f64)> = golden.iter().map(|g| (*g, 2.0)).collect();
        let series = windowed_r2(&pairs[..5], 5);
        assert_eq!(series.len(), 1);
        assert!(series[0].1 <= 0.0);
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("ppdl_csv_test");
        let p = write_csv(
            &dir,
            "t.csv",
            &["a", "b"],
            &[vec!["1".into(), "2".into()]],
        )
        .unwrap();
        let content = std::fs::read_to_string(p).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }
}

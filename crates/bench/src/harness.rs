//! Shared plumbing for the experiment registry and its binaries.
//!
//! Every experiment — whether invoked as `ppdl-bench run <name>` or
//! through one of the legacy per-table binaries — parses the same
//! [`Options`] with the same flags and the same `--help` text, runs
//! against the same artifact cache layout, and writes the same
//! [`RunManifest`](ppdl_core::pipeline::RunManifest) JSON.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use ppdl_core::pipeline::{ArtifactCache, StageRecord};
use ppdl_core::{experiment, DlOutcome};
use ppdl_netlist::IbmPgPreset;

/// Command-line options shared by every experiment.
///
/// One parser, one help text: `--scale <f>` (fraction of the published
/// benchmark size, default per experiment), `--seed <n>`, `--fast`
/// (reduced model + training for smoke runs), `--out <dir>` (output
/// directory, default `bench_results`), `--json` (print the run
/// manifest to stdout, tables to stderr), `--csv <path>` (redirect the
/// experiment's primary CSV), `--threads <n>` (worker pool size),
/// `--no-cache` (bypass the artifact cache), `--telemetry
/// <out.json>` (collect process-wide spans/counters and write the
/// snapshot there), and `--precond <kind>` (preconditioner for the
/// conventional analysis solves).
#[derive(Debug, Clone)]
pub struct Options {
    /// Grid scale relative to Table II sizes.
    pub scale: f64,
    /// Base seed for generation/perturbation.
    pub seed: u64,
    /// Use the reduced ("fast") model configuration.
    pub fast: bool,
    /// Output directory for CSV artefacts and manifests.
    pub out_dir: PathBuf,
    /// Print the run manifest JSON to stdout (tables go to stderr).
    pub json: bool,
    /// Redirect the experiment's primary CSV to this exact path.
    pub csv: Option<PathBuf>,
    /// Worker thread count for the solver/NN pool.
    pub threads: Option<usize>,
    /// Disable the artifact cache (every stage recomputes).
    pub no_cache: bool,
    /// Enable telemetry collection and write the
    /// [`ppdl_obs`] snapshot to this path after the run.
    pub telemetry: Option<PathBuf>,
    /// Preconditioner override for the conventional analysis solves
    /// (`None` keeps each experiment's default).
    pub precond: Option<ppdl_analysis::PreconditionerKind>,
}

/// Why [`Options::parse`] did not produce options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// `--help`/`-h` was requested; print [`help_text`] and exit 0.
    Help,
    /// A malformed or unknown argument, with a message for stderr.
    Bad(String),
}

/// The shared `--help` text, parameterised on the experiment's default
/// scale.
#[must_use]
pub fn help_text(default_scale: f64) -> String {
    format!(
        "\
Options (shared by every ppdl experiment):
  --scale <f>     grid scale relative to Table II sizes (default {default_scale})
  --seed <n>      base seed for generation/perturbation (default 7)
  --fast          reduced model + training, for smoke runs
  --out <dir>     output directory for CSVs and manifests (default bench_results)
  --json          print the run manifest JSON to stdout; tables go to stderr
  --csv <path>    redirect the experiment's primary CSV to this path
  --threads <n>   worker threads for the solver/NN pool (default: all cores)
  --no-cache      bypass the artifact cache; recompute every stage
  --telemetry <out.json>
                  collect solver/NN/pipeline telemetry during the run and
                  write the snapshot to <out.json> (also embedded in the
                  run manifest)
  --precond <kind>
                  preconditioner for the conventional analysis solves:
                  none|jacobi|block-jacobi|ic0|direct (default ic0)
  --help          show this message
"
    )
}

impl Options {
    /// Default options for an experiment with the given default scale.
    #[must_use]
    pub fn defaults(default_scale: f64) -> Self {
        Self {
            scale: default_scale,
            seed: 7,
            fast: false,
            out_dir: PathBuf::from("bench_results"),
            json: false,
            csv: None,
            threads: None,
            no_cache: false,
            telemetry: None,
            precond: None,
        }
    }

    /// Parses an argument slice (already stripped of the program name).
    ///
    /// # Errors
    ///
    /// [`ParseError::Help`] when help was requested, [`ParseError::Bad`]
    /// for malformed or unknown arguments.
    pub fn parse(args: &[String], default_scale: f64) -> Result<Self, ParseError> {
        let mut opts = Self::defaults(default_scale);
        let mut i = 0;
        let value = |args: &[String], i: usize, flag: &str| -> Result<String, ParseError> {
            args.get(i)
                .cloned()
                .ok_or_else(|| ParseError::Bad(format!("{flag} needs a value")))
        };
        while i < args.len() {
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    opts.scale = value(args, i, "--scale")?
                        .parse()
                        .map_err(|_| ParseError::Bad("--scale needs a number".into()))?;
                }
                "--seed" => {
                    i += 1;
                    opts.seed = value(args, i, "--seed")?
                        .parse()
                        .map_err(|_| ParseError::Bad("--seed needs an integer".into()))?;
                }
                "--fast" => opts.fast = true,
                "--out" => {
                    i += 1;
                    opts.out_dir = PathBuf::from(value(args, i, "--out")?);
                }
                "--json" => opts.json = true,
                "--csv" => {
                    i += 1;
                    opts.csv = Some(PathBuf::from(value(args, i, "--csv")?));
                }
                "--threads" => {
                    i += 1;
                    opts.threads = Some(
                        value(args, i, "--threads")?
                            .parse()
                            .map_err(|_| ParseError::Bad("--threads needs an integer".into()))?,
                    );
                }
                "--no-cache" => opts.no_cache = true,
                "--telemetry" => {
                    i += 1;
                    opts.telemetry = Some(PathBuf::from(value(args, i, "--telemetry")?));
                }
                "--precond" => {
                    i += 1;
                    let spelling = value(args, i, "--precond")?;
                    opts.precond = Some(
                        ppdl_analysis::PreconditionerKind::parse(&spelling).ok_or_else(|| {
                            ParseError::Bad(format!(
                                "--precond: unknown preconditioner '{spelling}' \
                                     (none|jacobi|block-jacobi|ic0|direct)"
                            ))
                        })?,
                    );
                }
                "--help" | "-h" => return Err(ParseError::Help),
                other => {
                    return Err(ParseError::Bad(format!(
                        "unknown argument '{other}' (try --help)"
                    )))
                }
            }
            i += 1;
        }
        Ok(opts)
    }

    /// Parses `std::env::args`, with a per-experiment default scale.
    /// Prints help or a usage error and exits when parsing stops.
    #[must_use]
    pub fn from_args(default_scale: f64) -> Self {
        let args: Vec<String> = std::env::args().skip(1).collect();
        match Self::parse(&args, default_scale) {
            Ok(opts) => opts,
            Err(ParseError::Help) => {
                print!("{}", help_text(default_scale));
                std::process::exit(0);
            }
            Err(ParseError::Bad(msg)) => {
                eprintln!("error: {msg}\n{}", help_text(default_scale));
                std::process::exit(2);
            }
        }
    }

    /// Where this run's artifact cache lives.
    #[must_use]
    pub fn cache_dir(&self) -> PathBuf {
        self.out_dir.join("cache")
    }

    /// Opens the artifact cache, unless `--no-cache` disabled it.
    #[must_use]
    pub fn open_cache(&self) -> Option<ArtifactCache> {
        if self.no_cache {
            None
        } else {
            Some(ArtifactCache::new(self.cache_dir()))
        }
    }

    /// Applies `--threads` to the worker pool (first call wins
    /// process-wide, matching the pool's initialisation semantics).
    pub fn apply_threads(&self) {
        if let Some(t) = self.threads {
            ppdl_solver::parallel::set_threads(t);
        }
    }
}

/// Runs the full PowerPlanningDL flow for one preset under the
/// standard experiment recipe (calibrated loads, Table III margin).
///
/// # Errors
///
/// Propagates framework errors.
pub fn run_preset(preset: IbmPgPreset, opts: &Options) -> ppdl_core::Result<DlOutcome> {
    run_preset_cached(preset, opts, None).map(|(outcome, _)| outcome)
}

/// [`run_preset`] through the pipeline engine, with stage records for
/// the run manifest and an optional artifact cache.
///
/// # Errors
///
/// Propagates framework errors.
pub fn run_preset_cached(
    preset: IbmPgPreset,
    opts: &Options,
    cache: Option<&ArtifactCache>,
) -> ppdl_core::Result<(DlOutcome, Vec<StageRecord>)> {
    experiment::run_preset_cached(preset, opts.scale, opts.seed, opts.fast, cache)
}

/// Formats an aligned text table.
#[must_use]
pub fn format_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
        for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{c:<w$}");
        }
        out.push('\n');
    };
    let header_cells: Vec<String> = header.iter().map(|s| (*s).to_string()).collect();
    fmt_row(&header_cells, &widths, &mut out);
    let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        fmt_row(row, &widths, &mut out);
    }
    out
}

/// Writes a CSV file (creating the directory), returning the path.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or file.
pub fn write_csv(
    dir: &Path,
    name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    write_csv_file(&dir.join(name), header, rows)
}

/// Writes the experiment's *primary* CSV: to `--csv <path>` when given,
/// otherwise to `<out_dir>/<default_name>`.
///
/// # Errors
///
/// Returns any I/O error from creating the directory or file.
pub fn write_primary_csv(
    opts: &Options,
    default_name: &str,
    header: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<PathBuf> {
    match &opts.csv {
        Some(path) => {
            if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
                std::fs::create_dir_all(parent)?;
            }
            write_csv_file(path, header, rows)
        }
        None => write_csv(&opts.out_dir, default_name, header, rows),
    }
}

fn write_csv_file(path: &Path, header: &[&str], rows: &[Vec<String>]) -> std::io::Result<PathBuf> {
    let mut content = header.join(",");
    content.push('\n');
    for row in rows {
        content.push_str(&row.join(","));
        content.push('\n');
    }
    std::fs::write(path, content)?;
    Ok(path.to_path_buf())
}

/// Bins `values` into `bins` equal-width buckets over `[lo, hi]`,
/// returning `(bin_center, count)` pairs — the Fig. 7(b) histogram.
#[must_use]
pub fn histogram(values: &[f64], lo: f64, hi: f64, bins: usize) -> Vec<(f64, usize)> {
    assert!(bins > 0 && hi > lo, "histogram needs a positive range");
    let width = (hi - lo) / bins as f64;
    let mut counts = vec![0usize; bins];
    for &v in values {
        if v < lo || v > hi {
            continue;
        }
        let idx = (((v - lo) / width) as usize).min(bins - 1);
        counts[idx] += 1;
    }
    counts
        .into_iter()
        .enumerate()
        .map(|(i, c)| (lo + (i as f64 + 0.5) * width, c))
        .collect()
}

/// Windowed r² over an index-ordered series of (golden, predicted)
/// pairs — the Fig. 4(b) per-interconnect r² trace.
#[must_use]
pub fn windowed_r2(pairs: &[(f64, f64)], window: usize) -> Vec<(usize, f64)> {
    assert!(window >= 2, "window must cover at least 2 samples");
    let mut out = Vec::new();
    let mut start = 0;
    while start + window <= pairs.len() {
        let chunk = &pairs[start..start + window];
        let mean: f64 = chunk.iter().map(|(g, _)| g).sum::<f64>() / window as f64;
        let ss_tot: f64 = chunk.iter().map(|(g, _)| (g - mean) * (g - mean)).sum();
        let ss_res: f64 = chunk.iter().map(|(g, p)| (g - p) * (g - p)).sum();
        let r2 = if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else if ss_res == 0.0 {
            1.0
        } else {
            0.0
        };
        out.push((start + window / 2, r2));
        start += window;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_is_aligned() {
        let t = format_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a   "));
    }

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn parser_accepts_every_shared_flag() {
        let opts = Options::parse(
            &argv(&[
                "--scale",
                "0.01",
                "--seed",
                "3",
                "--fast",
                "--out",
                "o",
                "--json",
                "--csv",
                "x.csv",
                "--threads",
                "2",
                "--no-cache",
                "--telemetry",
                "t.json",
                "--precond",
                "block-jacobi",
            ]),
            0.02,
        )
        .unwrap();
        assert!((opts.scale - 0.01).abs() < 1e-12);
        assert_eq!(opts.seed, 3);
        assert!(opts.fast && opts.json && opts.no_cache);
        assert_eq!(opts.out_dir, PathBuf::from("o"));
        assert_eq!(opts.csv.as_deref(), Some(Path::new("x.csv")));
        assert_eq!(opts.threads, Some(2));
        assert_eq!(opts.telemetry.as_deref(), Some(Path::new("t.json")));
        assert_eq!(
            opts.precond,
            Some(ppdl_analysis::PreconditionerKind::BlockJacobi)
        );
        assert_eq!(opts.cache_dir(), PathBuf::from("o").join("cache"));
    }

    #[test]
    fn parser_defaults_and_help_and_errors() {
        let opts = Options::parse(&[], 0.015).unwrap();
        assert!((opts.scale - 0.015).abs() < 1e-12);
        assert_eq!(opts.seed, 7);
        assert!(!opts.no_cache && opts.csv.is_none() && opts.threads.is_none());
        assert!(opts.telemetry.is_none());
        assert!(matches!(
            Options::parse(&argv(&["--help"]), 0.02),
            Err(ParseError::Help)
        ));
        assert!(matches!(
            Options::parse(&argv(&["--bogus"]), 0.02),
            Err(ParseError::Bad(_))
        ));
        assert!(matches!(
            Options::parse(&argv(&["--scale", "abc"]), 0.02),
            Err(ParseError::Bad(_))
        ));
        assert!(matches!(
            Options::parse(&argv(&["--seed"]), 0.02),
            Err(ParseError::Bad(_))
        ));
        assert!(opts.precond.is_none());
        assert!(matches!(
            Options::parse(&argv(&["--precond", "bogus"]), 0.02),
            Err(ParseError::Bad(_))
        ));
        assert!(help_text(0.02).contains("--no-cache"));
        assert!(help_text(0.02).contains("--precond"));
    }

    #[test]
    fn no_cache_disables_the_cache() {
        let mut opts = Options::defaults(0.02);
        assert!(opts.open_cache().is_some());
        opts.no_cache = true;
        assert!(opts.open_cache().is_none());
    }

    #[test]
    fn histogram_bins_and_clips() {
        let h = histogram(&[0.1, 0.1, 0.9, 5.0, -3.0], 0.0, 1.0, 2);
        assert_eq!(h.len(), 2);
        assert_eq!(h[0].1, 2);
        assert_eq!(h[1].1, 1);
        assert!((h[0].0 - 0.25).abs() < 1e-12);
    }

    #[test]
    fn histogram_boundary_lands_in_last_bin() {
        let h = histogram(&[1.0], 0.0, 1.0, 4);
        assert_eq!(h[3].1, 1);
    }

    #[test]
    fn windowed_r2_perfect_prediction() {
        let pairs: Vec<(f64, f64)> = (0..20).map(|i| (i as f64, i as f64)).collect();
        let series = windowed_r2(&pairs, 5);
        assert_eq!(series.len(), 4);
        assert!(series.iter().all(|(_, r2)| (*r2 - 1.0).abs() < 1e-12));
    }

    #[test]
    fn windowed_r2_mean_prediction_is_zero() {
        // Predict the window mean: r2 = 0 per window.
        let golden: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let pairs: Vec<(f64, f64)> = golden.iter().map(|g| (*g, 2.0)).collect();
        let series = windowed_r2(&pairs[..5], 5);
        assert_eq!(series.len(), 1);
        assert!(series[0].1 <= 0.0);
    }

    #[test]
    fn csv_round_trip() {
        let dir = std::env::temp_dir().join("ppdl_csv_test");
        let p = write_csv(&dir, "t.csv", &["a", "b"], &[vec!["1".into(), "2".into()]]).unwrap();
        let content = std::fs::read_to_string(p).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }

    #[test]
    fn primary_csv_honours_override() {
        let dir = std::env::temp_dir().join("ppdl_primary_csv_test");
        let _ = std::fs::remove_dir_all(&dir);
        let mut opts = Options::defaults(0.02);
        opts.out_dir = dir.join("out");
        let p = write_primary_csv(&opts, "d.csv", &["a"], &[vec!["1".into()]]).unwrap();
        assert_eq!(p, opts.out_dir.join("d.csv"));
        opts.csv = Some(dir.join("custom").join("c.csv"));
        let p = write_primary_csv(&opts, "d.csv", &["a"], &[vec!["1".into()]]).unwrap();
        assert_eq!(p, dir.join("custom").join("c.csv"));
        assert!(p.exists());
    }
}

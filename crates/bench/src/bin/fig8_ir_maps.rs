//! Fig. 8: 100x100 IR-drop maps of ibmpg2 and ibmpg6, conventional
//! analysis vs the PowerPlanningDL prediction.
//!
//! Usage: `cargo run -p ppdl-bench --release --bin fig8_ir_maps --
//! [--scale 0.02] [--fast]`

use ppdl_analysis::IrDropMap;
use ppdl_bench::harness::{format_table, run_preset, Options};
use ppdl_bench::memtrack::TrackingAllocator;
use ppdl_netlist::IbmPgPreset;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

const RESOLUTION: usize = 100;

fn main() {
    let opts = Options::from_args(0.02);
    println!(
        "Fig. 8 reproduction (100x100 IR maps, scale {}, seed {})\n",
        opts.scale, opts.seed
    );
    let mut rows = Vec::new();
    for preset in [IbmPgPreset::Ibmpg2, IbmPgPreset::Ibmpg6] {
        let outcome = match run_preset(preset, &opts) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("{preset}: {e}");
                continue;
            }
        };
        let conventional =
            IrDropMap::from_report(outcome.test_bench.network(), &outcome.test_report, RESOLUTION)
                .expect("conventional map");
        let predicted = outcome
            .predicted_ir
            .to_map(&outcome.test_bench, RESOLUTION)
            .expect("predicted map");

        std::fs::create_dir_all(&opts.out_dir).expect("output dir");
        let conv_path = opts.out_dir.join(format!("fig8_{preset}_conventional.csv"));
        let pred_path = opts.out_dir.join(format!("fig8_{preset}_predicted.csv"));
        std::fs::write(&conv_path, conventional.to_csv()).expect("write conventional map");
        std::fs::write(&pred_path, predicted.to_csv()).expect("write predicted map");

        rows.push(vec![
            preset.name().to_string(),
            format!(
                "{:.1} / {:.1} / {:.1}",
                conventional.min_mv(),
                conventional.mean_mv(),
                conventional.max_mv()
            ),
            format!(
                "{:.1} / {:.1} / {:.1}",
                predicted.min_mv(),
                predicted.mean_mv(),
                predicted.max_mv()
            ),
            format!("{:.2}", conventional.mean_abs_diff_mv(&predicted)),
        ]);
        println!("wrote {} and {}", conv_path.display(), pred_path.display());
    }
    let header = [
        "PG circuit",
        "conventional min/mean/max (mV)",
        "predicted min/mean/max (mV)",
        "mean |diff| (mV)",
    ];
    println!("\n{}", format_table(&header, &rows));
}

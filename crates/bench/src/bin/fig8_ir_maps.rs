//! Alias binary for `ppdl-bench run fig8_ir_maps` — kept so existing
//! invocations (`cargo run -p ppdl-bench --bin fig8_ir_maps`) keep working.
//! The experiment body lives in the registry.

use ppdl_bench::memtrack::TrackingAllocator;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn main() {
    ppdl_bench::experiments::run_cli("fig8_ir_maps");
}

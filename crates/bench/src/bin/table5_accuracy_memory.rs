//! Table V: r² score, MSE, and peak memory per benchmark.
//!
//! Peak memory is measured by the tracking global allocator (the
//! paper used `mprof`), reset right before each benchmark's flow.
//!
//! Usage: `cargo run -p ppdl-bench --release --bin table5_accuracy_memory --
//! [--scale 0.02] [--fast]`

use ppdl_bench::harness::{format_table, run_preset, write_csv, Options};
use ppdl_bench::memtrack::{peak_bytes, reset_peak, to_mib, TrackingAllocator};
use ppdl_netlist::IbmPgPreset;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

/// The paper's Table V (r², MSE, peak MiB) for side-by-side reference.
fn paper_row(preset: IbmPgPreset) -> (f64, f64, u32) {
    match preset {
        IbmPgPreset::Ibmpg1 => (0.933, 0.0231, 66),
        IbmPgPreset::Ibmpg2 => (0.937, 0.0230, 318),
        IbmPgPreset::Ibmpg3 => (0.932, 0.0212, 730),
        IbmPgPreset::Ibmpg4 => (0.941, 0.0210, 749),
        IbmPgPreset::Ibmpg5 => (0.944, 0.0225, 511),
        IbmPgPreset::Ibmpg6 => (0.945, 0.0208, 841),
        IbmPgPreset::IbmpgNew1 => (0.943, 0.0201, 1025),
        IbmPgPreset::IbmpgNew2 => (0.945, 0.0209, 745),
    }
}

fn main() {
    let opts = Options::from_args(0.02);
    println!(
        "Table V reproduction (scale {} of Table II sizes, seed {})\n",
        opts.scale, opts.seed
    );
    let mut rows = Vec::new();
    for preset in IbmPgPreset::ALL {
        reset_peak();
        let outcome = match run_preset(preset, &opts) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("{preset}: {e}");
                continue;
            }
        };
        let peak = to_mib(peak_bytes());
        let (paper_r2, paper_mse, paper_mib) = paper_row(preset);
        rows.push(vec![
            preset.name().to_string(),
            outcome.test_bench.segments().len().to_string(),
            format!("{:.3}", outcome.width_metrics.r2),
            format!("{:.4}", outcome.width_metrics.mse_scaled),
            format!("{peak:.0}"),
            format!("{paper_r2:.3}"),
            format!("{paper_mse:.4}"),
            paper_mib.to_string(),
        ]);
        drop(outcome);
    }
    let header = [
        "PG circuit",
        "#interconnects",
        "r2",
        "MSE",
        "Peak MiB",
        "paper r2",
        "paper MSE",
        "paper MiB",
    ];
    println!("{}", format_table(&header, &rows));
    match write_csv(&opts.out_dir, "table5_accuracy_memory.csv", &header, &rows) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}

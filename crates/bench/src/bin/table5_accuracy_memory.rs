//! Alias binary for `ppdl-bench run table5_accuracy_memory` — kept so existing
//! invocations (`cargo run -p ppdl-bench --bin table5_accuracy_memory`) keep working.
//! The experiment body lives in the registry.

use ppdl_bench::memtrack::TrackingAllocator;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn main() {
    ppdl_bench::experiments::run_cli("table5_accuracy_memory");
}

//! Alias binary for `ppdl-bench run table2_benchmarks` — kept so existing
//! invocations (`cargo run -p ppdl-bench --bin table2_benchmarks`) keep working.
//! The experiment body lives in the registry.

use ppdl_bench::memtrack::TrackingAllocator;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn main() {
    ppdl_bench::experiments::run_cli("table2_benchmarks");
}

//! Table II: the benchmark suite itself — published node / resistor /
//! source / load counts vs what the synthetic generator produces at
//! the requested scale.
//!
//! The generator targets the scaled node count and the per-net source
//! density (half the published `#v`, which counts both supply nets);
//! resistor and load counts follow from the two-layer crossbar
//! topology, so their ratios are structural rather than fitted.
//!
//! Usage: `cargo run -p ppdl-bench --release --bin table2_benchmarks --
//! [--scale 0.02]`

use ppdl_bench::harness::{format_table, write_csv, Options};
use ppdl_bench::memtrack::TrackingAllocator;
use ppdl_netlist::{IbmPgPreset, SyntheticBenchmark};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn main() {
    let opts = Options::from_args(0.02);
    println!(
        "Table II reproduction (scale {} of published sizes, seed {})\n",
        opts.scale, opts.seed
    );
    let mut rows = Vec::new();
    for preset in IbmPgPreset::ALL {
        let bench = match SyntheticBenchmark::from_preset(preset, opts.scale, opts.seed) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("{preset}: {e}");
                continue;
            }
        };
        let got = bench.network().stats();
        let pub_stats = preset.published_stats();
        let scale_pub = |v: usize| -> String {
            format!("{:.0}", v as f64 * opts.scale)
        };
        rows.push(vec![
            preset.name().to_string(),
            got.nodes.to_string(),
            scale_pub(pub_stats.nodes),
            got.resistors.to_string(),
            scale_pub(pub_stats.resistors),
            got.sources.to_string(),
            // One of the two symmetric nets is modelled.
            scale_pub(pub_stats.sources / 2),
            got.loads.to_string(),
            scale_pub(pub_stats.loads),
        ]);
    }
    let header = [
        "PG circuit",
        "#n",
        "scaled paper #n",
        "#r",
        "scaled paper #r",
        "#v",
        "scaled paper #v/2",
        "#i",
        "scaled paper #i",
    ];
    println!("{}", format_table(&header, &rows));
    match write_csv(&opts.out_dir, "table2_benchmarks.csv", &header, &rows) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    println!(
        "\nnote: the generator fits #n and the per-net #v density; #r and #i\n\
         follow from the two-layer crossbar topology (ratios differ from the\n\
         multi-layer IBM extractions; see DESIGN.md section 2)."
    );
}

//! The experiment driver: `ppdl-bench run <name> [flags]` dispatches
//! any registered paper table/figure reproduction; `ppdl-bench list`
//! shows the registry. Legacy per-table binaries are aliases for
//! `ppdl-bench run <their name>`.

use ppdl_bench::experiments::{self, REGISTRY};
use ppdl_bench::harness::{help_text, Options, ParseError};
use ppdl_bench::memtrack::TrackingAllocator;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn usage() -> String {
    let mut out = String::from(
        "usage: ppdl-bench <command>\n\n\
         commands:\n  \
         run <name> [flags]   run a registered experiment\n  \
         list                 list registered experiments\n  \
         baseline <baseline.json> <manifest.json>\n                       \
         check a run manifest against a committed baseline\n  \
         help                 show this message\n\n",
    );
    out.push_str(&help_text(0.02));
    out
}

fn list() {
    println!("{:<24} {:<8} title", "name", "scale");
    println!("{}", "-".repeat(78));
    for def in REGISTRY {
        println!("{:<24} {:<8} {}", def.name, def.default_scale, def.title);
        if !def.aliases.is_empty() {
            println!("{:<24} (alias: {})", "", def.aliases.join(", "));
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("list") => list(),
        Some("baseline") => {
            std::process::exit(ppdl_bench::baseline::run_cli(&args[1..]));
        }
        Some("run") => {
            let Some(name) = args.get(1) else {
                eprintln!("error: 'run' needs an experiment name (see 'ppdl-bench list')");
                std::process::exit(2);
            };
            let Some(def) = experiments::find(name) else {
                eprintln!("error: unknown experiment '{name}' (see 'ppdl-bench list')");
                std::process::exit(2);
            };
            let opts = match Options::parse(&args[2..], def.default_scale) {
                Ok(opts) => opts,
                Err(ParseError::Help) => {
                    println!("{}: {}\n", def.name, def.title);
                    print!("{}", help_text(def.default_scale));
                    return;
                }
                Err(ParseError::Bad(msg)) => {
                    eprintln!("error: {msg}\n{}", help_text(def.default_scale));
                    std::process::exit(2);
                }
            };
            match experiments::execute(def, &opts) {
                Ok(out) => experiments::emit(&opts, &out),
                Err(e) => {
                    eprintln!("{}: {e}", def.name);
                    std::process::exit(1);
                }
            }
        }
        Some("help" | "--help" | "-h") | None => print!("{}", usage()),
        Some(other) => {
            eprintln!("error: unknown command '{other}'\n\n{}", usage());
            std::process::exit(2);
        }
    }
}

//! Table I and Fig. 4(b): r² of single input features vs the combined
//! `(X, Y, Id)` feature set, plus the per-interconnect windowed-r²
//! trace over the first 1000 interconnects of ibmpg1.
//!
//! Usage: `cargo run -p ppdl-bench --release --bin fig4b_table1 --
//! [--scale 0.02] [--fast]`

use ppdl_bench::harness::{format_table, windowed_r2, write_csv, Options};
use ppdl_bench::memtrack::TrackingAllocator;
use ppdl_core::{
    experiment, ConventionalConfig, ConventionalFlow, FeatureSet, PredictorConfig,
    WidthPredictor,
};
use ppdl_netlist::IbmPgPreset;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn main() {
    let opts = Options::from_args(0.02);
    println!(
        "Table I / Fig. 4(b) reproduction on ibmpg1 (scale {}, seed {})\n",
        opts.scale, opts.seed
    );
    let prepared =
        experiment::prepare(IbmPgPreset::Ibmpg1, opts.scale, opts.seed, 2.5).expect("prepare");
    let (sized, golden) = ConventionalFlow::new(ConventionalConfig {
        ir_margin_fraction: prepared.margin_fraction,
        ..ConventionalConfig::default()
    })
    .run(&prepared.bench)
    .expect("conventional sizing");

    // Table I: one model per feature set.
    let paper = [0.34, 0.39, 0.61, 0.89];
    let mut rows = Vec::new();
    let mut combined_pairs = Vec::new();
    for (fs, paper_r2) in FeatureSet::ALL.into_iter().zip(paper) {
        let config = PredictorConfig {
            feature_set: fs,
            ..if opts.fast {
                PredictorConfig::fast()
            } else {
                PredictorConfig::default()
            }
        };
        let (p, _) = WidthPredictor::train(&sized, &golden.widths, config).expect("train");
        let m = p.evaluate(&sized, &golden.widths).expect("evaluate");
        if fs == FeatureSet::Combined {
            combined_pairs = p.scatter_data(&sized, &golden.widths).expect("scatter");
        }
        rows.push(vec![
            fs.label().to_string(),
            format!("{:.2}", m.r2),
            format!("{paper_r2:.2}"),
        ]);
    }
    let header = ["Input features", "r2 score", "paper r2"];
    println!("{}", format_table(&header, &rows));
    let _ = write_csv(&opts.out_dir, "table1_feature_r2.csv", &header, &rows);

    // Fig. 4(b): windowed r² over 1000 interconnects. Segments are
    // stored strap by strap, so a raw window would often see a single
    // strap (constant golden width, degenerate r²); a deterministic
    // shuffle mixes straps within each window like the benchmark's
    // file order does in the paper.
    {
        use rand::seq::SliceRandom;
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(opts.seed);
        combined_pairs.shuffle(&mut rng);
    }
    let n = combined_pairs.len().min(1000);
    let series = windowed_r2(&combined_pairs[..n], 50);
    let fig_rows: Vec<Vec<String>> = series
        .iter()
        .map(|(idx, r2)| vec![idx.to_string(), format!("{r2:.4}")])
        .collect();
    match write_csv(
        &opts.out_dir,
        "fig4b_windowed_r2.csv",
        &["interconnect", "r2"],
        &fig_rows,
    ) {
        Ok(p) => println!("wrote {} ({} windows over {n} interconnects)", p.display(), series.len()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
    let mean_r2: f64 =
        series.iter().map(|(_, r)| r).sum::<f64>() / series.len().max(1) as f64;
    println!("mean windowed r2 (combined features): {mean_r2:.3}");
}

//! Alias binary for `ppdl-bench run fig4b_table1` — kept so existing
//! invocations (`cargo run -p ppdl-bench --bin fig4b_table1`) keep working.
//! The experiment body lives in the registry.

use ppdl_bench::memtrack::TrackingAllocator;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn main() {
    ppdl_bench::experiments::run_cli("fig4b_table1");
}

//! Ablation: how many hidden layers does the width model need?
//!
//! The paper fixes 10 hidden layers "obtained by hyperparameter
//! optimization". This ablation sweeps the depth on an ibmpg2-style
//! benchmark and reports accuracy and training cost.
//!
//! Usage: `cargo run -p ppdl-bench --release --bin ablation_depth --
//! [--scale 0.015]`

use std::time::Instant;

use ppdl_bench::harness::{format_table, write_csv, Options};
use ppdl_bench::memtrack::TrackingAllocator;
use ppdl_core::{
    experiment, ConventionalConfig, ConventionalFlow, PredictorConfig, WidthPredictor,
};
use ppdl_netlist::IbmPgPreset;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn main() {
    let opts = Options::from_args(0.015);
    println!(
        "Depth ablation on ibmpg2 (scale {}, seed {})\n",
        opts.scale, opts.seed
    );
    let prepared =
        experiment::prepare(IbmPgPreset::Ibmpg2, opts.scale, opts.seed, 2.5).expect("prepare");
    let (sized, golden) = ConventionalFlow::new(ConventionalConfig {
        ir_margin_fraction: prepared.margin_fraction,
        ..ConventionalConfig::default()
    })
    .run(&prepared.bench)
    .expect("sizing");

    let mut rows = Vec::new();
    for depth in [1usize, 2, 4, 6, 10, 14] {
        let config = PredictorConfig {
            hidden_layers: depth,
            ..PredictorConfig::default()
        };
        let t0 = Instant::now();
        let (p, summary) = WidthPredictor::train(&sized, &golden.widths, config).expect("train");
        let train_time = t0.elapsed();
        let m = p.evaluate(&sized, &golden.widths).expect("evaluate");
        rows.push(vec![
            depth.to_string(),
            format!("{:.3}", m.r2),
            format!("{:.4}", m.mse_scaled),
            format!("{:.2}", train_time.as_secs_f64()),
            summary.total_epochs().to_string(),
        ]);
    }
    let header = ["hidden layers", "r2", "MSE", "train (s)", "epochs"];
    println!("{}", format_table(&header, &rows));
    let _ = write_csv(&opts.out_dir, "ablation_depth.csv", &header, &rows);
    println!("wrote {}/ablation_depth.csv", opts.out_dir.display());
}

//! Alias binary for `ppdl-bench run ablation_depth` — kept so existing
//! invocations (`cargo run -p ppdl-bench --bin ablation_depth`) keep working.
//! The experiment body lives in the registry.

use ppdl_bench::memtrack::TrackingAllocator;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn main() {
    ppdl_bench::experiments::run_cli("ablation_depth");
}

//! Ablation: Adam (the paper's optimizer, ref. 13) vs SGD, momentum, and
//! RMSProp on the width-regression task.
//!
//! Uses the raw `ppdl-nn` training loop on the standardised ibmpg2
//! dataset so every optimizer sees identical batches.
//!
//! Usage: `cargo run -p ppdl-bench --release --bin ablation_optimizer --
//! [--scale 0.015]`

use std::time::Instant;

use ppdl_bench::harness::{format_table, write_csv, Options};
use ppdl_bench::memtrack::TrackingAllocator;
use ppdl_core::{
    experiment, segment_dataset, ConventionalConfig, ConventionalFlow, FeatureSet,
};
use ppdl_netlist::IbmPgPreset;
use ppdl_nn::{
    metrics, Activation, Adam, Dataset, Loss, MlpBuilder, Momentum, Optimizer, RmsProp, Sgd,
    StandardScaler,
};

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn train_with<O: Optimizer>(
    data: &Dataset,
    mut opt: O,
    epochs: usize,
) -> (f64, f64) {
    let mut model = MlpBuilder::new(3)
        .hidden_stack(4, 24, Activation::Relu)
        .output(1)
        .seed(3)
        .build()
        .expect("model");
    let t0 = Instant::now();
    for epoch in 0..epochs {
        for (xb, yb) in data.shuffled(epoch as u64).batches(64) {
            model
                .train_batch(&xb, &yb, Loss::Mse, &mut opt)
                .expect("train batch");
        }
    }
    let secs = t0.elapsed().as_secs_f64();
    let pred = model.predict(data.x()).expect("predict");
    let r2 = metrics::r2_score(&pred, data.y()).expect("r2");
    (r2, secs)
}

fn main() {
    let opts = Options::from_args(0.015);
    println!(
        "Optimizer ablation on ibmpg2 (scale {}, seed {})\n",
        opts.scale, opts.seed
    );
    let prepared =
        experiment::prepare(IbmPgPreset::Ibmpg2, opts.scale, opts.seed, 2.5).expect("prepare");
    let (sized, golden) = ConventionalFlow::new(ConventionalConfig {
        ir_margin_fraction: prepared.margin_fraction,
        ..ConventionalConfig::default()
    })
    .run(&prepared.bench)
    .expect("sizing");
    let raw = segment_dataset(&sized, &golden.widths, FeatureSet::Combined).expect("dataset");
    // Restrict to one strap direction: a combined-direction regression
    // has two conflicting targets per (X, Y) location, which would cap
    // every optimizer identically and mask their differences. Pick the
    // direction whose golden widths actually vary.
    let variance = |orient: ppdl_netlist::Orientation| -> f64 {
        let w: Vec<f64> = sized
            .straps()
            .iter()
            .enumerate()
            .filter(|(_, s)| s.orientation == orient)
            .map(|(i, _)| golden.widths[i])
            .collect();
        let mean = w.iter().sum::<f64>() / w.len() as f64;
        w.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / w.len() as f64
    };
    let chosen = if variance(ppdl_netlist::Orientation::Vertical)
        >= variance(ppdl_netlist::Orientation::Horizontal)
    {
        ppdl_netlist::Orientation::Vertical
    } else {
        ppdl_netlist::Orientation::Horizontal
    };
    println!("training on {chosen:?} straps (higher width variance)\n");
    let rows: Vec<usize> = sized
        .segments()
        .iter()
        .enumerate()
        .filter(|(_, seg)| sized.straps()[seg.strap].orientation == chosen)
        .map(|(i, _)| i)
        .collect();
    let raw_x = raw.x().gather_rows(&rows);
    let raw_y = raw.y().gather_rows(&rows);
    let xs = StandardScaler::fit(&raw_x).expect("x scaler");
    let ys = StandardScaler::fit(&raw_y).expect("y scaler");
    let data = Dataset::new(
        xs.transform(&raw_x).expect("scale x"),
        ys.transform(&raw_y).expect("scale y"),
    )
    .expect("dataset");

    let epochs = 120;
    let mut rows = Vec::new();
    let (r2, secs) = train_with(&data, Adam::new(2e-3).expect("adam"), epochs);
    rows.push(vec!["adam".into(), format!("{r2:.3}"), format!("{secs:.2}")]);
    let (r2, secs) = train_with(&data, Sgd::new(2e-2).expect("sgd"), epochs);
    rows.push(vec!["sgd".into(), format!("{r2:.3}"), format!("{secs:.2}")]);
    let (r2, secs) = train_with(&data, Momentum::new(5e-3, 0.9).expect("momentum"), epochs);
    rows.push(vec![
        "momentum".into(),
        format!("{r2:.3}"),
        format!("{secs:.2}"),
    ]);
    let (r2, secs) = train_with(&data, RmsProp::new(2e-3).expect("rmsprop"), epochs);
    rows.push(vec![
        "rmsprop".into(),
        format!("{r2:.3}"),
        format!("{secs:.2}"),
    ]);

    let header = ["optimizer", "r2 (train)", "time (s)"];
    println!("{}", format_table(&header, &rows));
    let _ = write_csv(&opts.out_dir, "ablation_optimizer.csv", &header, &rows);
    println!("wrote {}/ablation_optimizer.csv", opts.out_dir.display());
}

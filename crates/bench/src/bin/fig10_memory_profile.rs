//! Fig. 10: memory-vs-time profile of the PowerPlanningDL flow for
//! ibmpg2 and ibmpg6, sampled from the tracking allocator (the paper
//! used `mprof`).
//!
//! Usage: `cargo run -p ppdl-bench --release --bin fig10_memory_profile --
//! [--scale 0.02] [--fast]`

use std::time::Duration;

use ppdl_bench::harness::{format_table, run_preset, write_csv, Options};
use ppdl_bench::memtrack::{peak_bytes, reset_peak, to_mib, Sampler, TrackingAllocator};
use ppdl_netlist::IbmPgPreset;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn main() {
    let opts = Options::from_args(0.02);
    println!(
        "Fig. 10 reproduction (memory profile, scale {}, seed {})\n",
        opts.scale, opts.seed
    );
    let mut rows = Vec::new();
    for preset in [IbmPgPreset::Ibmpg2, IbmPgPreset::Ibmpg6] {
        reset_peak();
        let sampler = Sampler::start(Duration::from_millis(5));
        let outcome = run_preset(preset, &opts);
        let profile = sampler.stop();
        if let Err(e) = outcome {
            eprintln!("{preset}: {e}");
            continue;
        }
        let csv_rows: Vec<Vec<String>> = profile
            .iter()
            .map(|s| vec![format!("{:.4}", s.elapsed), format!("{:.3}", to_mib(s.bytes))])
            .collect();
        let name = format!("fig10_{preset}_memory.csv");
        let _ = write_csv(&opts.out_dir, &name, &["seconds", "mib"], &csv_rows);
        rows.push(vec![
            preset.name().to_string(),
            profile.len().to_string(),
            format!("{:.1}", profile.last().map_or(0.0, |s| s.elapsed)),
            format!("{:.1}", to_mib(peak_bytes())),
        ]);
        println!("wrote {}/{name}", opts.out_dir.display());
    }
    let header = ["PG circuit", "samples", "duration (s)", "peak MiB"];
    println!("\n{}", format_table(&header, &rows));
}

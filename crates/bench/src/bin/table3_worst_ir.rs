//! Table III: worst-case IR drop, conventional vs PowerPlanningDL.
//!
//! Usage: `cargo run -p ppdl-bench --release --bin table3_worst_ir --
//! [--scale 0.02] [--seed 7] [--fast] [--out bench_results]`

use ppdl_bench::harness::{format_table, run_preset, write_csv, Options};
use ppdl_bench::memtrack::TrackingAllocator;
use ppdl_netlist::IbmPgPreset;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn main() {
    let opts = Options::from_args(0.02);
    println!(
        "Table III reproduction (scale {} of Table II sizes, seed {})\n",
        opts.scale, opts.seed
    );
    let mut rows = Vec::new();
    for preset in IbmPgPreset::TABLE3 {
        let outcome = match run_preset(preset, &opts) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("{preset}: {e}");
                continue;
            }
        };
        let paper = preset
            .table3_worst_ir_mv()
            .expect("TABLE3 presets all have published values");
        rows.push(vec![
            preset.name().to_string(),
            format!("{:.1}", outcome.conventional_worst_ir_mv),
            format!("{:.1}", outcome.predicted_worst_ir_mv),
            format!(
                "{:+.1}%",
                100.0 * (outcome.predicted_worst_ir_mv - outcome.conventional_worst_ir_mv)
                    / outcome.conventional_worst_ir_mv
            ),
            format!("{paper:.1}"),
        ]);
    }
    let header = [
        "PG circuit",
        "Conventional (mV)",
        "PowerPlanningDL (mV)",
        "delta",
        "paper conv. (mV)",
    ];
    println!("{}", format_table(&header, &rows));
    match write_csv(&opts.out_dir, "table3_worst_ir.csv", &header, &rows) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}

//! Alias binary for `ppdl-bench run table3_worst_ir` — kept so existing
//! invocations (`cargo run -p ppdl-bench --bin table3_worst_ir`) keep working.
//! The experiment body lives in the registry.

use ppdl_bench::memtrack::TrackingAllocator;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn main() {
    ppdl_bench::experiments::run_cli("table3_worst_ir");
}

//! Alias binary for `ppdl-bench run fig9_perturbation` — kept so existing
//! invocations (`cargo run -p ppdl-bench --bin fig9_perturbation`) keep working.
//! The experiment body lives in the registry.

use ppdl_bench::memtrack::TrackingAllocator;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn main() {
    ppdl_bench::experiments::run_cli("fig9_perturbation");
}

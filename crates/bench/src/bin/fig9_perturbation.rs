//! Fig. 9: prediction MSE vs perturbation size γ ∈ {10..30 %} for the
//! three perturbation kinds, on ibmpg2 and ibmpg6.
//!
//! The model is trained once per benchmark on the sized design; for
//! each (γ, kind) the *initial* design is re-perturbed, re-sized by the
//! conventional flow (its widths are the golden answer for the
//! perturbed spec), and the model's standardised MSE against those
//! golden widths is reported as MSE(%).
//!
//! Usage: `cargo run -p ppdl-bench --release --bin fig9_perturbation --
//! [--scale 0.015] [--fast]`

use ppdl_bench::harness::{format_table, write_csv, Options};
use ppdl_bench::memtrack::TrackingAllocator;
use ppdl_core::{
    experiment, run_perturbation_sweep, ConventionalConfig, ConventionalFlow, PerturbationKind,
    PredictorConfig, WidthPredictor,
};
use ppdl_netlist::IbmPgPreset;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn main() {
    let opts = Options::from_args(0.015);
    println!(
        "Fig. 9 reproduction (MSE vs perturbation size, scale {}, seed {})\n",
        opts.scale, opts.seed
    );
    let gammas = [0.10, 0.15, 0.20, 0.25, 0.30];

    for preset in [IbmPgPreset::Ibmpg2, IbmPgPreset::Ibmpg6] {
        let prepared =
            experiment::prepare(preset, opts.scale, opts.seed, 2.5).expect("prepare");
        // A finer widening step than the default keeps the golden
        // widths from jumping in coarse quanta between gamma points.
        let conventional = ConventionalFlow::new(ConventionalConfig {
            ir_margin_fraction: prepared.margin_fraction,
            widen_factor: 1.15,
            ..ConventionalConfig::default()
        });
        let (sized, golden) = conventional.run(&prepared.bench).expect("sizing");
        let predictor_config = if opts.fast {
            PredictorConfig::fast()
        } else {
            PredictorConfig::default()
        };
        let (predictor, _) =
            WidthPredictor::train(&sized, &golden.widths, predictor_config).expect("train");

        let mut rows = Vec::new();
        let mut csv_rows = Vec::new();
        let repeats = 3u64;
        // Kind-major grid with `repeats` seeded draws per (kind, γ)
        // point — the random signs make any single draw noisy. Every
        // point re-sizes the perturbed spec independently, so the whole
        // grid evaluates in parallel across PPDL_THREADS.
        let points =
            experiment::perturbation_grid(&gammas, &PerturbationKind::ALL, opts.seed, repeats)
                .expect("gammas in range");
        let results = run_perturbation_sweep(&prepared.bench, &points, |perturbed, _| {
            // Golden answer for the perturbed spec.
            let (sized_p, golden_p) = conventional.run(perturbed)?;
            let m = predictor.evaluate(&sized_p, &golden_p.widths)?;
            // MSE(%): squared error relative to the mean golden width —
            // a scale-free percentage that does not blow up when the
            // golden widths are tightly clustered.
            let mean_w = golden_p.widths.iter().sum::<f64>() / golden_p.widths.len() as f64;
            Ok(100.0 * m.mse_um2 / (mean_w * mean_w))
        });
        let mut point = results.iter().zip(&points);
        for kind in PerturbationKind::ALL {
            let mut cells = vec![kind.label().to_string()];
            for &gamma in &gammas {
                let mut sum = 0.0;
                let mut count = 0usize;
                for _ in 0..repeats {
                    let (res, p) = point.next().expect("grid covers kind x gamma x repeats");
                    match res {
                        Ok(mse_pct) => {
                            sum += mse_pct;
                            count += 1;
                        }
                        Err(e) => {
                            eprintln!("{preset} gamma={gamma} {kind:?} seed={}: {e}", p.seed());
                        }
                    }
                }
                let mse_pct = if count > 0 { sum / count as f64 } else { f64::NAN };
                cells.push(format!("{mse_pct:.1}"));
                csv_rows.push(vec![
                    kind.label().to_string(),
                    format!("{gamma:.2}"),
                    format!("{mse_pct:.3}"),
                ]);
            }
            rows.push(cells);
        }
        let header = ["perturbation", "10%", "15%", "20%", "25%", "30%"];
        println!("{}:\n{}", preset.name(), format_table(&header, &rows));
        let _ = write_csv(
            &opts.out_dir,
            &format!("fig9_{preset}_mse_vs_gamma.csv"),
            &["kind", "gamma", "mse_pct"],
            &csv_rows,
        );
    }
    println!("wrote fig9_*_mse_vs_gamma.csv to {}", opts.out_dir.display());
}

//! Alias binary for `ppdl-bench run fig7_width_prediction` — kept so existing
//! invocations (`cargo run -p ppdl-bench --bin fig7_width_prediction`) keep working.
//! The experiment body lives in the registry.

use ppdl_bench::memtrack::TrackingAllocator;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn main() {
    ppdl_bench::experiments::run_cli("fig7_width_prediction");
}

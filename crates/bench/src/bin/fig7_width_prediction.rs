//! Fig. 7: width-prediction quality on ibmpg2 — (a) predicted vs
//! golden scatter, (b) signed error histogram.
//!
//! Usage: `cargo run -p ppdl-bench --release --bin fig7_width_prediction --
//! [--scale 0.02] [--fast]`

use ppdl_bench::harness::{format_table, histogram, run_preset, write_csv, Options};
use ppdl_bench::memtrack::TrackingAllocator;
use ppdl_core::WidthPredictor;
use ppdl_netlist::IbmPgPreset;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn main() {
    let opts = Options::from_args(0.02);
    println!(
        "Fig. 7 reproduction on ibmpg2 (scale {}, seed {})\n",
        opts.scale, opts.seed
    );
    let outcome = run_preset(IbmPgPreset::Ibmpg2, &opts).expect("flow");

    // Re-derive the (golden, predicted) pairs on the test design.
    let prepared =
        ppdl_core::experiment::prepare(IbmPgPreset::Ibmpg2, opts.scale, opts.seed, 2.5)
            .expect("prepare");
    let config = ppdl_core::experiment::flow_config(&prepared, opts.fast);
    let (predictor, _) = WidthPredictor::train(
        &outcome.sized_bench,
        &outcome.golden_widths,
        config.predictor,
    )
    .expect("train");
    let pairs = predictor
        .scatter_data(&outcome.test_bench, &outcome.golden_widths)
        .expect("scatter");

    // (a) scatter: write all pairs; print summary statistics.
    let scatter_rows: Vec<Vec<String>> = pairs
        .iter()
        .map(|(g, p)| vec![format!("{g:.4}"), format!("{p:.4}")])
        .collect();
    let _ = write_csv(
        &opts.out_dir,
        "fig7a_scatter.csv",
        &["golden_um", "predicted_um"],
        &scatter_rows,
    );
    println!(
        "scatter: {} interconnects, correlation {:.3}, r2 {:.3}",
        pairs.len(),
        outcome.width_metrics.correlation,
        outcome.width_metrics.r2
    );

    // (b) error histogram over golden - predicted.
    let errors: Vec<f64> = pairs.iter().map(|(g, p)| g - p).collect();
    let lo = errors.iter().cloned().fold(f64::INFINITY, f64::min);
    let hi = errors.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let span = (hi - lo).max(1e-9);
    let bins = histogram(&errors, lo - 0.05 * span, hi + 0.05 * span, 41);
    let hist_rows: Vec<Vec<String>> = bins
        .iter()
        .map(|(c, n)| vec![format!("{c:.4}"), n.to_string()])
        .collect();
    let _ = write_csv(
        &opts.out_dir,
        "fig7b_error_histogram.csv",
        &["error_um", "count"],
        &hist_rows,
    );

    // Shape check the paper emphasises: mass concentrated near zero.
    let near_zero = errors.iter().filter(|e| e.abs() <= 0.1 * span).count();
    let mut rows = vec![
        vec![
            "fraction within 10% of error span of 0".into(),
            format!("{:.1}%", 100.0 * near_zero as f64 / errors.len() as f64),
        ],
        vec![
            "overpredicted (error < 0)".into(),
            errors.iter().filter(|e| **e < 0.0).count().to_string(),
        ],
        vec![
            "underpredicted (error > 0)".into(),
            errors.iter().filter(|e| **e > 0.0).count().to_string(),
        ],
        vec!["max |error| (um)".into(), format!("{:.3}", lo.abs().max(hi.abs()))],
    ];
    rows.push(vec![
        "mse (um^2)".into(),
        format!("{:.4}", outcome.width_metrics.mse_um2),
    ]);
    println!("{}", format_table(&["statistic", "value"], &rows));
    println!("wrote fig7a_scatter.csv and fig7b_error_histogram.csv to {}", opts.out_dir.display());
}

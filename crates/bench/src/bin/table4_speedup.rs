//! Alias binary for `ppdl-bench run table4_speedup` — kept so existing
//! invocations (`cargo run -p ppdl-bench --bin table4_speedup`) keep working.
//! The experiment body lives in the registry.

use ppdl_bench::memtrack::TrackingAllocator;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

fn main() {
    ppdl_bench::experiments::run_cli("table4_speedup");
}

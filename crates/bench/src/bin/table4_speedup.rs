//! Table IV: convergence time of the conventional flow vs
//! PowerPlanningDL, and the resulting speedup, for all 8 benchmarks.
//!
//! Conventional time = one full power-grid analysis of the test design
//! (the paper's best-case, single-design-iteration cost); DL time =
//! width inference + Kirchhoff IR-drop prediction.
//!
//! Usage: `cargo run -p ppdl-bench --release --bin table4_speedup --
//! [--scale 0.02] [--fast]`

use ppdl_bench::harness::{format_table, run_preset, write_csv, Options};
use ppdl_bench::memtrack::TrackingAllocator;
use ppdl_netlist::IbmPgPreset;

#[global_allocator]
static ALLOC: TrackingAllocator = TrackingAllocator::new();

/// The paper's Table IV, for side-by-side comparison.
fn paper_speedup(preset: IbmPgPreset) -> f64 {
    match preset {
        IbmPgPreset::Ibmpg1 => 1.92,
        IbmPgPreset::Ibmpg2 => 1.97,
        IbmPgPreset::Ibmpg3 => 3.59,
        IbmPgPreset::Ibmpg4 => 4.42,
        IbmPgPreset::Ibmpg5 => 5.87,
        IbmPgPreset::Ibmpg6 => 5.60,
        IbmPgPreset::IbmpgNew1 => 4.77,
        IbmPgPreset::IbmpgNew2 => 4.47,
    }
}

fn main() {
    let opts = Options::from_args(0.02);
    println!(
        "Table IV reproduction (scale {} of Table II sizes, seed {})\n",
        opts.scale, opts.seed
    );
    let mut rows = Vec::new();
    for preset in IbmPgPreset::ALL {
        let outcome = match run_preset(preset, &opts) {
            Ok(o) => o,
            Err(e) => {
                eprintln!("{preset}: {e}");
                continue;
            }
        };
        rows.push(vec![
            preset.name().to_string(),
            format!("{:.4}", outcome.timing.conventional.as_secs_f64()),
            format!("{:.4}", outcome.timing.dl.as_secs_f64()),
            format!("{:.2}x", outcome.timing.speedup),
            format!("{:.2}x", paper_speedup(preset)),
        ]);
    }
    let header = [
        "PG circuit",
        "Conventional (s)",
        "PowerPlanningDL (s)",
        "Speedup",
        "paper speedup",
    ];
    println!("{}", format_table(&header, &rows));
    match write_csv(&opts.out_dir, "table4_speedup.csv", &header, &rows) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("csv write failed: {e}"),
    }
}

//! Experiment harness for the PowerPlanningDL reproduction.
//!
//! Everything needed to regenerate the paper's tables and figures:
//!
//! * [`memtrack`] — a tracking global allocator (live/peak byte
//!   counters) plus a background sampler, standing in for the paper's
//!   `mprof` memory profiles (Table V peak memory, Fig. 10).
//! * [`harness`] — shared experiment plumbing: per-preset runs, table
//!   formatting, CSV emission.
//!
//! One binary per table/figure lives in `src/bin/` (run with
//! `cargo run -p ppdl-bench --release --bin <name>`), and the Criterion
//! benches in `benches/` time the kernels and the end-to-end
//! convergence comparison.
//!
//! This crate contains the only `unsafe` in the workspace: the
//! [`GlobalAlloc`](std::alloc::GlobalAlloc) implementation of the
//! tracking allocator, which simply delegates to the system allocator
//! around counter updates.

#![warn(missing_docs)]

pub mod harness;
pub mod memtrack;

//! Experiment harness for the PowerPlanningDL reproduction.
//!
//! Everything needed to regenerate the paper's tables and figures:
//!
//! * [`memtrack`] — a tracking global allocator (live/peak byte
//!   counters) plus a background sampler, standing in for the paper's
//!   `mprof` memory profiles (Table V peak memory, Fig. 10).
//! * [`harness`] — shared experiment plumbing: the unified [`Options`]
//!   parser every experiment accepts, table formatting, CSV emission.
//! * [`experiments`] — the experiment registry: each paper table and
//!   figure as a named entry over the cached pipeline engine, producing
//!   a [`RunManifest`](ppdl_core::pipeline::RunManifest) per run.
//! * [`baseline`] — manifest-diff baseline checks: tolerance-tagged
//!   metric bounds committed to the repo, compared against a fresh
//!   manifest in CI (`ppdl-bench baseline`).
//!
//! The `ppdl-bench` binary dispatches them (`ppdl-bench run <name>
//! [--json] [--no-cache]`, `ppdl-bench list`); the per-table binaries
//! in `src/bin/` remain as thin aliases. The Criterion benches in
//! `benches/` time the kernels and the end-to-end convergence
//! comparison.
//!
//! This crate contains the only `unsafe` in the workspace: the
//! [`GlobalAlloc`](std::alloc::GlobalAlloc) implementation of the
//! tracking allocator, which simply delegates to the system allocator
//! around counter updates.
//!
//! [`Options`]: harness::Options

#![warn(missing_docs)]

pub mod baseline;
pub mod experiments;
pub mod harness;
pub mod memtrack;

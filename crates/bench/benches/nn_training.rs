//! Training-throughput benches for the neural-network library:
//! epoch time vs network depth on a fixed synthetic regression task.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppdl_nn::{Activation, Adam, Loss, Matrix, MlpBuilder};

fn bench_epoch(c: &mut Criterion) {
    let x = Matrix::from_fn(512, 3, |r, c| ((r * 7 + c * 13) % 23) as f64 / 23.0);
    let y = Matrix::from_fn(512, 1, |r, _| {
        x.get(r, 0) * 2.0 - x.get(r, 1) + 0.5 * x.get(r, 2)
    });
    let mut group = c.benchmark_group("train_epoch");
    for depth in [1usize, 4, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(depth), &depth, |b, &depth| {
            let mut model = MlpBuilder::new(3)
                .hidden_stack(depth, 24, Activation::Relu)
                .output(1)
                .seed(1)
                .build()
                .expect("model");
            let mut opt = Adam::new(1e-3).expect("adam");
            b.iter(|| {
                model
                    .train_batch(&x, &y, Loss::Mse, &mut opt)
                    .expect("batch")
            });
        });
    }
    group.finish();
}

fn bench_inference(c: &mut Criterion) {
    let x = Matrix::from_fn(4096, 3, |r, c| ((r + c) % 17) as f64 / 17.0);
    let model = MlpBuilder::new(3)
        .hidden_stack(10, 24, Activation::Relu)
        .output(1)
        .seed(1)
        .build()
        .expect("model");
    c.bench_function("inference_4096x10layers", |b| {
        b.iter(|| model.predict(&x).expect("predict"));
    });
}

criterion_group!(benches, bench_epoch, bench_inference);
criterion_main!(benches);

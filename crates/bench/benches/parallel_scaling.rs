//! Thread-scaling benches for the parallel execution layer: the same
//! SpMV, CG solve, and training epoch measured at 1 thread and at the
//! machine's full parallelism, on ibmpg2- and ibmpg6-scale problems.
//!
//! Results are bitwise identical across thread counts by construction
//! (see `ppdl_solver::parallel`), so these benches measure pure
//! wall-clock scaling. The small-grid cases double as a regression
//! guard: below the parallel threshold the kernels must not pay for
//! threads they don't use.
//!
//! The `telemetry_overhead` group guards the `ppdl-obs` promise that
//! disabled instrumentation costs nothing measurable: the same SpMV and
//! CG workloads with collection off vs on. The disabled numbers must
//! stay within noise (<2%) of the pre-telemetry baselines; DESIGN.md
//! §11 records the measured figures.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ppdl_nn::{Activation, Adam, Loss, Matrix, MlpBuilder};
use ppdl_solver::{
    parallel_config, set_threads, CgOptions, ConjugateGradient, CsrMatrix, TripletMatrix,
};

/// 2-D grid Laplacian with grounded corner — the structure of a
/// power-grid conductance matrix. `side = 150` is ibmpg2-scale
/// (~22.5k unknowns); `side = 400` approaches ibmpg6 (~160k).
fn grid(side: usize) -> CsrMatrix {
    let n = side * side;
    let mut t = TripletMatrix::new(n, n);
    for r in 0..side {
        for c in 0..side {
            let i = r * side + c;
            if c + 1 < side {
                t.stamp_conductance(i, i + 1, 1.0);
            }
            if r + 1 < side {
                t.stamp_conductance(i, i + side, 1.0);
            }
        }
    }
    t.stamp_grounded_conductance(0, 2.0);
    t.to_csr()
}

/// The thread counts to compare: sequential vs whatever the machine
/// offers (deduplicated on single-core machines).
fn thread_points() -> Vec<usize> {
    set_threads(0);
    let max = parallel_config().threads;
    if max > 1 {
        vec![1, max]
    } else {
        vec![1]
    }
}

fn bench_spmv_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_spmv");
    // Small grid below the parallel threshold: both thread counts must
    // take the sequential path, so their times should match.
    for side in [32usize, 150, 400] {
        let a = grid(side);
        let x = vec![1.0; a.ncols()];
        let mut y = vec![0.0; a.nrows()];
        group.throughput(Throughput::Elements(a.nnz() as u64));
        for threads in thread_points() {
            set_threads(threads);
            group.bench_function(
                BenchmarkId::new(format!("threads{threads}"), side * side),
                |b| b.iter(|| a.mul_vec_into(&x, &mut y).expect("spmv")),
            );
        }
        set_threads(0);
    }
    group.finish();
}

fn bench_cg_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_cg_solve");
    group.sample_size(10);
    for side in [150usize, 400] {
        let a = grid(side);
        let b_vec: Vec<f64> = (0..a.nrows()).map(|i| (i % 7) as f64 * 0.1).collect();
        let cg = ConjugateGradient::new(CgOptions {
            tolerance: 1e-8,
            ..CgOptions::default()
        });
        for threads in thread_points() {
            set_threads(threads);
            group.bench_function(
                BenchmarkId::new(format!("threads{threads}"), side * side),
                |b| b.iter(|| cg.solve(&a, &b_vec).expect("cg")),
            );
        }
        set_threads(0);
    }
    group.finish();
}

/// Naive triple-loop matmul — the kernel the tiled GEMM replaced.
/// Kept here as the throughput baseline so `par_gemm` reports the
/// speedup of the register-tiled path over the scalar one.
fn scalar_matmul(m: usize, k: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = 0.0f64;
            for kk in 0..k {
                acc += a[i * k + kk] * b[kk * n + j];
            }
            out[i * n + j] = acc;
        }
    }
}

fn bench_gemm_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_gemm");
    group.sample_size(20);
    // Paper-scale shapes: a full-batch hidden-layer product from the
    // ibmpg2-scale MLP (4096×24 · 24×24) and a square shape large
    // enough to expose cache blocking (256³).
    for (m, k, n) in [(4096usize, 24usize, 24usize), (256, 256, 256)] {
        let a = Matrix::from_fn(m, k, |r, cc| ((r * 31 + cc * 7) % 113) as f64 / 113.0 - 0.5);
        let b = Matrix::from_fn(k, n, |r, cc| {
            ((r * 13 + cc * 17) % 127) as f64 / 127.0 - 0.5
        });
        let flops = 2 * m * k * n;
        group.throughput(Throughput::Elements(flops as u64));
        group.bench_function(BenchmarkId::new("scalar", format!("{m}x{k}x{n}")), |bn| {
            let mut out = vec![0.0f64; m * n];
            bn.iter(|| scalar_matmul(m, k, n, a.as_slice(), b.as_slice(), &mut out));
        });
        for threads in thread_points() {
            set_threads(threads);
            group.bench_function(
                BenchmarkId::new(format!("tiled_threads{threads}"), format!("{m}x{k}x{n}")),
                |bn| bn.iter(|| a.matmul(&b).expect("matmul")),
            );
        }
        set_threads(0);
    }
    group.finish();
}

fn bench_training_epoch_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_train_epoch");
    group.sample_size(10);
    // One full-batch step on a paper-shaped model (3 features, deep
    // ReLU stack, 1 output). 4096 rows is an ibmpg2-scale epoch; the
    // chunked minibatch path engages above 512 rows.
    for rows in [4096usize, 16384] {
        let x = Matrix::from_fn(rows, 3, |r, c| ((r * 7 + c * 3) % 97) as f64 / 97.0);
        let y = Matrix::from_fn(rows, 1, |r, _| {
            0.4 * x.get(r, 0) - x.get(r, 1) + 0.2 * x.get(r, 2)
        });
        group.throughput(Throughput::Elements(rows as u64));
        for threads in thread_points() {
            set_threads(threads);
            group.bench_function(BenchmarkId::new(format!("threads{threads}"), rows), |b| {
                let mut model = MlpBuilder::new(3)
                    .hidden_stack(10, 24, Activation::Relu)
                    .output(1)
                    .seed(7)
                    .build()
                    .expect("build");
                let mut opt = Adam::new(1e-3).expect("adam");
                b.iter(|| {
                    model
                        .train_batch(&x, &y, Loss::Mse, &mut opt)
                        .expect("train step")
                });
            });
        }
        set_threads(0);
    }
    group.finish();
}

fn bench_telemetry_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("telemetry_overhead");
    set_threads(0);
    // SpMV is the most instrumentation-sensitive kernel: two counter
    // bumps per call when enabled, one relaxed load when disabled.
    for side in [150usize, 400] {
        let a = grid(side);
        let x = vec![1.0; a.ncols()];
        let mut y = vec![0.0; a.nrows()];
        group.throughput(Throughput::Elements(a.nnz() as u64));
        for (label, on) in [("disabled", false), ("enabled", true)] {
            ppdl_obs::set_enabled(on);
            group.bench_function(
                BenchmarkId::new(format!("spmv_{label}"), side * side),
                |b| b.iter(|| a.mul_vec_into(&x, &mut y).expect("spmv")),
            );
        }
        ppdl_obs::set_enabled(false);
    }
    // A full CG solve: per-iteration SpMV counters plus the
    // convergence histogram records at the end.
    group.sample_size(10);
    let a = grid(150);
    let b_vec: Vec<f64> = (0..a.nrows()).map(|i| (i % 7) as f64 * 0.1).collect();
    let cg = ConjugateGradient::new(CgOptions {
        tolerance: 1e-8,
        ..CgOptions::default()
    });
    for (label, on) in [("disabled", false), ("enabled", true)] {
        ppdl_obs::set_enabled(on);
        group.bench_function(BenchmarkId::new(format!("cg_{label}"), 150 * 150), |b| {
            b.iter(|| cg.solve(&a, &b_vec).expect("cg"))
        });
    }
    ppdl_obs::set_enabled(false);
    group.finish();
}

criterion_group!(
    benches,
    bench_spmv_threads,
    bench_cg_threads,
    bench_gemm_threads,
    bench_training_epoch_threads,
    bench_telemetry_overhead
);
criterion_main!(benches);

//! Thread-scaling benches for the parallel execution layer: the same
//! SpMV, CG solve, and training epoch measured at 1 thread and at the
//! machine's full parallelism, on ibmpg2- and ibmpg6-scale problems.
//!
//! Results are bitwise identical across thread counts by construction
//! (see `ppdl_solver::parallel`), so these benches measure pure
//! wall-clock scaling. The small-grid cases double as a regression
//! guard: below the parallel threshold the kernels must not pay for
//! threads they don't use.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ppdl_nn::{Activation, Adam, Loss, Matrix, MlpBuilder};
use ppdl_solver::{
    parallel_config, set_threads, CgOptions, ConjugateGradient, CsrMatrix, JacobiPreconditioner,
    TripletMatrix,
};

/// 2-D grid Laplacian with grounded corner — the structure of a
/// power-grid conductance matrix. `side = 150` is ibmpg2-scale
/// (~22.5k unknowns); `side = 400` approaches ibmpg6 (~160k).
fn grid(side: usize) -> CsrMatrix {
    let n = side * side;
    let mut t = TripletMatrix::new(n, n);
    for r in 0..side {
        for c in 0..side {
            let i = r * side + c;
            if c + 1 < side {
                t.stamp_conductance(i, i + 1, 1.0);
            }
            if r + 1 < side {
                t.stamp_conductance(i, i + side, 1.0);
            }
        }
    }
    t.stamp_grounded_conductance(0, 2.0);
    t.to_csr()
}

/// The thread counts to compare: sequential vs whatever the machine
/// offers (deduplicated on single-core machines).
fn thread_points() -> Vec<usize> {
    set_threads(0);
    let max = parallel_config().threads;
    if max > 1 {
        vec![1, max]
    } else {
        vec![1]
    }
}

fn bench_spmv_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_spmv");
    // Small grid below the parallel threshold: both thread counts must
    // take the sequential path, so their times should match.
    for side in [32usize, 150, 400] {
        let a = grid(side);
        let x = vec![1.0; a.ncols()];
        let mut y = vec![0.0; a.nrows()];
        group.throughput(Throughput::Elements(a.nnz() as u64));
        for threads in thread_points() {
            set_threads(threads);
            group.bench_function(
                BenchmarkId::new(format!("threads{threads}"), side * side),
                |b| b.iter(|| a.mul_vec_into(&x, &mut y).expect("spmv")),
            );
        }
        set_threads(0);
    }
    group.finish();
}

fn bench_cg_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_cg_solve");
    group.sample_size(10);
    for side in [150usize, 400] {
        let a = grid(side);
        let b_vec: Vec<f64> = (0..a.nrows()).map(|i| (i % 7) as f64 * 0.1).collect();
        let cg = ConjugateGradient::new(CgOptions {
            tolerance: 1e-8,
            ..CgOptions::default()
        });
        let pc = JacobiPreconditioner::from_matrix(&a).expect("jacobi");
        for threads in thread_points() {
            set_threads(threads);
            group.bench_function(
                BenchmarkId::new(format!("threads{threads}"), side * side),
                |b| b.iter(|| cg.solve(&a, &b_vec, &pc).expect("cg")),
            );
        }
        set_threads(0);
    }
    group.finish();
}

fn bench_training_epoch_threads(c: &mut Criterion) {
    let mut group = c.benchmark_group("par_train_epoch");
    group.sample_size(10);
    // One full-batch step on a paper-shaped model (3 features, deep
    // ReLU stack, 1 output). 4096 rows is an ibmpg2-scale epoch; the
    // chunked minibatch path engages above 512 rows.
    for rows in [4096usize, 16384] {
        let x = Matrix::from_fn(rows, 3, |r, c| ((r * 7 + c * 3) % 97) as f64 / 97.0);
        let y = Matrix::from_fn(rows, 1, |r, _| {
            0.4 * x.get(r, 0) - x.get(r, 1) + 0.2 * x.get(r, 2)
        });
        group.throughput(Throughput::Elements(rows as u64));
        for threads in thread_points() {
            set_threads(threads);
            group.bench_function(BenchmarkId::new(format!("threads{threads}"), rows), |b| {
                let mut model = MlpBuilder::new(3)
                    .hidden_stack(10, 24, Activation::Relu)
                    .output(1)
                    .seed(7)
                    .build()
                    .expect("build");
                let mut opt = Adam::new(1e-3).expect("adam");
                b.iter(|| {
                    model
                        .train_batch(&x, &y, Loss::Mse, &mut opt)
                        .expect("train step")
                });
            });
        }
        set_threads(0);
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_spmv_threads,
    bench_cg_threads,
    bench_training_epoch_threads
);
criterion_main!(benches);

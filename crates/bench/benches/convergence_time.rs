//! Criterion bench behind Table IV: the conventional analysis solve vs
//! the PowerPlanningDL prediction path, per benchmark, at a small
//! scale (the `table4_speedup` binary sweeps larger grids).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppdl_analysis::StaticAnalysis;
use ppdl_core::{
    experiment, ConventionalConfig, ConventionalFlow, IrPredictor, PredictorConfig, WidthPredictor,
};
use ppdl_netlist::IbmPgPreset;

fn bench_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("convergence_time");
    group.sample_size(10);
    for preset in [
        IbmPgPreset::Ibmpg1,
        IbmPgPreset::Ibmpg2,
        IbmPgPreset::Ibmpg5,
    ] {
        let prepared = experiment::prepare(preset, 0.01, 7, 2.5).expect("prepare");
        let (sized, golden) = ConventionalFlow::new(ConventionalConfig {
            ir_margin_fraction: prepared.margin_fraction,
            ..ConventionalConfig::default()
        })
        .run(&prepared.bench)
        .expect("sizing");
        let (predictor, _) =
            WidthPredictor::train(&sized, &golden.widths, PredictorConfig::fast()).expect("train");
        let analyzer = StaticAnalysis::default();

        group.bench_with_input(
            BenchmarkId::new("conventional_analysis", preset.name()),
            &sized,
            |b, bench| {
                b.iter(|| analyzer.solve(bench.network()).expect("solve"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("powerplanningdl_predict", preset.name()),
            &sized,
            |b, bench| {
                b.iter(|| {
                    let widths = predictor.predict_strap_widths(bench).expect("widths");
                    IrPredictor::new().predict(bench, &widths).expect("ir")
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_convergence);
criterion_main!(benches);

//! Ablation bench: preconditioner choice for the IR-drop solve on a
//! generated power-grid benchmark (None vs Jacobi vs block-Jacobi vs
//! IC(0)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ppdl_analysis::{AnalysisOptions, PreconditionerKind, StaticAnalysis};
use ppdl_core::experiment;
use ppdl_netlist::IbmPgPreset;

fn bench_preconditioners(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_precond");
    group.sample_size(10);
    let prepared = experiment::prepare(IbmPgPreset::Ibmpg2, 0.01, 7, 2.5).expect("prepare");
    for (name, kind) in [
        ("none", PreconditionerKind::None),
        ("jacobi", PreconditionerKind::Jacobi),
        ("block-jacobi", PreconditionerKind::BlockJacobi),
        ("ic0", PreconditionerKind::Ic0),
    ] {
        let analyzer = StaticAnalysis::new(AnalysisOptions {
            preconditioner: kind,
            ..AnalysisOptions::default()
        });
        group.bench_with_input(
            BenchmarkId::from_parameter(name),
            &prepared.bench,
            |b, bench| {
                b.iter(|| analyzer.solve(bench.network()).expect("solve"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_preconditioners);
criterion_main!(benches);

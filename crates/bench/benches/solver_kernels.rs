//! Kernel benches for the sparse solver: SpMV and full CG solves on
//! power-grid conductance matrices of growing size.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ppdl_solver::{
    CgOptions, ConjugateGradient, CsrMatrix, PrecondKind, SparseCholesky, TripletMatrix,
};

/// 2-D grid Laplacian with grounded corner — the structure of a
/// power-grid conductance matrix.
fn grid(side: usize) -> CsrMatrix {
    let n = side * side;
    let mut t = TripletMatrix::new(n, n);
    for r in 0..side {
        for c in 0..side {
            let i = r * side + c;
            if c + 1 < side {
                t.stamp_conductance(i, i + 1, 1.0);
            }
            if r + 1 < side {
                t.stamp_conductance(i, i + side, 1.0);
            }
        }
    }
    t.stamp_grounded_conductance(0, 2.0);
    t.to_csr()
}

fn bench_spmv(c: &mut Criterion) {
    let mut group = c.benchmark_group("spmv");
    for side in [32usize, 64, 128] {
        let a = grid(side);
        let x = vec![1.0; a.ncols()];
        let mut y = vec![0.0; a.nrows()];
        group.throughput(Throughput::Elements(a.nnz() as u64));
        group.bench_with_input(BenchmarkId::from_parameter(side * side), &a, |b, a| {
            b.iter(|| a.mul_vec_into(&x, &mut y).expect("spmv"));
        });
    }
    group.finish();
}

fn bench_cg(c: &mut Criterion) {
    let mut group = c.benchmark_group("cg_solve");
    group.sample_size(10);
    for side in [32usize, 64] {
        let a = grid(side);
        let b_vec: Vec<f64> = (0..a.nrows()).map(|i| (i % 7) as f64 * 0.1).collect();
        for kind in PrecondKind::ALL {
            let cg =
                ConjugateGradient::new(CgOptions::builder().tolerance(1e-8).precond(kind).build());
            group.bench_with_input(BenchmarkId::new(kind.name(), side * side), &a, |bn, a| {
                bn.iter(|| cg.solve(a, &b_vec).expect("cg"));
            });
        }
    }
    group.finish();
}

fn bench_direct(c: &mut Criterion) {
    let mut group = c.benchmark_group("direct_cholesky");
    group.sample_size(10);
    for side in [16usize, 32] {
        let a = grid(side);
        group.bench_with_input(BenchmarkId::new("factor", side * side), &a, |bn, a| {
            bn.iter(|| SparseCholesky::factor(a).expect("spd"))
        });
        let chol = SparseCholesky::factor(&a).expect("spd");
        let b_vec = vec![0.5; a.nrows()];
        group.bench_with_input(BenchmarkId::new("solve", side * side), &chol, |bn, chol| {
            bn.iter(|| chol.solve(&b_vec).expect("solve"))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_spmv, bench_cg, bench_direct);
criterion_main!(benches);

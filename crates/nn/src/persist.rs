//! Versioned text persistence for trained models.
//!
//! The format is line-oriented and human-inspectable:
//!
//! ```text
//! ppdl-mlp v1
//! layers 2
//! layer 8 3 relu
//! <8 weight rows, space-separated>
//! <1 bias row>
//! layer 1 8 identity
//! ...
//! end
//! ```
//!
//! Values are written with Rust's shortest-round-trip float formatting,
//! so save/load is lossless.

use crate::{Activation, DenseLayer, Matrix, Mlp, NnError};

impl Mlp {
    /// Serialises the model to the versioned text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "ppdl-mlp v1");
        let _ = writeln!(out, "layers {}", self.layer_count());
        for layer in self.layers() {
            let act = layer.activation();
            match act {
                Activation::LeakyRelu(alpha) => {
                    let _ = writeln!(
                        out,
                        "layer {} {} leaky_relu {alpha}",
                        layer.output_dim(),
                        layer.input_dim()
                    );
                }
                _ => {
                    let _ = writeln!(
                        out,
                        "layer {} {} {}",
                        layer.output_dim(),
                        layer.input_dim(),
                        act.name()
                    );
                }
            }
            for r in 0..layer.output_dim() {
                let row: Vec<String> = (0..layer.input_dim())
                    .map(|c| format!("{}", layer.weights().get(r, c)))
                    .collect();
                let _ = writeln!(out, "{}", row.join(" "));
            }
            let bias: Vec<String> = layer.bias().iter().map(|b| format!("{b}")).collect();
            let _ = writeln!(out, "{}", bias.join(" "));
        }
        out.push_str("end\n");
        out
    }

    /// Reconstructs a model from [`to_text`](Self::to_text) output.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Decode`] (with a line number) for any
    /// malformed input.
    pub fn from_text(text: &str) -> crate::Result<Self> {
        let mut lines = text.lines().enumerate();
        let mut next = |expect: &str| -> crate::Result<(usize, &str)> {
            lines
                .next()
                .map(|(i, l)| (i + 1, l.trim()))
                .ok_or_else(|| NnError::Decode {
                    line: 0,
                    detail: format!("unexpected end of input, expected {expect}"),
                })
        };
        let (ln, header) = next("header")?;
        if header != "ppdl-mlp v1" {
            return Err(NnError::Decode {
                line: ln,
                detail: format!("bad header '{header}'"),
            });
        }
        let (ln, count_line) = next("layer count")?;
        let count: usize = count_line
            .strip_prefix("layers ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| NnError::Decode {
                line: ln,
                detail: format!("bad layer count line '{count_line}'"),
            })?;
        let mut layers = Vec::with_capacity(count);
        for _ in 0..count {
            let (ln, decl) = next("layer declaration")?;
            let fields: Vec<&str> = decl.split_whitespace().collect();
            if fields.len() < 4 || fields[0] != "layer" {
                return Err(NnError::Decode {
                    line: ln,
                    detail: format!("bad layer declaration '{decl}'"),
                });
            }
            let out_dim: usize = fields[1].parse().map_err(|_| NnError::Decode {
                line: ln,
                detail: format!("bad output dim '{}'", fields[1]),
            })?;
            let in_dim: usize = fields[2].parse().map_err(|_| NnError::Decode {
                line: ln,
                detail: format!("bad input dim '{}'", fields[2]),
            })?;
            let activation = match fields[3] {
                "identity" => Activation::Identity,
                "relu" => Activation::Relu,
                "tanh" => Activation::Tanh,
                "sigmoid" => Activation::Sigmoid,
                "leaky_relu" => {
                    let alpha: f64 =
                        fields.get(4).and_then(|s| s.parse().ok()).ok_or_else(|| {
                            NnError::Decode {
                                line: ln,
                                detail: "leaky_relu requires an alpha".into(),
                            }
                        })?;
                    Activation::LeakyRelu(alpha)
                }
                other => {
                    return Err(NnError::Decode {
                        line: ln,
                        detail: format!("unknown activation '{other}'"),
                    })
                }
            };
            let mut weights = Matrix::zeros(out_dim, in_dim);
            for r in 0..out_dim {
                let (ln, row) = next("weight row")?;
                let vals = parse_floats(row, ln)?;
                if vals.len() != in_dim {
                    return Err(NnError::Decode {
                        line: ln,
                        detail: format!("weight row has {} values, expected {in_dim}", vals.len()),
                    });
                }
                weights.row_mut(r).copy_from_slice(&vals);
            }
            let (ln, brow) = next("bias row")?;
            let bias = parse_floats(brow, ln)?;
            if bias.len() != out_dim {
                return Err(NnError::Decode {
                    line: ln,
                    detail: format!("bias row has {} values, expected {out_dim}", bias.len()),
                });
            }
            layers.push(DenseLayer::from_parameters(weights, bias, activation)?);
        }
        let (ln, terminator) = next("end")?;
        if terminator != "end" {
            return Err(NnError::Decode {
                line: ln,
                detail: format!("expected 'end', found '{terminator}'"),
            });
        }
        Mlp::from_layers(layers)
    }
}

pub(crate) fn parse_floats(line: &str, ln: usize) -> crate::Result<Vec<f64>> {
    line.split_whitespace()
        .map(|t| {
            t.parse().map_err(|_| NnError::Decode {
                line: ln,
                detail: format!("bad float '{t}'"),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MlpBuilder;

    fn model() -> Mlp {
        MlpBuilder::new(3)
            .hidden(5, Activation::Relu)
            .hidden(4, Activation::LeakyRelu(0.02))
            .output(2)
            .seed(17)
            .build()
            .unwrap()
    }

    #[test]
    fn round_trip_is_exact() {
        let m = model();
        let text = m.to_text();
        let back = Mlp::from_text(&text).unwrap();
        assert_eq!(back.layer_count(), m.layer_count());
        let x = Matrix::from_fn(7, 3, |r, c| (r as f64 - c as f64) * 0.37);
        assert_eq!(back.predict(&x).unwrap(), m.predict(&x).unwrap());
    }

    #[test]
    fn round_trip_preserves_activations() {
        let m = model();
        let back = Mlp::from_text(&m.to_text()).unwrap();
        for (a, b) in back.layers().iter().zip(m.layers()) {
            assert_eq!(a.activation(), b.activation());
        }
    }

    #[test]
    fn bad_header_rejected() {
        let err = Mlp::from_text("nonsense v9\n").unwrap_err();
        assert!(matches!(err, NnError::Decode { line: 1, .. }));
    }

    #[test]
    fn truncated_input_rejected() {
        let m = model();
        let text = m.to_text();
        let truncated: String = text.lines().take(4).collect::<Vec<_>>().join("\n");
        assert!(Mlp::from_text(&truncated).is_err());
    }

    #[test]
    fn corrupted_float_rejected_with_line() {
        let m = MlpBuilder::new(1).output(1).build().unwrap();
        let text = m.to_text().replace(
            m.layers()[0].weights().get(0, 0).to_string().as_str(),
            "not_a_number",
        );
        match Mlp::from_text(&text) {
            Err(NnError::Decode { line, .. }) => assert!(line >= 3),
            other => panic!("expected decode error, got {other:?}"),
        }
    }

    #[test]
    fn wrong_row_width_rejected() {
        let text = "ppdl-mlp v1\nlayers 1\nlayer 1 2 identity\n0.5\n0.0\nend\n";
        // Weight row has 1 value but input dim is 2.
        assert!(Mlp::from_text(text).is_err());
    }

    #[test]
    fn missing_end_rejected() {
        let text = "ppdl-mlp v1\nlayers 1\nlayer 1 1 identity\n0.5\n0.0\nnot-end\n";
        assert!(Mlp::from_text(text).is_err());
    }

    #[test]
    fn unknown_activation_rejected() {
        let text = "ppdl-mlp v1\nlayers 1\nlayer 1 1 swish extra\n0.5\n0.0\nend\n";
        assert!(Mlp::from_text(text).is_err());
    }

    #[test]
    fn trained_model_round_trips_bitwise() {
        // Adam-updated weights exercise the full float range (tiny
        // mantissa tails the builder's init never produces), which is
        // exactly what the artifact cache persists between runs.
        use crate::{Dataset, TrainConfig, Trainer};
        let mut m = MlpBuilder::new(2)
            .hidden(8, Activation::Tanh)
            .output(1)
            .seed(3)
            .build()
            .unwrap();
        let x = Matrix::from_fn(64, 2, |r, c| ((r * 7 + c * 3) % 13) as f64 / 13.0 - 0.5);
        let y = Matrix::from_fn(64, 1, |r, _| {
            let a = x.get(r, 0);
            let b = x.get(r, 1);
            (a * b + 0.3 * a).sin()
        });
        let data = Dataset::new(x.clone(), y).unwrap();
        let report = Trainer::new(TrainConfig {
            epochs: 20,
            ..TrainConfig::default()
        })
        .fit(&mut m, &data)
        .unwrap();
        assert_eq!(report.epochs_run, 20);

        let back = Mlp::from_text(&m.to_text()).unwrap();
        assert_eq!(
            back.predict(&x).unwrap(),
            m.predict(&x).unwrap(),
            "trained weights must survive save → load bit for bit"
        );
        // And the text itself is a fixed point: re-encoding the loaded
        // model reproduces the artifact byte for byte.
        assert_eq!(back.to_text(), m.to_text());
    }
}

//! The general layer-graph model: a sequential [`Network`] composing
//! dense and spatial layers behind the same deterministic engine the
//! [`Mlp`](crate::Mlp) uses.

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::conv::{AvgPool2d, Conv2d, Flatten, MaxPool2d, Upsample2d};
use crate::engine::{self, LayerOps};
use crate::{Activation, DenseLayer, Loss, Matrix, NnError, Optimizer};

/// The shape of the tensor flowing between layers: a flat feature row
/// or a channel-major `c×h×w` map (both are stored as one [`Matrix`]
/// row of `len()` values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TensorShape {
    /// A flat feature vector of the given width.
    Flat(usize),
    /// A channel-major map: index `c·h·w + y·w + x`.
    Chw {
        /// Channel count.
        c: usize,
        /// Map height.
        h: usize,
        /// Map width.
        w: usize,
    },
}

impl TensorShape {
    /// Number of values per sample row.
    #[must_use]
    pub fn len(&self) -> usize {
        match *self {
            TensorShape::Flat(n) => n,
            TensorShape::Chw { c, h, w } => c * h * w,
        }
    }

    /// Whether the shape holds zero values.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl std::fmt::Display for TensorShape {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match *self {
            TensorShape::Flat(n) => write!(f, "flat({n})"),
            TensorShape::Chw { c, h, w } => write!(f, "chw({c}x{h}x{w})"),
        }
    }
}

/// One layer of a [`Network`] — a closed enum so persistence, shape
/// propagation, and the engine contract stay exhaustive.
#[derive(Debug, Clone)]
pub enum Layer {
    /// Fully-connected layer.
    Dense(DenseLayer),
    /// 2-D convolution (odd kernel, stride 1, same padding).
    Conv2d(Conv2d),
    /// Max pooling (window = stride).
    MaxPool2d(MaxPool2d),
    /// Average pooling (window = stride).
    AvgPool2d(AvgPool2d),
    /// Nearest-neighbour upsampling.
    Upsample2d(Upsample2d),
    /// Map-to-row marker (identity data path).
    Flatten(Flatten),
}

impl Layer {
    /// The shape this layer expects as input.
    #[must_use]
    pub fn input_shape(&self) -> TensorShape {
        match self {
            Layer::Dense(l) => TensorShape::Flat(l.input_dim()),
            Layer::Conv2d(l) => {
                let (h, w) = l.spatial();
                TensorShape::Chw {
                    c: l.in_channels(),
                    h,
                    w,
                }
            }
            Layer::MaxPool2d(l) => {
                let (h, w) = l.spatial();
                TensorShape::Chw {
                    c: l.channels(),
                    h,
                    w,
                }
            }
            Layer::AvgPool2d(l) => {
                let (h, w) = l.spatial();
                TensorShape::Chw {
                    c: l.channels(),
                    h,
                    w,
                }
            }
            Layer::Upsample2d(l) => {
                let (h, w) = l.spatial();
                TensorShape::Chw {
                    c: l.channels(),
                    h,
                    w,
                }
            }
            Layer::Flatten(l) => {
                let (c, h, w) = l.shape();
                TensorShape::Chw { c, h, w }
            }
        }
    }

    /// The shape this layer produces.
    #[must_use]
    pub fn output_shape(&self) -> TensorShape {
        match self {
            Layer::Dense(l) => TensorShape::Flat(l.output_dim()),
            Layer::Conv2d(l) => {
                let (h, w) = l.spatial();
                TensorShape::Chw {
                    c: l.out_channels(),
                    h,
                    w,
                }
            }
            Layer::MaxPool2d(l) => {
                let (h, w) = l.spatial();
                let k = l.window();
                TensorShape::Chw {
                    c: l.channels(),
                    h: h / k,
                    w: w / k,
                }
            }
            Layer::AvgPool2d(l) => {
                let (h, w) = l.spatial();
                let k = l.window();
                TensorShape::Chw {
                    c: l.channels(),
                    h: h / k,
                    w: w / k,
                }
            }
            Layer::Upsample2d(l) => {
                let (h, w) = l.spatial();
                let k = l.factor();
                TensorShape::Chw {
                    c: l.channels(),
                    h: h * k,
                    w: w * k,
                }
            }
            Layer::Flatten(l) => {
                let (c, h, w) = l.shape();
                TensorShape::Flat(c * h * w)
            }
        }
    }

    /// Trainable parameter count (zero for pools/upsample/flatten).
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        match self {
            Layer::Dense(l) => l.parameter_count(),
            Layer::Conv2d(l) => l.parameter_count(),
            _ => 0,
        }
    }
}

impl LayerOps for Layer {
    fn forward(&mut self, input: &Matrix) -> crate::Result<Matrix> {
        match self {
            Layer::Dense(l) => l.forward(input),
            Layer::Conv2d(l) => l.forward(input),
            Layer::MaxPool2d(l) => l.forward(input),
            Layer::AvgPool2d(l) => l.forward(input),
            Layer::Upsample2d(l) => l.forward(input),
            Layer::Flatten(l) => l.forward_inference(input),
        }
    }

    fn backward(&mut self, grad_output: &Matrix) -> crate::Result<Matrix> {
        match self {
            Layer::Dense(l) => l.backward(grad_output),
            Layer::Conv2d(l) => l.backward(grad_output),
            Layer::MaxPool2d(l) => l.backward(grad_output),
            Layer::AvgPool2d(l) => l.backward(grad_output),
            Layer::Upsample2d(l) => l.backward(grad_output),
            Layer::Flatten(_) => Ok(grad_output.clone()),
        }
    }

    fn forward_pure(&self, input: &Matrix) -> crate::Result<(Matrix, Matrix)> {
        match self {
            Layer::Dense(l) => l.forward_pure(input),
            Layer::Conv2d(l) => l.forward_pure(input),
            Layer::MaxPool2d(l) => l.forward_pure(input),
            Layer::AvgPool2d(l) => l.forward_pure(input),
            Layer::Upsample2d(l) => l.forward_pure(input),
            Layer::Flatten(l) => l.forward_pure(input),
        }
    }

    fn forward_inference(&self, input: &Matrix) -> crate::Result<Matrix> {
        match self {
            Layer::Dense(l) => l.forward_inference(input),
            Layer::Conv2d(l) => l.forward_inference(input),
            Layer::MaxPool2d(l) => l.forward_inference(input),
            Layer::AvgPool2d(l) => l.forward_inference(input),
            Layer::Upsample2d(l) => l.forward_inference(input),
            Layer::Flatten(l) => l.forward_inference(input),
        }
    }

    fn backward_pure(
        &self,
        input: &Matrix,
        pre: &Matrix,
        grad_output: &Matrix,
    ) -> crate::Result<(Matrix, Matrix, Vec<f64>)> {
        match self {
            Layer::Dense(l) => l.backward_pure(input, pre, grad_output),
            Layer::Conv2d(l) => l.backward_pure(input, pre, grad_output),
            Layer::MaxPool2d(l) => l.backward_pure(input, pre, grad_output),
            Layer::AvgPool2d(l) => l.backward_pure(input, pre, grad_output),
            Layer::Upsample2d(l) => l.backward_pure(input, pre, grad_output),
            Layer::Flatten(l) => l.backward_pure(input, pre, grad_output),
        }
    }

    fn set_gradients(&mut self, grad_weights: Matrix, grad_bias: Vec<f64>) {
        match self {
            Layer::Dense(l) => l.set_gradients(grad_weights, grad_bias),
            Layer::Conv2d(l) => l.set_gradients(grad_weights, grad_bias),
            _ => {}
        }
    }

    fn update_parameters(&mut self, f: impl FnMut(&mut [f64], &[f64])) {
        match self {
            Layer::Dense(l) => l.update_parameters(f),
            Layer::Conv2d(l) => l.update_parameters(f),
            _ => {}
        }
    }
}

/// A sequential layer-graph model over [`Layer`]s, driving the same
/// bitwise-deterministic chunked engine as [`Mlp`](crate::Mlp): samples
/// are matrix rows, large batches split into fixed 256-row chunks, and
/// gradients reduce in ascending chunk order regardless of thread
/// count.
#[derive(Debug, Clone)]
pub struct Network {
    layers: Vec<Layer>,
    input_shape: TensorShape,
    output_shape: TensorShape,
}

impl Network {
    /// Assembles a network from parts, validating that every layer's
    /// input shape matches its predecessor's output shape.
    ///
    /// Pure shape reinterpretation is allowed where widths agree: a
    /// `Flat(n)` tensor feeds a spatial layer whose `c·h·w == n` and a
    /// `Chw` tensor feeds a dense layer of matching width, because rows
    /// are the storage for both.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for an empty layer list and
    /// [`NnError::ShapeMismatch`] for a broken shape chain.
    pub fn from_parts(input_shape: TensorShape, layers: Vec<Layer>) -> crate::Result<Self> {
        if layers.is_empty() {
            return Err(NnError::InvalidConfig {
                detail: "a network needs at least one layer".into(),
            });
        }
        let mut shape = input_shape;
        for (i, layer) in layers.iter().enumerate() {
            let expected = layer.input_shape();
            if expected.len() != shape.len() {
                return Err(NnError::ShapeMismatch {
                    detail: format!("layer {i} expects input {expected} but receives {shape}"),
                });
            }
            shape = layer.output_shape();
        }
        Ok(Self {
            layers,
            input_shape,
            output_shape: shape,
        })
    }

    /// The declared input shape.
    #[must_use]
    pub fn input_shape(&self) -> TensorShape {
        self.input_shape
    }

    /// The derived output shape.
    #[must_use]
    pub fn output_shape(&self) -> TensorShape {
        self.output_shape
    }

    /// Read access to the layers.
    #[must_use]
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Number of layers.
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Total trainable parameter count.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(Layer::parameter_count).sum()
    }

    /// Inference on a batch (`batch × input_shape.len()`), chunked and
    /// parallel for large batches exactly like [`Mlp::predict`]
    /// (bitwise identical at every thread count).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] for a wrong input width.
    ///
    /// [`Mlp::predict`]: crate::Mlp::predict
    pub fn predict(&self, x: &Matrix) -> crate::Result<Matrix> {
        engine::predict(&self.layers, x)
    }

    /// One optimisation step on a batch. See
    /// [`Mlp::train_batch`](crate::Mlp::train_batch).
    ///
    /// # Errors
    ///
    /// Propagates shape errors and optimizer errors.
    pub fn train_batch<O: Optimizer>(
        &mut self,
        x: &Matrix,
        y: &Matrix,
        loss: Loss,
        optimizer: &mut O,
    ) -> crate::Result<f64> {
        self.train_batch_regularized(x, y, loss, 0.0, optimizer)
    }

    /// One optimisation step with an L2 weight penalty, on the shared
    /// deterministic chunked path. See
    /// [`Mlp::train_batch_regularized`](crate::Mlp::train_batch_regularized);
    /// parameterless layers simply contribute no optimizer groups.
    ///
    /// # Errors
    ///
    /// Propagates shape errors, optimizer errors, and
    /// [`NnError::InvalidConfig`] for a negative or non-finite λ.
    pub fn train_batch_regularized<O: Optimizer>(
        &mut self,
        x: &Matrix,
        y: &Matrix,
        loss: Loss,
        weight_decay: f64,
        optimizer: &mut O,
    ) -> crate::Result<f64> {
        engine::train_batch_regularized(&mut self.layers, x, y, loss, weight_decay, optimizer)
    }
}

/// Builder for [`Network`], tracking the flowing shape so layer
/// geometry never has to be repeated.
///
/// # Example
///
/// A small encoder-decoder over `2×8×8` maps:
///
/// ```
/// use ppdl_nn::{Activation, NetworkBuilder, TensorShape};
///
/// let net = NetworkBuilder::new(TensorShape::Chw { c: 2, h: 8, w: 8 })
///     .conv2d(4, 3, Activation::Relu)
///     .max_pool(2)
///     .conv2d(4, 3, Activation::Relu)
///     .upsample(2)
///     .conv2d(2, 3, Activation::Identity)
///     .seed(7)
///     .build()
///     .unwrap();
/// assert_eq!(net.output_shape(), TensorShape::Chw { c: 2, h: 8, w: 8 });
/// ```
#[derive(Debug)]
pub struct NetworkBuilder {
    input_shape: TensorShape,
    shape: TensorShape,
    layers: Vec<Layer>,
    seed: u64,
    error: Option<NnError>,
}

impl NetworkBuilder {
    /// Starts a builder for the given input shape.
    #[must_use]
    pub fn new(input_shape: TensorShape) -> Self {
        Self {
            input_shape,
            shape: input_shape,
            layers: Vec::new(),
            seed: 0,
            error: None,
        }
    }

    /// Sets the weight-initialisation seed (default 0).
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    fn fail(mut self, detail: String) -> Self {
        if self.error.is_none() {
            self.error = Some(NnError::InvalidConfig { detail });
        }
        self
    }

    fn push(mut self, layer: Layer) -> Self {
        self.shape = layer.output_shape();
        self.layers.push(layer);
        self
    }

    fn chw(&self, what: &str) -> Option<(usize, usize, usize)> {
        match self.shape {
            TensorShape::Chw { c, h, w } => Some((c, h, w)),
            TensorShape::Flat(n) => {
                let _ = (what, n);
                None
            }
        }
    }

    /// Appends a dense layer (requires a flat tensor — use
    /// [`flatten`](Self::flatten) after spatial layers).
    #[must_use]
    pub fn dense(mut self, width: usize, activation: Activation) -> Self {
        let shape = self.shape;
        let TensorShape::Flat(input_dim) = shape else {
            return self.fail(format!(
                "dense layer requires a flat input, found {shape}; insert flatten()"
            ));
        };
        if self.error.is_some() {
            return self;
        }
        // Derive a per-layer seed so inserting a layer doesn't shift
        // every later layer's weights.
        let li = self.layers.len() as u64;
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(li.wrapping_mul(0x9e37_79b9)));
        match DenseLayer::new(input_dim, width, activation, &mut rng) {
            Ok(l) => self.push(Layer::Dense(l)),
            Err(e) => {
                self.error = Some(e);
                self
            }
        }
    }

    /// Appends a `k×k` convolution producing `out_c` channels
    /// (requires a `Chw` tensor).
    #[must_use]
    pub fn conv2d(mut self, out_c: usize, k: usize, activation: Activation) -> Self {
        let shape = self.shape;
        let Some((c, h, w)) = self.chw("conv2d") else {
            return self.fail(format!("conv2d requires a chw input, found {shape}"));
        };
        if self.error.is_some() {
            return self;
        }
        let li = self.layers.len() as u64;
        let mut rng = StdRng::seed_from_u64(self.seed.wrapping_add(li.wrapping_mul(0x9e37_79b9)));
        match Conv2d::new(c, h, w, out_c, k, activation, &mut rng) {
            Ok(l) => self.push(Layer::Conv2d(l)),
            Err(e) => {
                self.error = Some(e);
                self
            }
        }
    }

    /// Appends a max-pooling layer with window `k`.
    #[must_use]
    pub fn max_pool(mut self, k: usize) -> Self {
        let shape = self.shape;
        let Some((c, h, w)) = self.chw("max_pool") else {
            return self.fail(format!("max_pool requires a chw input, found {shape}"));
        };
        match MaxPool2d::new(c, h, w, k) {
            Ok(l) => self.push(Layer::MaxPool2d(l)),
            Err(e) => {
                if self.error.is_none() {
                    self.error = Some(e);
                }
                self
            }
        }
    }

    /// Appends an average-pooling layer with window `k`.
    #[must_use]
    pub fn avg_pool(mut self, k: usize) -> Self {
        let shape = self.shape;
        let Some((c, h, w)) = self.chw("avg_pool") else {
            return self.fail(format!("avg_pool requires a chw input, found {shape}"));
        };
        match AvgPool2d::new(c, h, w, k) {
            Ok(l) => self.push(Layer::AvgPool2d(l)),
            Err(e) => {
                if self.error.is_none() {
                    self.error = Some(e);
                }
                self
            }
        }
    }

    /// Appends a nearest-neighbour upsampling layer with factor `k`.
    #[must_use]
    pub fn upsample(mut self, k: usize) -> Self {
        let shape = self.shape;
        let Some((c, h, w)) = self.chw("upsample") else {
            return self.fail(format!("upsample requires a chw input, found {shape}"));
        };
        match Upsample2d::new(c, h, w, k) {
            Ok(l) => self.push(Layer::Upsample2d(l)),
            Err(e) => {
                if self.error.is_none() {
                    self.error = Some(e);
                }
                self
            }
        }
    }

    /// Appends a flatten marker, switching the flowing shape from
    /// `Chw` to `Flat` so dense layers can follow.
    #[must_use]
    pub fn flatten(mut self) -> Self {
        let shape = self.shape;
        let Some((c, h, w)) = self.chw("flatten") else {
            return self.fail(format!("flatten requires a chw input, found {shape}"));
        };
        match Flatten::new(c, h, w) {
            Ok(l) => self.push(Layer::Flatten(l)),
            Err(e) => {
                if self.error.is_none() {
                    self.error = Some(e);
                }
                self
            }
        }
    }

    /// Builds the network.
    ///
    /// # Errors
    ///
    /// Returns the first layer-construction error, or
    /// [`NnError::InvalidConfig`] for an empty network.
    pub fn build(self) -> crate::Result<Network> {
        if let Some(e) = self.error {
            return Err(e);
        }
        Network::from_parts(self.input_shape, self.layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Adam;

    fn chw(c: usize, h: usize, w: usize) -> TensorShape {
        TensorShape::Chw { c, h, w }
    }

    #[test]
    fn shape_chain_validated() {
        // Dense after Chw without flatten: widths must match to pass.
        let err = NetworkBuilder::new(chw(1, 4, 4))
            .conv2d(2, 3, Activation::Relu)
            .dense(4, Activation::Identity)
            .build();
        assert!(err.is_err());
        let ok = NetworkBuilder::new(chw(1, 4, 4))
            .conv2d(2, 3, Activation::Relu)
            .flatten()
            .dense(4, Activation::Identity)
            .build()
            .unwrap();
        assert_eq!(ok.output_shape(), TensorShape::Flat(4));
        assert_eq!(ok.layer_count(), 3);
    }

    #[test]
    fn builder_reports_first_error() {
        let err = NetworkBuilder::new(chw(1, 4, 4))
            .conv2d(2, 2, Activation::Relu) // even kernel
            .max_pool(2)
            .build();
        assert!(matches!(err, Err(NnError::InvalidConfig { .. })));
    }

    #[test]
    fn encoder_decoder_round_trips_shape() {
        let net = NetworkBuilder::new(chw(2, 8, 8))
            .conv2d(4, 3, Activation::Relu)
            .max_pool(2)
            .conv2d(8, 3, Activation::Relu)
            .upsample(2)
            .conv2d(2, 3, Activation::Identity)
            .seed(3)
            .build()
            .unwrap();
        assert_eq!(net.output_shape(), chw(2, 8, 8));
        let x = Matrix::from_fn(3, 2 * 64, |r, i| ((r + i) % 7) as f64 * 0.1);
        let out = net.predict(&x).unwrap();
        assert_eq!(out.shape(), (3, 2 * 64));
        assert!(out.all_finite());
    }

    #[test]
    fn network_training_reduces_loss() {
        // Learn to predict the per-map mean current via conv + pool +
        // dense readout.
        let mut net = NetworkBuilder::new(chw(1, 4, 4))
            .conv2d(3, 3, Activation::Tanh)
            .avg_pool(2)
            .flatten()
            .dense(1, Activation::Identity)
            .seed(5)
            .build()
            .unwrap();
        let x = Matrix::from_fn(64, 16, |r, i| ((r * 5 + i * 3) % 11) as f64 / 11.0);
        let y = Matrix::from_fn(64, 1, |r, _| x.row(r).iter().sum::<f64>() / 16.0);
        let mut opt = Adam::new(5e-3).unwrap();
        let mut first = 0.0;
        let mut last = 0.0;
        for e in 0..150 {
            let l = net.train_batch(&x, &y, Loss::Mse, &mut opt).unwrap();
            if e == 0 {
                first = l;
            }
            last = l;
        }
        assert!(
            last < first / 5.0,
            "training should reduce loss: {first} -> {last}"
        );
    }

    #[test]
    fn conv_training_is_bitwise_deterministic_across_thread_counts() {
        // 640 samples of 2x4x4 maps: above the 512-row parallel
        // threshold, so training runs the chunked path. Weights and
        // losses must be bitwise identical at 1 vs 4 threads.
        let run = || -> (Vec<f64>, Vec<f64>) {
            let mut net = NetworkBuilder::new(chw(2, 4, 4))
                .conv2d(3, 3, Activation::Tanh)
                .max_pool(2)
                .flatten()
                .dense(2, Activation::Identity)
                .seed(9)
                .build()
                .unwrap();
            let x = Matrix::from_fn(640, 32, |r, i| ((r * 13 + i * 7) % 17) as f64 / 17.0 - 0.4);
            let y = Matrix::from_fn(640, 2, |r, c| {
                let row = x.row(r);
                let s: f64 = row.iter().sum();
                if c == 0 {
                    s / 32.0
                } else {
                    row[0] - row[31]
                }
            });
            let mut opt = Adam::new(1e-2).unwrap();
            let mut losses = Vec::new();
            for _ in 0..3 {
                losses.push(net.train_batch(&x, &y, Loss::Mse, &mut opt).unwrap());
            }
            let mut weights = Vec::new();
            for layer in net.layers() {
                match layer {
                    Layer::Dense(l) => {
                        weights.extend_from_slice(l.weights().as_slice());
                        weights.extend_from_slice(l.bias());
                    }
                    Layer::Conv2d(l) => {
                        weights.extend_from_slice(l.weights().as_slice());
                        weights.extend_from_slice(l.bias());
                    }
                    _ => {}
                }
            }
            (losses, weights)
        };
        ppdl_solver::set_threads(1);
        let (l1, w1) = run();
        ppdl_solver::set_threads(4);
        let (l4, w4) = run();
        ppdl_solver::set_threads(0);
        assert_eq!(l1, l4, "losses must be bitwise identical");
        assert_eq!(w1, w4, "weights must be bitwise identical");
    }

    #[test]
    fn chunked_predict_matches_sequential_for_spatial_net() {
        let net = NetworkBuilder::new(chw(1, 4, 4))
            .conv2d(2, 3, Activation::Relu)
            .avg_pool(2)
            .flatten()
            .dense(3, Activation::Identity)
            .seed(2)
            .build()
            .unwrap();
        let x = Matrix::from_fn(600, 16, |r, i| ((r * 3 + i) % 23) as f64 * 0.05);
        let chunked = net.predict(&x).unwrap();
        // Row-by-row sequential evaluation must agree bitwise.
        for r in (0..600).step_by(97) {
            let row = x.slice_rows(r, r + 1);
            let single = net.predict(&row).unwrap();
            assert_eq!(single.row(0), chunked.row(r), "row {r}");
        }
    }
}

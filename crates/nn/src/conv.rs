//! Spatial layers: 2-D convolution, pooling, upsampling, and flatten.
//!
//! Samples stay ordinary [`Matrix`] rows — one row per sample, holding
//! a `C×H×W` map flattened channel-major (`idx = c·H·W + y·W + x`) —
//! so the row-chunk data-parallel engine drives spatial layers exactly
//! like dense ones. The convolution forward pass lowers each sample via
//! [`im2col`] into the bias-seeded GEMM in [`crate::gemm`]; the
//! backward pass and the pooling/upsampling kernels stay plain
//! fixed-order loops. No accumulation order depends on the thread
//! count, which keeps the bitwise-determinism contract intact.

use rand::rngs::StdRng;
use rand::Rng;

use crate::{Activation, Matrix, NnError};

/// Lowers one `C×H×W` sample into a `(H·W) × (C·k²)` patch matrix:
/// row `oy·W + ox` holds the receptive field of that output position,
/// columns ordered `ic·k² + dy·k + dx` to match the weight layout.
/// Out-of-bounds (padding) taps stay `0.0`.
fn im2col(x: &[f64], in_c: usize, h: usize, w: usize, k: usize, pad: usize, patches: &mut [f64]) {
    let plane = h * w;
    let fan_in = in_c * k * k;
    patches.fill(0.0);
    for oy in 0..h {
        for ox in 0..w {
            let prow = &mut patches[(oy * w + ox) * fan_in..(oy * w + ox + 1) * fan_in];
            for ic in 0..in_c {
                let in_base = ic * plane;
                let w_base = ic * k * k;
                for dy in 0..k {
                    let iy = oy + dy;
                    if iy < pad || iy - pad >= h {
                        continue;
                    }
                    let iy = iy - pad;
                    for dx in 0..k {
                        let ix = ox + dx;
                        if ix < pad || ix - pad >= w {
                            continue;
                        }
                        let ix = ix - pad;
                        prow[w_base + dy * k + dx] = x[in_base + iy * w + ix];
                    }
                }
            }
        }
    }
}

fn check_dims(detail: &str, dims: &[usize]) -> crate::Result<()> {
    if dims.contains(&0) {
        return Err(NnError::InvalidConfig {
            detail: format!("{detail}: dimensions must be positive, got {dims:?}"),
        });
    }
    Ok(())
}

fn check_input_width(name: &str, input: &Matrix, expected: usize) -> crate::Result<()> {
    if input.cols() != expected {
        return Err(NnError::ShapeMismatch {
            detail: format!(
                "{name}: input width {} vs expected {expected}",
                input.cols()
            ),
        });
    }
    Ok(())
}

/// A 2-D convolution with a square `k×k` kernel (odd `k`), stride 1,
/// and symmetric zero padding, so the spatial size is preserved:
/// `in_c×H×W → out_c×H×W`.
///
/// Weights are stored as an `out_c × (in_c·k·k)` matrix (row `oc`,
/// column `ic·k² + dy·k + dx`), which keeps persistence and the
/// optimizer's flat-slice protocol identical to the dense layer's.
#[derive(Debug, Clone)]
pub struct Conv2d {
    in_c: usize,
    h: usize,
    w: usize,
    out_c: usize,
    k: usize,
    weights: Matrix,
    bias: Vec<f64>,
    activation: Activation,
    cached_input: Option<Matrix>,
    cached_preact: Option<Matrix>,
    grad_weights: Matrix,
    grad_bias: Vec<f64>,
}

impl Conv2d {
    /// Creates a convolution with He-style scaled uniform
    /// initialisation over the `in_c·k²` fan-in.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero dimensions or an
    /// even kernel size (symmetric padding needs odd `k`).
    pub fn new(
        in_c: usize,
        h: usize,
        w: usize,
        out_c: usize,
        k: usize,
        activation: Activation,
        rng: &mut StdRng,
    ) -> crate::Result<Self> {
        check_dims("conv2d", &[in_c, h, w, out_c, k])?;
        if k % 2 == 0 {
            return Err(NnError::InvalidConfig {
                detail: format!("conv2d kernel size {k} must be odd"),
            });
        }
        let fan_in = in_c * k * k;
        let bound = (6.0 / fan_in as f64).sqrt();
        let weights = Matrix::from_fn(out_c, fan_in, |_, _| rng.gen_range(-bound..bound));
        Ok(Self {
            in_c,
            h,
            w,
            out_c,
            k,
            weights,
            bias: vec![0.0; out_c],
            activation,
            cached_input: None,
            cached_preact: None,
            grad_weights: Matrix::zeros(out_c, fan_in),
            grad_bias: vec![0.0; out_c],
        })
    }

    /// Rebuilds a convolution from explicit parameters (persistence).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the weight matrix or bias
    /// length disagrees with the declared geometry, or
    /// [`NnError::InvalidConfig`] for invalid geometry.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parameters(
        in_c: usize,
        h: usize,
        w: usize,
        out_c: usize,
        k: usize,
        activation: Activation,
        weights: Matrix,
        bias: Vec<f64>,
    ) -> crate::Result<Self> {
        check_dims("conv2d", &[in_c, h, w, out_c, k])?;
        if k % 2 == 0 {
            return Err(NnError::InvalidConfig {
                detail: format!("conv2d kernel size {k} must be odd"),
            });
        }
        let fan_in = in_c * k * k;
        if weights.shape() != (out_c, fan_in) || bias.len() != out_c {
            return Err(NnError::ShapeMismatch {
                detail: format!(
                    "conv2d parameters {:?}/{} vs declared {}x{}",
                    weights.shape(),
                    bias.len(),
                    out_c,
                    fan_in
                ),
            });
        }
        Ok(Self {
            in_c,
            h,
            w,
            out_c,
            k,
            weights,
            bias,
            activation,
            cached_input: None,
            cached_preact: None,
            grad_weights: Matrix::zeros(out_c, fan_in),
            grad_bias: vec![0.0; out_c],
        })
    }

    /// Input channel count.
    #[must_use]
    pub fn in_channels(&self) -> usize {
        self.in_c
    }

    /// Output channel count.
    #[must_use]
    pub fn out_channels(&self) -> usize {
        self.out_c
    }

    /// Spatial size `(h, w)` (preserved by the layer).
    #[must_use]
    pub fn spatial(&self) -> (usize, usize) {
        (self.h, self.w)
    }

    /// Kernel size.
    #[must_use]
    pub fn kernel(&self) -> usize {
        self.k
    }

    /// The layer's activation.
    #[must_use]
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// The weight matrix (`out_c × in_c·k²`).
    #[must_use]
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The per-output-channel bias.
    #[must_use]
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// Total trainable parameter count.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.len()
    }

    fn input_len(&self) -> usize {
        self.in_c * self.h * self.w
    }

    fn output_len(&self) -> usize {
        self.out_c * self.h * self.w
    }

    pub(crate) fn forward_pure(&self, input: &Matrix) -> crate::Result<(Matrix, Matrix)> {
        check_input_width("conv2d", input, self.input_len())?;
        let (h, w, k) = (self.h, self.w, self.k);
        let pad = k / 2;
        let plane = h * w;
        let fan_in = self.in_c * k * k;
        let mut pre = Matrix::zeros(input.rows(), self.output_len());
        // im2col + GEMM: lower each sample's padded receptive fields
        // into a `plane × fan_in` patch matrix once, then one
        // register-tiled product computes every output channel. The
        // bias-seeded serial-k kernel reproduces the direct loop's
        // accumulation order bitwise — padding only contributes `+0.0`
        // terms, which cannot change a finite sum.
        let mut patches = vec![0.0; plane * fan_in];
        for r in 0..input.rows() {
            im2col(input.row(r), self.in_c, h, w, k, pad, &mut patches);
            crate::gemm::gemm_nt_bias_rows(
                self.out_c,
                fan_in,
                plane,
                self.weights.as_slice(),
                &patches,
                &self.bias,
                pre.row_mut(r),
            );
        }
        let act = self.activation;
        let out = pre.map(|v| act.apply(v));
        Ok((pre, out))
    }

    pub(crate) fn forward_inference(&self, input: &Matrix) -> crate::Result<Matrix> {
        let (_, out) = self.forward_pure(input)?;
        Ok(out)
    }

    pub(crate) fn backward_pure(
        &self,
        input: &Matrix,
        pre: &Matrix,
        grad_output: &Matrix,
    ) -> crate::Result<(Matrix, Matrix, Vec<f64>)> {
        check_input_width("conv2d", input, self.input_len())?;
        let act = self.activation;
        let dpre = grad_output.hadamard(&pre.map(|v| act.derivative(v)))?;
        let (h, w, k) = (self.h, self.w, self.k);
        let pad = k / 2;
        let plane = h * w;
        let fan_in = self.in_c * k * k;
        let mut grad_weights = Matrix::zeros(self.out_c, fan_in);
        let mut grad_bias = vec![0.0; self.out_c];
        let mut grad_input = Matrix::zeros(input.rows(), self.input_len());
        for r in 0..input.rows() {
            let x = input.row(r);
            let d = dpre.row(r);
            #[allow(clippy::needless_range_loop)] // oc also indexes grad_weights/self.weights rows
            for oc in 0..self.out_c {
                let base = oc * plane;
                let gw = grad_weights.row_mut(oc);
                let wt = self.weights.row(oc);
                // Borrowing grad_input mutably inside the oc loop would
                // alias gw; accumulate input gradients afterwards.
                for oy in 0..h {
                    for ox in 0..w {
                        let g = d[base + oy * w + ox];
                        if g == 0.0 {
                            continue;
                        }
                        grad_bias[oc] += g;
                        for ic in 0..self.in_c {
                            let in_base = ic * plane;
                            let w_base = ic * k * k;
                            for dy in 0..k {
                                let iy = oy + dy;
                                if iy < pad || iy - pad >= h {
                                    continue;
                                }
                                let iy = iy - pad;
                                for dx in 0..k {
                                    let ix = ox + dx;
                                    if ix < pad || ix - pad >= w {
                                        continue;
                                    }
                                    let ix = ix - pad;
                                    gw[w_base + dy * k + dx] += g * x[in_base + iy * w + ix];
                                }
                            }
                        }
                    }
                }
                let gi = grad_input.row_mut(r);
                for oy in 0..h {
                    for ox in 0..w {
                        let g = d[base + oy * w + ox];
                        if g == 0.0 {
                            continue;
                        }
                        for ic in 0..self.in_c {
                            let in_base = ic * plane;
                            let w_base = ic * k * k;
                            for dy in 0..k {
                                let iy = oy + dy;
                                if iy < pad || iy - pad >= h {
                                    continue;
                                }
                                let iy = iy - pad;
                                for dx in 0..k {
                                    let ix = ox + dx;
                                    if ix < pad || ix - pad >= w {
                                        continue;
                                    }
                                    let ix = ix - pad;
                                    gi[in_base + iy * w + ix] += g * wt[w_base + dy * k + dx];
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok((grad_input, grad_weights, grad_bias))
    }

    pub(crate) fn forward(&mut self, input: &Matrix) -> crate::Result<Matrix> {
        let (pre, out) = self.forward_pure(input)?;
        self.cached_input = Some(input.clone());
        self.cached_preact = Some(pre);
        Ok(out)
    }

    pub(crate) fn backward(&mut self, grad_output: &Matrix) -> crate::Result<Matrix> {
        let input = self.cached_input.as_ref().ok_or(NnError::InvalidConfig {
            detail: "conv2d backward called before forward".into(),
        })?;
        let pre = self.cached_preact.as_ref().ok_or(NnError::InvalidConfig {
            detail: "conv2d backward called before forward".into(),
        })?;
        let (grad_input, grad_weights, grad_bias) = self.backward_pure(input, pre, grad_output)?;
        self.grad_weights = grad_weights;
        self.grad_bias = grad_bias;
        Ok(grad_input)
    }

    pub(crate) fn set_gradients(&mut self, grad_weights: Matrix, grad_bias: Vec<f64>) {
        self.grad_weights = grad_weights;
        self.grad_bias = grad_bias;
    }

    pub(crate) fn update_parameters(&mut self, mut f: impl FnMut(&mut [f64], &[f64])) {
        f(self.weights.as_mut_slice(), self.grad_weights.as_slice());
        f(&mut self.bias, &self.grad_bias);
    }
}

/// How a pooling window reduces: maximum or mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PoolKind {
    Max,
    Avg,
}

/// Shared geometry/kernels for the two pooling layers:
/// `c×H×W → c×(H/k)×(W/k)` with `kernel = stride = k`.
#[derive(Debug, Clone)]
struct Pool2d {
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    kind: PoolKind,
    cached_input: Option<Matrix>,
}

impl Pool2d {
    fn new(kind: PoolKind, c: usize, h: usize, w: usize, k: usize) -> crate::Result<Self> {
        check_dims("pool2d", &[c, h, w, k])?;
        if h % k != 0 || w % k != 0 {
            return Err(NnError::InvalidConfig {
                detail: format!("pool2d window {k} must divide the {h}x{w} map"),
            });
        }
        Ok(Self {
            c,
            h,
            w,
            k,
            kind,
            cached_input: None,
        })
    }

    fn input_len(&self) -> usize {
        self.c * self.h * self.w
    }

    fn output_len(&self) -> usize {
        self.c * (self.h / self.k) * (self.w / self.k)
    }

    fn forward_values(&self, input: &Matrix) -> crate::Result<Matrix> {
        check_input_width("pool2d", input, self.input_len())?;
        let (h, w, k) = (self.h, self.w, self.k);
        let (h2, w2) = (h / k, w / k);
        let mut out = Matrix::zeros(input.rows(), self.output_len());
        for r in 0..input.rows() {
            let x = input.row(r);
            let o = out.row_mut(r);
            for c in 0..self.c {
                let in_base = c * h * w;
                let out_base = c * h2 * w2;
                for oy in 0..h2 {
                    for ox in 0..w2 {
                        let mut acc = match self.kind {
                            PoolKind::Max => f64::NEG_INFINITY,
                            PoolKind::Avg => 0.0,
                        };
                        for dy in 0..k {
                            for dx in 0..k {
                                let v = x[in_base + (oy * k + dy) * w + ox * k + dx];
                                match self.kind {
                                    // Strict > keeps the first maximum
                                    // on ties — a deterministic argmax
                                    // the backward pass re-derives.
                                    PoolKind::Max => {
                                        if v > acc {
                                            acc = v;
                                        }
                                    }
                                    PoolKind::Avg => acc += v,
                                }
                            }
                        }
                        if self.kind == PoolKind::Avg {
                            acc /= (k * k) as f64;
                        }
                        o[out_base + oy * w2 + ox] = acc;
                    }
                }
            }
        }
        Ok(out)
    }

    fn backward_values(&self, input: &Matrix, grad_output: &Matrix) -> crate::Result<Matrix> {
        check_input_width("pool2d", input, self.input_len())?;
        if grad_output.shape() != (input.rows(), self.output_len()) {
            return Err(NnError::ShapeMismatch {
                detail: format!(
                    "pool2d gradient {:?} vs expected {}x{}",
                    grad_output.shape(),
                    input.rows(),
                    self.output_len()
                ),
            });
        }
        let (h, w, k) = (self.h, self.w, self.k);
        let (h2, w2) = (h / k, w / k);
        let inv_area = 1.0 / (k * k) as f64;
        let mut grad_input = Matrix::zeros(input.rows(), self.input_len());
        for r in 0..input.rows() {
            let x = input.row(r);
            let d = grad_output.row(r);
            let gi = grad_input.row_mut(r);
            for c in 0..self.c {
                let in_base = c * h * w;
                let out_base = c * h2 * w2;
                for oy in 0..h2 {
                    for ox in 0..w2 {
                        let g = d[out_base + oy * w2 + ox];
                        match self.kind {
                            PoolKind::Max => {
                                // First-max tie-break, matching forward.
                                let mut best = f64::NEG_INFINITY;
                                let mut best_idx = in_base + (oy * k) * w + ox * k;
                                for dy in 0..k {
                                    for dx in 0..k {
                                        let idx = in_base + (oy * k + dy) * w + ox * k + dx;
                                        if x[idx] > best {
                                            best = x[idx];
                                            best_idx = idx;
                                        }
                                    }
                                }
                                gi[best_idx] += g;
                            }
                            PoolKind::Avg => {
                                for dy in 0..k {
                                    for dx in 0..k {
                                        gi[in_base + (oy * k + dy) * w + ox * k + dx] +=
                                            g * inv_area;
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(grad_input)
    }
}

macro_rules! pool_layer {
    ($name:ident, $kind:expr, $doc:literal) => {
        #[doc = $doc]
        #[derive(Debug, Clone)]
        pub struct $name {
            inner: Pool2d,
        }

        impl $name {
            /// Creates the pooling layer over a `c×h×w` input with
            /// window (and stride) `k`.
            ///
            /// # Errors
            ///
            /// Returns [`NnError::InvalidConfig`] for zero dimensions
            /// or a window that does not divide the map evenly.
            pub fn new(c: usize, h: usize, w: usize, k: usize) -> crate::Result<Self> {
                Ok(Self {
                    inner: Pool2d::new($kind, c, h, w, k)?,
                })
            }

            /// Channel count (unchanged by pooling).
            #[must_use]
            pub fn channels(&self) -> usize {
                self.inner.c
            }

            /// Input spatial size `(h, w)`.
            #[must_use]
            pub fn spatial(&self) -> (usize, usize) {
                (self.inner.h, self.inner.w)
            }

            /// Pooling window / stride.
            #[must_use]
            pub fn window(&self) -> usize {
                self.inner.k
            }

            pub(crate) fn forward_pure(&self, input: &Matrix) -> crate::Result<(Matrix, Matrix)> {
                let out = self.inner.forward_values(input)?;
                Ok((out.clone(), out))
            }

            pub(crate) fn forward_inference(&self, input: &Matrix) -> crate::Result<Matrix> {
                self.inner.forward_values(input)
            }

            pub(crate) fn backward_pure(
                &self,
                input: &Matrix,
                _pre: &Matrix,
                grad_output: &Matrix,
            ) -> crate::Result<(Matrix, Matrix, Vec<f64>)> {
                let grad_input = self.inner.backward_values(input, grad_output)?;
                Ok((grad_input, Matrix::zeros(0, 0), Vec::new()))
            }

            pub(crate) fn forward(&mut self, input: &Matrix) -> crate::Result<Matrix> {
                let out = self.inner.forward_values(input)?;
                self.inner.cached_input = Some(input.clone());
                Ok(out)
            }

            pub(crate) fn backward(&mut self, grad_output: &Matrix) -> crate::Result<Matrix> {
                let input = self
                    .inner
                    .cached_input
                    .as_ref()
                    .ok_or(NnError::InvalidConfig {
                        detail: "pool2d backward called before forward".into(),
                    })?;
                self.inner.backward_values(input, grad_output)
            }
        }
    };
}

pool_layer!(
    MaxPool2d,
    PoolKind::Max,
    "Max pooling: `c×H×W → c×(H/k)×(W/k)`, window = stride = `k`, \
     deterministic first-max tie-break."
);
pool_layer!(
    AvgPool2d,
    PoolKind::Avg,
    "Average pooling: `c×H×W → c×(H/k)×(W/k)`, window = stride = `k`."
);

/// Nearest-neighbour upsampling: `c×H×W → c×(H·k)×(W·k)`. The backward
/// pass sums each `k×k` block of the output gradient — the exact
/// adjoint of replication.
#[derive(Debug, Clone)]
pub struct Upsample2d {
    c: usize,
    h: usize,
    w: usize,
    k: usize,
    cached_rows: Option<usize>,
}

impl Upsample2d {
    /// Creates the upsampling layer over a `c×h×w` input with factor
    /// `k`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero dimensions.
    pub fn new(c: usize, h: usize, w: usize, k: usize) -> crate::Result<Self> {
        check_dims("upsample2d", &[c, h, w, k])?;
        Ok(Self {
            c,
            h,
            w,
            k,
            cached_rows: None,
        })
    }

    /// Channel count (unchanged).
    #[must_use]
    pub fn channels(&self) -> usize {
        self.c
    }

    /// Input spatial size `(h, w)`.
    #[must_use]
    pub fn spatial(&self) -> (usize, usize) {
        (self.h, self.w)
    }

    /// Upsampling factor.
    #[must_use]
    pub fn factor(&self) -> usize {
        self.k
    }

    fn input_len(&self) -> usize {
        self.c * self.h * self.w
    }

    fn output_len(&self) -> usize {
        self.c * self.h * self.k * self.w * self.k
    }

    fn forward_values(&self, input: &Matrix) -> crate::Result<Matrix> {
        check_input_width("upsample2d", input, self.input_len())?;
        let (h, w, k) = (self.h, self.w, self.k);
        let (h2, w2) = (h * k, w * k);
        let mut out = Matrix::zeros(input.rows(), self.output_len());
        for r in 0..input.rows() {
            let x = input.row(r);
            let o = out.row_mut(r);
            for c in 0..self.c {
                let in_base = c * h * w;
                let out_base = c * h2 * w2;
                for y in 0..h2 {
                    for xcol in 0..w2 {
                        o[out_base + y * w2 + xcol] = x[in_base + (y / k) * w + xcol / k];
                    }
                }
            }
        }
        Ok(out)
    }

    fn backward_values(&self, rows: usize, grad_output: &Matrix) -> crate::Result<Matrix> {
        if grad_output.shape() != (rows, self.output_len()) {
            return Err(NnError::ShapeMismatch {
                detail: format!(
                    "upsample2d gradient {:?} vs expected {rows}x{}",
                    grad_output.shape(),
                    self.output_len()
                ),
            });
        }
        let (h, w, k) = (self.h, self.w, self.k);
        let (h2, w2) = (h * k, w * k);
        let mut grad_input = Matrix::zeros(rows, self.input_len());
        for r in 0..rows {
            let d = grad_output.row(r);
            let gi = grad_input.row_mut(r);
            for c in 0..self.c {
                let in_base = c * h * w;
                let out_base = c * h2 * w2;
                for y in 0..h2 {
                    for xcol in 0..w2 {
                        gi[in_base + (y / k) * w + xcol / k] += d[out_base + y * w2 + xcol];
                    }
                }
            }
        }
        Ok(grad_input)
    }

    pub(crate) fn forward_pure(&self, input: &Matrix) -> crate::Result<(Matrix, Matrix)> {
        let out = self.forward_values(input)?;
        Ok((out.clone(), out))
    }

    pub(crate) fn forward_inference(&self, input: &Matrix) -> crate::Result<Matrix> {
        self.forward_values(input)
    }

    pub(crate) fn backward_pure(
        &self,
        input: &Matrix,
        _pre: &Matrix,
        grad_output: &Matrix,
    ) -> crate::Result<(Matrix, Matrix, Vec<f64>)> {
        let grad_input = self.backward_values(input.rows(), grad_output)?;
        Ok((grad_input, Matrix::zeros(0, 0), Vec::new()))
    }

    pub(crate) fn forward(&mut self, input: &Matrix) -> crate::Result<Matrix> {
        let out = self.forward_values(input)?;
        self.cached_rows = Some(input.rows());
        Ok(out)
    }

    pub(crate) fn backward(&mut self, grad_output: &Matrix) -> crate::Result<Matrix> {
        let rows = self.cached_rows.ok_or(NnError::InvalidConfig {
            detail: "upsample2d backward called before forward".into(),
        })?;
        self.backward_values(rows, grad_output)
    }
}

/// Flatten: reinterprets a `c×h×w` map as a flat feature row. Because
/// samples are already stored as flattened rows, the data path is the
/// identity — the layer exists so the graph (and its persisted form)
/// records where spatial structure ends and dense layers begin.
#[derive(Debug, Clone)]
pub struct Flatten {
    c: usize,
    h: usize,
    w: usize,
}

impl Flatten {
    /// Creates a flatten marker for a `c×h×w` input.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for zero dimensions.
    pub fn new(c: usize, h: usize, w: usize) -> crate::Result<Self> {
        check_dims("flatten", &[c, h, w])?;
        Ok(Self { c, h, w })
    }

    /// The input map shape `(c, h, w)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize, usize) {
        (self.c, self.h, self.w)
    }

    fn len(&self) -> usize {
        self.c * self.h * self.w
    }

    pub(crate) fn forward_pure(&self, input: &Matrix) -> crate::Result<(Matrix, Matrix)> {
        check_input_width("flatten", input, self.len())?;
        Ok((input.clone(), input.clone()))
    }

    pub(crate) fn forward_inference(&self, input: &Matrix) -> crate::Result<Matrix> {
        check_input_width("flatten", input, self.len())?;
        Ok(input.clone())
    }

    pub(crate) fn backward_pure(
        &self,
        _input: &Matrix,
        _pre: &Matrix,
        grad_output: &Matrix,
    ) -> crate::Result<(Matrix, Matrix, Vec<f64>)> {
        Ok((grad_output.clone(), Matrix::zeros(0, 0), Vec::new()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn conv_geometry_validated() {
        assert!(Conv2d::new(1, 4, 4, 2, 2, Activation::Relu, &mut rng()).is_err());
        assert!(Conv2d::new(0, 4, 4, 2, 3, Activation::Relu, &mut rng()).is_err());
        let c = Conv2d::new(2, 4, 5, 3, 3, Activation::Relu, &mut rng()).unwrap();
        assert_eq!(c.parameter_count(), 3 * 2 * 9 + 3);
        assert_eq!(c.spatial(), (4, 5));
    }

    #[test]
    fn conv_identity_kernel_passes_input_through() {
        // 1x1 kernel with weight 1 and identity activation: output
        // equals input.
        let w = Matrix::from_rows(&[&[1.0]]).unwrap();
        let c = Conv2d::from_parameters(1, 3, 3, 1, 1, Activation::Identity, w, vec![0.0]).unwrap();
        let x = Matrix::from_fn(2, 9, |r, i| (r * 9 + i) as f64 * 0.1);
        let (_, out) = c.forward_pure(&x).unwrap();
        assert_eq!(out, x);
    }

    #[test]
    fn conv_matches_manual_3x3() {
        // A single 3x3 all-ones kernel on a 3x3 input sums the 3x3
        // neighbourhood under zero padding; check the centre and a
        // corner by hand.
        let w = Matrix::from_fn(1, 9, |_, _| 1.0);
        let c = Conv2d::from_parameters(1, 3, 3, 1, 3, Activation::Identity, w, vec![0.5]).unwrap();
        let x = Matrix::from_fn(1, 9, |_, i| (i + 1) as f64);
        let (_, out) = c.forward_pure(&x).unwrap();
        // Centre sees all nine values: 45 + bias.
        assert_eq!(out.get(0, 4), 45.5);
        // Top-left corner sees the 2x2 block {1,2,4,5}: 12 + bias.
        assert_eq!(out.get(0, 0), 12.5);
    }

    #[test]
    fn conv_gradients_match_finite_difference() {
        let mut c = Conv2d::new(2, 4, 4, 3, 3, Activation::Tanh, &mut rng()).unwrap();
        let x = Matrix::from_fn(3, 2 * 16, |r, i| {
            ((r * 31 + i * 7) % 13) as f64 * 0.11 - 0.6
        });
        let _ = c.forward(&x).unwrap();
        let ones = Matrix::from_fn(3, 3 * 16, |_, _| 1.0);
        let dx = c.backward(&ones).unwrap();
        let h = 1e-6;
        let sum_out = |c: &Conv2d, x: &Matrix| -> f64 {
            c.forward_inference(x).unwrap().as_slice().iter().sum()
        };
        // Weight gradient spot checks.
        for (r, col) in [(0, 0), (1, 7), (2, 17)] {
            let mut cp = c.clone();
            let mut wp = cp.weights().clone();
            wp.set(r, col, wp.get(r, col) + h);
            cp = Conv2d::from_parameters(2, 4, 4, 3, 3, cp.activation(), wp, cp.bias().to_vec())
                .unwrap();
            let mut cm = c.clone();
            let mut wm = cm.weights().clone();
            wm.set(r, col, wm.get(r, col) - h);
            cm = Conv2d::from_parameters(2, 4, 4, 3, 3, cm.activation(), wm, cm.bias().to_vec())
                .unwrap();
            let fd = (sum_out(&cp, &x) - sum_out(&cm, &x)) / (2.0 * h);
            let an = c.grad_weights.get(r, col);
            assert!((fd - an).abs() < 1e-4, "dW[{r}][{col}]: fd {fd} vs {an}");
        }
        // Bias gradient.
        let mut bp = c.clone();
        let mut bias = bp.bias().to_vec();
        bias[1] += h;
        bp = Conv2d::from_parameters(2, 4, 4, 3, 3, bp.activation(), bp.weights().clone(), bias)
            .unwrap();
        let fd = (sum_out(&bp, &x) - sum_out(&c, &x)) / h;
        assert!((fd - c.grad_bias[1]).abs() < 1e-3, "db: fd {fd}");
        // Input gradient spot check.
        let mut xp = x.clone();
        xp.set(1, 9, xp.get(1, 9) + h);
        let mut xm = x.clone();
        xm.set(1, 9, xm.get(1, 9) - h);
        let fd = (sum_out(&c, &xp) - sum_out(&c, &xm)) / (2.0 * h);
        assert!((fd - dx.get(1, 9)).abs() < 1e-4, "dx: fd {fd}");
    }

    #[test]
    fn max_pool_picks_first_maximum() {
        let p = MaxPool2d::new(1, 2, 2, 2).unwrap();
        // Tie between positions 0 and 3: forward takes the value, and
        // backward routes the whole gradient to the first.
        let x = Matrix::from_rows(&[&[5.0, 1.0, 2.0, 5.0]]).unwrap();
        let (_, out) = p.forward_pure(&x).unwrap();
        assert_eq!(out.as_slice(), &[5.0]);
        let g = Matrix::from_rows(&[&[2.0]]).unwrap();
        let (gi, gw, gb) = p.backward_pure(&x, &out, &g).unwrap();
        assert_eq!(gi.as_slice(), &[2.0, 0.0, 0.0, 0.0]);
        assert_eq!(gw.shape(), (0, 0));
        assert!(gb.is_empty());
    }

    #[test]
    fn avg_pool_averages_and_spreads() {
        let p = AvgPool2d::new(1, 2, 2, 2).unwrap();
        let x = Matrix::from_rows(&[&[1.0, 2.0, 3.0, 6.0]]).unwrap();
        let (_, out) = p.forward_pure(&x).unwrap();
        assert_eq!(out.as_slice(), &[3.0]);
        let g = Matrix::from_rows(&[&[4.0]]).unwrap();
        let (gi, _, _) = p.backward_pure(&x, &out, &g).unwrap();
        assert_eq!(gi.as_slice(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn pool_window_must_divide() {
        assert!(MaxPool2d::new(1, 5, 4, 2).is_err());
        assert!(AvgPool2d::new(1, 4, 6, 4).is_err());
    }

    #[test]
    fn upsample_replicates_and_adjoint_sums() {
        let u = Upsample2d::new(1, 1, 2, 2).unwrap();
        let x = Matrix::from_rows(&[&[3.0, 7.0]]).unwrap();
        let (_, out) = u.forward_pure(&x).unwrap();
        assert_eq!(out.as_slice(), &[3.0, 3.0, 7.0, 7.0, 3.0, 3.0, 7.0, 7.0]);
        let g = Matrix::from_fn(1, 8, |_, i| (i + 1) as f64);
        let (gi, _, _) = u.backward_pure(&x, &out, &g).unwrap();
        // Each input cell collects its 2x2 block: {1,2,5,6} and {3,4,7,8}.
        assert_eq!(gi.as_slice(), &[14.0, 22.0]);
    }

    #[test]
    fn flatten_is_identity_with_checked_width() {
        let f = Flatten::new(2, 2, 2).unwrap();
        let x = Matrix::from_fn(3, 8, |r, i| (r + i) as f64);
        let (_, out) = f.forward_pure(&x).unwrap();
        assert_eq!(out, x);
        assert!(f.forward_inference(&Matrix::zeros(1, 7)).is_err());
    }
}

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::engine;
use crate::{Activation, DenseLayer, Loss, Matrix, NnError, Optimizer};

/// A sequential multilayer perceptron.
///
/// Built with [`MlpBuilder`]; the paper's configuration is three inputs
/// (`X`, `Y`, `Id`), ten hidden layers, and one output (`wᵢ`), trained
/// with Adam on MSE.
///
/// # Example
///
/// ```
/// use ppdl_nn::{Activation, Matrix, MlpBuilder};
///
/// let model = MlpBuilder::new(3)
///     .hidden_stack(10, 24, Activation::Relu) // the paper's 10 hidden layers
///     .output(1)
///     .seed(1)
///     .build()
///     .unwrap();
/// assert_eq!(model.layer_count(), 11);
/// let y = model.predict(&Matrix::zeros(4, 3)).unwrap();
/// assert_eq!(y.shape(), (4, 1));
/// ```
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<DenseLayer>,
}

impl Mlp {
    pub(crate) fn from_layers(layers: Vec<DenseLayer>) -> crate::Result<Self> {
        if layers.is_empty() {
            return Err(NnError::InvalidConfig {
                detail: "a network needs at least one layer".into(),
            });
        }
        for w in layers.windows(2) {
            if w[0].output_dim() != w[1].input_dim() {
                return Err(NnError::ShapeMismatch {
                    detail: format!(
                        "layer output {} feeds layer input {}",
                        w[0].output_dim(),
                        w[1].input_dim()
                    ),
                });
            }
        }
        Ok(Self { layers })
    }

    /// Number of layers (hidden + output).
    #[must_use]
    pub fn layer_count(&self) -> usize {
        self.layers.len()
    }

    /// Input feature dimension.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.layers[0].input_dim()
    }

    /// Output dimension.
    #[must_use]
    pub fn output_dim(&self) -> usize {
        self.layers[self.layers.len() - 1].output_dim()
    }

    /// Read access to the layers.
    #[must_use]
    pub fn layers(&self) -> &[DenseLayer] {
        &self.layers
    }

    /// Total trainable parameter count.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.layers.iter().map(DenseLayer::parameter_count).sum()
    }

    /// Inference on a batch (`batch × input_dim`), without touching the
    /// training caches.
    ///
    /// Large batches (≥ 512 rows) are evaluated as independent row
    /// chunks, in parallel when [`ppdl_solver::parallel`] is configured
    /// with more than one thread. Each row's output depends only on that
    /// row, so the result is bitwise identical to the sequential pass at
    /// every thread count.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] for a wrong feature width.
    pub fn predict(&self, x: &Matrix) -> crate::Result<Matrix> {
        engine::predict(&self.layers, x)
    }

    /// One optimisation step on a batch: forward, loss, backward, and
    /// parameter update. Returns the pre-update batch loss.
    ///
    /// # Errors
    ///
    /// Propagates shape errors and optimizer errors.
    pub fn train_batch<O: Optimizer>(
        &mut self,
        x: &Matrix,
        y: &Matrix,
        loss: Loss,
        optimizer: &mut O,
    ) -> crate::Result<f64> {
        self.train_batch_regularized(x, y, loss, 0.0, optimizer)
    }

    /// [`train_batch`](Self::train_batch) with an L2 penalty
    /// `λ ‖Ω‖²` on the weights (not the biases) — the λC(Ω) term of
    /// the paper's eq. 2. The returned loss excludes the penalty.
    ///
    /// Batches of at least 512 rows run the data-parallel path: the
    /// batch splits into fixed 256-row chunks, each chunk's forward and
    /// backward pass runs through the side-effect-free layer kernels
    /// (concurrently when [`ppdl_solver::parallel`] allows), and chunk
    /// gradients are summed in ascending chunk order. Both the split
    /// and the reduction order are functions of the batch size alone,
    /// so the resulting weights are bitwise identical at every thread
    /// count.
    ///
    /// # Errors
    ///
    /// Propagates shape errors, optimizer errors, and
    /// [`NnError::InvalidConfig`] for a negative or non-finite λ.
    pub fn train_batch_regularized<O: Optimizer>(
        &mut self,
        x: &Matrix,
        y: &Matrix,
        loss: Loss,
        weight_decay: f64,
        optimizer: &mut O,
    ) -> crate::Result<f64> {
        engine::train_batch_regularized(&mut self.layers, x, y, loss, weight_decay, optimizer)
    }

    /// Classic whole-batch forward/backward, leaving gradients in the
    /// layers' caches. Returns the batch loss.
    #[cfg(test)]
    fn train_step_full(&mut self, x: &Matrix, y: &Matrix, loss: Loss) -> crate::Result<f64> {
        engine::train_step_full(&mut self.layers, x, y, loss)
    }

    /// Data-parallel forward/backward over fixed row chunks; installs
    /// the chunk-order-summed gradients into the layers and returns the
    /// batch loss (the chunk-weighted mean).
    #[cfg(test)]
    fn train_step_chunked(&mut self, x: &Matrix, y: &Matrix, loss: Loss) -> crate::Result<f64> {
        engine::train_step_chunked(&mut self.layers, x, y, loss)
    }
}

/// Builder for [`Mlp`] networks.
#[derive(Debug, Clone)]
pub struct MlpBuilder {
    input_dim: usize,
    hidden: Vec<(usize, Activation)>,
    output_dim: usize,
    output_activation: Activation,
    seed: u64,
}

impl MlpBuilder {
    /// Starts a network taking `input_dim` features.
    #[must_use]
    pub fn new(input_dim: usize) -> Self {
        Self {
            input_dim,
            hidden: Vec::new(),
            output_dim: 1,
            output_activation: Activation::Identity,
            seed: 0,
        }
    }

    /// Appends one hidden layer.
    #[must_use]
    pub fn hidden(mut self, width: usize, activation: Activation) -> Self {
        self.hidden.push((width, activation));
        self
    }

    /// Appends `count` identical hidden layers — the convenient form
    /// for the paper's 10-deep stack.
    #[must_use]
    pub fn hidden_stack(mut self, count: usize, width: usize, activation: Activation) -> Self {
        for _ in 0..count {
            self.hidden.push((width, activation));
        }
        self
    }

    /// Sets the output dimension (default 1), with a linear output
    /// activation as regression requires.
    #[must_use]
    pub fn output(mut self, dim: usize) -> Self {
        self.output_dim = dim;
        self
    }

    /// Overrides the output activation (rarely useful for regression).
    #[must_use]
    pub fn output_activation(mut self, activation: Activation) -> Self {
        self.output_activation = activation;
        self
    }

    /// Sets the weight-initialisation seed (default 0) for
    /// reproducibility.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Builds the network.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if any dimension is zero.
    pub fn build(self) -> crate::Result<Mlp> {
        if self.input_dim == 0 || self.output_dim == 0 {
            return Err(NnError::InvalidConfig {
                detail: "input and output dimensions must be positive".into(),
            });
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut layers = Vec::with_capacity(self.hidden.len() + 1);
        let mut prev = self.input_dim;
        for (width, act) in &self.hidden {
            layers.push(DenseLayer::new(prev, *width, *act, &mut rng)?);
            prev = *width;
        }
        layers.push(DenseLayer::new(
            prev,
            self.output_dim,
            self.output_activation,
            &mut rng,
        )?);
        Mlp::from_layers(layers)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Adam, Sgd};

    #[test]
    fn builder_shapes() {
        let m = MlpBuilder::new(3)
            .hidden(8, Activation::Relu)
            .hidden(4, Activation::Tanh)
            .output(2)
            .build()
            .unwrap();
        assert_eq!(m.layer_count(), 3);
        assert_eq!(m.input_dim(), 3);
        assert_eq!(m.output_dim(), 2);
        assert_eq!(m.parameter_count(), (3 * 8 + 8) + (8 * 4 + 4) + (4 * 2 + 2));
    }

    #[test]
    fn hidden_stack_builds_deep_net() {
        let m = MlpBuilder::new(3)
            .hidden_stack(10, 16, Activation::Relu)
            .output(1)
            .build()
            .unwrap();
        assert_eq!(m.layer_count(), 11);
    }

    #[test]
    fn zero_dims_rejected() {
        assert!(MlpBuilder::new(0).output(1).build().is_err());
        assert!(MlpBuilder::new(2).output(0).build().is_err());
        assert!(MlpBuilder::new(2)
            .hidden(0, Activation::Relu)
            .output(1)
            .build()
            .is_err());
    }

    #[test]
    fn seeded_builds_are_identical() {
        let a = MlpBuilder::new(2)
            .hidden(4, Activation::Relu)
            .seed(9)
            .build()
            .unwrap();
        let b = MlpBuilder::new(2)
            .hidden(4, Activation::Relu)
            .seed(9)
            .build()
            .unwrap();
        let x = Matrix::from_fn(3, 2, |r, c| (r + c) as f64);
        assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
        let c = MlpBuilder::new(2)
            .hidden(4, Activation::Relu)
            .seed(10)
            .build()
            .unwrap();
        assert_ne!(a.predict(&x).unwrap(), c.predict(&x).unwrap());
    }

    #[test]
    fn predict_wrong_width_rejected() {
        let m = MlpBuilder::new(3).output(1).build().unwrap();
        assert!(m.predict(&Matrix::zeros(2, 4)).is_err());
    }

    #[test]
    fn training_reduces_loss_on_linear_target() {
        let x = Matrix::from_fn(32, 2, |r, c| ((r * 5 + c * 3) % 11) as f64 / 11.0);
        let y = Matrix::from_fn(32, 1, |r, _| x.get(r, 0) + 0.5 * x.get(r, 1));
        let mut m = MlpBuilder::new(2)
            .hidden(8, Activation::Tanh)
            .output(1)
            .seed(3)
            .build()
            .unwrap();
        let mut opt = Adam::new(0.01).unwrap();
        let first = m.train_batch(&x, &y, Loss::Mse, &mut opt).unwrap();
        let mut last = first;
        for _ in 0..300 {
            last = m.train_batch(&x, &y, Loss::Mse, &mut opt).unwrap();
        }
        assert!(last < first / 10.0, "loss {first} -> {last}");
    }

    #[test]
    fn deep_network_trains_without_nan() {
        let x = Matrix::from_fn(16, 3, |r, c| ((r + c) % 7) as f64 / 7.0);
        let y = Matrix::from_fn(16, 1, |r, _| x.get(r, 0) * x.get(r, 1) + x.get(r, 2));
        let mut m = MlpBuilder::new(3)
            .hidden_stack(10, 12, Activation::Relu)
            .output(1)
            .seed(5)
            .build()
            .unwrap();
        let mut opt = Adam::new(0.003).unwrap();
        for _ in 0..100 {
            let loss = m.train_batch(&x, &y, Loss::Mse, &mut opt).unwrap();
            assert!(loss.is_finite());
        }
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        // On a zero-loss task (targets already matched by a zero
        // network output), the only force is the decay: weights shrink.
        let x = Matrix::from_fn(8, 2, |_, _| 0.0);
        let y = Matrix::zeros(8, 1);
        let mut m = MlpBuilder::new(2)
            .hidden(4, Activation::Identity)
            .output(1)
            .seed(4)
            .build()
            .unwrap();
        let norm = |m: &Mlp| -> f64 {
            m.layers()
                .iter()
                .map(|l| l.weights().as_slice().iter().map(|w| w * w).sum::<f64>())
                .sum()
        };
        let before = norm(&m);
        let mut opt = Sgd::new(0.05).unwrap();
        for _ in 0..50 {
            m.train_batch_regularized(&x, &y, Loss::Mse, 0.1, &mut opt)
                .unwrap();
        }
        assert!(norm(&m) < before * 0.5, "{} -> {}", before, norm(&m));
    }

    #[test]
    fn zero_decay_matches_plain_training() {
        let x = Matrix::from_fn(8, 2, |r, c| (r + c) as f64 * 0.1);
        let y = Matrix::from_fn(8, 1, |r, _| r as f64 * 0.05);
        let mut a = MlpBuilder::new(2)
            .hidden(4, Activation::Tanh)
            .seed(6)
            .build()
            .unwrap();
        let mut b = a.clone();
        let mut oa = Sgd::new(0.1).unwrap();
        let mut ob = Sgd::new(0.1).unwrap();
        for _ in 0..10 {
            a.train_batch(&x, &y, Loss::Mse, &mut oa).unwrap();
            b.train_batch_regularized(&x, &y, Loss::Mse, 0.0, &mut ob)
                .unwrap();
        }
        assert_eq!(a.predict(&x).unwrap(), b.predict(&x).unwrap());
    }

    #[test]
    fn negative_decay_rejected() {
        let x = Matrix::zeros(2, 2);
        let y = Matrix::zeros(2, 1);
        let mut m = MlpBuilder::new(2).output(1).build().unwrap();
        let mut opt = Sgd::new(0.1).unwrap();
        assert!(m
            .train_batch_regularized(&x, &y, Loss::Mse, -0.1, &mut opt)
            .is_err());
        assert!(m
            .train_batch_regularized(&x, &y, Loss::Mse, f64::NAN, &mut opt)
            .is_err());
    }

    #[test]
    fn chunked_gradients_match_full_batch() {
        // 600 rows crosses the 2 * PAR_ROW_CHUNK threshold, so the
        // chunked step runs; its summed gradients must agree with the
        // whole-batch step up to reassociation rounding.
        let x = Matrix::from_fn(600, 3, |r, c| ((r * 7 + c * 3) % 17) as f64 / 17.0 - 0.4);
        let y = Matrix::from_fn(600, 1, |r, _| {
            x.get(r, 0) * 0.8 - x.get(r, 1) + 0.3 * x.get(r, 2)
        });
        let base = MlpBuilder::new(3)
            .hidden(6, Activation::Tanh)
            .output(1)
            .seed(21)
            .build()
            .unwrap();
        let mut full = base.clone();
        let mut chunked = base.clone();
        let vf = full.train_step_full(&x, &y, Loss::Mse).unwrap();
        let vc = chunked.train_step_chunked(&x, &y, Loss::Mse).unwrap();
        assert!((vf - vc).abs() < 1e-12 * vf.abs().max(1.0), "{vf} vs {vc}");
        for (lf, lc) in full.layers().iter().zip(chunked.layers()) {
            for (a, b) in lf
                .grad_weights()
                .as_slice()
                .iter()
                .zip(lc.grad_weights().as_slice())
            {
                assert!((a - b).abs() < 1e-10, "{a} vs {b}");
            }
            for (a, b) in lf.grad_bias().iter().zip(lc.grad_bias()) {
                assert!((a - b).abs() < 1e-10, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn chunked_predict_matches_sequential() {
        let m = MlpBuilder::new(2)
            .hidden(5, Activation::Relu)
            .output(2)
            .seed(13)
            .build()
            .unwrap();
        let x = Matrix::from_fn(700, 2, |r, c| ((r + 3 * c) % 23) as f64 / 23.0);
        let par = m.predict(&x).unwrap();
        // Row-independent inference: chunking must be invisible.
        let mut a = x.clone();
        for layer in m.layers() {
            a = layer.forward_inference(&a).unwrap();
        }
        assert_eq!(par, a);
    }

    #[test]
    fn training_is_bitwise_deterministic_across_thread_counts() {
        let x = Matrix::from_fn(640, 3, |r, c| ((r * 5 + c) % 19) as f64 / 19.0);
        let y = Matrix::from_fn(640, 1, |r, _| x.get(r, 0) - 0.5 * x.get(r, 2));
        let run = |threads: usize| {
            ppdl_solver::set_threads(threads);
            let mut m = MlpBuilder::new(3)
                .hidden(8, Activation::Tanh)
                .output(1)
                .seed(17)
                .build()
                .unwrap();
            let mut opt = Adam::new(0.01).unwrap();
            let mut losses = Vec::new();
            for _ in 0..4 {
                losses.push(m.train_batch(&x, &y, Loss::Mse, &mut opt).unwrap());
            }
            ppdl_solver::set_threads(0);
            (losses, m)
        };
        let (l1, m1) = run(1);
        let (l4, m4) = run(4);
        assert_eq!(l1, l4, "loss trajectories must be bitwise identical");
        for (a, b) in m1.layers().iter().zip(m4.layers()) {
            assert_eq!(a.weights().as_slice(), b.weights().as_slice());
            assert_eq!(a.bias(), b.bias());
        }
    }

    #[test]
    fn sgd_also_works() {
        let x = Matrix::from_fn(16, 1, |r, _| r as f64 / 16.0);
        let y = x.map(|v| 3.0 * v);
        let mut m = MlpBuilder::new(1).output(1).seed(2).build().unwrap();
        let mut opt = Sgd::new(0.5).unwrap();
        for _ in 0..500 {
            m.train_batch(&x, &y, Loss::Mse, &mut opt).unwrap();
        }
        let final_loss = Loss::Mse.value(&m.predict(&x).unwrap(), &y).unwrap();
        assert!(final_loss < 1e-4, "loss {final_loss}");
    }
}

use std::fmt;

/// Errors raised by the neural-network library.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum NnError {
    /// Tensor shapes are incompatible for the requested operation.
    ShapeMismatch {
        /// Description of the operation and shapes.
        detail: String,
    },
    /// A model or trainer configuration is invalid (zero-width layer,
    /// non-positive learning rate, …).
    InvalidConfig {
        /// What is invalid.
        detail: String,
    },
    /// An operation needs data but the dataset is empty.
    EmptyDataset,
    /// A persisted model could not be decoded.
    Decode {
        /// 1-based line number of the problem.
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// Training produced a non-finite loss (diverged).
    Diverged {
        /// Epoch at which divergence was detected.
        epoch: usize,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::ShapeMismatch { detail } => write!(f, "shape mismatch: {detail}"),
            NnError::InvalidConfig { detail } => write!(f, "invalid configuration: {detail}"),
            NnError::EmptyDataset => write!(f, "dataset is empty"),
            NnError::Decode { line, detail } => {
                write!(f, "model decode error at line {line}: {detail}")
            }
            NnError::Diverged { epoch } => {
                write!(f, "training diverged (non-finite loss) at epoch {epoch}")
            }
        }
    }
}

impl std::error::Error for NnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(NnError::EmptyDataset.to_string().contains("empty"));
        assert!(NnError::Diverged { epoch: 3 }.to_string().contains('3'));
        assert!(NnError::Decode {
            line: 9,
            detail: "bad".into()
        }
        .to_string()
        .contains('9'));
    }

    #[test]
    fn is_std_error() {
        fn check<T: std::error::Error + Send + Sync + 'static>() {}
        check::<NnError>();
    }
}

//! The shared data-parallel minibatch engine.
//!
//! [`Mlp`](crate::Mlp) and [`Network`](crate::Network) drive the same
//! forward/backward machinery: batches with at least
//! `2 * PAR_ROW_CHUNK` rows are decomposed into fixed
//! [`PAR_ROW_CHUNK`]-row chunks and evaluated through the
//! side-effect-free layer kernels, with chunk gradients reduced in
//! ascending chunk order. The decomposition depends only on the batch
//! size — never on the thread count — so training and inference are
//! bitwise deterministic at any `PPDL_THREADS` setting.

use ppdl_solver::parallel::par_map_vec;

use crate::{Loss, Matrix, NnError, Optimizer};

/// Fixed row-chunk size for the data-parallel minibatch path.
pub(crate) const PAR_ROW_CHUNK: usize = 256;

/// Splits `rows` into `[start, end)` ranges of `PAR_ROW_CHUNK` rows
/// (last chunk shorter).
pub(crate) fn row_chunks(rows: usize) -> Vec<std::ops::Range<usize>> {
    let mut out = Vec::with_capacity(rows.div_ceil(PAR_ROW_CHUNK));
    let mut start = 0;
    while start < rows {
        let end = (start + PAR_ROW_CHUNK).min(rows);
        out.push(start..end);
        start = end;
    }
    out
}

/// The per-layer contract the engine drives. Every layer kind — dense
/// or spatial — exposes a stateful path (whole-batch training), a
/// side-effect-free pure path (the per-chunk data-parallel kernels),
/// and the parameter hooks the optimizer protocol needs.
///
/// Parameterless layers (pools, flatten, upsample) return empty
/// gradient tensors from [`backward_pure`](LayerOps::backward_pure)
/// and never invoke the callback in
/// [`update_parameters`](LayerOps::update_parameters).
pub(crate) trait LayerOps: Sync {
    /// Stateful forward pass, caching whatever `backward` needs.
    fn forward(&mut self, input: &Matrix) -> crate::Result<Matrix>;
    /// Stateful backward pass consuming the `forward` caches.
    fn backward(&mut self, grad_output: &Matrix) -> crate::Result<Matrix>;
    /// Side-effect-free forward returning `(pre_activation, output)`.
    fn forward_pure(&self, input: &Matrix) -> crate::Result<(Matrix, Matrix)>;
    /// Inference-only forward (no caching).
    fn forward_inference(&self, input: &Matrix) -> crate::Result<Matrix>;
    /// Side-effect-free backward for one chunk:
    /// `(grad_input, grad_weights, grad_bias)`.
    fn backward_pure(
        &self,
        input: &Matrix,
        pre: &Matrix,
        grad_output: &Matrix,
    ) -> crate::Result<(Matrix, Matrix, Vec<f64>)>;
    /// Installs externally reduced gradients.
    fn set_gradients(&mut self, grad_weights: Matrix, grad_bias: Vec<f64>);
    /// Applies `f` to each (parameters, gradients) tensor pair —
    /// weights first, then bias; never called for parameterless layers.
    fn update_parameters(&mut self, f: impl FnMut(&mut [f64], &[f64]));
}

/// Inference over `layers`, chunking large batches through the pure
/// kernels (row-independent, so chunking is invisible in the output).
pub(crate) fn predict<L: LayerOps>(layers: &[L], x: &Matrix) -> crate::Result<Matrix> {
    if x.rows() >= 2 * PAR_ROW_CHUNK {
        return predict_chunked(layers, x);
    }
    let mut a = x.clone();
    for layer in layers {
        a = layer.forward_inference(&a)?;
    }
    Ok(a)
}

fn predict_chunked<L: LayerOps>(layers: &[L], x: &Matrix) -> crate::Result<Matrix> {
    let chunks = row_chunks(x.rows());
    // ppdl-lint: allow(determinism/tainted-parallel) -- over-approximated edge: the untyped `act.apply(v)` in conv.rs resolves to Perturbation::apply by name; activation functions draw no RNG
    let parts = par_map_vec(&chunks, |_, r| -> crate::Result<Matrix> {
        let mut a = x.slice_rows(r.start, r.end);
        for layer in layers {
            a = layer.forward_inference(&a)?;
        }
        Ok(a)
    });
    let mut out: Option<Matrix> = None;
    for (r, part) in chunks.iter().zip(parts) {
        let part = part?;
        let out = out.get_or_insert_with(|| Matrix::zeros(x.rows(), part.cols()));
        for (k, row) in (r.start..r.end).enumerate() {
            out.row_mut(row).copy_from_slice(part.row(k));
        }
    }
    out.ok_or(NnError::InvalidConfig {
        detail: "predict called with an empty batch".into(),
    })
}

/// One optimisation step with an optional L2 weight penalty: runs the
/// forward/backward step (chunked for large batches), then walks the
/// parameter-group protocol — per layer index `li`, weights are group
/// `2 * li` (decayed) and bias `2 * li + 1` — and ends the optimizer
/// step. Returns the pre-update batch loss (excluding the penalty).
pub(crate) fn train_batch_regularized<L: LayerOps, O: Optimizer>(
    layers: &mut [L],
    x: &Matrix,
    y: &Matrix,
    loss: Loss,
    weight_decay: f64,
    optimizer: &mut O,
) -> crate::Result<f64> {
    if !(weight_decay.is_finite() && weight_decay >= 0.0) {
        return Err(NnError::InvalidConfig {
            detail: format!("weight decay {weight_decay} must be non-negative"),
        });
    }
    let value = if x.rows() >= 2 * PAR_ROW_CHUNK && x.rows() == y.rows() {
        train_step_chunked(layers, x, y, loss)?
    } else {
        train_step_full(layers, x, y, loss)?
    };
    let mut result = Ok(());
    for (li, layer) in layers.iter_mut().enumerate() {
        let mut group = 2 * li;
        layer.update_parameters(|params, grads| {
            if result.is_ok() {
                result = if weight_decay > 0.0 && group % 2 == 0 {
                    let decayed: Vec<f64> = params
                        .iter()
                        .zip(grads)
                        .map(|(p, g)| g + 2.0 * weight_decay * p)
                        .collect();
                    optimizer.step(group, params, &decayed)
                } else {
                    optimizer.step(group, params, grads)
                };
            }
            group += 1;
        });
    }
    result?;
    optimizer.end_step();
    Ok(value)
}

/// Classic whole-batch forward/backward, leaving gradients in the
/// layers' caches. Returns the batch loss.
pub(crate) fn train_step_full<L: LayerOps>(
    layers: &mut [L],
    x: &Matrix,
    y: &Matrix,
    loss: Loss,
) -> crate::Result<f64> {
    let mut a = x.clone();
    for layer in layers.iter_mut() {
        a = layer.forward(&a)?;
    }
    let value = loss.value(&a, y)?;
    let mut grad = loss.gradient(&a, y)?;
    for layer in layers.iter_mut().rev() {
        grad = layer.backward(&grad)?;
    }
    Ok(value)
}

/// Data-parallel forward/backward over fixed row chunks; installs the
/// chunk-order-summed gradients into the layers and returns the batch
/// loss (the chunk-weighted mean).
pub(crate) fn train_step_chunked<L: LayerOps>(
    layers: &mut [L],
    x: &Matrix,
    y: &Matrix,
    loss: Loss,
) -> crate::Result<f64> {
    let chunks = row_chunks(x.rows());
    let total_rows = x.rows() as f64;
    let shared = &*layers;
    type ChunkResult = (f64, Vec<(Matrix, Vec<f64>)>);
    // ppdl-lint: allow(determinism/tainted-parallel) -- over-approximated edge: the untyped `act.apply(v)` in conv.rs resolves to Perturbation::apply by name; activation functions draw no RNG
    let results = par_map_vec(&chunks, |_, r| -> crate::Result<ChunkResult> {
        let weight = (r.end - r.start) as f64 / total_rows;
        let xc = x.slice_rows(r.start, r.end);
        let yc = y.slice_rows(r.start, r.end);
        // Forward, keeping each layer's (input, pre-activation).
        let mut caches = Vec::with_capacity(shared.len());
        let mut a = xc;
        for layer in shared {
            let (pre, out) = layer.forward_pure(&a)?;
            caches.push((a, pre));
            a = out;
        }
        let value = loss.value(&a, &yc)?;
        // The loss gradient normalises by the chunk size; rescale so
        // the chunk contributes its share of the whole-batch mean.
        let mut grad = loss.gradient(&a, &yc)?.scale(weight);
        let mut grads_rev = Vec::with_capacity(shared.len());
        for (li, layer) in shared.iter().enumerate().rev() {
            let (input, pre) = &caches[li];
            let (gx, gw, gb) = layer.backward_pure(input, pre, &grad)?;
            grads_rev.push((gw, gb));
            grad = gx;
        }
        grads_rev.reverse();
        Ok((value * weight, grads_rev))
    });
    // Reduce in ascending chunk order — the order is fixed by the
    // decomposition, so the sums are thread-count independent.
    let mut value = 0.0;
    let mut acc: Option<Vec<(Matrix, Vec<f64>)>> = None;
    for res in results {
        let (v, grads) = res?;
        value += v;
        acc = Some(match acc {
            None => grads,
            Some(mut a) => {
                for ((aw, ab), (gw, gb)) in a.iter_mut().zip(grads) {
                    *aw = aw.add(&gw)?;
                    for (s, g) in ab.iter_mut().zip(&gb) {
                        *s += g;
                    }
                }
                a
            }
        });
    }
    // A non-empty batch always yields at least one chunk; surface a
    // typed error instead of panicking if the chunking ever changes
    // (robustness/unwrap-in-lib).
    let acc = acc.ok_or(NnError::InvalidConfig {
        detail: "backward_batch called with an empty batch".into(),
    })?;
    for (layer, (gw, gb)) in layers.iter_mut().zip(acc) {
        layer.set_gradients(gw, gb);
    }
    Ok(value)
}

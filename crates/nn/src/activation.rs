/// Activation functions for dense layers.
///
/// # Example
///
/// ```
/// use ppdl_nn::Activation;
///
/// assert_eq!(Activation::Relu.apply(-2.0), 0.0);
/// assert_eq!(Activation::Relu.apply(3.0), 3.0);
/// assert_eq!(Activation::Relu.derivative(3.0), 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Activation {
    /// `f(x) = x` — used on the output layer of a regressor.
    Identity,
    /// Rectified linear unit `max(0, x)`.
    Relu,
    /// Leaky ReLU with slope `alpha` for negative inputs.
    LeakyRelu(f64),
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
}

impl Activation {
    /// Applies the activation to a pre-activation value.
    #[must_use]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Identity => x,
            Activation::Relu => x.max(0.0),
            Activation::LeakyRelu(alpha) => {
                if x >= 0.0 {
                    x
                } else {
                    alpha * x
                }
            }
            Activation::Tanh => x.tanh(),
            Activation::Sigmoid => 1.0 / (1.0 + (-x).exp()),
        }
    }

    /// Derivative with respect to the *pre-activation* value.
    #[must_use]
    pub fn derivative(self, x: f64) -> f64 {
        match self {
            Activation::Identity => 1.0,
            Activation::Relu => {
                if x > 0.0 {
                    1.0
                } else {
                    0.0
                }
            }
            Activation::LeakyRelu(alpha) => {
                if x >= 0.0 {
                    1.0
                } else {
                    alpha
                }
            }
            Activation::Tanh => {
                let t = x.tanh();
                1.0 - t * t
            }
            Activation::Sigmoid => {
                let s = 1.0 / (1.0 + (-x).exp());
                s * (1.0 - s)
            }
        }
    }

    /// Short stable name, used by the persistence format.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Activation::Identity => "identity",
            Activation::Relu => "relu",
            Activation::LeakyRelu(_) => "leaky_relu",
            Activation::Tanh => "tanh",
            Activation::Sigmoid => "sigmoid",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALL: [Activation; 5] = [
        Activation::Identity,
        Activation::Relu,
        Activation::LeakyRelu(0.01),
        Activation::Tanh,
        Activation::Sigmoid,
    ];

    #[test]
    fn values_at_zero() {
        assert_eq!(Activation::Identity.apply(0.0), 0.0);
        assert_eq!(Activation::Relu.apply(0.0), 0.0);
        assert_eq!(Activation::Tanh.apply(0.0), 0.0);
        assert_eq!(Activation::Sigmoid.apply(0.0), 0.5);
    }

    #[test]
    fn leaky_slope() {
        let a = Activation::LeakyRelu(0.1);
        assert!((a.apply(-10.0) + 1.0).abs() < 1e-12);
        assert_eq!(a.derivative(-1.0), 0.1);
        assert_eq!(a.derivative(1.0), 1.0);
    }

    #[test]
    fn derivative_matches_finite_difference() {
        let h = 1e-6;
        for act in ALL {
            for &x in &[-2.0, -0.5, 0.3, 1.7] {
                let fd = (act.apply(x + h) - act.apply(x - h)) / (2.0 * h);
                let an = act.derivative(x);
                assert!(
                    (fd - an).abs() < 1e-5,
                    "{}: fd {fd} vs analytic {an} at {x}",
                    act.name()
                );
            }
        }
    }

    #[test]
    fn monotone_nondecreasing() {
        for act in ALL {
            let mut prev = act.apply(-5.0);
            let mut x = -5.0;
            while x <= 5.0 {
                let v = act.apply(x);
                assert!(v >= prev - 1e-12, "{} not monotone at {x}", act.name());
                prev = v;
                x += 0.25;
            }
        }
    }

    #[test]
    fn sigmoid_bounded() {
        for &x in &[-50.0, -1.0, 0.0, 1.0, 50.0] {
            let s = Activation::Sigmoid.apply(x);
            assert!((0.0..=1.0).contains(&s));
        }
    }
}

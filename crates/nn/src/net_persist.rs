//! Versioned text persistence for layer-graph [`Network`] models.
//!
//! The format extends the MLP codec with per-kind layer declarations:
//!
//! ```text
//! ppdl-net v1
//! input chw 2 8 8
//! layers 4
//! conv2d 4 2 8 8 3 relu
//! <4 weight rows (2·3·3 values each)>
//! <1 bias row>
//! maxpool2d 4 8 8 2
//! flatten 4 4 4
//! dense 1 64 identity
//! <1 weight row>
//! <1 bias row>
//! end
//! ```
//!
//! Values use shortest-round-trip float formatting, so save/load is
//! lossless and re-encoding a loaded model is byte-identical.

use crate::conv::{AvgPool2d, Conv2d, Flatten, MaxPool2d, Upsample2d};
use crate::network::{Layer, Network, TensorShape};
use crate::persist::parse_floats;
use crate::{Activation, DenseLayer, Matrix, NnError};

fn activation_suffix(act: Activation) -> String {
    match act {
        Activation::LeakyRelu(alpha) => format!("leaky_relu {alpha}"),
        other => other.name().to_string(),
    }
}

fn parse_activation(fields: &[&str], at: usize, ln: usize) -> crate::Result<Activation> {
    let name = fields.get(at).ok_or_else(|| NnError::Decode {
        line: ln,
        detail: "missing activation".into(),
    })?;
    Ok(match *name {
        "identity" => Activation::Identity,
        "relu" => Activation::Relu,
        "tanh" => Activation::Tanh,
        "sigmoid" => Activation::Sigmoid,
        "leaky_relu" => {
            let alpha: f64 = fields
                .get(at + 1)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| NnError::Decode {
                    line: ln,
                    detail: "leaky_relu requires an alpha".into(),
                })?;
            Activation::LeakyRelu(alpha)
        }
        other => {
            return Err(NnError::Decode {
                line: ln,
                detail: format!("unknown activation '{other}'"),
            })
        }
    })
}

fn parse_usizes(fields: &[&str], from: usize, n: usize, ln: usize) -> crate::Result<Vec<usize>> {
    (from..from + n)
        .map(|i| {
            fields
                .get(i)
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| NnError::Decode {
                    line: ln,
                    detail: format!("expected {n} integer fields"),
                })
        })
        .collect()
}

fn write_matrix_rows(out: &mut String, weights: &Matrix, bias: &[f64]) {
    use std::fmt::Write as _;
    for r in 0..weights.rows() {
        let row: Vec<String> = weights.row(r).iter().map(|v| format!("{v}")).collect();
        let _ = writeln!(out, "{}", row.join(" "));
    }
    let brow: Vec<String> = bias.iter().map(|b| format!("{b}")).collect();
    let _ = writeln!(out, "{}", brow.join(" "));
}

impl Network {
    /// Serialises the network to the versioned text format.
    #[must_use]
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "ppdl-net v1");
        match self.input_shape() {
            TensorShape::Flat(n) => {
                let _ = writeln!(out, "input flat {n}");
            }
            TensorShape::Chw { c, h, w } => {
                let _ = writeln!(out, "input chw {c} {h} {w}");
            }
        }
        let _ = writeln!(out, "layers {}", self.layer_count());
        for layer in self.layers() {
            match layer {
                Layer::Dense(l) => {
                    let _ = writeln!(
                        out,
                        "dense {} {} {}",
                        l.output_dim(),
                        l.input_dim(),
                        activation_suffix(l.activation())
                    );
                    write_matrix_rows(&mut out, l.weights(), l.bias());
                }
                Layer::Conv2d(l) => {
                    let (h, w) = l.spatial();
                    let _ = writeln!(
                        out,
                        "conv2d {} {} {h} {w} {} {}",
                        l.out_channels(),
                        l.in_channels(),
                        l.kernel(),
                        activation_suffix(l.activation())
                    );
                    write_matrix_rows(&mut out, l.weights(), l.bias());
                }
                Layer::MaxPool2d(l) => {
                    let (h, w) = l.spatial();
                    let _ = writeln!(out, "maxpool2d {} {h} {w} {}", l.channels(), l.window());
                }
                Layer::AvgPool2d(l) => {
                    let (h, w) = l.spatial();
                    let _ = writeln!(out, "avgpool2d {} {h} {w} {}", l.channels(), l.window());
                }
                Layer::Upsample2d(l) => {
                    let (h, w) = l.spatial();
                    let _ = writeln!(out, "upsample2d {} {h} {w} {}", l.channels(), l.factor());
                }
                Layer::Flatten(l) => {
                    let (c, h, w) = l.shape();
                    let _ = writeln!(out, "flatten {c} {h} {w}");
                }
            }
        }
        out.push_str("end\n");
        out
    }

    /// Reconstructs a network from [`to_text`](Self::to_text) output.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::Decode`] (with a line number) for malformed
    /// input, and shape errors from
    /// [`Network::from_parts`] if the declared chain is inconsistent.
    pub fn from_text(text: &str) -> crate::Result<Self> {
        let mut lines = text.lines().enumerate();
        let (ln, header) = next_line(&mut lines, "header")?;
        if header != "ppdl-net v1" {
            return Err(NnError::Decode {
                line: ln,
                detail: format!("bad header '{header}'"),
            });
        }
        let (ln, input_line) = next_line(&mut lines, "input shape")?;
        let fields: Vec<&str> = input_line.split_whitespace().collect();
        let input_shape = match (fields.first(), fields.get(1)) {
            (Some(&"input"), Some(&"flat")) => {
                let d = parse_usizes(&fields, 2, 1, ln)?;
                TensorShape::Flat(d[0])
            }
            (Some(&"input"), Some(&"chw")) => {
                let d = parse_usizes(&fields, 2, 3, ln)?;
                TensorShape::Chw {
                    c: d[0],
                    h: d[1],
                    w: d[2],
                }
            }
            _ => {
                return Err(NnError::Decode {
                    line: ln,
                    detail: format!("bad input shape line '{input_line}'"),
                })
            }
        };
        let (ln, count_line) = next_line(&mut lines, "layer count")?;
        let count: usize = count_line
            .strip_prefix("layers ")
            .and_then(|s| s.parse().ok())
            .ok_or_else(|| NnError::Decode {
                line: ln,
                detail: format!("bad layer count line '{count_line}'"),
            })?;
        let mut layers = Vec::with_capacity(count);
        for _ in 0..count {
            let (ln, decl) = next_line(&mut lines, "layer declaration")?;
            let fields: Vec<&str> = decl.split_whitespace().collect();
            let kind = fields.first().copied().unwrap_or("");
            let layer = match kind {
                "dense" => {
                    let d = parse_usizes(&fields, 1, 2, ln)?;
                    let activation = parse_activation(&fields, 3, ln)?;
                    let (weights, bias) = read_params(&mut lines, d[0], d[1])?;
                    Layer::Dense(DenseLayer::from_parameters(weights, bias, activation)?)
                }
                "conv2d" => {
                    let d = parse_usizes(&fields, 1, 5, ln)?;
                    let activation = parse_activation(&fields, 6, ln)?;
                    let (out_c, in_c, h, w, k) = (d[0], d[1], d[2], d[3], d[4]);
                    let (weights, bias) = read_params(&mut lines, out_c, in_c * k * k)?;
                    Layer::Conv2d(Conv2d::from_parameters(
                        in_c, h, w, out_c, k, activation, weights, bias,
                    )?)
                }
                "maxpool2d" => {
                    let d = parse_usizes(&fields, 1, 4, ln)?;
                    Layer::MaxPool2d(MaxPool2d::new(d[0], d[1], d[2], d[3])?)
                }
                "avgpool2d" => {
                    let d = parse_usizes(&fields, 1, 4, ln)?;
                    Layer::AvgPool2d(AvgPool2d::new(d[0], d[1], d[2], d[3])?)
                }
                "upsample2d" => {
                    let d = parse_usizes(&fields, 1, 4, ln)?;
                    Layer::Upsample2d(Upsample2d::new(d[0], d[1], d[2], d[3])?)
                }
                "flatten" => {
                    let d = parse_usizes(&fields, 1, 3, ln)?;
                    Layer::Flatten(Flatten::new(d[0], d[1], d[2])?)
                }
                other => {
                    return Err(NnError::Decode {
                        line: ln,
                        detail: format!("unknown layer kind '{other}'"),
                    })
                }
            };
            layers.push(layer);
        }
        let (ln, terminator) = next_line(&mut lines, "end")?;
        if terminator != "end" {
            return Err(NnError::Decode {
                line: ln,
                detail: format!("expected 'end', found '{terminator}'"),
            });
        }
        Network::from_parts(input_shape, layers)
    }
}

fn next_line<'a>(
    lines: &mut impl Iterator<Item = (usize, &'a str)>,
    expect: &str,
) -> crate::Result<(usize, &'a str)> {
    lines
        .next()
        .map(|(i, l)| (i + 1, l.trim()))
        .ok_or_else(|| NnError::Decode {
            line: 0,
            detail: format!("unexpected end of input, expected {expect}"),
        })
}

fn read_params<'a>(
    lines: &mut impl Iterator<Item = (usize, &'a str)>,
    rows: usize,
    cols: usize,
) -> crate::Result<(Matrix, Vec<f64>)> {
    let mut weights = Matrix::zeros(rows, cols);
    for r in 0..rows {
        let (ln, row) = next_line(lines, "weight row")?;
        let vals = parse_floats(row, ln)?;
        if vals.len() != cols {
            return Err(NnError::Decode {
                line: ln,
                detail: format!("weight row has {} values, expected {cols}", vals.len()),
            });
        }
        weights.row_mut(r).copy_from_slice(&vals);
    }
    let (ln, brow) = next_line(lines, "bias row")?;
    let bias = parse_floats(brow, ln)?;
    if bias.len() != rows {
        return Err(NnError::Decode {
            line: ln,
            detail: format!("bias row has {} values, expected {rows}", bias.len()),
        });
    }
    Ok((weights, bias))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{NetworkBuilder, TensorShape};

    fn chw(c: usize, h: usize, w: usize) -> TensorShape {
        TensorShape::Chw { c, h, w }
    }

    fn spatial_net() -> Network {
        NetworkBuilder::new(chw(2, 4, 4))
            .conv2d(3, 3, Activation::Relu)
            .max_pool(2)
            .conv2d(4, 1, Activation::LeakyRelu(0.03))
            .upsample(2)
            .avg_pool(2)
            .flatten()
            .dense(2, Activation::Identity)
            .seed(13)
            .build()
            .unwrap()
    }

    #[test]
    fn round_trip_covers_every_layer_kind() {
        let net = spatial_net();
        let text = net.to_text();
        // All six layer kinds appear in the artifact.
        for kind in [
            "conv2d",
            "maxpool2d",
            "avgpool2d",
            "upsample2d",
            "flatten",
            "dense",
        ] {
            assert!(text.contains(kind), "missing {kind} in:\n{text}");
        }
        let back = Network::from_text(&text).unwrap();
        assert_eq!(back.layer_count(), net.layer_count());
        assert_eq!(back.input_shape(), net.input_shape());
        assert_eq!(back.output_shape(), net.output_shape());
        let x = Matrix::from_fn(5, 32, |r, i| ((r * 7 + i) % 9) as f64 * 0.2 - 0.8);
        assert_eq!(back.predict(&x).unwrap(), net.predict(&x).unwrap());
        // The text is a fixed point.
        assert_eq!(back.to_text(), text);
    }

    #[test]
    fn flat_input_round_trips() {
        let net = NetworkBuilder::new(TensorShape::Flat(3))
            .dense(5, Activation::Tanh)
            .dense(1, Activation::Identity)
            .seed(4)
            .build()
            .unwrap();
        let back = Network::from_text(&net.to_text()).unwrap();
        assert_eq!(back.input_shape(), TensorShape::Flat(3));
        let x = Matrix::from_fn(4, 3, |r, c| (r + c) as f64 * 0.3);
        assert_eq!(back.predict(&x).unwrap(), net.predict(&x).unwrap());
    }

    #[test]
    fn bad_header_rejected() {
        let err = Network::from_text("ppdl-mlp v1\n").unwrap_err();
        assert!(matches!(err, NnError::Decode { line: 1, .. }));
    }

    #[test]
    fn unknown_layer_kind_rejected() {
        let text = "ppdl-net v1\ninput flat 2\nlayers 1\nattention 2 2\nend\n";
        match Network::from_text(text) {
            Err(NnError::Decode { line: 4, detail }) => {
                assert!(detail.contains("attention"), "{detail}")
            }
            other => panic!("expected decode error, got {other:?}"),
        }
    }

    #[test]
    fn broken_shape_chain_rejected() {
        // maxpool2d declares a 4x4 map but the conv output is 2x4x4,
        // i.e. widths disagree (1*4*4 != 2*4*4).
        let text = "ppdl-net v1\ninput chw 1 4 4\nlayers 2\n\
                    conv2d 2 1 4 4 1 identity\n1.0\n0.5\n1.0\n0.5\n\
                    maxpool2d 1 4 4 2\nend\n";
        assert!(Network::from_text(text).is_err());
    }

    #[test]
    fn truncated_input_rejected() {
        let net = spatial_net();
        let text = net.to_text();
        let truncated: String = text.lines().take(5).collect::<Vec<_>>().join("\n");
        assert!(Network::from_text(&truncated).is_err());
    }
}

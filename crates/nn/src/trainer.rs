use std::time::Instant;

use crate::{Adam, Dataset, Loss, Matrix, Mlp, Network, NnError, Optimizer};

/// What the [`Trainer`] needs from a model: one regularized
/// minibatch step and batch inference. Implemented by [`Mlp`] and
/// [`Network`], so the same training loop (shuffling, validation
/// split, early stopping, telemetry) drives every backend.
pub trait TrainableModel {
    /// One optimisation step on a batch with an L2 weight penalty,
    /// returning the pre-update batch loss (penalty excluded).
    ///
    /// # Errors
    ///
    /// Propagates shape, optimizer, and configuration errors.
    fn train_batch_regularized<O: Optimizer>(
        &mut self,
        x: &Matrix,
        y: &Matrix,
        loss: Loss,
        weight_decay: f64,
        optimizer: &mut O,
    ) -> crate::Result<f64>;

    /// Batch inference.
    ///
    /// # Errors
    ///
    /// Returns a shape error for a wrong input width.
    fn predict(&self, x: &Matrix) -> crate::Result<Matrix>;
}

impl TrainableModel for Mlp {
    fn train_batch_regularized<O: Optimizer>(
        &mut self,
        x: &Matrix,
        y: &Matrix,
        loss: Loss,
        weight_decay: f64,
        optimizer: &mut O,
    ) -> crate::Result<f64> {
        Mlp::train_batch_regularized(self, x, y, loss, weight_decay, optimizer)
    }

    fn predict(&self, x: &Matrix) -> crate::Result<Matrix> {
        Mlp::predict(self, x)
    }
}

impl TrainableModel for Network {
    fn train_batch_regularized<O: Optimizer>(
        &mut self,
        x: &Matrix,
        y: &Matrix,
        loss: Loss,
        weight_decay: f64,
        optimizer: &mut O,
    ) -> crate::Result<f64> {
        Network::train_batch_regularized(self, x, y, loss, weight_decay, optimizer)
    }

    fn predict(&self, x: &Matrix) -> crate::Result<Matrix> {
        Network::predict(self, x)
    }
}

/// Per-epoch loss histogram edges: 1e-10 to 100, one decade per bucket.
const LOSS_BOUNDS: [f64; 13] = [
    1e-10, 1e-9, 1e-8, 1e-7, 1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0,
];

/// Configuration for mini-batch training.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainConfig {
    /// Number of passes over the training data.
    pub epochs: usize,
    /// Mini-batch size.
    ///
    /// Batches of 512 rows or more take the model's data-parallel path
    /// (fixed 256-row chunks, reduced in chunk order), which uses the
    /// thread pool configured via `ppdl_solver::parallel` /
    /// `PPDL_THREADS`. Results are bitwise identical at any thread
    /// count, so raising the batch size trades gradient freshness for
    /// wall-clock speed without changing reproducibility.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Loss function (the paper uses MSE).
    pub loss: Loss,
    /// L2 weight-decay coefficient — the λC(Ω) regularisation term of
    /// the paper's eq. 2. `0.0` disables it.
    pub weight_decay: f64,
    /// Shuffling seed; each epoch reshuffles deterministically from it.
    pub shuffle_seed: u64,
    /// Fraction of the data held out for validation, in `[0, 1)`.
    /// `0.0` disables validation (and early stopping).
    pub validation_split: f64,
    /// Stop after this many epochs without validation improvement.
    /// `0` disables early stopping.
    pub patience: usize,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            epochs: 100,
            batch_size: 32,
            learning_rate: 1e-3,
            loss: Loss::Mse,
            weight_decay: 0.0,
            shuffle_seed: 0,
            validation_split: 0.0,
            patience: 0,
        }
    }
}

/// What a training run produced.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Mean training loss of each epoch.
    pub train_losses: Vec<f64>,
    /// Validation loss of each epoch (empty when validation is off).
    pub val_losses: Vec<f64>,
    /// Number of epochs actually run (may be fewer than configured when
    /// early stopping triggers).
    pub epochs_run: usize,
    /// Whether early stopping ended the run.
    pub early_stopped: bool,
}

impl TrainReport {
    /// The best (lowest) validation loss seen, if validation ran.
    #[must_use]
    pub fn best_val_loss(&self) -> Option<f64> {
        self.val_losses
            .iter()
            .copied()
            .fold(None, |m, v| Some(m.map_or(v, |mv: f64| mv.min(v))))
    }
}

/// Mini-batch trainer driving a [`TrainableModel`] with Adam.
///
/// # Example
///
/// ```
/// use ppdl_nn::{Activation, Dataset, Matrix, MlpBuilder, TrainConfig, Trainer};
///
/// let x = Matrix::from_fn(100, 1, |r, _| r as f64 / 100.0);
/// let y = x.map(|v| 2.0 * v + 1.0);
/// let data = Dataset::new(x, y).unwrap();
/// let mut model = MlpBuilder::new(1).hidden(8, Activation::Tanh).output(1).build().unwrap();
/// let report = Trainer::new(TrainConfig { epochs: 50, ..TrainConfig::default() })
///     .fit(&mut model, &data)
///     .unwrap();
/// assert_eq!(report.epochs_run, 50);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Trainer {
    config: TrainConfig,
}

impl Trainer {
    /// Creates a trainer.
    #[must_use]
    pub fn new(config: TrainConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains `model` on `data`. Works for any [`TrainableModel`] —
    /// the paper's [`Mlp`] as well as spatial [`Network`] graphs.
    ///
    /// # Errors
    ///
    /// * [`NnError::InvalidConfig`] — bad epochs/batch/learning rate or
    ///   validation split.
    /// * [`NnError::Diverged`] — a non-finite loss appeared.
    /// * Shape errors propagate from the model.
    pub fn fit<M: TrainableModel>(
        &self,
        model: &mut M,
        data: &Dataset,
    ) -> crate::Result<TrainReport> {
        let c = &self.config;
        if c.epochs == 0 || c.batch_size == 0 {
            return Err(NnError::InvalidConfig {
                detail: "epochs and batch size must be positive".into(),
            });
        }
        if !(0.0..1.0).contains(&c.validation_split) {
            return Err(NnError::InvalidConfig {
                detail: format!("validation split {} outside [0, 1)", c.validation_split),
            });
        }
        let (train, val) = if c.validation_split > 0.0 {
            let shuffled = data.shuffled(c.shuffle_seed.wrapping_mul(0x9e37_79b9));
            let (t, v) = shuffled.split(1.0 - c.validation_split)?;
            (t, Some(v))
        } else {
            (data.clone(), None)
        };

        let _fit_span = ppdl_obs::span("nn/fit");
        let mut optimizer = Adam::new(c.learning_rate)?;
        let mut train_losses = Vec::with_capacity(c.epochs);
        let mut val_losses = Vec::new();
        let mut best_val = f64::INFINITY;
        let mut stale = 0usize;
        let mut early_stopped = false;

        for epoch in 0..c.epochs {
            // ppdl-lint: allow(determinism/wall-clock) -- feeds the per-epoch telemetry span only; losses and weights never read it
            let epoch_start = Instant::now();
            let shuffled = train.shuffled(c.shuffle_seed.wrapping_add(epoch as u64));
            let mut sum = 0.0;
            let mut batches = 0usize;
            for (xb, yb) in shuffled.batches(c.batch_size) {
                let loss = model.train_batch_regularized(
                    &xb,
                    &yb,
                    c.loss,
                    c.weight_decay,
                    &mut optimizer,
                )?;
                if !loss.is_finite() {
                    return Err(NnError::Diverged { epoch });
                }
                sum += loss;
                batches += 1;
            }
            let epoch_loss = sum / batches as f64;
            if ppdl_obs::enabled() {
                ppdl_obs::counter_add("nn/epochs", 1);
                ppdl_obs::observe(
                    "nn/epoch_ms",
                    &ppdl_obs::latency_buckets_ms(),
                    epoch_start.elapsed().as_secs_f64() * 1e3,
                );
                ppdl_obs::observe("nn/epoch_loss", &LOSS_BOUNDS, epoch_loss);
            }
            train_losses.push(epoch_loss);

            if let Some(v) = &val {
                let pred = model.predict(v.x())?;
                let vloss = c.loss.value(&pred, v.y())?;
                if !vloss.is_finite() {
                    return Err(NnError::Diverged { epoch });
                }
                val_losses.push(vloss);
                if vloss < best_val - 1e-12 {
                    best_val = vloss;
                    stale = 0;
                } else {
                    stale += 1;
                    if c.patience > 0 && stale >= c.patience {
                        early_stopped = true;
                        break;
                    }
                }
            }
        }

        Ok(TrainReport {
            epochs_run: train_losses.len(),
            train_losses,
            val_losses,
            early_stopped,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Activation, Matrix, MlpBuilder};

    fn linear_data(n: usize) -> Dataset {
        let x = Matrix::from_fn(n, 2, |r, c| ((r * 3 + c * 7) % 13) as f64 / 13.0);
        let y = Matrix::from_fn(n, 1, |r, _| 1.5 * x.get(r, 0) - 0.5 * x.get(r, 1) + 0.2);
        Dataset::new(x, y).unwrap()
    }

    fn model() -> Mlp {
        MlpBuilder::new(2)
            .hidden(12, Activation::Tanh)
            .output(1)
            .seed(11)
            .build()
            .unwrap()
    }

    #[test]
    fn loss_decreases_over_training() {
        let data = linear_data(128);
        let mut m = model();
        let report = Trainer::new(TrainConfig {
            epochs: 60,
            learning_rate: 5e-3,
            ..TrainConfig::default()
        })
        .fit(&mut m, &data)
        .unwrap();
        assert_eq!(report.epochs_run, 60);
        assert!(report.train_losses[59] < report.train_losses[0] / 5.0);
    }

    #[test]
    fn validation_split_records_losses() {
        let data = linear_data(100);
        let mut m = model();
        let report = Trainer::new(TrainConfig {
            epochs: 10,
            validation_split: 0.2,
            ..TrainConfig::default()
        })
        .fit(&mut m, &data)
        .unwrap();
        assert_eq!(report.val_losses.len(), 10);
        assert!(report.best_val_loss().unwrap().is_finite());
    }

    #[test]
    fn early_stopping_stops_early() {
        let data = linear_data(60);
        let mut m = model();
        let report = Trainer::new(TrainConfig {
            epochs: 500,
            validation_split: 0.3,
            patience: 3,
            learning_rate: 1e-2,
            ..TrainConfig::default()
        })
        .fit(&mut m, &data)
        .unwrap();
        assert!(report.epochs_run < 500);
        assert!(report.early_stopped);
    }

    #[test]
    fn invalid_configs_rejected() {
        let data = linear_data(10);
        let mut m = model();
        for cfg in [
            TrainConfig {
                epochs: 0,
                ..TrainConfig::default()
            },
            TrainConfig {
                batch_size: 0,
                ..TrainConfig::default()
            },
            TrainConfig {
                validation_split: 1.0,
                ..TrainConfig::default()
            },
            TrainConfig {
                validation_split: -0.1,
                ..TrainConfig::default()
            },
        ] {
            assert!(Trainer::new(cfg).fit(&mut m, &data).is_err());
        }
    }

    #[test]
    fn weight_decay_flows_through_trainer() {
        let data = linear_data(64);
        let mut plain = model();
        let mut decayed = model();
        let base = TrainConfig {
            epochs: 30,
            ..TrainConfig::default()
        };
        Trainer::new(base.clone()).fit(&mut plain, &data).unwrap();
        Trainer::new(TrainConfig {
            weight_decay: 0.05,
            ..base
        })
        .fit(&mut decayed, &data)
        .unwrap();
        let norm = |m: &Mlp| -> f64 {
            m.layers()
                .iter()
                .flat_map(|l| l.weights().as_slice().iter())
                .map(|w| w * w)
                .sum()
        };
        assert!(
            norm(&decayed) < norm(&plain),
            "decay should shrink weights: {} vs {}",
            norm(&decayed),
            norm(&plain)
        );
    }

    #[test]
    fn shuffle_seed_changes_trajectory_not_quality() {
        let data = linear_data(64);
        let mut m1 = model();
        let mut m2 = model();
        let r1 = Trainer::new(TrainConfig {
            epochs: 30,
            shuffle_seed: 1,
            ..TrainConfig::default()
        })
        .fit(&mut m1, &data)
        .unwrap();
        let r2 = Trainer::new(TrainConfig {
            epochs: 30,
            shuffle_seed: 2,
            ..TrainConfig::default()
        })
        .fit(&mut m2, &data)
        .unwrap();
        // Both converge to similar loss levels.
        let a = r1.train_losses.last().unwrap();
        let b = r2.train_losses.last().unwrap();
        assert!(a.max(*b) < 10.0 * a.min(*b) + 1e-6);
    }
}

use crate::NnError;

/// Row-major dense matrix of `f64`, the tensor type of this library.
///
/// # Example
///
/// ```
/// use ppdl_nn::Matrix;
///
/// let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
/// let b = Matrix::identity(2);
/// let c = a.matmul(&b).unwrap();
/// assert_eq!(c, a);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a zero-filled matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Creates a matrix by evaluating `f(row, col)` at every position.
    #[must_use]
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if rows have unequal lengths.
    pub fn from_rows(rows: &[&[f64]]) -> crate::Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != ncols {
                return Err(NnError::ShapeMismatch {
                    detail: format!("row {i} has length {}, expected {ncols}", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self {
            rows: nrows,
            cols: ncols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> crate::Result<Self> {
        if data.len() != rows * cols {
            return Err(NnError::ShapeMismatch {
                detail: format!(
                    "flat data of length {} cannot form a {rows}x{cols} matrix",
                    data.len()
                ),
            });
        }
        Ok(Self { rows, cols, data })
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)`.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.rows && c < self.cols, "matrix get out of bounds");
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.rows && c < self.cols, "matrix set out of bounds");
        self.data[r * self.cols + c] = v;
    }

    /// A view of one row.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    #[must_use]
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of bounds");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of one row.
    ///
    /// # Panics
    ///
    /// Panics if `r >= rows`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        assert!(r < self.rows, "row out of bounds");
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The flat row-major data.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat data.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Matrix product `self · other`, computed by the register-tiled
    /// kernel in [`crate::gemm`] (parallel over row blocks, bitwise
    /// deterministic across thread counts).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> crate::Result<Matrix> {
        if self.cols != other.rows {
            return Err(NnError::ShapeMismatch {
                detail: format!(
                    "matmul: {}x{} · {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        crate::gemm::gemm_nn(
            self.rows,
            self.cols,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        Ok(out)
    }

    /// Matrix product with the second operand transposed:
    /// `self · otherᵀ`. Avoids materialising the transpose in the
    /// backward pass.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `self.cols != other.cols`.
    pub fn matmul_transpose(&self, other: &Matrix) -> crate::Result<Matrix> {
        if self.cols != other.cols {
            return Err(NnError::ShapeMismatch {
                detail: format!(
                    "matmul_transpose: {}x{} · ({}x{})ᵀ",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let mut out = Matrix::zeros(self.rows, other.rows);
        crate::gemm::gemm_nt(
            self.rows,
            self.cols,
            other.rows,
            &self.data,
            &other.data,
            &mut out.data,
        );
        Ok(out)
    }

    /// Matrix product with the first operand transposed:
    /// `selfᵀ · other`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `self.rows != other.rows`.
    pub fn transpose_matmul(&self, other: &Matrix) -> crate::Result<Matrix> {
        if self.rows != other.rows {
            return Err(NnError::ShapeMismatch {
                detail: format!(
                    "transpose_matmul: ({}x{})ᵀ · {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let mut out = Matrix::zeros(self.cols, other.cols);
        crate::gemm::gemm_tn(
            self.cols,
            self.rows,
            other.cols,
            &self.data,
            &other.data,
            &mut out.data,
        );
        Ok(out)
    }

    /// Returns the transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Elementwise sum with `other`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on shape mismatch.
    pub fn add(&self, other: &Matrix) -> crate::Result<Matrix> {
        self.zip_with(other, |a, b| a + b, "add")
    }

    /// Elementwise difference `self - other`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on shape mismatch.
    pub fn sub(&self, other: &Matrix) -> crate::Result<Matrix> {
        self.zip_with(other, |a, b| a - b, "sub")
    }

    /// Elementwise (Hadamard) product.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on shape mismatch.
    pub fn hadamard(&self, other: &Matrix) -> crate::Result<Matrix> {
        self.zip_with(other, |a, b| a * b, "hadamard")
    }

    fn zip_with(
        &self,
        other: &Matrix,
        f: impl Fn(f64, f64) -> f64,
        opname: &str,
    ) -> crate::Result<Matrix> {
        if self.shape() != other.shape() {
            return Err(NnError::ShapeMismatch {
                detail: format!(
                    "{opname}: {}x{} vs {}x{}",
                    self.rows, self.cols, other.rows, other.cols
                ),
            });
        }
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| f(*a, *b))
            .collect();
        Ok(Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        })
    }

    /// Elementwise map.
    #[must_use]
    pub fn map(&self, f: impl Fn(f64) -> f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&v| f(v)).collect(),
        }
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for v in &mut self.data {
            *v = f(*v);
        }
    }

    /// Scalar multiplication.
    #[must_use]
    pub fn scale(&self, alpha: f64) -> Matrix {
        self.map(|v| v * alpha)
    }

    /// Adds a row vector to every row (bias broadcast).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `bias.len() != cols`.
    pub fn add_row_broadcast(&self, bias: &[f64]) -> crate::Result<Matrix> {
        if bias.len() != self.cols {
            return Err(NnError::ShapeMismatch {
                detail: format!(
                    "broadcast: bias length {} vs {} columns",
                    bias.len(),
                    self.cols
                ),
            });
        }
        let mut out = self.clone();
        for r in 0..out.rows {
            for (v, b) in out.row_mut(r).iter_mut().zip(bias) {
                *v += b;
            }
        }
        Ok(out)
    }

    /// Column sums (used for bias gradients).
    #[must_use]
    pub fn column_sums(&self) -> Vec<f64> {
        let mut sums = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (s, v) in sums.iter_mut().zip(self.row(r)) {
                *s += v;
            }
        }
        sums
    }

    /// Mean of all elements (`0.0` for an empty matrix).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.data.iter().sum::<f64>() / self.data.len() as f64
        }
    }

    /// Extracts a contiguous block of rows `[start, end)` as a new
    /// matrix.
    ///
    /// # Panics
    ///
    /// Panics if the range is invalid.
    #[must_use]
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "row slice out of range");
        Matrix {
            rows: end - start,
            cols: self.cols,
            data: self.data[start * self.cols..end * self.cols].to_vec(),
        }
    }

    /// Gathers the given rows (by index) into a new matrix, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (k, &i) in indices.iter().enumerate() {
            out.row_mut(k).copy_from_slice(self.row(i));
        }
        out
    }

    /// Returns `true` if every element is finite.
    #[must_use]
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Matrix::zeros(2, 3).shape(), (2, 3));
        let f = Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as f64);
        assert_eq!(f.get(1, 1), 3.0);
        assert!(Matrix::from_vec(2, 2, vec![1.0; 3]).is_err());
        assert!(Matrix::from_rows(&[&[1.0], &[1.0, 2.0]]).is_err());
    }

    #[test]
    fn matmul_correctness() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(
            c,
            Matrix::from_rows(&[&[19.0, 22.0], &[43.0, 50.0]]).unwrap()
        );
    }

    #[test]
    fn matmul_shape_mismatch() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        assert!(a.matmul(&b).is_err());
    }

    #[test]
    fn matmul_transpose_agrees_with_explicit() {
        let a = Matrix::from_fn(3, 4, |r, c| (r + 2 * c) as f64);
        let b = Matrix::from_fn(5, 4, |r, c| (2 * r + c) as f64 * 0.5);
        let fast = a.matmul_transpose(&b).unwrap();
        let slow = a.matmul(&b.transpose()).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn transpose_matmul_agrees_with_explicit() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f64);
        let b = Matrix::from_fn(4, 2, |r, c| (r + c) as f64);
        let fast = a.transpose_matmul(&b).unwrap();
        let slow = a.transpose().matmul(&b).unwrap();
        assert_eq!(fast, slow);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(3, 5, |r, c| (r * 5 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn elementwise_ops() {
        let a = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let b = Matrix::from_rows(&[&[3.0, 5.0]]).unwrap();
        assert_eq!(a.add(&b).unwrap().row(0), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().row(0), &[2.0, 3.0]);
        assert_eq!(a.hadamard(&b).unwrap().row(0), &[3.0, 10.0]);
        assert!(a.add(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn broadcast_and_sums() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let biased = a.add_row_broadcast(&[10.0, 20.0]).unwrap();
        assert_eq!(biased.row(1), &[13.0, 24.0]);
        assert_eq!(a.column_sums(), vec![4.0, 6.0]);
        assert!(a.add_row_broadcast(&[1.0]).is_err());
    }

    #[test]
    fn map_and_scale() {
        let a = Matrix::from_rows(&[&[1.0, -2.0]]).unwrap();
        assert_eq!(a.map(f64::abs).row(0), &[1.0, 2.0]);
        assert_eq!(a.scale(-1.0).row(0), &[-1.0, 2.0]);
        let mut b = a.clone();
        b.map_inplace(|v| v + 1.0);
        assert_eq!(b.row(0), &[2.0, -1.0]);
    }

    #[test]
    fn slicing_and_gathering() {
        let a = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f64);
        let s = a.slice_rows(1, 3);
        assert_eq!(s.shape(), (2, 2));
        assert_eq!(s.row(0), &[2.0, 3.0]);
        let g = a.gather_rows(&[3, 0]);
        assert_eq!(g.row(0), &[6.0, 7.0]);
        assert_eq!(g.row(1), &[0.0, 1.0]);
    }

    #[test]
    fn mean_and_finiteness() {
        let a = Matrix::from_rows(&[&[1.0, 3.0]]).unwrap();
        assert_eq!(a.mean(), 2.0);
        assert_eq!(Matrix::zeros(0, 0).mean(), 0.0);
        assert!(a.all_finite());
        let mut b = a.clone();
        b.set(0, 0, f64::NAN);
        assert!(!b.all_finite());
    }
}

//! A from-scratch dense neural-network library for multi-target
//! regression.
//!
//! The paper's model is a fully-connected multilayer perceptron (10
//! hidden layers, chosen by hyperparameter search) trained with the
//! Adam optimizer (paper ref. 13) on an MSE loss to regress power-grid interconnect
//! widths from `(X, Y, Id)` features. This crate implements everything
//! that requires, with no external ML dependency:
//!
//! * [`Matrix`] — row-major dense tensors with the linear-algebra ops
//!   backpropagation needs.
//! * [`DenseLayer`] / [`Mlp`] — layers and the sequential network, with
//!   manual forward/backward passes.
//! * [`Network`] / [`NetworkBuilder`] — the general layer graph
//!   composing [`Layer`] kinds ([`Conv2d`], [`MaxPool2d`],
//!   [`AvgPool2d`], [`Upsample2d`], [`Flatten`], and dense) for the
//!   spatial CNN / encoder-decoder surrogates, on the same
//!   bitwise-deterministic parallel minibatch engine the MLP uses.
//! * [`Activation`] — ReLU / LeakyReLU / Tanh / Sigmoid / Identity.
//! * [`Loss`] — MSE (the paper's choice), MAE, and Huber.
//! * [`Optimizer`] implementations — [`Sgd`], [`Momentum`], [`RmsProp`],
//!   and [`Adam`].
//! * [`Trainer`] — mini-batch training with shuffling, validation
//!   split, and early stopping.
//! * [`Dataset`] / [`StandardScaler`] — data handling and
//!   feature standardisation.
//! * [`metrics`] — MSE, MAE, and the r² score (Definition 1 of the
//!   paper).
//! * Model persistence in a versioned text format
//!   ([`Mlp::to_text`] / [`Mlp::from_text`]).
//!
//! # Example
//!
//! Learn `y = 2x₀ - x₁` from samples:
//!
//! ```
//! use ppdl_nn::{Activation, Dataset, Matrix, MlpBuilder, TrainConfig, Trainer};
//!
//! let x = Matrix::from_fn(64, 2, |r, c| ((r * 7 + c * 3) % 10) as f64 / 10.0);
//! let y = Matrix::from_fn(64, 1, |r, _| 2.0 * x.get(r, 0) - x.get(r, 1));
//! let data = Dataset::new(x, y).unwrap();
//!
//! let mut model = MlpBuilder::new(2)
//!     .hidden(16, Activation::Relu)
//!     .output(1)
//!     .seed(42)
//!     .build()
//!     .unwrap();
//! let report = Trainer::new(TrainConfig {
//!     epochs: 200,
//!     learning_rate: 1e-2,
//!     ..TrainConfig::default()
//! })
//! .fit(&mut model, &data)
//! .unwrap();
//! assert!(*report.train_losses.last().unwrap() < 0.05);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod activation;
mod conv;
mod data;
mod engine;
mod error;
mod gemm;
mod layer;
mod loss;
pub mod metrics;
mod model;
mod net_persist;
mod network;
mod optimizer;
mod persist;
mod tensor;
mod trainer;

pub use activation::Activation;
pub use conv::{AvgPool2d, Conv2d, Flatten, MaxPool2d, Upsample2d};
pub use data::{Dataset, StandardScaler};
pub use error::NnError;
pub use layer::DenseLayer;
pub use loss::Loss;
pub use model::{Mlp, MlpBuilder};
pub use network::{Layer, Network, NetworkBuilder, TensorShape};
pub use optimizer::{Adam, Momentum, Optimizer, RmsProp, Sgd};
pub use tensor::Matrix;
pub use trainer::{TrainConfig, TrainReport, TrainableModel, Trainer};

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, NnError>;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::{Matrix, NnError};

/// A supervised dataset: paired feature and target matrices with one
/// sample per row.
///
/// # Example
///
/// ```
/// use ppdl_nn::{Dataset, Matrix};
///
/// let x = Matrix::from_fn(10, 3, |r, c| (r + c) as f64);
/// let y = Matrix::from_fn(10, 1, |r, _| r as f64);
/// let data = Dataset::new(x, y).unwrap();
/// let (train, test) = data.split(0.8).unwrap();
/// assert_eq!(train.len(), 8);
/// assert_eq!(test.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct Dataset {
    x: Matrix,
    y: Matrix,
}

impl Dataset {
    /// Pairs features with targets.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the row counts differ, or
    /// [`NnError::EmptyDataset`] if there are no samples.
    pub fn new(x: Matrix, y: Matrix) -> crate::Result<Self> {
        if x.rows() != y.rows() {
            return Err(NnError::ShapeMismatch {
                detail: format!("{} feature rows vs {} target rows", x.rows(), y.rows()),
            });
        }
        if x.rows() == 0 {
            return Err(NnError::EmptyDataset);
        }
        Ok(Self { x, y })
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.x.rows()
    }

    /// Whether the dataset is empty (never true for a constructed
    /// dataset, but part of the conventional API pair with `len`).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.x.rows() == 0
    }

    /// The feature matrix.
    #[must_use]
    pub fn x(&self) -> &Matrix {
        &self.x
    }

    /// The target matrix.
    #[must_use]
    pub fn y(&self) -> &Matrix {
        &self.y
    }

    /// Returns a copy with rows shuffled by the seeded permutation.
    #[must_use]
    pub fn shuffled(&self, seed: u64) -> Self {
        let mut idx: Vec<usize> = (0..self.len()).collect();
        idx.shuffle(&mut StdRng::seed_from_u64(seed));
        Self {
            x: self.x.gather_rows(&idx),
            y: self.y.gather_rows(&idx),
        }
    }

    /// Splits into `(first, second)` at `fraction` of the samples
    /// (first gets `ceil(fraction * len)`, at least 1 and at most
    /// `len - 1` so both halves are non-empty).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if `fraction` is not in
    /// `(0, 1)` or the dataset has fewer than 2 samples.
    pub fn split(&self, fraction: f64) -> crate::Result<(Dataset, Dataset)> {
        if !(fraction > 0.0 && fraction < 1.0) {
            return Err(NnError::InvalidConfig {
                detail: format!("split fraction {fraction} outside (0, 1)"),
            });
        }
        if self.len() < 2 {
            return Err(NnError::InvalidConfig {
                detail: "cannot split a dataset with fewer than 2 samples".into(),
            });
        }
        let cut = ((fraction * self.len() as f64).ceil() as usize).clamp(1, self.len() - 1);
        Ok((
            Dataset {
                x: self.x.slice_rows(0, cut),
                y: self.y.slice_rows(0, cut),
            },
            Dataset {
                x: self.x.slice_rows(cut, self.len()),
                y: self.y.slice_rows(cut, self.len()),
            },
        ))
    }

    /// Iterates over `(x_batch, y_batch)` chunks of up to `batch_size`
    /// rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if `batch_size == 0`.
    pub fn batches(&self, batch_size: usize) -> impl Iterator<Item = (Matrix, Matrix)> + '_ {
        assert!(batch_size > 0, "batch size must be positive");
        let n = self.len();
        (0..n.div_ceil(batch_size)).map(move |k| {
            let lo = k * batch_size;
            let hi = (lo + batch_size).min(n);
            (self.x.slice_rows(lo, hi), self.y.slice_rows(lo, hi))
        })
    }
}

/// Per-column standardisation to zero mean / unit variance, the
/// preprocessing the width regressor applies to `(X, Y, Id)` features
/// whose raw scales differ by orders of magnitude.
#[derive(Debug, Clone, PartialEq)]
pub struct StandardScaler {
    means: Vec<f64>,
    stds: Vec<f64>,
}

impl StandardScaler {
    /// Fits the scaler to the columns of `data`. Constant columns get a
    /// standard deviation of 1 so transforming them is a no-op shift.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::EmptyDataset`] for an empty matrix.
    pub fn fit(data: &Matrix) -> crate::Result<Self> {
        if data.rows() == 0 || data.cols() == 0 {
            return Err(NnError::EmptyDataset);
        }
        let n = data.rows() as f64;
        let mut means = vec![0.0; data.cols()];
        for r in 0..data.rows() {
            for (m, v) in means.iter_mut().zip(data.row(r)) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let mut vars = vec![0.0; data.cols()];
        for r in 0..data.rows() {
            for ((var, v), m) in vars.iter_mut().zip(data.row(r)).zip(&means) {
                *var += (v - m) * (v - m);
            }
        }
        let stds = vars
            .into_iter()
            .map(|v| {
                let s = (v / n).sqrt();
                if s > 0.0 {
                    s
                } else {
                    1.0
                }
            })
            .collect();
        Ok(Self { means, stds })
    }

    /// Rebuilds a scaler from persisted parameters.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if lengths differ, or
    /// [`NnError::InvalidConfig`] for a non-positive or non-finite
    /// standard deviation.
    pub fn from_parts(means: Vec<f64>, stds: Vec<f64>) -> crate::Result<Self> {
        if means.len() != stds.len() {
            return Err(NnError::ShapeMismatch {
                detail: format!("{} means vs {} stds", means.len(), stds.len()),
            });
        }
        if let Some(s) = stds.iter().find(|s| !(s.is_finite() && **s > 0.0)) {
            return Err(NnError::InvalidConfig {
                detail: format!("standard deviation {s} must be positive"),
            });
        }
        Ok(Self { means, stds })
    }

    /// Per-column means.
    #[must_use]
    pub fn means(&self) -> &[f64] {
        &self.means
    }

    /// Per-column standard deviations.
    #[must_use]
    pub fn stds(&self) -> &[f64] {
        &self.stds
    }

    /// Standardises `data` column-wise: `(v - mean) / std`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the column count differs
    /// from the fitted one.
    pub fn transform(&self, data: &Matrix) -> crate::Result<Matrix> {
        if data.cols() != self.means.len() {
            return Err(NnError::ShapeMismatch {
                detail: format!(
                    "scaler fitted on {} columns, input has {}",
                    self.means.len(),
                    data.cols()
                ),
            });
        }
        let mut out = data.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for ((v, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
                *v = (*v - m) / s;
            }
        }
        Ok(out)
    }

    /// Inverts [`transform`](Self::transform).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] on column-count mismatch.
    pub fn inverse_transform(&self, data: &Matrix) -> crate::Result<Matrix> {
        if data.cols() != self.means.len() {
            return Err(NnError::ShapeMismatch {
                detail: format!(
                    "scaler fitted on {} columns, input has {}",
                    self.means.len(),
                    data.cols()
                ),
            });
        }
        let mut out = data.clone();
        for r in 0..out.rows() {
            let row = out.row_mut(r);
            for ((v, m), s) in row.iter_mut().zip(&self.means).zip(&self.stds) {
                *v = *v * s + m;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Dataset {
        let x = Matrix::from_fn(10, 2, |r, c| (r * 2 + c) as f64);
        let y = Matrix::from_fn(10, 1, |r, _| r as f64 * 10.0);
        Dataset::new(x, y).unwrap()
    }

    #[test]
    fn construction_validates() {
        let x = Matrix::zeros(3, 2);
        let y = Matrix::zeros(4, 1);
        assert!(Dataset::new(x, y).is_err());
        assert!(matches!(
            Dataset::new(Matrix::zeros(0, 2), Matrix::zeros(0, 1)),
            Err(NnError::EmptyDataset)
        ));
    }

    #[test]
    fn shuffle_is_permutation_and_keeps_pairs() {
        let d = data();
        let s = d.shuffled(5);
        assert_eq!(s.len(), d.len());
        // Pairing preserved: y = 5 * x[0] for this construction.
        for r in 0..s.len() {
            assert_eq!(s.y().get(r, 0), s.x().get(r, 0) * 5.0);
        }
        // Same seed gives same order; different seeds differ.
        assert_eq!(s.x(), d.shuffled(5).x());
        assert_ne!(s.x(), d.shuffled(6).x());
    }

    #[test]
    fn split_sizes() {
        let d = data();
        let (a, b) = d.split(0.7).unwrap();
        assert_eq!(a.len(), 7);
        assert_eq!(b.len(), 3);
        assert!(d.split(0.0).is_err());
        assert!(d.split(1.0).is_err());
        // Extreme fraction still leaves both halves non-empty.
        let (a, b) = d.split(0.999).unwrap();
        assert_eq!(a.len(), 9);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn batches_cover_everything_once() {
        let d = data();
        let mut rows = 0;
        for (xb, yb) in d.batches(3) {
            assert_eq!(xb.rows(), yb.rows());
            rows += xb.rows();
        }
        assert_eq!(rows, 10);
        assert_eq!(d.batches(3).count(), 4);
        assert_eq!(d.batches(100).count(), 1);
    }

    #[test]
    fn scaler_standardises() {
        let d = data();
        let sc = StandardScaler::fit(d.x()).unwrap();
        let t = sc.transform(d.x()).unwrap();
        // Each column now has ~zero mean and unit variance.
        for c in 0..t.cols() {
            let col: Vec<f64> = (0..t.rows()).map(|r| t.get(r, c)).collect();
            let mean: f64 = col.iter().sum::<f64>() / col.len() as f64;
            let var: f64 =
                col.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / col.len() as f64;
            assert!(mean.abs() < 1e-12);
            assert!((var - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn scaler_round_trips() {
        let d = data();
        let sc = StandardScaler::fit(d.x()).unwrap();
        let t = sc.transform(d.x()).unwrap();
        let back = sc.inverse_transform(&t).unwrap();
        for (a, b) in back.as_slice().iter().zip(d.x().as_slice()) {
            assert!((a - b).abs() < 1e-10);
        }
    }

    #[test]
    fn scaler_constant_column_safe() {
        let x = Matrix::from_fn(5, 1, |_, _| 7.0);
        let sc = StandardScaler::fit(&x).unwrap();
        let t = sc.transform(&x).unwrap();
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn scaler_shape_mismatch() {
        let sc = StandardScaler::fit(&Matrix::zeros(3, 2)).unwrap();
        assert!(sc.transform(&Matrix::zeros(3, 3)).is_err());
        assert!(sc.inverse_transform(&Matrix::zeros(3, 1)).is_err());
        assert!(StandardScaler::fit(&Matrix::zeros(0, 2)).is_err());
    }
}

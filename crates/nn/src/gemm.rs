//! Cache-blocked, register-tiled GEMM microkernels.
//!
//! This is the blessed home of every dense triple loop in `ppdl-nn`
//! (the `perf/scalar-matmul` lint steers new code here). All three
//! [`Matrix`](crate::Matrix) products route through this module, plus
//! the bias-seeded variant the im2col convolution path uses.
//!
//! # The fixed-order reduction contract
//!
//! Every kernel computes each output element as **one accumulator
//! folded in ascending-`k` order** (except the documented
//! [`unrolled_dot`] tail of `gemm_nt`, which keeps the historical
//! 4-accumulator association). Register tiling only changes *which*
//! elements are in flight simultaneously — never the association of any
//! single element's sum — and the parallel split over row blocks is a
//! pure partition of output rows. Both properties together make the
//! results bitwise identical to the pre-tiling scalar loops (for finite
//! inputs) and bitwise identical across thread counts, which the
//! committed golden-model tests rely on.
//!
//! Tiling scheme: `MR×NR = 4×8` register tiles over a B panel packed
//! contiguously per `NR`-column strip (`gemm_nn` / `gemm_tn`), or
//! `4×4` tiles straight out of row-major B (`gemm_nt`, where B's rows
//! are already contiguous along `k`). One A element is broadcast
//! against an NR-wide B row per step, so the fixed-size inner loops
//! autovectorize without any unsafe code.

use ppdl_solver::parallel::par_row_chunks_mut;

/// Rows per register tile.
const MR: usize = 4;
/// Columns per register tile (one 64-byte cache line of `f64`).
const NR: usize = 8;

/// Telemetry for one kernel call (no-op unless collection is on).
fn record_gemm(kind: &'static str, m: usize, k: usize, n: usize) {
    if !ppdl_obs::enabled() {
        return;
    }
    let reg = ppdl_obs::global();
    reg.counter(kind).inc();
    reg.counter("nn/gemm/fmas").add((m * k * n) as u64);
}

/// Packs columns `[j, j+jw)` of the row-major `kdim×ldb` matrix `b`
/// into a contiguous `kdim×jw` panel so the microkernel streams it
/// linearly.
fn pack_panel(b: &[f64], ldb: usize, kdim: usize, j: usize, jw: usize, panel: &mut Vec<f64>) {
    panel.clear();
    for kk in 0..kdim {
        let base = kk * ldb + j;
        panel.extend_from_slice(&b[base..base + jw]);
    }
}

/// `out = A·B` where `a` is `m×kdim` and `b` is `kdim×n`, both
/// row-major. Each element is a serial ascending-`k` sum — bitwise
/// equal to the textbook loop for finite inputs.
pub(crate) fn gemm_nn(m: usize, kdim: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * kdim);
    debug_assert_eq!(b.len(), kdim * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    record_gemm("nn/gemm/nn", m, kdim, n);
    par_row_chunks_mut(out, n, |i0, chunk| {
        let rows = chunk.len() / n;
        let mut panel = Vec::new();
        let mut j = 0;
        while j < n {
            let jw = (n - j).min(NR);
            pack_panel(b, n, kdim, j, jw, &mut panel);
            let mut i = 0;
            while i < rows {
                let iw = (rows - i).min(MR);
                if jw == NR {
                    // Two 4-wide half-tiles, each swept over all of k
                    // in turn: a 4×8 f64 accumulator block needs 16
                    // vector registers and spills on baseline x86-64;
                    // 4×4 fits. Each element still folds one serial
                    // ascending-k accumulator.
                    for half in 0..2 {
                        let off = half * (NR / 2);
                        let mut acc = [[0.0_f64; NR / 2]; MR];
                        for kk in 0..kdim {
                            let prow = &panel[kk * NR + off..kk * NR + off + NR / 2];
                            for (r, acc_r) in acc.iter_mut().enumerate().take(iw) {
                                let ar = a[(i0 + i + r) * kdim + kk];
                                for t in 0..NR / 2 {
                                    acc_r[t] += ar * prow[t];
                                }
                            }
                        }
                        for (r, acc_r) in acc.iter().enumerate().take(iw) {
                            let base = (i + r) * n + j + off;
                            chunk[base..base + NR / 2].copy_from_slice(acc_r);
                        }
                    }
                } else {
                    let mut acc = [[0.0_f64; NR]; MR];
                    for kk in 0..kdim {
                        let prow = &panel[kk * jw..kk * jw + jw];
                        for (r, acc_r) in acc.iter_mut().enumerate().take(iw) {
                            let ar = a[(i0 + i + r) * kdim + kk];
                            for t in 0..jw {
                                acc_r[t] += ar * prow[t];
                            }
                        }
                    }
                    for (r, acc_r) in acc.iter().enumerate().take(iw) {
                        let base = (i + r) * n + j;
                        chunk[base..base + jw].copy_from_slice(&acc_r[..jw]);
                    }
                }
                i += iw;
            }
            j += jw;
        }
    });
}

/// `out = A·Bᵀ` where `a` is `m×kdim` and `b` is `n×kdim`, both
/// row-major. Complete 4-column blocks use serial ascending-`k`
/// accumulators; the `n % 4` tail columns use [`unrolled_dot`] — the
/// exact association of the historical inference kernel, preserved so
/// committed golden predictions stay bitwise stable.
pub(crate) fn gemm_nt(m: usize, kdim: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), m * kdim);
    debug_assert_eq!(b.len(), n * kdim);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    record_gemm("nn/gemm/nt", m, kdim, n);
    let jmain = n / 4 * 4;
    par_row_chunks_mut(out, n, |i0, chunk| {
        let rows = chunk.len() / n;
        let mut i = 0;
        while i < rows {
            let iw = (rows - i).min(MR);
            let mut j = 0;
            while j < jmain {
                // iw×4 register tile: four B rows stream once and feed
                // every A row in the tile.
                let mut acc = [[0.0_f64; 4]; MR];
                let b0 = &b[j * kdim..(j + 1) * kdim];
                let b1 = &b[(j + 1) * kdim..(j + 2) * kdim];
                let b2 = &b[(j + 2) * kdim..(j + 3) * kdim];
                let b3 = &b[(j + 3) * kdim..(j + 4) * kdim];
                for kk in 0..kdim {
                    let (v0, v1, v2, v3) = (b0[kk], b1[kk], b2[kk], b3[kk]);
                    for (r, acc_r) in acc.iter_mut().enumerate().take(iw) {
                        let ar = a[(i0 + i + r) * kdim + kk];
                        acc_r[0] += ar * v0;
                        acc_r[1] += ar * v1;
                        acc_r[2] += ar * v2;
                        acc_r[3] += ar * v3;
                    }
                }
                for (r, acc_r) in acc.iter().enumerate().take(iw) {
                    let base = (i + r) * n + j;
                    chunk[base..base + 4].copy_from_slice(acc_r);
                }
                j += 4;
            }
            for jj in jmain..n {
                let brow = &b[jj * kdim..(jj + 1) * kdim];
                for r in 0..iw {
                    let arow = &a[(i0 + i + r) * kdim..(i0 + i + r + 1) * kdim];
                    chunk[(i + r) * n + jj] = unrolled_dot(arow, brow);
                }
            }
            i += iw;
        }
    });
}

/// `out = Aᵀ·B` where `a` is `kdim×m` and `b` is `kdim×n`, both
/// row-major. Each element is a serial ascending-`k` sum over A's rows
/// — bitwise equal to the historical k-outer scatter loop for finite
/// inputs.
pub(crate) fn gemm_tn(m: usize, kdim: usize, n: usize, a: &[f64], b: &[f64], out: &mut [f64]) {
    debug_assert_eq!(a.len(), kdim * m);
    debug_assert_eq!(b.len(), kdim * n);
    debug_assert_eq!(out.len(), m * n);
    if m == 0 || n == 0 {
        return;
    }
    record_gemm("nn/gemm/tn", m, kdim, n);
    par_row_chunks_mut(out, n, |i0, chunk| {
        let rows = chunk.len() / n;
        let mut panel = Vec::new();
        let mut j = 0;
        while j < n {
            let jw = (n - j).min(NR);
            pack_panel(b, n, kdim, j, jw, &mut panel);
            let mut i = 0;
            while i < rows {
                let iw = (rows - i).min(MR);
                if jw == NR {
                    // Same two-half-tile split as gemm_nn: 4×4
                    // accumulators fit the register file, 4×8 spills.
                    // Per-element association is untouched.
                    for half in 0..2 {
                        let off = half * (NR / 2);
                        let mut acc = [[0.0_f64; NR / 2]; MR];
                        for kk in 0..kdim {
                            let prow = &panel[kk * NR + off..kk * NR + off + NR / 2];
                            for (r, acc_r) in acc.iter_mut().enumerate().take(iw) {
                                let ar = a[kk * m + i0 + i + r];
                                for t in 0..NR / 2 {
                                    acc_r[t] += ar * prow[t];
                                }
                            }
                        }
                        for (r, acc_r) in acc.iter().enumerate().take(iw) {
                            let base = (i + r) * n + j + off;
                            chunk[base..base + NR / 2].copy_from_slice(acc_r);
                        }
                    }
                } else {
                    let mut acc = [[0.0_f64; NR]; MR];
                    for kk in 0..kdim {
                        let prow = &panel[kk * jw..kk * jw + jw];
                        for (r, acc_r) in acc.iter_mut().enumerate().take(iw) {
                            let ar = a[kk * m + i0 + i + r];
                            for t in 0..jw {
                                acc_r[t] += ar * prow[t];
                            }
                        }
                    }
                    for (r, acc_r) in acc.iter().enumerate().take(iw) {
                        let base = (i + r) * n + j;
                        chunk[base..base + jw].copy_from_slice(&acc_r[..jw]);
                    }
                }
                i += iw;
            }
            j += jw;
        }
    });
}

/// `out[i][j] = bias[i] + Σₖ a[i][k]·b[j][k]` with **every** element a
/// serial ascending-`k` sum seeded from the bias — the association the
/// direct convolution loop uses, so the im2col path reproduces it
/// bitwise (padding contributes `+0.0` terms, which cannot change a
/// finite accumulation). Sequential on purpose: the minibatch engine
/// already parallelizes over the samples that call this.
pub(crate) fn gemm_nt_bias_rows(
    m: usize,
    kdim: usize,
    n: usize,
    a: &[f64],
    b: &[f64],
    bias: &[f64],
    out: &mut [f64],
) {
    debug_assert_eq!(a.len(), m * kdim);
    debug_assert_eq!(b.len(), n * kdim);
    debug_assert_eq!(bias.len(), m);
    debug_assert_eq!(out.len(), m * n);
    record_gemm("nn/gemm/nt_bias", m, kdim, n);
    for i in 0..m {
        let arow = &a[i * kdim..(i + 1) * kdim];
        let orow = &mut out[i * n..(i + 1) * n];
        let seed = bias[i];
        let mut j = 0;
        while j + 4 <= n {
            let mut acc = [seed; 4];
            let b0 = &b[j * kdim..(j + 1) * kdim];
            let b1 = &b[(j + 1) * kdim..(j + 2) * kdim];
            let b2 = &b[(j + 2) * kdim..(j + 3) * kdim];
            let b3 = &b[(j + 3) * kdim..(j + 4) * kdim];
            for (kk, &ak) in arow.iter().enumerate() {
                acc[0] += ak * b0[kk];
                acc[1] += ak * b1[kk];
                acc[2] += ak * b2[kk];
                acc[3] += ak * b3[kk];
            }
            orow[j..j + 4].copy_from_slice(&acc);
            j += 4;
        }
        while j < n {
            let brow = &b[j * kdim..(j + 1) * kdim];
            let mut acc = seed;
            for (kk, &ak) in arow.iter().enumerate() {
                acc += ak * brow[kk];
            }
            orow[j] = acc;
            j += 1;
        }
    }
}

/// Dot product with four independent accumulators, breaking the serial
/// addition dependency so the inference-critical `x · Wᵀ` tail columns
/// vectorise. (Changes summation order, which is fine at f64 for the
/// well-conditioned sums a forward pass produces — and the association
/// is frozen: golden predictions depend on it.)
pub(crate) fn unrolled_dot(a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let chunks = n / 4 * 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
    let mut i = 0;
    while i < chunks {
        s0 += a[i] * b[i];
        s1 += a[i + 1] * b[i + 1];
        s2 += a[i + 2] * b[i + 2];
        s3 += a[i + 3] * b[i + 3];
        i += 4;
    }
    let mut tail = 0.0;
    while i < n {
        tail += a[i] * b[i];
        i += 1;
    }
    (s0 + s1) + (s2 + s3) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fill(rows: usize, cols: usize, salt: u64) -> Vec<f64> {
        (0..rows * cols)
            .map(|i| {
                let h = (i as u64)
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(salt);
                ((h >> 33) % 2000) as f64 / 997.0 - 1.0
            })
            .collect()
    }

    /// Pre-tiling reference: per-element serial ascending-k (what the
    /// old ikj loop computed for finite data).
    fn ref_nn(m: usize, k: usize, n: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for kk in 0..k {
                    acc += a[i * k + kk] * b[kk * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        out
    }

    /// Pre-tiling reference for A·Bᵀ: the historical hybrid (serial
    /// 4-column blocks, unrolled_dot tail).
    fn ref_nt(m: usize, k: usize, n: usize, a: &[f64], b: &[f64]) -> Vec<f64> {
        let mut out = vec![0.0; m * n];
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let mut j = 0;
            while j + 4 <= n {
                let (mut s0, mut s1, mut s2, mut s3) = (0.0, 0.0, 0.0, 0.0);
                for kk in 0..k {
                    let av = arow[kk];
                    s0 += av * b[j * k + kk];
                    s1 += av * b[(j + 1) * k + kk];
                    s2 += av * b[(j + 2) * k + kk];
                    s3 += av * b[(j + 3) * k + kk];
                }
                out[i * n + j] = s0;
                out[i * n + j + 1] = s1;
                out[i * n + j + 2] = s2;
                out[i * n + j + 3] = s3;
                j += 4;
            }
            while j < n {
                out[i * n + j] = unrolled_dot(arow, &b[j * k..(j + 1) * k]);
                j += 1;
            }
        }
        out
    }

    fn bits(v: &[f64]) -> Vec<u64> {
        v.iter().map(|x| x.to_bits()).collect()
    }

    #[test]
    fn tiled_nn_is_bitwise_equal_to_reference() {
        for (m, k, n) in [(1, 1, 1), (5, 7, 9), (13, 3, 17), (8, 16, 8), (9, 24, 33)] {
            let a = fill(m, k, 1);
            let b = fill(k, n, 2);
            let mut out = vec![0.0; m * n];
            gemm_nn(m, k, n, &a, &b, &mut out);
            assert_eq!(bits(&out), bits(&ref_nn(m, k, n, &a, &b)), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn tiled_nt_is_bitwise_equal_to_reference() {
        for (m, k, n) in [(1, 1, 1), (5, 7, 9), (13, 3, 17), (6, 24, 11), (9, 32, 4)] {
            let a = fill(m, k, 3);
            let b = fill(n, k, 4);
            let mut out = vec![0.0; m * n];
            gemm_nt(m, k, n, &a, &b, &mut out);
            assert_eq!(bits(&out), bits(&ref_nt(m, k, n, &a, &b)), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn tiled_tn_is_bitwise_equal_to_reference() {
        for (m, k, n) in [(1, 1, 1), (5, 7, 9), (17, 13, 3), (8, 40, 12)] {
            // a is k×m here; the reference transposes explicitly.
            let a = fill(k, m, 5);
            let b = fill(k, n, 6);
            let mut at = vec![0.0; m * k];
            for r in 0..k {
                for c in 0..m {
                    at[c * k + r] = a[r * m + c];
                }
            }
            let mut out = vec![0.0; m * n];
            gemm_tn(m, k, n, &a, &b, &mut out);
            assert_eq!(bits(&out), bits(&ref_nn(m, k, n, &at, &b)), "{m}x{k}x{n}");
        }
    }

    #[test]
    fn bias_rows_matches_seeded_serial_sum() {
        let (m, k, n) = (3, 10, 13);
        let a = fill(m, k, 7);
        let b = fill(n, k, 8);
        let bias = [0.5, -1.25, 0.0];
        let mut out = vec![0.0; m * n];
        gemm_nt_bias_rows(m, k, n, &a, &b, &bias, &mut out);
        for i in 0..m {
            for j in 0..n {
                let mut acc = bias[i];
                for kk in 0..k {
                    acc += a[i * k + kk] * b[j * k + kk];
                }
                assert_eq!(out[i * n + j].to_bits(), acc.to_bits(), "({i},{j})");
            }
        }
    }

    #[test]
    fn zero_k_yields_zero_product() {
        let mut out = vec![1.0; 6];
        gemm_nn(2, 0, 3, &[], &[], &mut out);
        assert_eq!(out, vec![0.0; 6]);
    }

    /// The tentpole determinism contract: tiled GEMM output is bitwise
    /// identical at 1 and 4 threads on matrices large enough to take
    /// the parallel row-block path (same shape as the conv determinism
    /// tests).
    #[test]
    fn tiled_gemm_is_bitwise_deterministic_across_thread_counts() {
        let (m, k, n) = (96, 48, 80); // out 96×80 = 7680 > par threshold
        let a = fill(m, k, 11);
        let bn = fill(k, n, 12);
        let bt = fill(n, k, 13);
        let at = fill(k, m, 14);
        let run = || {
            let mut nn = vec![0.0; m * n];
            gemm_nn(m, k, n, &a, &bn, &mut nn);
            let mut nt = vec![0.0; m * n];
            gemm_nt(m, k, n, &a, &bt, &mut nt);
            let mut tn = vec![0.0; m * n];
            gemm_tn(m, k, n, &at, &bn, &mut tn);
            (bits(&nn), bits(&nt), bits(&tn))
        };
        ppdl_solver::set_threads(1);
        let r1 = run();
        ppdl_solver::set_threads(4);
        let r4 = run();
        ppdl_solver::set_threads(0);
        assert_eq!(r1, r4, "tiled GEMM must not depend on thread count");
    }
}

use crate::{Matrix, NnError};

/// Regression loss functions.
///
/// The paper minimises the mean-squared error (its eq. 10); MAE and
/// Huber are provided for robustness experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Loss {
    /// Mean squared error `(1/n) Σ (y − ŷ)²`.
    Mse,
    /// Mean absolute error.
    Mae,
    /// Huber loss with transition point `delta`.
    Huber(f64),
}

impl Loss {
    /// Loss value averaged over all elements of the batch.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if shapes differ, or
    /// [`NnError::EmptyDataset`] for empty matrices.
    pub fn value(self, prediction: &Matrix, target: &Matrix) -> crate::Result<f64> {
        check(prediction, target)?;
        let n = (prediction.rows() * prediction.cols()) as f64;
        let sum: f64 = prediction
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(p, t)| self.pointwise(p - t))
            .sum();
        Ok(sum / n)
    }

    /// Gradient of the loss with respect to the prediction, same shape
    /// as the inputs, already divided by the element count.
    ///
    /// # Errors
    ///
    /// Same conditions as [`value`](Self::value).
    pub fn gradient(self, prediction: &Matrix, target: &Matrix) -> crate::Result<Matrix> {
        check(prediction, target)?;
        let n = (prediction.rows() * prediction.cols()) as f64;
        let data: Vec<f64> = prediction
            .as_slice()
            .iter()
            .zip(target.as_slice())
            .map(|(p, t)| self.pointwise_grad(p - t) / n)
            .collect();
        Matrix::from_vec(prediction.rows(), prediction.cols(), data)
    }

    fn pointwise(self, e: f64) -> f64 {
        match self {
            Loss::Mse => e * e,
            Loss::Mae => e.abs(),
            Loss::Huber(delta) => {
                if e.abs() <= delta {
                    0.5 * e * e
                } else {
                    delta * (e.abs() - 0.5 * delta)
                }
            }
        }
    }

    fn pointwise_grad(self, e: f64) -> f64 {
        match self {
            Loss::Mse => 2.0 * e,
            // Subgradient choice: 0 at the kink, so an exact prediction
            // produces a zero update.
            Loss::Mae => {
                if e == 0.0 {
                    0.0
                } else {
                    e.signum()
                }
            }
            Loss::Huber(delta) => {
                if e.abs() <= delta {
                    e
                } else {
                    delta * e.signum()
                }
            }
        }
    }

    /// Short stable name for reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Loss::Mse => "mse",
            Loss::Mae => "mae",
            Loss::Huber(_) => "huber",
        }
    }
}

fn check(p: &Matrix, t: &Matrix) -> crate::Result<()> {
    if p.shape() != t.shape() {
        return Err(NnError::ShapeMismatch {
            detail: format!("loss: prediction {:?} vs target {:?}", p.shape(), t.shape()),
        });
    }
    if p.rows() == 0 || p.cols() == 0 {
        return Err(NnError::EmptyDataset);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (Matrix, Matrix) {
        (
            Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap(),
            Matrix::from_rows(&[&[1.5, 2.0], &[2.0, 4.0]]).unwrap(),
        )
    }

    #[test]
    fn mse_value() {
        let (p, t) = pair();
        // errors: -0.5, 0, 1, 0 -> (0.25 + 1) / 4
        assert!((Loss::Mse.value(&p, &t).unwrap() - 0.3125).abs() < 1e-12);
    }

    #[test]
    fn mae_value() {
        let (p, t) = pair();
        assert!((Loss::Mae.value(&p, &t).unwrap() - 0.375).abs() < 1e-12);
    }

    #[test]
    fn huber_interpolates() {
        let (p, t) = pair();
        // delta large -> quadratic/2; delta tiny -> ~delta * |e|.
        let big = Loss::Huber(10.0).value(&p, &t).unwrap();
        assert!((big - 0.5 * 0.3125).abs() < 1e-12);
        let small = Loss::Huber(1e-9).value(&p, &t).unwrap();
        assert!(small < 1e-8);
    }

    #[test]
    fn zero_loss_at_exact_prediction() {
        let (p, _) = pair();
        for loss in [Loss::Mse, Loss::Mae, Loss::Huber(1.0)] {
            assert_eq!(loss.value(&p, &p).unwrap(), 0.0);
            let g = loss.gradient(&p, &p).unwrap();
            assert!(g.as_slice().iter().all(|&v| v == 0.0));
        }
    }

    #[test]
    fn gradient_matches_finite_difference() {
        let (mut p, t) = pair();
        let h = 1e-6;
        for loss in [Loss::Mse, Loss::Huber(0.4)] {
            let g = loss.gradient(&p, &t).unwrap();
            for r in 0..2 {
                for c in 0..2 {
                    let orig = p.get(r, c);
                    p.set(r, c, orig + h);
                    let up = loss.value(&p, &t).unwrap();
                    p.set(r, c, orig - h);
                    let down = loss.value(&p, &t).unwrap();
                    p.set(r, c, orig);
                    let fd = (up - down) / (2.0 * h);
                    assert!(
                        (fd - g.get(r, c)).abs() < 1e-5,
                        "{}: fd {fd} vs {g:?}",
                        loss.name()
                    );
                }
            }
        }
    }

    #[test]
    fn shape_mismatch_rejected() {
        let p = Matrix::zeros(2, 2);
        let t = Matrix::zeros(2, 3);
        assert!(Loss::Mse.value(&p, &t).is_err());
        assert!(Loss::Mse.gradient(&p, &t).is_err());
    }

    #[test]
    fn empty_rejected() {
        let p = Matrix::zeros(0, 2);
        assert!(matches!(
            Loss::Mse.value(&p, &p),
            Err(NnError::EmptyDataset)
        ));
    }
}

//! Regression quality metrics.
//!
//! The paper evaluates its model with the mean squared error (eq. 10)
//! and the r² score ("coefficient of determination", Definition 1).
//! These free functions operate on prediction/target matrices with one
//! sample per row; multi-output targets are averaged uniformly.

use crate::{Matrix, NnError};

fn check(p: &Matrix, t: &Matrix) -> crate::Result<()> {
    if p.shape() != t.shape() {
        return Err(NnError::ShapeMismatch {
            detail: format!("metrics: {:?} vs {:?}", p.shape(), t.shape()),
        });
    }
    if p.rows() == 0 || p.cols() == 0 {
        return Err(NnError::EmptyDataset);
    }
    Ok(())
}

/// Mean squared error over all elements (the paper's eq. 10).
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] or [`NnError::EmptyDataset`].
///
/// # Example
///
/// ```
/// use ppdl_nn::{metrics, Matrix};
///
/// let p = Matrix::from_rows(&[&[1.0], &[2.0]]).unwrap();
/// let t = Matrix::from_rows(&[&[0.0], &[4.0]]).unwrap();
/// assert_eq!(metrics::mse(&p, &t).unwrap(), 2.5);
/// ```
pub fn mse(prediction: &Matrix, target: &Matrix) -> crate::Result<f64> {
    check(prediction, target)?;
    let n = (prediction.rows() * prediction.cols()) as f64;
    Ok(prediction
        .as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / n)
}

/// Mean absolute error over all elements.
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] or [`NnError::EmptyDataset`].
pub fn mae(prediction: &Matrix, target: &Matrix) -> crate::Result<f64> {
    check(prediction, target)?;
    let n = (prediction.rows() * prediction.cols()) as f64;
    Ok(prediction
        .as_slice()
        .iter()
        .zip(target.as_slice())
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / n)
}

/// The r² score (coefficient of determination, Definition 1 of the
/// paper): `1 − SS_res / SS_tot`, averaged uniformly over output
/// columns. A value of 1 is a perfect fit; 0 matches the constant-mean
/// predictor; negative is worse than that. A constant target column
/// contributes 1 if predicted exactly, else 0 (scikit-learn
/// convention).
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] or [`NnError::EmptyDataset`].
pub fn r2_score(prediction: &Matrix, target: &Matrix) -> crate::Result<f64> {
    check(prediction, target)?;
    let rows = target.rows();
    let mut total = 0.0;
    for c in 0..target.cols() {
        let mean: f64 = (0..rows).map(|r| target.get(r, c)).sum::<f64>() / rows as f64;
        let ss_tot: f64 = (0..rows).map(|r| (target.get(r, c) - mean).powi(2)).sum();
        let ss_res: f64 = (0..rows)
            .map(|r| (target.get(r, c) - prediction.get(r, c)).powi(2))
            .sum();
        total += if ss_tot > 0.0 {
            1.0 - ss_res / ss_tot
        } else if ss_res == 0.0 {
            1.0
        } else {
            0.0
        };
    }
    Ok(total / target.cols() as f64)
}

/// Pearson correlation coefficient between flattened prediction and
/// target (the Fig. 7(a) scatter statistic).
///
/// # Errors
///
/// Returns [`NnError::ShapeMismatch`] or [`NnError::EmptyDataset`].
pub fn pearson(prediction: &Matrix, target: &Matrix) -> crate::Result<f64> {
    check(prediction, target)?;
    let p = prediction.as_slice();
    let t = target.as_slice();
    let n = p.len() as f64;
    let mp = p.iter().sum::<f64>() / n;
    let mt = t.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vp = 0.0;
    let mut vt = 0.0;
    for (a, b) in p.iter().zip(t) {
        cov += (a - mp) * (b - mt);
        vp += (a - mp) * (a - mp);
        vt += (b - mt) * (b - mt);
    }
    if vp == 0.0 || vt == 0.0 {
        return Ok(0.0);
    }
    Ok(cov / (vp.sqrt() * vt.sqrt()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_mae_basic() {
        let p = Matrix::from_rows(&[&[1.0, 2.0]]).unwrap();
        let t = Matrix::from_rows(&[&[2.0, 4.0]]).unwrap();
        assert_eq!(mse(&p, &t).unwrap(), 2.5);
        assert_eq!(mae(&p, &t).unwrap(), 1.5);
    }

    #[test]
    fn perfect_prediction() {
        let t = Matrix::from_fn(6, 2, |r, c| (r * 2 + c) as f64);
        assert_eq!(mse(&t, &t).unwrap(), 0.0);
        assert_eq!(r2_score(&t, &t).unwrap(), 1.0);
        assert!((pearson(&t, &t).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r2_of_mean_predictor_is_zero() {
        let t = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]).unwrap();
        let p = Matrix::from_fn(3, 1, |_, _| 2.0);
        assert!(r2_score(&p, &t).unwrap().abs() < 1e-12);
    }

    #[test]
    fn r2_negative_for_bad_predictor() {
        let t = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]).unwrap();
        let p = Matrix::from_rows(&[&[10.0], &[-5.0], &[8.0]]).unwrap();
        assert!(r2_score(&p, &t).unwrap() < 0.0);
    }

    #[test]
    fn r2_constant_target_convention() {
        let t = Matrix::from_fn(4, 1, |_, _| 5.0);
        assert_eq!(r2_score(&t, &t).unwrap(), 1.0);
        let p = Matrix::from_fn(4, 1, |_, _| 4.0);
        assert_eq!(r2_score(&p, &t).unwrap(), 0.0);
    }

    #[test]
    fn r2_multi_output_averages() {
        // Column 0 predicted exactly (r2=1), column 1 with mean (r2=0).
        let t = Matrix::from_rows(&[&[1.0, 1.0], &[2.0, 2.0], &[3.0, 3.0]]).unwrap();
        let p = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 2.0], &[3.0, 2.0]]).unwrap();
        assert!((r2_score(&p, &t).unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pearson_sign_and_invariance() {
        let t = Matrix::from_rows(&[&[1.0], &[2.0], &[3.0]]).unwrap();
        // Perfectly anti-correlated.
        let p = Matrix::from_rows(&[&[3.0], &[2.0], &[1.0]]).unwrap();
        assert!((pearson(&p, &t).unwrap() + 1.0).abs() < 1e-12);
        // Affine transform leaves correlation at 1.
        let q = t.map(|v| 10.0 * v + 3.0);
        assert!((pearson(&q, &t).unwrap() - 1.0).abs() < 1e-12);
        // Constant prediction: zero by convention.
        let c = Matrix::from_fn(3, 1, |_, _| 1.0);
        assert_eq!(pearson(&c, &t).unwrap(), 0.0);
    }

    #[test]
    fn shape_checks() {
        let a = Matrix::zeros(2, 1);
        let b = Matrix::zeros(3, 1);
        assert!(mse(&a, &b).is_err());
        assert!(r2_score(&a, &b).is_err());
        assert!(pearson(&a, &b).is_err());
        let e = Matrix::zeros(0, 1);
        assert!(matches!(mse(&e, &e), Err(NnError::EmptyDataset)));
    }
}

use rand::rngs::StdRng;
use rand::Rng;

use crate::{Activation, Matrix, NnError};

/// A fully-connected layer `a = σ(x Wᵀ + b)`.
///
/// Weights are stored as an `output_dim × input_dim` matrix. The layer
/// caches its last input and pre-activation during forward
/// (`DenseLayer::forward`), which [`backward`](DenseLayer::backward)
/// consumes to produce gradients.
#[derive(Debug, Clone)]
pub struct DenseLayer {
    weights: Matrix,
    bias: Vec<f64>,
    activation: Activation,
    // Caches from the most recent forward pass.
    cached_input: Option<Matrix>,
    cached_preact: Option<Matrix>,
    // Gradients from the most recent backward pass.
    grad_weights: Matrix,
    grad_bias: Vec<f64>,
}

impl DenseLayer {
    /// Creates a layer with He-style scaled uniform initialisation
    /// (appropriate for ReLU-family activations; harmless for others).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if either dimension is zero.
    pub fn new(
        input_dim: usize,
        output_dim: usize,
        activation: Activation,
        rng: &mut StdRng,
    ) -> crate::Result<Self> {
        if input_dim == 0 || output_dim == 0 {
            return Err(NnError::InvalidConfig {
                detail: format!("layer dimensions must be positive, got {input_dim}x{output_dim}"),
            });
        }
        let bound = (6.0 / input_dim as f64).sqrt();
        let weights = Matrix::from_fn(output_dim, input_dim, |_, _| rng.gen_range(-bound..bound));
        Ok(Self {
            weights,
            bias: vec![0.0; output_dim],
            activation,
            cached_input: None,
            cached_preact: None,
            grad_weights: Matrix::zeros(output_dim, input_dim),
            grad_bias: vec![0.0; output_dim],
        })
    }

    /// Builds a layer from explicit parameters (used by persistence).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `bias.len()` does not match
    /// the weight row count.
    pub fn from_parameters(
        weights: Matrix,
        bias: Vec<f64>,
        activation: Activation,
    ) -> crate::Result<Self> {
        if bias.len() != weights.rows() {
            return Err(NnError::ShapeMismatch {
                detail: format!(
                    "bias length {} vs weight rows {}",
                    bias.len(),
                    weights.rows()
                ),
            });
        }
        let (o, i) = weights.shape();
        Ok(Self {
            weights,
            bias,
            activation,
            cached_input: None,
            cached_preact: None,
            grad_weights: Matrix::zeros(o, i),
            grad_bias: vec![0.0; o],
        })
    }

    /// Input dimension.
    #[must_use]
    pub fn input_dim(&self) -> usize {
        self.weights.cols()
    }

    /// Output dimension.
    #[must_use]
    pub fn output_dim(&self) -> usize {
        self.weights.rows()
    }

    /// The layer's activation.
    #[must_use]
    pub fn activation(&self) -> Activation {
        self.activation
    }

    /// The weight matrix (`output_dim × input_dim`).
    #[must_use]
    pub fn weights(&self) -> &Matrix {
        &self.weights
    }

    /// The bias vector.
    #[must_use]
    pub fn bias(&self) -> &[f64] {
        &self.bias
    }

    /// Forward pass for a batch (`batch × input_dim`), caching what the
    /// backward pass needs.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the batch width is wrong.
    pub fn forward(&mut self, input: &Matrix) -> crate::Result<Matrix> {
        let (pre, out) = self.forward_pure(input)?;
        self.cached_input = Some(input.clone());
        self.cached_preact = Some(pre);
        Ok(out)
    }

    /// Side-effect-free forward pass returning `(pre_activation, output)`
    /// without touching the layer's caches. This is the kernel the
    /// data-parallel minibatch path runs per row-chunk: because it takes
    /// `&self`, any number of chunks can evaluate it concurrently.
    pub(crate) fn forward_pure(&self, input: &Matrix) -> crate::Result<(Matrix, Matrix)> {
        let pre = input
            .matmul_transpose(&self.weights)?
            .add_row_broadcast(&self.bias)?;
        let act = self.activation;
        let out = pre.map(|v| act.apply(v));
        Ok((pre, out))
    }

    /// Inference-only forward pass (no caching). Bias addition and
    /// activation are fused into the product buffer, so inference over
    /// a large batch makes a single allocation per layer.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if the batch width is wrong.
    pub fn forward_inference(&self, input: &Matrix) -> crate::Result<Matrix> {
        let mut pre = input.matmul_transpose(&self.weights)?;
        let act = self.activation;
        let cols = pre.cols();
        for r in 0..pre.rows() {
            for (v, b) in pre.row_mut(r).iter_mut().zip(&self.bias) {
                *v = act.apply(*v + b);
            }
        }
        let _ = cols;
        Ok(pre)
    }

    /// Backward pass: takes `∂L/∂output` and returns `∂L/∂input`,
    /// storing the weight and bias gradients internally.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if called before
    /// [`forward`](Self::forward), or [`NnError::ShapeMismatch`] if the
    /// gradient shape is wrong.
    pub fn backward(&mut self, grad_output: &Matrix) -> crate::Result<Matrix> {
        let input = self.cached_input.as_ref().ok_or(NnError::InvalidConfig {
            detail: "backward called before forward".into(),
        })?;
        // Cached alongside `cached_input` in `forward`, so present
        // whenever that check passed; typed error keeps the invariant
        // panic-free anyway (robustness/unwrap-in-lib).
        let pre = self.cached_preact.as_ref().ok_or(NnError::InvalidConfig {
            detail: "backward called before forward".into(),
        })?;
        let (grad_input, grad_weights, grad_bias) = self.backward_pure(input, pre, grad_output)?;
        self.grad_weights = grad_weights;
        self.grad_bias = grad_bias;
        Ok(grad_input)
    }

    /// Side-effect-free backward pass for one row-chunk.
    ///
    /// Takes the chunk's cached `input` and `pre`-activation (as returned
    /// by [`forward_pure`](Self::forward_pure)) and the loss gradient for
    /// the chunk, and returns `(grad_input, grad_weights, grad_bias)`
    /// without storing anything — the caller accumulates chunk gradients
    /// in a fixed order.
    pub(crate) fn backward_pure(
        &self,
        input: &Matrix,
        pre: &Matrix,
        grad_output: &Matrix,
    ) -> crate::Result<(Matrix, Matrix, Vec<f64>)> {
        let act = self.activation;
        let dpre = grad_output.hadamard(&pre.map(|v| act.derivative(v)))?;
        // dW = dpreᵀ · x  (output_dim × input_dim)
        let grad_weights = dpre.transpose_matmul(input)?;
        let grad_bias = dpre.column_sums();
        // dX = dpre · W
        let grad_input = dpre.matmul(&self.weights)?;
        Ok((grad_input, grad_weights, grad_bias))
    }

    /// Installs externally accumulated gradients (the data-parallel
    /// path's reduction result) so the normal optimizer hook sees them.
    pub(crate) fn set_gradients(&mut self, grad_weights: Matrix, grad_bias: Vec<f64>) {
        self.grad_weights = grad_weights;
        self.grad_bias = grad_bias;
    }

    /// Weight gradients from the last backward pass.
    #[must_use]
    pub fn grad_weights(&self) -> &Matrix {
        &self.grad_weights
    }

    /// Bias gradients from the last backward pass.
    #[must_use]
    pub fn grad_bias(&self) -> &[f64] {
        &self.grad_bias
    }

    /// Applies an update function to (parameters, gradients) pairs —
    /// the hook optimizers use. Called once for the weights and once
    /// for the bias.
    pub fn update_parameters(&mut self, mut f: impl FnMut(&mut [f64], &[f64])) {
        f(self.weights.as_mut_slice(), self.grad_weights.as_slice());
        f(&mut self.bias, &self.grad_bias);
    }

    /// Total number of trainable parameters.
    #[must_use]
    pub fn parameter_count(&self) -> usize {
        self.weights.rows() * self.weights.cols() + self.bias.len()
    }
}

impl crate::engine::LayerOps for DenseLayer {
    fn forward(&mut self, input: &Matrix) -> crate::Result<Matrix> {
        DenseLayer::forward(self, input)
    }

    fn backward(&mut self, grad_output: &Matrix) -> crate::Result<Matrix> {
        DenseLayer::backward(self, grad_output)
    }

    fn forward_pure(&self, input: &Matrix) -> crate::Result<(Matrix, Matrix)> {
        DenseLayer::forward_pure(self, input)
    }

    fn forward_inference(&self, input: &Matrix) -> crate::Result<Matrix> {
        DenseLayer::forward_inference(self, input)
    }

    fn backward_pure(
        &self,
        input: &Matrix,
        pre: &Matrix,
        grad_output: &Matrix,
    ) -> crate::Result<(Matrix, Matrix, Vec<f64>)> {
        DenseLayer::backward_pure(self, input, pre, grad_output)
    }

    fn set_gradients(&mut self, grad_weights: Matrix, grad_bias: Vec<f64>) {
        DenseLayer::set_gradients(self, grad_weights, grad_bias);
    }

    fn update_parameters(&mut self, f: impl FnMut(&mut [f64], &[f64])) {
        DenseLayer::update_parameters(self, f);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn construction_and_dims() {
        let l = DenseLayer::new(3, 5, Activation::Relu, &mut rng()).unwrap();
        assert_eq!(l.input_dim(), 3);
        assert_eq!(l.output_dim(), 5);
        assert_eq!(l.parameter_count(), 3 * 5 + 5);
        assert!(DenseLayer::new(0, 5, Activation::Relu, &mut rng()).is_err());
    }

    #[test]
    fn forward_identity_layer_is_affine() {
        let w = Matrix::from_rows(&[&[2.0, 0.0], &[0.0, 3.0]]).unwrap();
        let mut l = DenseLayer::from_parameters(w, vec![1.0, -1.0], Activation::Identity).unwrap();
        let x = Matrix::from_rows(&[&[1.0, 1.0]]).unwrap();
        let y = l.forward(&x).unwrap();
        assert_eq!(y.row(0), &[3.0, 2.0]);
    }

    #[test]
    fn forward_inference_matches_forward() {
        let mut l = DenseLayer::new(4, 3, Activation::Tanh, &mut rng()).unwrap();
        let x = Matrix::from_fn(5, 4, |r, c| (r + c) as f64 * 0.1);
        let a = l.forward(&x).unwrap();
        let b = l.forward_inference(&x).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn backward_before_forward_rejected() {
        let mut l = DenseLayer::new(2, 2, Activation::Relu, &mut rng()).unwrap();
        assert!(l.backward(&Matrix::zeros(1, 2)).is_err());
    }

    #[test]
    fn gradients_match_finite_difference() {
        let mut l = DenseLayer::new(3, 2, Activation::Tanh, &mut rng()).unwrap();
        let x = Matrix::from_fn(4, 3, |r, c| ((r * 3 + c) % 5) as f64 * 0.3 - 0.6);
        // Loss = sum of outputs; dL/dout = ones.
        let ones = Matrix::from_fn(4, 2, |_, _| 1.0);
        let _ = l.forward(&x).unwrap();
        let dx = l.backward(&ones).unwrap();
        let h = 1e-6;

        // Weight gradient check (a few entries).
        for (r, c) in [(0, 0), (1, 2), (0, 1)] {
            let mut lp = l.clone();
            let mut wp = lp.weights().clone();
            wp.set(r, c, wp.get(r, c) + h);
            lp = DenseLayer::from_parameters(wp, lp.bias().to_vec(), lp.activation()).unwrap();
            let up: f64 = lp.forward_inference(&x).unwrap().as_slice().iter().sum();

            let mut lm = l.clone();
            let mut wm = lm.weights().clone();
            wm.set(r, c, wm.get(r, c) - h);
            lm = DenseLayer::from_parameters(wm, lm.bias().to_vec(), lm.activation()).unwrap();
            let down: f64 = lm.forward_inference(&x).unwrap().as_slice().iter().sum();

            let fd = (up - down) / (2.0 * h);
            let an = l.grad_weights().get(r, c);
            assert!((fd - an).abs() < 1e-4, "dW[{r}][{c}]: fd {fd} vs {an}");
        }

        // Input gradient check (one entry).
        let mut xp = x.clone();
        xp.set(2, 1, xp.get(2, 1) + h);
        let up: f64 = l.forward_inference(&xp).unwrap().as_slice().iter().sum();
        let mut xm = x.clone();
        xm.set(2, 1, xm.get(2, 1) - h);
        let down: f64 = l.forward_inference(&xm).unwrap().as_slice().iter().sum();
        let fd = (up - down) / (2.0 * h);
        assert!((fd - dx.get(2, 1)).abs() < 1e-4);
    }

    #[test]
    fn bias_gradient_is_column_sum() {
        let mut l = DenseLayer::new(2, 3, Activation::Identity, &mut rng()).unwrap();
        let x = Matrix::from_fn(5, 2, |r, c| (r + c) as f64);
        let g = Matrix::from_fn(5, 3, |_, c| (c + 1) as f64);
        let _ = l.forward(&x).unwrap();
        let _ = l.backward(&g).unwrap();
        // Identity activation: dpre = g; bias grad = column sums of g.
        assert_eq!(l.grad_bias(), &[5.0, 10.0, 15.0]);
    }

    #[test]
    fn update_parameters_visits_weights_and_bias() {
        let mut l = DenseLayer::new(2, 2, Activation::Relu, &mut rng()).unwrap();
        let x = Matrix::from_fn(1, 2, |_, _| 1.0);
        let _ = l.forward(&x).unwrap();
        let _ = l.backward(&Matrix::from_fn(1, 2, |_, _| 1.0)).unwrap();
        let mut calls = 0;
        l.update_parameters(|params, grads| {
            calls += 1;
            assert_eq!(params.len(), grads.len());
        });
        assert_eq!(calls, 2);
    }
}

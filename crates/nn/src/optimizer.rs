use crate::NnError;

/// A first-order optimizer updating parameter slices in place.
///
/// Optimizers are stateful per parameter group: [`Optimizer::step`] is
/// called with a stable `group` index (one per layer-parameter tensor),
/// and the optimizer lazily allocates whatever moment state it needs the
/// first time it sees a group.
pub trait Optimizer {
    /// Applies one update: `params -= f(grads)`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::ShapeMismatch`] if `params` and `grads` differ
    /// in length, or if a group's size changed between calls.
    fn step(&mut self, group: usize, params: &mut [f64], grads: &[f64]) -> crate::Result<()>;

    /// Informs the optimizer that a full optimisation step over all
    /// groups has completed (Adam uses this for bias-correction time).
    fn end_step(&mut self) {}

    /// The configured learning rate.
    fn learning_rate(&self) -> f64;
}

fn check_lens(group: usize, p: &[f64], g: &[f64]) -> crate::Result<()> {
    if p.len() != g.len() {
        return Err(NnError::ShapeMismatch {
            detail: format!(
                "optimizer group {group}: {} params vs {} grads",
                p.len(),
                g.len()
            ),
        });
    }
    Ok(())
}

fn fetch_state(
    states: &mut Vec<Vec<f64>>,
    group: usize,
    len: usize,
) -> crate::Result<&mut Vec<f64>> {
    while states.len() <= group {
        states.push(Vec::new());
    }
    let s = &mut states[group];
    if s.is_empty() {
        s.resize(len, 0.0);
    } else if s.len() != len {
        return Err(NnError::ShapeMismatch {
            detail: format!(
                "optimizer group {group} changed size: {} vs {}",
                s.len(),
                len
            ),
        });
    }
    Ok(s)
}

/// Plain stochastic gradient descent.
#[derive(Debug, Clone)]
pub struct Sgd {
    lr: f64,
}

impl Sgd {
    /// Creates SGD with learning rate `lr`.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for a non-positive rate.
    pub fn new(lr: f64) -> crate::Result<Self> {
        validate_lr(lr)?;
        Ok(Self { lr })
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, group: usize, params: &mut [f64], grads: &[f64]) -> crate::Result<()> {
        check_lens(group, params, grads)?;
        for (p, g) in params.iter_mut().zip(grads) {
            *p -= self.lr * g;
        }
        Ok(())
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }
}

/// SGD with classical momentum.
#[derive(Debug, Clone)]
pub struct Momentum {
    lr: f64,
    beta: f64,
    velocity: Vec<Vec<f64>>,
}

impl Momentum {
    /// Creates momentum SGD.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for a non-positive rate or a
    /// momentum coefficient outside `[0, 1)`.
    pub fn new(lr: f64, beta: f64) -> crate::Result<Self> {
        validate_lr(lr)?;
        if !(0.0..1.0).contains(&beta) {
            return Err(NnError::InvalidConfig {
                detail: format!("momentum beta {beta} outside [0, 1)"),
            });
        }
        Ok(Self {
            lr,
            beta,
            velocity: Vec::new(),
        })
    }
}

impl Optimizer for Momentum {
    fn step(&mut self, group: usize, params: &mut [f64], grads: &[f64]) -> crate::Result<()> {
        check_lens(group, params, grads)?;
        let v = fetch_state(&mut self.velocity, group, params.len())?;
        for ((p, g), vi) in params.iter_mut().zip(grads).zip(v.iter_mut()) {
            *vi = self.beta * *vi + g;
            *p -= self.lr * *vi;
        }
        Ok(())
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }
}

/// RMSProp: per-parameter adaptive rates from a running second moment.
#[derive(Debug, Clone)]
pub struct RmsProp {
    lr: f64,
    decay: f64,
    eps: f64,
    sq: Vec<Vec<f64>>,
}

impl RmsProp {
    /// Creates RMSProp with the usual defaults (`decay = 0.9`,
    /// `eps = 1e-8`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for a non-positive rate.
    pub fn new(lr: f64) -> crate::Result<Self> {
        validate_lr(lr)?;
        Ok(Self {
            lr,
            decay: 0.9,
            eps: 1e-8,
            sq: Vec::new(),
        })
    }
}

impl Optimizer for RmsProp {
    fn step(&mut self, group: usize, params: &mut [f64], grads: &[f64]) -> crate::Result<()> {
        check_lens(group, params, grads)?;
        let s = fetch_state(&mut self.sq, group, params.len())?;
        for ((p, g), si) in params.iter_mut().zip(grads).zip(s.iter_mut()) {
            *si = self.decay * *si + (1.0 - self.decay) * g * g;
            *p -= self.lr * g / (si.sqrt() + self.eps);
        }
        Ok(())
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }
}

/// Adam: adaptive moment estimation (Kingma & Ba, paper ref. 13) — the optimizer
/// the paper trains with.
///
/// # Example
///
/// ```
/// use ppdl_nn::{Adam, Optimizer};
///
/// let mut opt = Adam::new(0.1).unwrap();
/// let mut params = vec![1.0_f64];
/// // Minimise f(p) = p²: gradient is 2p.
/// for _ in 0..200 {
///     let grads = vec![2.0 * params[0]];
///     opt.step(0, &mut params, &grads).unwrap();
///     opt.end_step();
/// }
/// assert!(params[0].abs() < 1e-3);
/// ```
#[derive(Debug, Clone)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<Vec<f64>>,
    v: Vec<Vec<f64>>,
}

impl Adam {
    /// Creates Adam with the paper-standard hyperparameters
    /// (`β₁ = 0.9`, `β₂ = 0.999`, `ε = 1e-8`).
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] for a non-positive rate.
    pub fn new(lr: f64) -> crate::Result<Self> {
        validate_lr(lr)?;
        Ok(Self {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        })
    }

    /// Creates Adam with explicit moment coefficients.
    ///
    /// # Errors
    ///
    /// Returns [`NnError::InvalidConfig`] if the rate is non-positive or
    /// either beta lies outside `[0, 1)`.
    pub fn with_betas(lr: f64, beta1: f64, beta2: f64) -> crate::Result<Self> {
        validate_lr(lr)?;
        for (name, b) in [("beta1", beta1), ("beta2", beta2)] {
            if !(0.0..1.0).contains(&b) {
                return Err(NnError::InvalidConfig {
                    detail: format!("{name} {b} outside [0, 1)"),
                });
            }
        }
        Ok(Self {
            lr,
            beta1,
            beta2,
            eps: 1e-8,
            t: 0,
            m: Vec::new(),
            v: Vec::new(),
        })
    }
}

impl Optimizer for Adam {
    fn step(&mut self, group: usize, params: &mut [f64], grads: &[f64]) -> crate::Result<()> {
        check_lens(group, params, grads)?;
        // Time index of the *current* step (end_step increments after
        // all groups have been visited).
        let t = (self.t + 1) as f64;
        let bc1 = 1.0 - self.beta1.powf(t);
        let bc2 = 1.0 - self.beta2.powf(t);
        let m = fetch_state(&mut self.m, group, params.len())?;
        let v = fetch_state(&mut self.v, group, params.len())?;
        // fetch_state borrows self.m mutably, so split the second fetch.
        for (i, (p, g)) in params.iter_mut().zip(grads).enumerate() {
            let mi = self.beta1 * m[i] + (1.0 - self.beta1) * g;
            m[i] = mi;
            let mhat = mi / bc1;
            let vi = self.beta2 * v[i] + (1.0 - self.beta2) * g * g;
            v[i] = vi;
            let vhat = vi / bc2;
            *p -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
        Ok(())
    }

    fn end_step(&mut self) {
        self.t += 1;
    }

    fn learning_rate(&self) -> f64 {
        self.lr
    }
}

fn validate_lr(lr: f64) -> crate::Result<()> {
    if !(lr.is_finite() && lr > 0.0) {
        return Err(NnError::InvalidConfig {
            detail: format!("learning rate must be positive, got {lr}"),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimise the quadratic f(p) = Σ (p_i - target_i)² with each
    /// optimizer; all must converge.
    fn run<O: Optimizer>(mut opt: O, iters: usize) -> Vec<f64> {
        let target = [3.0, -1.0];
        let mut params = vec![0.0, 0.0];
        for _ in 0..iters {
            let grads: Vec<f64> = params
                .iter()
                .zip(&target)
                .map(|(p, t)| 2.0 * (p - t))
                .collect();
            opt.step(0, &mut params, &grads).unwrap();
            opt.end_step();
        }
        params
            .iter()
            .zip(&target)
            .map(|(p, t)| (p - t).abs())
            .collect()
    }

    #[test]
    fn sgd_converges() {
        for e in run(Sgd::new(0.1).unwrap(), 200) {
            assert!(e < 1e-6);
        }
    }

    #[test]
    fn momentum_converges() {
        for e in run(Momentum::new(0.05, 0.9).unwrap(), 300) {
            assert!(e < 1e-4);
        }
    }

    #[test]
    fn rmsprop_converges() {
        for e in run(RmsProp::new(0.05).unwrap(), 2000) {
            assert!(e < 1e-3);
        }
    }

    #[test]
    fn adam_converges() {
        for e in run(Adam::new(0.2).unwrap(), 500) {
            assert!(e < 1e-4);
        }
    }

    #[test]
    fn adam_first_step_is_lr_sized() {
        // With bias correction the very first Adam step has magnitude
        // ~lr regardless of gradient scale.
        for g in [1e-6, 1.0, 1e6] {
            let mut p = vec![0.0];
            let mut opt = Adam::new(0.01).unwrap();
            opt.step(0, &mut p, &[g]).unwrap();
            // epsilon softens the tiny-gradient case slightly (~1 %).
            assert!(
                (p[0].abs() - 0.01).abs() < 2e-4,
                "step size {} for gradient {g}",
                p[0].abs()
            );
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(Sgd::new(0.0).is_err());
        assert!(Sgd::new(-1.0).is_err());
        assert!(Sgd::new(f64::NAN).is_err());
        assert!(Momentum::new(0.1, 1.0).is_err());
        assert!(Adam::with_betas(0.1, 1.0, 0.999).is_err());
        assert!(Adam::with_betas(0.1, 0.9, -0.1).is_err());
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let mut opt = Sgd::new(0.1).unwrap();
        let mut p = vec![0.0; 2];
        assert!(opt.step(0, &mut p, &[1.0]).is_err());
    }

    #[test]
    fn group_size_change_rejected() {
        let mut opt = Adam::new(0.1).unwrap();
        let mut p2 = vec![0.0; 2];
        opt.step(0, &mut p2, &[1.0, 1.0]).unwrap();
        let mut p3 = vec![0.0; 3];
        assert!(opt.step(0, &mut p3, &[1.0, 1.0, 1.0]).is_err());
    }

    #[test]
    fn groups_are_independent() {
        let mut opt = Momentum::new(0.1, 0.5).unwrap();
        let mut a = vec![0.0];
        let mut b = vec![0.0; 3];
        opt.step(0, &mut a, &[1.0]).unwrap();
        opt.step(1, &mut b, &[1.0, 1.0, 1.0]).unwrap();
        opt.end_step();
        assert!(a[0] < 0.0 && b[2] < 0.0);
    }
}

//! Property-based tests for the neural-network library.

use ppdl_nn::{
    metrics, Activation, Adam, Dataset, Loss, Matrix, Mlp, MlpBuilder, Optimizer, StandardScaler,
};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Analytic gradients of a random 2-layer network match finite
    /// differences of the loss with respect to the inputs.
    #[test]
    fn input_gradient_matches_finite_difference(
        seed in 0u64..1000,
        vals in proptest::collection::vec(-1.0_f64..1.0, 6),
    ) {
        let mut model = MlpBuilder::new(3)
            .hidden(5, Activation::Tanh)
            .output(2)
            .seed(seed)
            .build()
            .unwrap();
        let x = Matrix::from_vec(2, 3, vals.clone()).unwrap();
        let y = Matrix::zeros(2, 2);
        // Clone for a pristine finite-difference oracle.
        let oracle = model.clone();
        // One manual forward/backward to extract the input gradient via
        // train_batch on a zero-lr optimizer is not possible, so check
        // the loss decrease direction instead: a small step along the
        // negative parameter gradient must not increase the loss.
        let mut opt = Adam::new(1e-3).unwrap();
        let before = model.train_batch(&x, &y, Loss::Mse, &mut opt).unwrap();
        let after = Loss::Mse
            .value(&model.predict(&x).unwrap(), &y)
            .unwrap();
        // One Adam step on this batch should not increase loss much.
        prop_assert!(after <= before * 1.5 + 1e-9, "{before} -> {after}");
        // And the oracle still computes the same pre-step loss.
        let check = Loss::Mse.value(&oracle.predict(&x).unwrap(), &y).unwrap();
        prop_assert!((check - before).abs() < 1e-12);
    }

    /// Persistence round-trips arbitrary seeded models exactly.
    #[test]
    fn persistence_round_trip(seed in 0u64..500, depth in 1usize..5, width in 1usize..9) {
        let model = MlpBuilder::new(3)
            .hidden_stack(depth, width, Activation::Relu)
            .output(2)
            .seed(seed)
            .build()
            .unwrap();
        let back = Mlp::from_text(&model.to_text()).unwrap();
        let x = Matrix::from_fn(4, 3, |r, c| (r as f64 - 1.5) * (c as f64 + 0.5));
        prop_assert_eq!(back.predict(&x).unwrap(), model.predict(&x).unwrap());
    }

    /// Scaler transform + inverse is the identity for any data.
    #[test]
    fn scaler_round_trip(
        vals in proptest::collection::vec(-1e4_f64..1e4, 12),
    ) {
        let m = Matrix::from_vec(4, 3, vals).unwrap();
        let sc = StandardScaler::fit(&m).unwrap();
        let back = sc.inverse_transform(&sc.transform(&m).unwrap()).unwrap();
        for (a, b) in back.as_slice().iter().zip(m.as_slice()) {
            prop_assert!((a - b).abs() <= 1e-8 * b.abs().max(1.0));
        }
    }

    /// r² is invariant to which constant shifts both series; it is 1
    /// exactly when prediction equals target.
    #[test]
    fn r2_bounds(
        targets in proptest::collection::vec(-10.0_f64..10.0, 8),
        noise in proptest::collection::vec(-0.01_f64..0.01, 8),
    ) {
        let t = Matrix::from_vec(8, 1, targets.clone()).unwrap();
        prop_assert!((metrics::r2_score(&t, &t).unwrap() - 1.0).abs() < 1e-12);
        let noisy = Matrix::from_vec(
            8,
            1,
            targets.iter().zip(&noise).map(|(a, n)| a + n).collect(),
        )
        .unwrap();
        let r2 = metrics::r2_score(&noisy, &t).unwrap();
        prop_assert!(r2 <= 1.0 + 1e-12);
    }

    /// Matrix multiplication is associative on random shapes.
    #[test]
    fn matmul_associative(
        a in proptest::collection::vec(-2.0_f64..2.0, 6),
        b in proptest::collection::vec(-2.0_f64..2.0, 6),
        c in proptest::collection::vec(-2.0_f64..2.0, 4),
    ) {
        let ma = Matrix::from_vec(2, 3, a).unwrap();
        let mb = Matrix::from_vec(3, 2, b).unwrap();
        let mc = Matrix::from_vec(2, 2, c).unwrap();
        let left = ma.matmul(&mb).unwrap().matmul(&mc).unwrap();
        let right = ma.matmul(&mb.matmul(&mc).unwrap()).unwrap();
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-10);
        }
    }

    /// Adam always shrinks the distance to the optimum of a convex
    /// quadratic over a full run, from any start.
    #[test]
    fn adam_quadratic_progress(start in -100.0_f64..100.0, target in -10.0_f64..10.0) {
        let mut opt = Adam::new(0.5).unwrap();
        let mut p = vec![start];
        let initial = (start - target).abs();
        for _ in 0..500 {
            let g = vec![2.0 * (p[0] - target)];
            opt.step(0, &mut p, &g).unwrap();
            opt.end_step();
        }
        prop_assert!((p[0] - target).abs() < initial.max(1e-3) * 0.5 + 1e-3);
    }

    /// Dataset shuffling preserves the multiset of rows.
    #[test]
    fn shuffle_preserves_rows(seed in 0u64..100) {
        let x = Matrix::from_fn(9, 2, |r, c| (r * 2 + c) as f64);
        let y = Matrix::from_fn(9, 1, |r, _| r as f64);
        let d = Dataset::new(x, y).unwrap();
        let s = d.shuffled(seed);
        let mut orig: Vec<Vec<u64>> = (0..9)
            .map(|r| d.x().row(r).iter().map(|v| v.to_bits()).collect())
            .collect();
        let mut shuf: Vec<Vec<u64>> = (0..9)
            .map(|r| s.x().row(r).iter().map(|v| v.to_bits()).collect())
            .collect();
        orig.sort();
        shuf.sort();
        prop_assert_eq!(orig, shuf);
    }
}

//! SVG rendering of floorplans — the Fig. 4(a) picture: functional
//! blocks, power pads, and (optionally) the power-grid straps drawn
//! over them.

use std::fmt::Write as _;

use crate::{Floorplan, PowerNet, StrapPlan};

/// Options for the SVG renderer.
#[derive(Debug, Clone)]
pub struct SvgOptions {
    /// Pixel width of the output; height follows the die aspect ratio.
    pub width_px: f64,
    /// Whether to label blocks with their names.
    pub labels: bool,
}

impl Default for SvgOptions {
    fn default() -> Self {
        Self {
            width_px: 640.0,
            labels: true,
        }
    }
}

impl Floorplan {
    /// Renders the floorplan as a standalone SVG document. Pass strap
    /// plans to overlay the power grid (vertical straps first, then
    /// horizontal), mirroring the paper's Fig. 4(a).
    #[must_use]
    pub fn to_svg(
        &self,
        vertical: Option<&StrapPlan>,
        horizontal: Option<&StrapPlan>,
        options: &SvgOptions,
    ) -> String {
        let scale = options.width_px / self.die_width();
        let w = self.die_width() * scale;
        let h = self.die_height() * scale;
        // SVG y grows downward; flip so the origin is bottom-left like
        // the die coordinate system.
        let flip = |y: f64| h - y;

        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{w:.0}" height="{h:.0}" viewBox="0 0 {w:.2} {h:.2}">"#
        );
        let _ = writeln!(
            out,
            r##"<rect x="0" y="0" width="{w:.2}" height="{h:.2}" fill="#fcfcf7" stroke="#333" stroke-width="2"/>"##
        );

        // Blocks.
        for b in self.blocks() {
            let bx = b.x() * scale;
            let by = flip((b.y() + b.height()) * scale);
            let bw = b.width() * scale;
            let bh = b.height() * scale;
            // Shade by switching current relative to the busiest block.
            let max_id = self
                .blocks()
                .iter()
                .map(crate::FunctionalBlock::switching_current)
                .fold(1e-12, f64::max);
            let heat = (b.switching_current() / max_id * 155.0) as u8;
            let _ = writeln!(
                out,
                r##"<rect x="{bx:.2}" y="{by:.2}" width="{bw:.2}" height="{bh:.2}" fill="rgb(255,{g},{g})" stroke="#555" stroke-width="1"/>"##,
                g = 230 - heat
            );
            if options.labels {
                let _ = writeln!(
                    out,
                    r##"<text x="{:.2}" y="{:.2}" font-size="{:.1}" font-family="monospace" text-anchor="middle" fill="#222">{}</text>"##,
                    bx + bw / 2.0,
                    by + bh / 2.0,
                    (bw.min(bh) * 0.18).clamp(6.0, 14.0),
                    xml_escape(b.name())
                );
            }
        }

        // Straps (semi-transparent so blocks stay visible).
        if let Some(plan) = vertical {
            for seg in plan.segments() {
                let x = (seg.position - seg.width / 2.0) * scale;
                let sw = (seg.width * scale).max(1.0);
                let _ = writeln!(
                    out,
                    r##"<rect x="{x:.2}" y="0" width="{sw:.2}" height="{h:.2}" fill="#3a6fb0" fill-opacity="0.45"/>"##
                );
            }
        }
        if let Some(plan) = horizontal {
            for seg in plan.segments() {
                let y = flip((seg.position + seg.width / 2.0) * scale);
                let sh = (seg.width * scale).max(1.0);
                let _ = writeln!(
                    out,
                    r##"<rect x="0" y="{y:.2}" width="{w:.2}" height="{sh:.2}" fill="#2e8b57" fill-opacity="0.45"/>"##
                );
            }
        }

        // Pads.
        for p in self.pads() {
            let (px, py) = (p.x() * scale, flip(p.y() * scale));
            let color = match p.net() {
                PowerNet::Vdd => "#c62828",
                PowerNet::Gnd => "#1565c0",
            };
            let _ = writeln!(
                out,
                r##"<circle cx="{px:.2}" cy="{py:.2}" r="5" fill="{color}" stroke="#000"/>"##
            );
        }

        out.push_str("</svg>\n");
        out
    }
}

fn xml_escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FunctionalBlock, PowerPad};

    fn plan() -> Floorplan {
        let mut fp = Floorplan::new(100.0, 50.0).unwrap();
        fp.add_block(FunctionalBlock::new("alu<&>", 10.0, 10.0, 30.0, 20.0, 0.2).unwrap())
            .unwrap();
        fp.add_pad(PowerPad::new("v0", 0.0, 25.0, PowerNet::Vdd))
            .unwrap();
        fp.add_pad(PowerPad::new("g0", 100.0, 25.0, PowerNet::Gnd))
            .unwrap();
        fp
    }

    #[test]
    fn svg_is_wellformed_enough() {
        let fp = plan();
        let svg = fp.to_svg(None, None, &SvgOptions::default());
        assert!(svg.starts_with("<svg"));
        assert!(svg.trim_end().ends_with("</svg>"));
        // One rect for the die, one per block; two pad circles.
        assert_eq!(svg.matches("<circle").count(), 2);
        assert!(svg.matches("<rect").count() >= 2);
    }

    #[test]
    fn labels_are_escaped_and_optional() {
        let fp = plan();
        let with = fp.to_svg(None, None, &SvgOptions::default());
        assert!(with.contains("alu&lt;&amp;&gt;"));
        let without = fp.to_svg(
            None,
            None,
            &SvgOptions {
                labels: false,
                ..SvgOptions::default()
            },
        );
        assert!(!without.contains("<text"));
    }

    #[test]
    fn straps_overlay_when_given() {
        let fp = plan();
        let v = StrapPlan::uniform(100.0, 4, 2.0).unwrap();
        let h = StrapPlan::uniform(50.0, 3, 1.0).unwrap();
        let svg = fp.to_svg(Some(&v), Some(&h), &SvgOptions::default());
        assert_eq!(svg.matches("fill-opacity").count(), 7);
    }

    #[test]
    fn aspect_ratio_follows_die() {
        let fp = plan(); // 100 x 50 die
        let svg = fp.to_svg(None, None, &SvgOptions::default());
        assert!(svg.contains(r#"width="640" height="320""#));
    }
}

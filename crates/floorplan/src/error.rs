use std::fmt;

/// Errors raised while building or validating a floorplan.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FloorplanError {
    /// A geometric quantity (die size, block size, coordinate, current)
    /// was non-positive or non-finite where a positive finite value is
    /// required.
    InvalidDimension {
        /// Which quantity was invalid.
        what: String,
        /// The offending value.
        value: f64,
    },
    /// A block or pad does not fit within the die outline.
    OutsideDie {
        /// Name of the offending block or pad.
        name: String,
    },
    /// Two blocks overlap.
    BlockOverlap {
        /// Name of the first block.
        first: String,
        /// Name of the second block.
        second: String,
    },
    /// A block or pad with this name already exists in the floorplan.
    DuplicateName {
        /// The duplicated name.
        name: String,
    },
    /// A strap plan violates the ring-width constraint (eq. 3):
    /// `Σ (sᵢ + wᵢ)` must equal the core width.
    RingWidthViolation {
        /// Sum of strap widths plus spacings.
        total: f64,
        /// The core width the sum must match.
        core_width: f64,
    },
    /// The generator configuration is unsatisfiable (e.g. more blocks
    /// than grid cells).
    InfeasibleConfig {
        /// Human-readable description.
        detail: String,
    },
}

impl fmt::Display for FloorplanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FloorplanError::InvalidDimension { what, value } => {
                write!(f, "invalid {what}: {value}")
            }
            FloorplanError::OutsideDie { name } => {
                write!(f, "'{name}' lies outside the die outline")
            }
            FloorplanError::BlockOverlap { first, second } => {
                write!(f, "blocks '{first}' and '{second}' overlap")
            }
            FloorplanError::DuplicateName { name } => {
                write!(f, "duplicate name '{name}'")
            }
            FloorplanError::RingWidthViolation { total, core_width } => write!(
                f,
                "strap widths + spacings sum to {total}, but the core width is {core_width}"
            ),
            FloorplanError::InfeasibleConfig { detail } => {
                write!(f, "infeasible generator configuration: {detail}")
            }
        }
    }
}

impl std::error::Error for FloorplanError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_mention_key_data() {
        let e = FloorplanError::BlockOverlap {
            first: "alu".into(),
            second: "fpu".into(),
        };
        let s = e.to_string();
        assert!(s.contains("alu") && s.contains("fpu"));

        let e = FloorplanError::RingWidthViolation {
            total: 90.0,
            core_width: 100.0,
        };
        assert!(e.to_string().contains("90"));
    }

    #[test]
    fn implements_std_error() {
        fn check<T: std::error::Error + Send + Sync + 'static>() {}
        check::<FloorplanError>();
    }
}

//! Floorplan model for power planning.
//!
//! Power planning happens right after floorplanning: the functional
//! blocks of the SoC have been placed, their switching-current demands
//! are known from the front end (the paper extracts them from a VCD
//! file), and the power grid must be drawn over them. This crate models
//! that input:
//!
//! * [`FunctionalBlock`] — a placed macro with a switching current `Id`.
//! * [`PowerPad`] — a VDD/GND bump or wirebond pad location.
//! * [`Floorplan`] — the die with its blocks and pads, validated for
//!   containment and overlap.
//! * [`StrapPlan`] — the widths/spacings of the power-grid straps across
//!   the core, enforcing the ring-width constraint
//!   `Σ (sᵢ + wᵢ) = W_core` (eq. 3 of the paper).
//! * [`FloorplanGenerator`] — seeded random floorplans for dataset
//!   generation.
//!
//! # Example
//!
//! ```
//! use ppdl_floorplan::{Floorplan, FunctionalBlock, PowerPad, PowerNet};
//!
//! let mut fp = Floorplan::new(100.0, 100.0).unwrap();
//! fp.add_block(FunctionalBlock::new("cpu", 10.0, 10.0, 30.0, 30.0, 0.5).unwrap()).unwrap();
//! fp.add_pad(PowerPad::new("vdd0", 0.0, 50.0, PowerNet::Vdd)).unwrap();
//! assert_eq!(fp.blocks().len(), 1);
//! assert!((fp.total_switching_current() - 0.5).abs() < 1e-12);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod error;
mod generator;
mod pad;
mod plan;
mod straps;
mod svg;

pub use block::FunctionalBlock;
pub use error::FloorplanError;
pub use generator::{FloorplanGenerator, GeneratorConfig};
pub use pad::{PadPlacement, PowerNet, PowerPad};
pub use plan::Floorplan;
pub use straps::{StrapPlan, StrapSegment};
pub use svg::SvgOptions;

/// Convenience result alias for this crate.
pub type Result<T> = std::result::Result<T, FloorplanError>;

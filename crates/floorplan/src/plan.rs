use crate::{FloorplanError, FunctionalBlock, PowerNet, PowerPad};

/// A die outline with its placed functional blocks and power pads.
///
/// Invariants maintained by the mutators:
///
/// * every block lies fully inside the die and overlaps no other block;
/// * every pad lies inside (or on the boundary of) the die;
/// * block and pad names are unique within their kind.
///
/// # Example
///
/// ```
/// use ppdl_floorplan::{Floorplan, FunctionalBlock};
///
/// let mut fp = Floorplan::new(50.0, 50.0).unwrap();
/// fp.add_block(FunctionalBlock::new("a", 0.0, 0.0, 10.0, 10.0, 0.1).unwrap()).unwrap();
/// // Overlapping block is rejected:
/// let b = FunctionalBlock::new("b", 5.0, 5.0, 10.0, 10.0, 0.1).unwrap();
/// assert!(fp.add_block(b).is_err());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    die_width: f64,
    die_height: f64,
    blocks: Vec<FunctionalBlock>,
    pads: Vec<PowerPad>,
}

impl Floorplan {
    /// Creates an empty floorplan with the given die dimensions (µm).
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::InvalidDimension`] if either dimension
    /// is not a strictly positive finite number.
    pub fn new(die_width: f64, die_height: f64) -> crate::Result<Self> {
        for (what, v) in [("die width", die_width), ("die height", die_height)] {
            if !(v.is_finite() && v > 0.0) {
                return Err(FloorplanError::InvalidDimension {
                    what: what.into(),
                    value: v,
                });
            }
        }
        Ok(Self {
            die_width,
            die_height,
            blocks: Vec::new(),
            pads: Vec::new(),
        })
    }

    /// Die width (µm).
    #[must_use]
    pub fn die_width(&self) -> f64 {
        self.die_width
    }

    /// Die height (µm).
    #[must_use]
    pub fn die_height(&self) -> f64 {
        self.die_height
    }

    /// The placed blocks.
    #[must_use]
    pub fn blocks(&self) -> &[FunctionalBlock] {
        &self.blocks
    }

    /// The power pads.
    #[must_use]
    pub fn pads(&self) -> &[PowerPad] {
        &self.pads
    }

    /// Adds a block, enforcing containment, non-overlap, and name
    /// uniqueness.
    ///
    /// # Errors
    ///
    /// * [`FloorplanError::OutsideDie`] — the block does not fit.
    /// * [`FloorplanError::BlockOverlap`] — it overlaps an existing block.
    /// * [`FloorplanError::DuplicateName`] — the name is taken.
    pub fn add_block(&mut self, block: FunctionalBlock) -> crate::Result<()> {
        if block.x() + block.width() > self.die_width + 1e-9
            || block.y() + block.height() > self.die_height + 1e-9
        {
            return Err(FloorplanError::OutsideDie {
                name: block.name().to_string(),
            });
        }
        if self.blocks.iter().any(|b| b.name() == block.name()) {
            return Err(FloorplanError::DuplicateName {
                name: block.name().to_string(),
            });
        }
        if let Some(other) = self.blocks.iter().find(|b| b.overlaps(&block)) {
            return Err(FloorplanError::BlockOverlap {
                first: other.name().to_string(),
                second: block.name().to_string(),
            });
        }
        self.blocks.push(block);
        Ok(())
    }

    /// Adds a pad, enforcing containment and name uniqueness.
    ///
    /// # Errors
    ///
    /// * [`FloorplanError::OutsideDie`] — the pad is off-die.
    /// * [`FloorplanError::DuplicateName`] — the name is taken.
    pub fn add_pad(&mut self, pad: PowerPad) -> crate::Result<()> {
        if pad.x() < 0.0
            || pad.y() < 0.0
            || pad.x() > self.die_width
            || pad.y() > self.die_height
            || !pad.x().is_finite()
            || !pad.y().is_finite()
        {
            return Err(FloorplanError::OutsideDie {
                name: pad.name().to_string(),
            });
        }
        if self.pads.iter().any(|p| p.name() == pad.name()) {
            return Err(FloorplanError::DuplicateName {
                name: pad.name().to_string(),
            });
        }
        self.pads.push(pad);
        Ok(())
    }

    /// The block covering the point `(x, y)`, if any.
    #[must_use]
    pub fn block_at(&self, x: f64, y: f64) -> Option<&FunctionalBlock> {
        self.blocks.iter().find(|b| b.contains(x, y))
    }

    /// The switching current demanded at a point: the covering block's
    /// current density times `tile_area`, or `0.0` in the whitespace
    /// between blocks. This is how a block's total current is
    /// apportioned to the grid nodes above it.
    #[must_use]
    pub fn current_demand_at(&self, x: f64, y: f64, tile_area: f64) -> f64 {
        self.block_at(x, y)
            .map_or(0.0, |b| b.current_density() * tile_area)
    }

    /// Sum of all block switching currents (A).
    #[must_use]
    pub fn total_switching_current(&self) -> f64 {
        self.blocks
            .iter()
            .map(FunctionalBlock::switching_current)
            .sum()
    }

    /// Pads belonging to one net.
    pub fn pads_on(&self, net: PowerNet) -> impl Iterator<Item = &PowerPad> {
        self.pads.iter().filter(move |p| p.net() == net)
    }

    /// Fraction of the die area covered by blocks.
    #[must_use]
    pub fn utilization(&self) -> f64 {
        let covered: f64 = self.blocks.iter().map(FunctionalBlock::area).sum();
        covered / (self.die_width * self.die_height)
    }

    /// Returns a copy with every block's switching current multiplied by
    /// `factor` — the "perturbation in current workloads" of §IV-D.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::InvalidDimension`] if any scaled
    /// current would be invalid (negative factor).
    pub fn with_scaled_currents(&self, factor: f64) -> crate::Result<Self> {
        let mut fp = Self::new(self.die_width, self.die_height)?;
        for b in &self.blocks {
            fp.blocks.push(b.with_scaled_current(factor)?);
        }
        fp.pads = self.pads.clone();
        Ok(fp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan() -> Floorplan {
        let mut fp = Floorplan::new(100.0, 100.0).unwrap();
        fp.add_block(FunctionalBlock::new("a", 0.0, 0.0, 40.0, 40.0, 0.8).unwrap())
            .unwrap();
        fp.add_block(FunctionalBlock::new("b", 50.0, 50.0, 20.0, 20.0, 0.2).unwrap())
            .unwrap();
        fp.add_pad(PowerPad::new("v0", 0.0, 50.0, PowerNet::Vdd))
            .unwrap();
        fp.add_pad(PowerPad::new("g0", 100.0, 50.0, PowerNet::Gnd))
            .unwrap();
        fp
    }

    #[test]
    fn invalid_die_rejected() {
        assert!(Floorplan::new(0.0, 10.0).is_err());
        assert!(Floorplan::new(10.0, f64::INFINITY).is_err());
    }

    #[test]
    fn block_outside_die_rejected() {
        let mut fp = Floorplan::new(10.0, 10.0).unwrap();
        let b = FunctionalBlock::new("x", 5.0, 5.0, 10.0, 2.0, 0.1).unwrap();
        assert!(matches!(
            fp.add_block(b),
            Err(FloorplanError::OutsideDie { .. })
        ));
    }

    #[test]
    fn duplicate_block_name_rejected() {
        let mut fp = Floorplan::new(100.0, 100.0).unwrap();
        fp.add_block(FunctionalBlock::new("x", 0.0, 0.0, 5.0, 5.0, 0.1).unwrap())
            .unwrap();
        let dup = FunctionalBlock::new("x", 20.0, 20.0, 5.0, 5.0, 0.1).unwrap();
        assert!(matches!(
            fp.add_block(dup),
            Err(FloorplanError::DuplicateName { .. })
        ));
    }

    #[test]
    fn overlapping_block_rejected() {
        let mut fp = plan();
        let c = FunctionalBlock::new("c", 30.0, 30.0, 30.0, 30.0, 0.1).unwrap();
        assert!(matches!(
            fp.add_block(c),
            Err(FloorplanError::BlockOverlap { .. })
        ));
    }

    #[test]
    fn pad_on_boundary_allowed_outside_rejected() {
        let mut fp = Floorplan::new(10.0, 10.0).unwrap();
        fp.add_pad(PowerPad::new("p", 10.0, 10.0, PowerNet::Vdd))
            .unwrap();
        assert!(fp
            .add_pad(PowerPad::new("q", 10.1, 0.0, PowerNet::Vdd))
            .is_err());
    }

    #[test]
    fn block_at_finds_covering_block() {
        let fp = plan();
        assert_eq!(fp.block_at(10.0, 10.0).unwrap().name(), "a");
        assert_eq!(fp.block_at(55.0, 55.0).unwrap().name(), "b");
        assert!(fp.block_at(90.0, 10.0).is_none());
    }

    #[test]
    fn current_demand_proportional_to_tile() {
        let fp = plan();
        // Block a: 0.8 A over 1600 µm² -> 5e-4 A/µm².
        let d = fp.current_demand_at(10.0, 10.0, 2.0);
        assert!((d - 0.001).abs() < 1e-12);
        assert_eq!(fp.current_demand_at(90.0, 10.0, 2.0), 0.0);
    }

    #[test]
    fn totals_and_utilization() {
        let fp = plan();
        assert!((fp.total_switching_current() - 1.0).abs() < 1e-12);
        assert!((fp.utilization() - 0.2) < 1e-12);
    }

    #[test]
    fn pads_on_filters_by_net() {
        let fp = plan();
        assert_eq!(fp.pads_on(PowerNet::Vdd).count(), 1);
        assert_eq!(fp.pads_on(PowerNet::Gnd).count(), 1);
    }

    #[test]
    fn scaled_currents() {
        let fp = plan();
        let scaled = fp.with_scaled_currents(1.1).unwrap();
        assert!((scaled.total_switching_current() - 1.1).abs() < 1e-12);
        assert_eq!(scaled.pads().len(), 2);
        assert!(fp.with_scaled_currents(-1.0).is_err());
    }
}

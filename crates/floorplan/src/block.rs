use crate::FloorplanError;

/// A placed functional block (macro / standard-cell region) with its
/// switching-current demand.
///
/// Coordinates are in micrometres with the origin at the lower-left die
/// corner; `(x, y)` is the block's lower-left corner. The switching
/// current `Id` is the time-averaged current the block draws, the value
/// the paper extracts from the front-end VCD file and uses as the third
/// input feature of the width predictor.
///
/// # Example
///
/// ```
/// use ppdl_floorplan::FunctionalBlock;
///
/// let b = FunctionalBlock::new("dcache", 5.0, 5.0, 20.0, 10.0, 0.25).unwrap();
/// assert_eq!(b.center(), (15.0, 10.0));
/// assert!(b.contains(6.0, 6.0));
/// assert!(!b.contains(30.0, 6.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionalBlock {
    name: String,
    x: f64,
    y: f64,
    width: f64,
    height: f64,
    switching_current: f64,
}

impl FunctionalBlock {
    /// Creates a block after validating geometry and current.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::InvalidDimension`] if `width` or
    /// `height` is not strictly positive, if any coordinate is negative
    /// or non-finite, or if `switching_current` is negative or
    /// non-finite.
    pub fn new(
        name: impl Into<String>,
        x: f64,
        y: f64,
        width: f64,
        height: f64,
        switching_current: f64,
    ) -> crate::Result<Self> {
        let check = |what: &str, v: f64, allow_zero: bool| -> crate::Result<()> {
            let ok = v.is_finite() && (v > 0.0 || (allow_zero && v >= 0.0));
            if ok {
                Ok(())
            } else {
                Err(FloorplanError::InvalidDimension {
                    what: what.to_string(),
                    value: v,
                })
            }
        };
        check("block x", x, true)?;
        check("block y", y, true)?;
        check("block width", width, false)?;
        check("block height", height, false)?;
        check("block switching current", switching_current, true)?;
        Ok(Self {
            name: name.into(),
            x,
            y,
            width,
            height,
            switching_current,
        })
    }

    /// Block name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Lower-left x coordinate (µm).
    #[must_use]
    pub fn x(&self) -> f64 {
        self.x
    }

    /// Lower-left y coordinate (µm).
    #[must_use]
    pub fn y(&self) -> f64 {
        self.y
    }

    /// Width (µm).
    #[must_use]
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Height (µm).
    #[must_use]
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Switching current `Id` (A).
    #[must_use]
    pub fn switching_current(&self) -> f64 {
        self.switching_current
    }

    /// Centre point of the block.
    #[must_use]
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.width / 2.0, self.y + self.height / 2.0)
    }

    /// Area in µm².
    #[must_use]
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// Current density demand of the block (A/µm²), used to distribute
    /// the block's current over the grid nodes it covers.
    #[must_use]
    pub fn current_density(&self) -> f64 {
        self.switching_current / self.area()
    }

    /// Whether the point `(px, py)` lies inside the block (boundary
    /// inclusive on the lower/left edges, exclusive on the upper/right,
    /// so tilings do not double-count).
    #[must_use]
    pub fn contains(&self, px: f64, py: f64) -> bool {
        px >= self.x && px < self.x + self.width && py >= self.y && py < self.y + self.height
    }

    /// Whether this block's interior overlaps `other`'s.
    #[must_use]
    pub fn overlaps(&self, other: &FunctionalBlock) -> bool {
        self.x < other.x + other.width
            && other.x < self.x + self.width
            && self.y < other.y + other.height
            && other.y < self.y + self.height
    }

    /// Returns a copy with the switching current scaled by `factor`
    /// (used by the perturbation engine).
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::InvalidDimension`] if the scaled current
    /// would be negative or non-finite.
    pub fn with_scaled_current(&self, factor: f64) -> crate::Result<Self> {
        Self::new(
            self.name.clone(),
            self.x,
            self.y,
            self.width,
            self.height,
            self.switching_current * factor,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_block_roundtrips() {
        let b = FunctionalBlock::new("b", 1.0, 2.0, 3.0, 4.0, 0.5).unwrap();
        assert_eq!(b.name(), "b");
        assert_eq!(b.area(), 12.0);
        assert_eq!(b.center(), (2.5, 4.0));
        assert!((b.current_density() - 0.5 / 12.0).abs() < 1e-15);
    }

    #[test]
    fn zero_size_rejected() {
        assert!(FunctionalBlock::new("b", 0.0, 0.0, 0.0, 1.0, 0.1).is_err());
        assert!(FunctionalBlock::new("b", 0.0, 0.0, 1.0, 0.0, 0.1).is_err());
    }

    #[test]
    fn negative_coordinate_rejected() {
        let err = FunctionalBlock::new("b", -1.0, 0.0, 1.0, 1.0, 0.1).unwrap_err();
        assert!(matches!(err, FloorplanError::InvalidDimension { .. }));
    }

    #[test]
    fn nan_current_rejected() {
        assert!(FunctionalBlock::new("b", 0.0, 0.0, 1.0, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn zero_current_allowed() {
        // Idle blocks draw no switching current; they are still legal.
        assert!(FunctionalBlock::new("b", 0.0, 0.0, 1.0, 1.0, 0.0).is_ok());
    }

    #[test]
    fn containment_half_open() {
        let b = FunctionalBlock::new("b", 0.0, 0.0, 10.0, 10.0, 0.1).unwrap();
        assert!(b.contains(0.0, 0.0));
        assert!(!b.contains(10.0, 5.0));
        assert!(!b.contains(5.0, 10.0));
    }

    #[test]
    fn overlap_detection() {
        let a = FunctionalBlock::new("a", 0.0, 0.0, 10.0, 10.0, 0.1).unwrap();
        let b = FunctionalBlock::new("b", 5.0, 5.0, 10.0, 10.0, 0.1).unwrap();
        let c = FunctionalBlock::new("c", 10.0, 0.0, 5.0, 5.0, 0.1).unwrap();
        assert!(a.overlaps(&b));
        assert!(b.overlaps(&a));
        // Touching edges do not overlap.
        assert!(!a.overlaps(&c));
    }

    #[test]
    fn scaled_current() {
        let b = FunctionalBlock::new("b", 0.0, 0.0, 1.0, 1.0, 0.4).unwrap();
        let s = b.with_scaled_current(1.5).unwrap();
        assert!((s.switching_current() - 0.6).abs() < 1e-15);
        assert!(b.with_scaled_current(-1.0).is_err());
    }
}

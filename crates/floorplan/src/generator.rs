use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Floorplan, FloorplanError, FunctionalBlock, PadPlacement, PowerNet, PowerPad};

/// Configuration for the seeded random floorplan generator.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratorConfig {
    /// Die width in µm.
    pub die_width: f64,
    /// Die height in µm.
    pub die_height: f64,
    /// Number of functional blocks to place.
    pub blocks: usize,
    /// Fraction of each grid cell a block occupies, in `(0, 1]`.
    pub cell_utilization: f64,
    /// Mean switching current per block (A); individual blocks draw a
    /// uniform random current in `[0.2, 1.8] × mean`.
    pub mean_block_current: f64,
    /// How the supply pads are placed.
    pub pad_placement: PadPlacement,
    /// Number of VDD pads (and equally many GND pads).
    pub pads_per_net: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        Self {
            die_width: 1000.0,
            die_height: 1000.0,
            blocks: 16,
            cell_utilization: 0.7,
            mean_block_current: 0.1,
            pad_placement: PadPlacement::Perimeter,
            pads_per_net: 8,
        }
    }
}

/// Seeded random floorplan generator.
///
/// Places blocks on a √n × √n grid of cells (each block filling a
/// configurable fraction of its cell, guaranteeing non-overlap by
/// construction) and rings the die with supply pads. Deterministic for a
/// given `(config, seed)` pair, which is what dataset reproducibility
/// requires.
///
/// # Example
///
/// ```
/// use ppdl_floorplan::{FloorplanGenerator, GeneratorConfig};
///
/// let fp = FloorplanGenerator::new(GeneratorConfig::default()).generate(42).unwrap();
/// assert_eq!(fp.blocks().len(), 16);
/// let fp2 = FloorplanGenerator::new(GeneratorConfig::default()).generate(42).unwrap();
/// assert_eq!(fp.blocks(), fp2.blocks()); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct FloorplanGenerator {
    config: GeneratorConfig,
}

impl FloorplanGenerator {
    /// Creates a generator with the given configuration.
    #[must_use]
    pub fn new(config: GeneratorConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &GeneratorConfig {
        &self.config
    }

    /// Generates a floorplan from a seed.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::InfeasibleConfig`] if the configuration
    /// cannot be realised (zero blocks, utilization outside `(0, 1]`,
    /// or non-positive mean current), and propagates validation errors
    /// from the floorplan mutators (which indicate a bug in the
    /// generator rather than a user error).
    pub fn generate(&self, seed: u64) -> crate::Result<Floorplan> {
        let c = &self.config;
        if c.blocks == 0 {
            return Err(FloorplanError::InfeasibleConfig {
                detail: "at least one block is required".into(),
            });
        }
        if !(c.cell_utilization > 0.0 && c.cell_utilization <= 1.0) {
            return Err(FloorplanError::InfeasibleConfig {
                detail: format!("cell utilization {} outside (0, 1]", c.cell_utilization),
            });
        }
        if !(c.mean_block_current.is_finite() && c.mean_block_current > 0.0) {
            return Err(FloorplanError::InfeasibleConfig {
                detail: format!(
                    "mean block current {} must be positive",
                    c.mean_block_current
                ),
            });
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut fp = Floorplan::new(c.die_width, c.die_height)?;

        // Blocks on a grid of cells; each block sized to a random
        // fraction of its cell around the configured utilization.
        let cols = (c.blocks as f64).sqrt().ceil() as usize;
        let rows = c.blocks.div_ceil(cols);
        let cell_w = c.die_width / cols as f64;
        let cell_h = c.die_height / rows as f64;
        for i in 0..c.blocks {
            let (r, col) = (i / cols, i % cols);
            // Utilization jitter of ±15 % keeps the dataset from being
            // perfectly regular while preserving non-overlap.
            let u = (c.cell_utilization * rng.gen_range(0.85..1.0)).min(1.0);
            let side = u.sqrt();
            let bw = cell_w * side;
            let bh = cell_h * side;
            let bx = col as f64 * cell_w + (cell_w - bw) / 2.0;
            let by = r as f64 * cell_h + (cell_h - bh) / 2.0;
            let id = c.mean_block_current * rng.gen_range(0.2..1.8);
            fp.add_block(FunctionalBlock::new(
                format!("blk_{i}"),
                bx,
                by,
                bw,
                bh,
                id,
            )?)?;
        }

        // Pads.
        match c.pad_placement {
            PadPlacement::Perimeter => {
                for i in 0..c.pads_per_net {
                    let t = (i as f64 + 0.5) / c.pads_per_net as f64;
                    let (x, y) = perimeter_point(t, c.die_width, c.die_height);
                    fp.add_pad(PowerPad::new(format!("vdd_{i}"), x, y, PowerNet::Vdd))?;
                    // Ground pads offset half a step around the ring.
                    let tg = (i as f64 + 1.0) / c.pads_per_net as f64 % 1.0;
                    let (gx, gy) = perimeter_point(tg, c.die_width, c.die_height);
                    fp.add_pad(PowerPad::new(format!("gnd_{i}"), gx, gy, PowerNet::Gnd))?;
                }
            }
            PadPlacement::AreaArray => {
                let side = (c.pads_per_net as f64).sqrt().ceil() as usize;
                let mut placed = 0;
                'outer: for r in 0..side {
                    for col in 0..side {
                        if placed >= c.pads_per_net {
                            break 'outer;
                        }
                        let x = (col as f64 + 0.5) * c.die_width / side as f64;
                        let y = (r as f64 + 0.5) * c.die_height / side as f64;
                        fp.add_pad(PowerPad::new(format!("vdd_{placed}"), x, y, PowerNet::Vdd))?;
                        fp.add_pad(PowerPad::new(
                            format!("gnd_{placed}"),
                            (x + 1.0).min(c.die_width),
                            y,
                            PowerNet::Gnd,
                        ))?;
                        placed += 1;
                    }
                }
            }
        }
        Ok(fp)
    }
}

/// Maps `t ∈ [0, 1)` to a point on the die perimeter, walking
/// counter-clockwise from the lower-left corner.
fn perimeter_point(t: f64, w: f64, h: f64) -> (f64, f64) {
    let perim = 2.0 * (w + h);
    let d = t.rem_euclid(1.0) * perim;
    if d < w {
        (d, 0.0)
    } else if d < w + h {
        (w, d - w)
    } else if d < 2.0 * w + h {
        (w - (d - w - h), h)
    } else {
        (0.0, h - (d - 2.0 * w - h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_seed() {
        let g = FloorplanGenerator::new(GeneratorConfig::default());
        let a = g.generate(7).unwrap();
        let b = g.generate(7).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let g = FloorplanGenerator::new(GeneratorConfig::default());
        let a = g.generate(1).unwrap();
        let b = g.generate(2).unwrap();
        assert_ne!(a.blocks(), b.blocks());
    }

    #[test]
    fn block_count_honoured_even_when_not_square() {
        let g = FloorplanGenerator::new(GeneratorConfig {
            blocks: 7,
            ..GeneratorConfig::default()
        });
        assert_eq!(g.generate(0).unwrap().blocks().len(), 7);
    }

    #[test]
    fn pads_on_both_nets() {
        let fp = FloorplanGenerator::new(GeneratorConfig::default())
            .generate(3)
            .unwrap();
        assert_eq!(fp.pads_on(PowerNet::Vdd).count(), 8);
        assert_eq!(fp.pads_on(PowerNet::Gnd).count(), 8);
    }

    #[test]
    fn area_array_pads_inside_die() {
        let fp = FloorplanGenerator::new(GeneratorConfig {
            pad_placement: PadPlacement::AreaArray,
            pads_per_net: 9,
            ..GeneratorConfig::default()
        })
        .generate(5)
        .unwrap();
        assert_eq!(fp.pads_on(PowerNet::Vdd).count(), 9);
        for p in fp.pads() {
            assert!(p.x() >= 0.0 && p.x() <= fp.die_width());
            assert!(p.y() >= 0.0 && p.y() <= fp.die_height());
        }
    }

    #[test]
    fn zero_blocks_rejected() {
        let g = FloorplanGenerator::new(GeneratorConfig {
            blocks: 0,
            ..GeneratorConfig::default()
        });
        assert!(matches!(
            g.generate(0),
            Err(FloorplanError::InfeasibleConfig { .. })
        ));
    }

    #[test]
    fn bad_utilization_rejected() {
        for u in [0.0, 1.5, -0.2] {
            let g = FloorplanGenerator::new(GeneratorConfig {
                cell_utilization: u,
                ..GeneratorConfig::default()
            });
            assert!(g.generate(0).is_err(), "utilization {u} should fail");
        }
    }

    #[test]
    fn perimeter_point_walks_all_edges() {
        let (w, h) = (10.0, 20.0);
        assert_eq!(perimeter_point(0.0, w, h), (0.0, 0.0));
        // Quarter of the perimeter = 15 along the walk: bottom edge (10)
        // then 5 up the right edge.
        let (x, y) = perimeter_point(0.25, w, h);
        assert_eq!((x, y), (10.0, 5.0));
        // Three quarters: past bottom(10) + right(20) + top(10) = 40,
        // walk distance 45 -> 5 down the left edge from the top.
        let (x, y) = perimeter_point(0.75, w, h);
        assert_eq!((x, y), (0.0, 15.0));
    }

    #[test]
    fn utilization_close_to_config() {
        let fp = FloorplanGenerator::new(GeneratorConfig {
            cell_utilization: 0.5,
            ..GeneratorConfig::default()
        })
        .generate(11)
        .unwrap();
        // Jitter is ±15 %, so overall utilization stays in a band.
        assert!(fp.utilization() > 0.35 && fp.utilization() < 0.55);
    }
}

use std::fmt;

/// The supply net a pad or grid line belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PowerNet {
    /// The positive supply (VDD).
    Vdd,
    /// The ground return (GND / VSS).
    Gnd,
}

impl fmt::Display for PowerNet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PowerNet::Vdd => write!(f, "VDD"),
            PowerNet::Gnd => write!(f, "GND"),
        }
    }
}

/// Where the package pads attach to the on-chip grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PadPlacement {
    /// Wirebond-style pads around the die perimeter (older IBM parts,
    /// matches the ibmpg1-4 structure with few supply nodes).
    #[default]
    Perimeter,
    /// Flip-chip area array of bumps across the whole die (matches the
    /// ibmpg5/6 structure where a large fraction of nodes are supply
    /// nodes).
    AreaArray,
}

/// A power or ground pad at a die location.
///
/// # Example
///
/// ```
/// use ppdl_floorplan::{PowerPad, PowerNet};
///
/// let p = PowerPad::new("vdd_nw", 0.0, 100.0, PowerNet::Vdd);
/// assert_eq!(p.net(), PowerNet::Vdd);
/// assert_eq!(p.position(), (0.0, 100.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PowerPad {
    name: String,
    x: f64,
    y: f64,
    net: PowerNet,
}

impl PowerPad {
    /// Creates a pad. Coordinates are validated by the floorplan when
    /// the pad is added (a pad alone has no die to be inside of).
    #[must_use]
    pub fn new(name: impl Into<String>, x: f64, y: f64, net: PowerNet) -> Self {
        Self {
            name: name.into(),
            x,
            y,
            net,
        }
    }

    /// Pad name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Pad position `(x, y)` in µm.
    #[must_use]
    pub fn position(&self) -> (f64, f64) {
        (self.x, self.y)
    }

    /// X coordinate (µm).
    #[must_use]
    pub fn x(&self) -> f64 {
        self.x
    }

    /// Y coordinate (µm).
    #[must_use]
    pub fn y(&self) -> f64 {
        self.y
    }

    /// Which net the pad feeds.
    #[must_use]
    pub fn net(&self) -> PowerNet {
        self.net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pad_accessors() {
        let p = PowerPad::new("g0", 3.0, 4.0, PowerNet::Gnd);
        assert_eq!(p.name(), "g0");
        assert_eq!(p.x(), 3.0);
        assert_eq!(p.y(), 4.0);
        assert_eq!(p.net(), PowerNet::Gnd);
    }

    #[test]
    fn net_display() {
        assert_eq!(PowerNet::Vdd.to_string(), "VDD");
        assert_eq!(PowerNet::Gnd.to_string(), "GND");
    }

    #[test]
    fn placement_default_is_perimeter() {
        assert_eq!(PadPlacement::default(), PadPlacement::Perimeter);
    }
}

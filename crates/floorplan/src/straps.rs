use crate::FloorplanError;

/// One strap of the power grid: its centre position across the core,
/// its width, and the spacing to the next strap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StrapSegment {
    /// Centre coordinate of the strap across the core (µm).
    pub position: f64,
    /// Metal width `wᵢ` (µm) — the quantity the paper's model predicts.
    pub width: f64,
    /// Spacing `sᵢ` to the following strap (µm); the last strap's
    /// spacing runs to the core edge.
    pub spacing: f64,
}

/// The set of strap widths and spacings across one direction of the
/// core, subject to the ring-width constraint of eq. 3:
/// `Σ (sᵢ + wᵢ) = W_core`.
///
/// # Example
///
/// ```
/// use ppdl_floorplan::StrapPlan;
///
/// // Four straps, each 2 µm wide with 23 µm spacing, across a 100 µm core.
/// let plan = StrapPlan::uniform(100.0, 4, 2.0).unwrap();
/// assert_eq!(plan.segments().len(), 4);
/// assert!((plan.total_extent() - 100.0).abs() < 1e-9);
/// assert!(plan.satisfies_ring_constraint(1e-9));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StrapPlan {
    core_width: f64,
    segments: Vec<StrapSegment>,
}

impl StrapPlan {
    /// Builds a plan with `count` equal-width straps evenly pitched
    /// across `core_width`; spacings are derived so the ring constraint
    /// holds exactly.
    ///
    /// # Errors
    ///
    /// Returns [`FloorplanError::InvalidDimension`] if `core_width` or
    /// `width` is not strictly positive/finite or `count` is zero, and
    /// [`FloorplanError::RingWidthViolation`] if the straps are too wide
    /// to fit (`count * width > core_width`).
    pub fn uniform(core_width: f64, count: usize, width: f64) -> crate::Result<Self> {
        if !(core_width.is_finite() && core_width > 0.0) {
            return Err(FloorplanError::InvalidDimension {
                what: "core width".into(),
                value: core_width,
            });
        }
        if count == 0 {
            return Err(FloorplanError::InvalidDimension {
                what: "strap count".into(),
                value: 0.0,
            });
        }
        if !(width.is_finite() && width > 0.0) {
            return Err(FloorplanError::InvalidDimension {
                what: "strap width".into(),
                value: width,
            });
        }
        let total_metal = width * count as f64;
        if total_metal > core_width {
            return Err(FloorplanError::RingWidthViolation {
                total: total_metal,
                core_width,
            });
        }
        let spacing = (core_width - total_metal) / count as f64;
        let pitch = core_width / count as f64;
        let segments = (0..count)
            .map(|i| StrapSegment {
                position: (i as f64 + 0.5) * pitch,
                width,
                spacing,
            })
            .collect();
        Ok(Self {
            core_width,
            segments,
        })
    }

    /// Builds a plan from explicit per-strap widths, keeping the pitch
    /// even and deriving each spacing so the ring constraint holds.
    /// This is the form the DL flow uses: the model predicts one width
    /// per strap and the spacings absorb the remainder.
    ///
    /// # Errors
    ///
    /// Same conditions as [`uniform`](Self::uniform), with the violation
    /// check applied to the *sum* of widths.
    pub fn from_widths(core_width: f64, widths: &[f64]) -> crate::Result<Self> {
        if !(core_width.is_finite() && core_width > 0.0) {
            return Err(FloorplanError::InvalidDimension {
                what: "core width".into(),
                value: core_width,
            });
        }
        if widths.is_empty() {
            return Err(FloorplanError::InvalidDimension {
                what: "strap count".into(),
                value: 0.0,
            });
        }
        let mut total_metal = 0.0;
        for &w in widths {
            if !(w.is_finite() && w > 0.0) {
                return Err(FloorplanError::InvalidDimension {
                    what: "strap width".into(),
                    value: w,
                });
            }
            total_metal += w;
        }
        if total_metal > core_width {
            return Err(FloorplanError::RingWidthViolation {
                total: total_metal,
                core_width,
            });
        }
        let count = widths.len();
        let spacing_total = core_width - total_metal;
        let spacing = spacing_total / count as f64;
        let pitch = core_width / count as f64;
        let segments = widths
            .iter()
            .enumerate()
            .map(|(i, &w)| StrapSegment {
                position: (i as f64 + 0.5) * pitch,
                width: w,
                spacing,
            })
            .collect();
        Ok(Self {
            core_width,
            segments,
        })
    }

    /// The core width this plan spans.
    #[must_use]
    pub fn core_width(&self) -> f64 {
        self.core_width
    }

    /// The strap segments, ordered by position.
    #[must_use]
    pub fn segments(&self) -> &[StrapSegment] {
        &self.segments
    }

    /// `Σ (sᵢ + wᵢ)` — must equal the core width (eq. 3).
    #[must_use]
    pub fn total_extent(&self) -> f64 {
        self.segments.iter().map(|s| s.width + s.spacing).sum()
    }

    /// Checks eq. 3 to within `tol` (absolute, in µm).
    #[must_use]
    pub fn satisfies_ring_constraint(&self, tol: f64) -> bool {
        (self.total_extent() - self.core_width).abs() <= tol
    }

    /// Total metal area per unit strap length (µm): the overdesign
    /// metric the paper's Problem 1 is trying to minimise while still
    /// meeting the IR/EM margins.
    #[must_use]
    pub fn total_metal_width(&self) -> f64 {
        self.segments.iter().map(|s| s.width).sum()
    }

    /// Number of straps, the `#PG line = W_core / wᵢ` quantity of eq. 6
    /// when widths are uniform.
    #[must_use]
    pub fn strap_count(&self) -> usize {
        self.segments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_plan_satisfies_eq3() {
        let p = StrapPlan::uniform(200.0, 8, 3.0).unwrap();
        assert!(p.satisfies_ring_constraint(1e-9));
        assert_eq!(p.strap_count(), 8);
        assert!((p.total_metal_width() - 24.0).abs() < 1e-12);
    }

    #[test]
    fn positions_increase_across_core() {
        let p = StrapPlan::uniform(100.0, 4, 1.0).unwrap();
        let pos: Vec<f64> = p.segments().iter().map(|s| s.position).collect();
        assert_eq!(pos, vec![12.5, 37.5, 62.5, 87.5]);
    }

    #[test]
    fn overfull_plan_rejected() {
        let err = StrapPlan::uniform(10.0, 4, 3.0).unwrap_err();
        assert!(matches!(err, FloorplanError::RingWidthViolation { .. }));
    }

    #[test]
    fn zero_count_rejected() {
        assert!(StrapPlan::uniform(10.0, 0, 1.0).is_err());
        assert!(StrapPlan::from_widths(10.0, &[]).is_err());
    }

    #[test]
    fn from_widths_preserves_widths_and_eq3() {
        let widths = [1.0, 2.0, 3.0];
        let p = StrapPlan::from_widths(60.0, &widths).unwrap();
        for (seg, w) in p.segments().iter().zip(&widths) {
            assert_eq!(seg.width, *w);
        }
        assert!(p.satisfies_ring_constraint(1e-9));
    }

    #[test]
    fn from_widths_rejects_bad_width() {
        assert!(StrapPlan::from_widths(10.0, &[1.0, -2.0]).is_err());
        assert!(StrapPlan::from_widths(10.0, &[1.0, f64::NAN]).is_err());
    }

    #[test]
    fn exactly_full_core_allowed() {
        // Widths exactly fill the core: zero spacing everywhere.
        let p = StrapPlan::from_widths(6.0, &[2.0, 2.0, 2.0]).unwrap();
        assert!(p.satisfies_ring_constraint(1e-12));
        assert!(p.segments().iter().all(|s| s.spacing == 0.0));
    }
}

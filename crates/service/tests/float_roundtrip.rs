//! Property tests for the wire protocol's float serialisation.
//!
//! The NDJSON writer serialises every `f64` through
//! [`ppdl_core::pipeline::json_number`]; whatever the inference path
//! produces — including NaNs and infinities from pathological inputs —
//! the emitted line must stay valid JSON and round-trip through the
//! service's own reader.

use ppdl_core::pipeline::json_number;
use ppdl_service::Json;
use proptest::prelude::*;

proptest! {
    /// Every f64 bit pattern serialises to a token the reader accepts:
    /// finite values round-trip bit-exactly (Rust's `{}` formatting is
    /// shortest-round-trip), non-finite values become `null`.
    #[test]
    fn every_f64_bit_pattern_round_trips(bits in any::<u64>()) {
        let v = f64::from_bits(bits);
        let token = json_number(v);
        let line = format!("{{\"x\":{token}}}");
        let parsed = Json::parse(&line).expect("writer output must parse");
        let got = parsed.get("x").expect("field survives");
        if v.is_finite() {
            let back = got.as_f64().expect("finite values stay numbers");
            prop_assert_eq!(back.to_bits(), v.to_bits());
        } else {
            prop_assert_eq!(got, &Json::Null);
        }
    }

    /// Arrays of widths (the `widths` reply field) survive the same
    /// round trip element-wise.
    #[test]
    fn width_arrays_round_trip(widths in proptest::collection::vec(any::<u64>(), 0..32)) {
        let tokens: Vec<String> = widths
            .iter()
            .map(|&bits| json_number(f64::from_bits(bits)))
            .collect();
        let line = format!("[{}]", tokens.join(","));
        let parsed = Json::parse(&line).expect("writer output must parse");
        let items = parsed.as_array().expect("array survives");
        prop_assert_eq!(items.len(), widths.len());
        for (item, &bits) in items.iter().zip(&widths) {
            let v = f64::from_bits(bits);
            if v.is_finite() {
                prop_assert_eq!(item.as_f64().map(f64::to_bits), Some(v.to_bits()));
            } else {
                prop_assert_eq!(item, &Json::Null);
            }
        }
    }
}

/// The named edge cases, deterministically (proptest may not draw them).
#[test]
fn named_edge_cases_never_emit_invalid_json() {
    for v in [
        f64::NAN,
        f64::INFINITY,
        f64::NEG_INFINITY,
        f64::MAX,
        f64::MIN,
        f64::MIN_POSITIVE,
        f64::EPSILON,
        -0.0,
        0.0,
        5e-324, // smallest subnormal
    ] {
        let line = format!("{{\"x\":{}}}", json_number(v));
        let parsed = Json::parse(&line).unwrap_or_else(|e| panic!("{v}: {e}"));
        let got = parsed.get("x").unwrap();
        if v.is_finite() {
            assert_eq!(got.as_f64().map(f64::to_bits), Some(v.to_bits()), "{v}");
        } else {
            assert_eq!(got, &Json::Null, "{v}");
        }
    }
}

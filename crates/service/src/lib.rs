//! The batched prediction service: load a trained bundle once, answer
//! many ECO queries.
//!
//! The paper's speedup (Table IV) pays off operationally when the
//! trained model is a long-lived asset: a [`PredictionService`] loads a
//! [`TrainedBundle`] (predictor + fitted scalers + base-design recipe)
//! once, keeps the regenerated base benchmark resident, and serves
//! batches of [`PredictRequest`]s through the same
//! [`ppdl_core::predict`] entry point the experiment pipeline uses —
//! batched across requests via [`ppdl_solver::parallel`], with a
//! bounded queue for backpressure, a FIFO response cache keyed by
//! request fingerprint, and per-batch latency/throughput counters
//! exposed as a JSON stats snapshot.
//!
//! Transport lives in [`proto`]: newline-delimited JSON over any
//! `BufRead`/`Write` pair (the `ppdl serve` subcommand wires it to
//! stdin/stdout; socket transport stays future work). Malformed
//! request lines yield typed error responses — the process never dies
//! on bad input.
//!
//! ```text
//!                 ┌──────────────── PredictionService ───────────────┐
//!  NDJSON in ──▶ parse ──▶ bounded queue ──▶ flush: cache probe      │
//!                 │            │ (backpressure)   ├─ hit  → response │
//!  NDJSON out ◀─ render ◀─ replies ◀── par_map ◀──┴─ miss → predict()│
//!                 └──────────────────────────────────────────────────┘
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
pub mod proto;

pub use json::{Json, JsonError, MAX_DEPTH};
pub use proto::{parse_line, render_reply, serve_ndjson, Command};

use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt;
use std::time::Instant;

use ppdl_core::predict::{predict, PredictRequest, PredictResponse, TrainedBundle};
use ppdl_core::CoreError;
use ppdl_netlist::SyntheticBenchmark;

/// Tuning knobs of a [`PredictionService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum requests the inbound queue holds before
    /// [`enqueue`](PredictionService::enqueue) reports backpressure.
    pub queue_capacity: usize,
    /// Maximum requests one parallel batch executes; a flush of a
    /// longer queue runs several batches back to back.
    pub max_batch: usize,
    /// Entries the FIFO response cache retains (0 disables caching).
    pub cache_capacity: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 256,
            max_batch: 64,
            cache_capacity: 1024,
        }
    }
}

/// Errors a service interaction can produce. `code()` values extend the
/// stable `layer/kind` registry of [`CoreError::code`].
#[derive(Debug)]
pub enum ServiceError {
    /// The inbound queue is at capacity; flush before enqueueing more.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// A protocol line could not be understood.
    Malformed {
        /// What was wrong with it.
        detail: String,
    },
    /// The JSON reader refused a line before protocol interpretation —
    /// currently: containers nested beyond [`MAX_DEPTH`]. Distinct from
    /// [`Malformed`](Self::Malformed) so operators can tell hostile
    /// input shapes from ordinary typos.
    Json {
        /// What the reader refused.
        detail: String,
    },
    /// A framework error from the inference path.
    Core(CoreError),
}

impl ServiceError {
    /// The stable machine-readable error code carried by wire
    /// responses.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::QueueFull { .. } => "service/queue_full",
            ServiceError::Malformed { .. } => "service/malformed",
            ServiceError::Json { .. } => "service/json",
            ServiceError::Core(e) => e.code(),
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull { capacity } => {
                write!(f, "request queue full ({capacity} pending); flush first")
            }
            ServiceError::Malformed { detail } => write!(f, "malformed request: {detail}"),
            ServiceError::Json { detail } => write!(f, "unacceptable JSON: {detail}"),
            ServiceError::Core(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::Core(e)
    }
}

/// One answered request: the echoed `id`, whether the response came
/// from the cache, and the response or its typed error.
#[derive(Debug)]
pub struct ServiceReply {
    /// The request's `id`.
    pub id: String,
    /// `true` when served from the response cache without inference.
    pub cached: bool,
    /// The response, or the typed error this request produced.
    pub result: Result<PredictResponse, ServiceError>,
}

/// A point-in-time snapshot of the service's monotonic counters,
/// reconstructed from the per-instance [`ppdl_obs::Registry`] by
/// [`PredictionService::stats`] and serialised by
/// [`PredictionService::stats_json`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Requests accepted into the queue.
    pub requests: u64,
    /// Successful responses emitted (cache hits included).
    pub ok: u64,
    /// Error responses emitted.
    pub errors: u64,
    /// Responses served from the cache.
    pub cache_hits: u64,
    /// Parallel batches executed.
    pub batches: u64,
    /// Total seconds spent flushing batches.
    pub busy_secs: f64,
    /// Size of the most recent batch.
    pub last_batch_size: usize,
    /// Wall seconds of the most recent batch.
    pub last_batch_secs: f64,
}

impl ServiceStats {
    /// Replies per busy second across the service lifetime (0 before
    /// the first flush).
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        if self.busy_secs > 0.0 {
            (self.ok + self.errors) as f64 / self.busy_secs
        } else {
            0.0
        }
    }
}

/// FIFO response cache keyed by request fingerprint.
///
/// Eviction order is carried entirely by the `order` queue — insertion
/// order, never map iteration order — and the map itself is a
/// `BTreeMap` so no code path (present or future drain/debug-dump) can
/// observe hash-seeded ordering (determinism/hashmap-iter).
#[derive(Debug, Default)]
struct ResponseCache {
    capacity: usize,
    map: BTreeMap<u64, PredictResponse>,
    order: VecDeque<u64>,
}

impl ResponseCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: BTreeMap::new(),
            order: VecDeque::new(),
        }
    }

    fn get(&self, fingerprint: u64) -> Option<&PredictResponse> {
        self.map.get(&fingerprint)
    }

    fn insert(&mut self, fingerprint: u64, response: PredictResponse) {
        if self.capacity == 0 {
            return;
        }
        if self.map.insert(fingerprint, response).is_none() {
            self.order.push_back(fingerprint);
            if self.order.len() > self.capacity {
                if let Some(evicted) = self.order.pop_front() {
                    self.map.remove(&evicted);
                }
            }
        }
    }
}

/// The long-lived batched prediction engine.
///
/// # Example
///
/// ```
/// use ppdl_core::{DlFlowConfig, PredictRequest, TrainedBundle};
/// use ppdl_netlist::IbmPgPreset;
/// use ppdl_service::{PredictionService, ServiceConfig};
///
/// let bundle = TrainedBundle::train(
///     IbmPgPreset::Ibmpg1,
///     0.01,
///     3,
///     DlFlowConfig::fast(),
///     None,
/// )
/// .unwrap();
/// let mut service = PredictionService::new(bundle, ServiceConfig::default()).unwrap();
/// service.enqueue(PredictRequest::new("q1")).unwrap();
/// let replies = service.flush();
/// assert_eq!(replies.len(), 1);
/// assert!(replies[0].result.is_ok());
/// ```
#[derive(Debug)]
pub struct PredictionService {
    bundle: TrainedBundle,
    base: SyntheticBenchmark,
    config: ServiceConfig,
    queue: Vec<PredictRequest>,
    cache: ResponseCache,
    /// Per-instance telemetry registry — always on, isolated from the
    /// [`ppdl_obs::global`] registry. Counters and the batch-latency
    /// histogram below are cached handles into it.
    registry: ppdl_obs::Registry,
    requests: ppdl_obs::Counter,
    ok: ppdl_obs::Counter,
    errors: ppdl_obs::Counter,
    cache_hits: ppdl_obs::Counter,
    batches: ppdl_obs::Counter,
    /// One sample per executed batch (milliseconds), the source of the
    /// `busy_ms` total and the p50/p95/p99 fields in
    /// [`stats_json`](Self::stats_json).
    batch_ms: ppdl_obs::HistogramHandle,
    last_batch_size: usize,
    last_batch_secs: f64,
}

impl PredictionService {
    /// Builds a service from a validated bundle: the base design is
    /// regenerated once here and kept resident, so serving never
    /// re-runs generation, calibration, sizing, or training.
    ///
    /// # Errors
    ///
    /// Propagates bundle validation and base-instantiation errors.
    pub fn new(bundle: TrainedBundle, config: ServiceConfig) -> Result<Self, ServiceError> {
        bundle.validate()?;
        let base = bundle.instantiate_base()?;
        let cache = ResponseCache::new(config.cache_capacity);
        let registry = ppdl_obs::Registry::new();
        let requests = registry.counter("service/requests");
        let ok = registry.counter("service/ok");
        let errors = registry.counter("service/errors");
        let cache_hits = registry.counter("service/cache_hits");
        let batches = registry.counter("service/batches");
        let batch_ms = registry.histogram("service/batch_ms", &ppdl_obs::latency_buckets_ms());
        Ok(Self {
            bundle,
            base,
            config,
            queue: Vec::new(),
            cache,
            registry,
            requests,
            ok,
            errors,
            cache_hits,
            batches,
            batch_ms,
            last_batch_size: 0,
            last_batch_secs: 0.0,
        })
    }

    /// The loaded bundle.
    #[must_use]
    pub fn bundle(&self) -> &TrainedBundle {
        &self.bundle
    }

    /// The resident base design queries are answered against.
    #[must_use]
    pub fn base(&self) -> &SyntheticBenchmark {
        &self.base
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Requests currently queued.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Counter snapshot, reconstructed from the telemetry registry.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            requests: self.requests.get(),
            ok: self.ok.get(),
            errors: self.errors.get(),
            cache_hits: self.cache_hits.get(),
            batches: self.batches.get(),
            busy_secs: self.batch_ms.sum() / 1e3,
            last_batch_size: self.last_batch_size,
            last_batch_secs: self.last_batch_secs,
        }
    }

    /// The per-instance telemetry registry backing the stats: the
    /// `service/…` counters, the `service/batch_ms` histogram, and the
    /// `service/flush` span.
    #[must_use]
    pub fn registry(&self) -> &ppdl_obs::Registry {
        &self.registry
    }

    /// Accepts a request into the bounded queue.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::QueueFull`] when the queue is at
    /// capacity — the backpressure signal; [`flush`](Self::flush) and
    /// retry.
    pub fn enqueue(&mut self, request: PredictRequest) -> Result<(), ServiceError> {
        if self.queue.len() >= self.config.queue_capacity {
            return Err(ServiceError::QueueFull {
                capacity: self.config.queue_capacity,
            });
        }
        self.queue.push(request);
        self.requests.inc();
        Ok(())
    }

    /// Drains the queue: consults the response cache, executes the
    /// misses in parallel batches of at most `max_batch` through the
    /// shared [`ppdl_core::predict`] entry point, and returns one reply
    /// per request in enqueue order. Per-request failures become typed
    /// error replies; flush itself never fails.
    pub fn flush(&mut self) -> Vec<ServiceReply> {
        // ppdl-lint: allow(determinism/wall-clock) -- feeds only the latency histogram/span; never touches prediction values
        let flush_start = Instant::now();
        let mut replies = Vec::with_capacity(self.queue.len());
        while !self.queue.is_empty() {
            let n = self.queue.len().min(self.config.max_batch.max(1));
            let batch: Vec<PredictRequest> = self.queue.drain(..n).collect();
            // ppdl-lint: allow(determinism/wall-clock) -- per-batch latency telemetry only
            let t0 = Instant::now();
            let mut slots: Vec<Option<ServiceReply>> = (0..batch.len()).map(|_| None).collect();
            let mut miss_indices = Vec::new();
            for (i, request) in batch.iter().enumerate() {
                if let Some(hit) = self.cache.get(request.fingerprint()) {
                    let mut response = hit.clone();
                    response.id.clone_from(&request.id);
                    self.cache_hits.inc();
                    slots[i] = Some(ServiceReply {
                        id: request.id.clone(),
                        cached: true,
                        result: Ok(response),
                    });
                } else {
                    miss_indices.push(i);
                }
            }
            let misses: Vec<&PredictRequest> = miss_indices.iter().map(|&i| &batch[i]).collect();
            let predictor = &self.bundle.predictor;
            let base = &self.base;
            let stride = self.bundle.meta.inference_stride;
            let computed = ppdl_solver::parallel::par_map_vec(&misses, |_, request| {
                predict(predictor, base, request, stride)
            });
            for (&i, outcome) in miss_indices.iter().zip(computed) {
                let request = &batch[i];
                let result = match outcome {
                    Ok(prediction) => {
                        self.cache
                            .insert(request.fingerprint(), prediction.response.clone());
                        Ok(prediction.response)
                    }
                    Err(e) => Err(ServiceError::Core(e)),
                };
                slots[i] = Some(ServiceReply {
                    id: request.id.clone(),
                    cached: false,
                    result,
                });
            }
            let batch_secs = t0.elapsed().as_secs_f64();
            self.batches.inc();
            // One latency sample per *batch* — request-level latency is
            // the batch's latency, so per-request samples would only
            // skew the quantiles toward large batches.
            self.batch_ms.record(batch_secs * 1e3);
            self.last_batch_size = batch.len();
            self.last_batch_secs = batch_secs;
            for reply in slots.into_iter().flatten() {
                match reply.result {
                    Ok(_) => self.ok.inc(),
                    Err(_) => self.errors.inc(),
                }
                replies.push(reply);
            }
        }
        if !replies.is_empty() {
            self.registry
                .record_span("service/flush", flush_start.elapsed().as_secs_f64());
        }
        replies
    }

    /// The JSON stats snapshot the wire protocol's `{"cmd":"stats"}`
    /// command returns: per-batch latency, lifetime throughput, cache
    /// hits, queue depth, and batch-latency percentiles. The legacy
    /// keys keep their order; the `p50_ms`/`p95_ms`/`p99_ms` estimates
    /// (from the `service/batch_ms` histogram; `null` before the first
    /// batch) extend the object at the end.
    #[must_use]
    pub fn stats_json(&self) -> String {
        use ppdl_core::pipeline::{json_number, json_string};
        let s = self.stats();
        let quantile = |q: f64| {
            self.batch_ms
                .quantile(q)
                .map_or_else(|| "null".to_string(), json_number)
        };
        format!(
            concat!(
                "{{\"status\":\"stats\",\"preset\":{},\"requests\":{},\"ok\":{},",
                "\"errors\":{},\"cache_hits\":{},\"batches\":{},\"queue_depth\":{},",
                "\"busy_ms\":{},\"last_batch_size\":{},\"last_batch_ms\":{},",
                "\"throughput_rps\":{},\"p50_ms\":{},\"p95_ms\":{},\"p99_ms\":{}}}"
            ),
            json_string(self.bundle.meta.preset.name()),
            s.requests,
            s.ok,
            s.errors,
            s.cache_hits,
            s.batches,
            self.queue.len(),
            json_number(s.busy_secs * 1e3),
            s.last_batch_size,
            json_number(s.last_batch_secs * 1e3),
            json_number(s.throughput_rps()),
            quantile(0.50),
            quantile(0.95),
            quantile(0.99),
        )
    }

    /// The full telemetry snapshot the wire protocol's
    /// `{"cmd":"stats","spans":true}` command returns: the service's
    /// own registry plus the process-wide [`ppdl_obs::global`] registry
    /// (which is empty unless `--telemetry` enabled global collection).
    #[must_use]
    pub fn telemetry_json(&self) -> String {
        format!(
            "{{\"status\":\"telemetry\",\"service\":{},\"global\":{}}}",
            self.registry.snapshot_json(),
            ppdl_obs::global().snapshot_json()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdl_core::{DlFlowConfig, Perturbation, PerturbationKind};
    use ppdl_netlist::IbmPgPreset;

    fn service() -> PredictionService {
        let bundle =
            TrainedBundle::train(IbmPgPreset::Ibmpg1, 0.01, 3, DlFlowConfig::fast(), None).unwrap();
        PredictionService::new(bundle, ServiceConfig::default()).unwrap()
    }

    fn request(id: &str, seed: u64) -> PredictRequest {
        PredictRequest::new(id)
            .with_perturbation(Perturbation::new(0.1, PerturbationKind::Both, seed).unwrap())
    }

    #[test]
    fn batch_replies_in_order_and_counted() {
        let mut s = service();
        for i in 0..5 {
            s.enqueue(request(&format!("q{i}"), i)).unwrap();
        }
        let replies = s.flush();
        assert_eq!(replies.len(), 5);
        for (i, r) in replies.iter().enumerate() {
            assert_eq!(r.id, format!("q{i}"));
            let resp = r.result.as_ref().unwrap();
            assert!(resp.worst_ir_mv > 0.0);
            assert!(!resp.widths.is_empty());
        }
        let st = s.stats();
        assert_eq!(st.requests, 5);
        assert_eq!(st.ok, 5);
        assert_eq!(st.errors, 0);
        assert!(st.busy_secs > 0.0);
        assert!(st.throughput_rps() > 0.0);
        assert_eq!(st.last_batch_size, 5);
    }

    #[test]
    fn batch_matches_sequential_inference() {
        let mut s = service();
        let reqs: Vec<PredictRequest> =
            (0..4).map(|i| request(&format!("q{i}"), 100 + i)).collect();
        for r in &reqs {
            s.enqueue(r.clone()).unwrap();
        }
        let replies = s.flush();
        for (reply, req) in replies.iter().zip(&reqs) {
            let direct = predict(
                &s.bundle().predictor,
                s.base(),
                req,
                s.bundle().meta.inference_stride,
            )
            .unwrap();
            let got = reply.result.as_ref().unwrap();
            assert_eq!(got.widths, direct.response.widths);
            assert_eq!(got.worst_ir_mv, direct.response.worst_ir_mv);
        }
    }

    #[test]
    fn cache_hits_repeat_payloads() {
        let mut s = service();
        s.enqueue(request("first", 9)).unwrap();
        let a = s.flush();
        // Same payload, different id: must be a cache hit with the new id.
        s.enqueue(request("second", 9)).unwrap();
        let b = s.flush();
        assert!(!a[0].cached);
        assert!(b[0].cached);
        assert_eq!(b[0].result.as_ref().unwrap().id, "second");
        assert_eq!(
            a[0].result.as_ref().unwrap().widths,
            b[0].result.as_ref().unwrap().widths
        );
        assert_eq!(s.stats().cache_hits, 1);
    }

    #[test]
    fn backpressure_and_recovery() {
        let bundle =
            TrainedBundle::train(IbmPgPreset::Ibmpg1, 0.01, 3, DlFlowConfig::fast(), None).unwrap();
        let mut s = PredictionService::new(
            bundle,
            ServiceConfig {
                queue_capacity: 2,
                max_batch: 1,
                cache_capacity: 0,
            },
        )
        .unwrap();
        s.enqueue(request("a", 1)).unwrap();
        s.enqueue(request("b", 2)).unwrap();
        let err = s.enqueue(request("c", 3)).unwrap_err();
        assert_eq!(err.code(), "service/queue_full");
        // max_batch=1 still drains the whole queue across two batches.
        let replies = s.flush();
        assert_eq!(replies.len(), 2);
        assert_eq!(s.stats().batches, 2);
        // After flushing there is room again.
        s.enqueue(request("c", 3)).unwrap();
        assert_eq!(s.queue_depth(), 1);
    }

    #[test]
    fn per_request_errors_are_typed_not_fatal() {
        let mut s = service();
        let n_loads = s.base().network().current_loads().len();
        s.enqueue(PredictRequest::new("bad").with_load_override(n_loads + 7, 1e-6))
            .unwrap();
        s.enqueue(request("good", 4)).unwrap();
        let replies = s.flush();
        assert_eq!(replies.len(), 2);
        let bad = replies[0].result.as_ref().unwrap_err();
        assert_eq!(bad.code(), "core/invalid_config");
        assert!(replies[1].result.is_ok());
        assert_eq!(s.stats().errors, 1);
        assert_eq!(s.stats().ok, 1);
    }

    #[test]
    fn burst_flush_on_full_keeps_accounting_consistent() {
        // Enqueue more requests than the queue holds in one loop,
        // flushing on backpressure exactly as the serve loop does, and
        // check every counter adds up afterwards. Seeds repeat (i % 5)
        // so the second half of the burst is served from the cache.
        let bundle =
            TrainedBundle::train(IbmPgPreset::Ibmpg1, 0.01, 3, DlFlowConfig::fast(), None).unwrap();
        let mut s = PredictionService::new(
            bundle,
            ServiceConfig {
                queue_capacity: 4,
                max_batch: 2,
                cache_capacity: 16,
            },
        )
        .unwrap();
        let mut replies = Vec::new();
        for i in 0..10u64 {
            if s.queue_depth() >= s.config().queue_capacity {
                replies.extend(s.flush());
            }
            s.enqueue(request(&format!("r{i}"), i % 5)).unwrap();
        }
        replies.extend(s.flush());

        assert_eq!(replies.len(), 10);
        assert_eq!(s.queue_depth(), 0);
        let st = s.stats();
        assert_eq!(st.requests, 10);
        assert_eq!(st.ok, 10);
        assert_eq!(st.errors, 0);
        assert_eq!(st.cache_hits, 5);
        // 10 requests drained in batches of ≤2 → exactly 5 batches.
        assert_eq!(st.batches, 5);
        // The latency histogram records one sample per *batch*, never
        // per request.
        let telemetry = Json::parse(&s.telemetry_json()).unwrap();
        let batch_ms = telemetry
            .get("service")
            .and_then(|v| v.get("histograms"))
            .and_then(|v| v.get("service/batch_ms"))
            .expect("batch_ms histogram in snapshot");
        assert_eq!(batch_ms.get("count").unwrap().as_u64(), Some(st.batches));
    }

    #[test]
    fn cache_eviction_is_insertion_ordered() {
        // The FIFO cache must evict in *insertion* order under
        // capacity pressure — never in map-iteration order. With the
        // old HashMap backing this held only because eviction reads the
        // VecDeque; this pins the behaviour against the BTreeMap
        // rewrite and any future drain-based implementation. The
        // fingerprints are chosen out of numeric order so
        // insertion-order and key-order eviction disagree.
        let mut cache = ResponseCache::new(2);
        let resp = |id: &str| PredictResponse {
            id: id.to_string(),
            widths: vec![1.0],
            worst_ir_mv: 1.0,
            dl_ms: 0.0,
        };
        cache.insert(9, resp("a"));
        cache.insert(1, resp("b"));
        cache.insert(5, resp("c")); // evicts fingerprint 9 (oldest), not 1 (smallest)
        assert!(cache.get(9).is_none(), "oldest entry must be evicted");
        assert!(cache.get(1).is_some());
        assert!(cache.get(5).is_some());
        // Re-inserting an existing key does not grow the queue or evict.
        cache.insert(1, resp("b2"));
        assert!(cache.get(5).is_some());
        assert_eq!(cache.order.len(), 2);
    }

    #[test]
    fn stats_json_is_parseable() {
        let mut s = service();
        s.enqueue(request("q", 5)).unwrap();
        let _ = s.flush();
        let v = Json::parse(&s.stats_json()).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("stats"));
        assert_eq!(v.get("ok").unwrap().as_u64(), Some(1));
        assert!(v.get("throughput_rps").unwrap().as_f64().unwrap() > 0.0);
        assert!(v.get("last_batch_ms").unwrap().as_f64().unwrap() > 0.0);
        // The percentile estimates ride along after the legacy keys.
        for key in ["p50_ms", "p95_ms", "p99_ms"] {
            assert!(v.get(key).unwrap().as_f64().unwrap() > 0.0, "{key}");
        }
    }

    #[test]
    fn percentiles_are_null_before_first_batch() {
        let s = service();
        let v = Json::parse(&s.stats_json()).unwrap();
        assert_eq!(v.get("p50_ms"), Some(&Json::Null));
        assert_eq!(v.get("p99_ms"), Some(&Json::Null));
    }
}

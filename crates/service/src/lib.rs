//! The batched prediction service: load trained bundles once, answer
//! many ECO queries — over stdin/stdout or a real network listener.
//!
//! The paper's speedup (Table IV) pays off operationally when the
//! trained model is a long-lived asset shared by many clients. The
//! crate is layered accordingly:
//!
//! * [`ServiceCore`] — one resident bundle: the validated
//!   [`TrainedBundle`], the regenerated base design, the shared
//!   response cache, per-bundle telemetry, and the admission gauge.
//!   Thread-safe; every batch executes against a core.
//! * [`PredictionService`] — the single-bundle session the `ppdl serve`
//!   stdin/stdout mode uses: a bounded queue in front of one core.
//! * [`ModelRegistry`] / [`Session`](registry::Session) — many cores
//!   resident at once, requests routed by a `bundle` id, atomic
//!   hot-swap of a bundle without dropping in-flight batches, and
//!   typed `service/overloaded` admission control when a bundle's
//!   pending work saturates.
//! * [`net`] — a hand-rolled multi-threaded TCP (and Unix-socket)
//!   listener speaking the same NDJSON protocol, one session per
//!   connection, all feeding the shared cores.
//!
//! Transport framing lives in [`proto`] (newline-delimited JSON) and
//! [`line`](crate::net) (the robust byte-level line reader: a final
//! request line without a trailing newline, a mid-line disconnect, an
//! invalid-UTF-8 line, or an oversized line all produce a reply or a
//! typed `service/json` error — never a silent drop). Malformed
//! request lines yield typed error responses; the process never dies
//! on bad input.
//!
//! ```text
//!   TCP/Unix clients ──▶ net listener ──▶ Session ─┐ route by bundle id
//!   NDJSON stdin ──────▶ PredictionService ────────┼──▶ ServiceCore (per bundle)
//!                                                  │      cache probe → par_map batch
//!   {"cmd":"load"} ────▶ ModelRegistry hot-swap ───┘      admission + telemetry
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod json;
pub(crate) mod line;
pub mod net;
pub mod proto;
pub mod registry;

pub use json::{Json, JsonError, MAX_DEPTH};
pub use net::{serve_tcp, serve_unix, NetConfig};
pub use proto::{parse_line, render_reply, serve_ndjson, Command};
pub use registry::{ModelRegistry, Session};

use std::collections::{btree_map, BTreeMap, VecDeque};
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, PoisonError};
use std::time::Instant;

use ppdl_core::predict::{predict, PredictRequest, PredictResponse, TrainedBundle};
use ppdl_core::CoreError;
use ppdl_netlist::SyntheticBenchmark;

/// Locks a mutex, recovering the guard from a poisoned lock: every
/// protected structure here (cache, last-batch pair) stays internally
/// consistent even if a panic unwound mid-update, and a wedged serving
/// process is strictly worse than a possibly-stale cache entry.
pub(crate) fn lock<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Tuning knobs of a [`PredictionService`] / [`ServiceCore`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Maximum requests one session's inbound queue holds before
    /// [`enqueue`](PredictionService::enqueue) reports backpressure.
    pub queue_capacity: usize,
    /// Maximum requests one parallel batch executes; a flush of a
    /// longer queue runs several batches back to back.
    pub max_batch: usize,
    /// Entries the FIFO response cache retains (0 disables caching).
    pub cache_capacity: usize,
    /// Admission-control bound: maximum requests a bundle's core
    /// accepts across *all* sessions (queued plus executing) before new
    /// arrivals are refused with a typed `service/overloaded` reply.
    /// Single-session backpressure (`queue_capacity`) triggers first on
    /// one pipe; this bound is what saturating concurrent network
    /// clients hit.
    pub max_pending: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            queue_capacity: 256,
            max_batch: 64,
            cache_capacity: 1024,
            max_pending: 1024,
        }
    }
}

/// Errors a service interaction can produce. `code()` values extend the
/// stable `layer/kind` registry of [`CoreError::code`].
#[derive(Debug)]
pub enum ServiceError {
    /// The inbound queue is at capacity; flush before enqueueing more.
    QueueFull {
        /// The configured capacity that was hit.
        capacity: usize,
    },
    /// Admission control refused the request: the bundle's pending work
    /// (across every session) is at [`ServiceConfig::max_pending`], or
    /// the listener is at its connection limit. Retry after the backlog
    /// drains.
    Overloaded {
        /// Pending requests when admission was refused.
        pending: usize,
        /// The configured admission capacity.
        capacity: usize,
    },
    /// A request named a bundle the registry does not hold.
    UnknownBundle {
        /// The bundle id that failed to resolve.
        bundle: String,
    },
    /// A protocol line could not be understood.
    Malformed {
        /// What was wrong with it.
        detail: String,
    },
    /// The JSON reader refused a line before protocol interpretation —
    /// containers nested beyond [`MAX_DEPTH`], an oversized line, or
    /// bytes that are not UTF-8. Distinct from
    /// [`Malformed`](Self::Malformed) so operators can tell hostile
    /// input shapes from ordinary typos.
    Json {
        /// What the reader refused.
        detail: String,
    },
    /// A framework error from the inference path.
    Core(CoreError),
}

impl ServiceError {
    /// The stable machine-readable error code carried by wire
    /// responses.
    #[must_use]
    pub fn code(&self) -> &'static str {
        match self {
            ServiceError::QueueFull { .. } => "service/queue_full",
            ServiceError::Overloaded { .. } => "service/overloaded",
            ServiceError::UnknownBundle { .. } => "service/unknown_bundle",
            ServiceError::Malformed { .. } => "service/malformed",
            ServiceError::Json { .. } => "service/json",
            ServiceError::Core(e) => e.code(),
        }
    }
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::QueueFull { capacity } => {
                write!(f, "request queue full ({capacity} pending); flush first")
            }
            ServiceError::Overloaded { pending, capacity } => {
                write!(
                    f,
                    "service overloaded ({pending} of {capacity} pending requests); retry later"
                )
            }
            ServiceError::UnknownBundle { bundle } => {
                write!(f, "no bundle '{bundle}' is registered")
            }
            ServiceError::Malformed { detail } => write!(f, "malformed request: {detail}"),
            ServiceError::Json { detail } => write!(f, "unacceptable JSON: {detail}"),
            ServiceError::Core(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Core(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CoreError> for ServiceError {
    fn from(e: CoreError) -> Self {
        ServiceError::Core(e)
    }
}

/// One answered request: the echoed `id`, whether the response came
/// from the cache, and the response or its typed error.
#[derive(Debug)]
pub struct ServiceReply {
    /// The request's `id`.
    pub id: String,
    /// `true` when served from the response cache without inference.
    pub cached: bool,
    /// The response, or the typed error this request produced.
    pub result: Result<PredictResponse, ServiceError>,
}

/// A point-in-time snapshot of a core's monotonic counters,
/// reconstructed from the per-bundle [`ppdl_obs::Registry`] by
/// [`ServiceCore::stats`] and serialised by
/// [`PredictionService::stats_json`].
#[derive(Debug, Clone, Copy, Default)]
pub struct ServiceStats {
    /// Requests accepted (admitted) for this bundle.
    pub requests: u64,
    /// Successful responses emitted (cache hits included).
    pub ok: u64,
    /// Error responses emitted.
    pub errors: u64,
    /// Responses served from the cache.
    pub cache_hits: u64,
    /// Fingerprint hits whose stored payload did NOT match the probing
    /// request — 64-bit collisions, served by inference instead of the
    /// wrong cached response.
    pub cache_collisions: u64,
    /// Parallel batches executed.
    pub batches: u64,
    /// Requests admitted but not yet answered, across all sessions.
    pub pending: usize,
    /// Total seconds spent flushing batches.
    pub busy_secs: f64,
    /// Size of the most recent batch.
    pub last_batch_size: usize,
    /// Wall seconds of the most recent batch.
    pub last_batch_secs: f64,
}

impl ServiceStats {
    /// Replies per busy second across the service lifetime (0 before
    /// the first flush).
    #[must_use]
    pub fn throughput_rps(&self) -> f64 {
        if self.busy_secs > 0.0 {
            (self.ok + self.errors) as f64 / self.busy_secs
        } else {
            0.0
        }
    }
}

/// What a cache probe found.
enum CacheProbe {
    /// Fingerprint present and the stored payload matches: a true hit.
    Hit(PredictResponse),
    /// Fingerprint present but the stored payload differs — a 64-bit
    /// collision. Must be answered by inference, never from the cache.
    Collision,
    /// Fingerprint absent.
    Miss,
}

/// FIFO response cache keyed by request fingerprint, with the full
/// request payload stored alongside so a hit is *verified*: two
/// distinct payloads whose 64-bit fingerprints collide must never be
/// served each other's response.
///
/// Eviction order is carried entirely by the `order` queue — insertion
/// order, never map iteration order — and the map itself is a
/// `BTreeMap` so no code path (present or future drain/debug-dump) can
/// observe hash-seeded ordering (determinism/hashmap-iter).
#[derive(Debug, Default)]
struct ResponseCache {
    capacity: usize,
    map: BTreeMap<u64, CacheEntry>,
    order: VecDeque<u64>,
}

#[derive(Debug)]
struct CacheEntry {
    request: PredictRequest,
    response: PredictResponse,
}

impl ResponseCache {
    fn new(capacity: usize) -> Self {
        Self {
            capacity,
            map: BTreeMap::new(),
            order: VecDeque::new(),
        }
    }

    fn probe(&self, fingerprint: u64, request: &PredictRequest) -> CacheProbe {
        match self.map.get(&fingerprint) {
            None => CacheProbe::Miss,
            Some(entry) if entry.request.payload_eq(request) => {
                CacheProbe::Hit(entry.response.clone())
            }
            Some(_) => CacheProbe::Collision,
        }
    }

    fn insert(&mut self, fingerprint: u64, request: &PredictRequest, response: PredictResponse) {
        if self.capacity == 0 {
            return;
        }
        let entry = CacheEntry {
            request: request.clone(),
            response,
        };
        match self.map.entry(fingerprint) {
            // Same fingerprint already cached: refresh in place (for a
            // collision, the newest payload wins the slot). The order
            // queue is untouched — the slot keeps its eviction age.
            btree_map::Entry::Occupied(mut o) => {
                o.insert(entry);
            }
            btree_map::Entry::Vacant(v) => {
                v.insert(entry);
                self.order.push_back(fingerprint);
                if self.order.len() > self.capacity {
                    if let Some(evicted) = self.order.pop_front() {
                        self.map.remove(&evicted);
                    }
                }
            }
        }
    }
}

/// The shared, thread-safe heart of one resident bundle: the validated
/// [`TrainedBundle`], the regenerated base design, the verified
/// response cache, the per-bundle telemetry registry, and the
/// admission gauge. A core is immutable except behind its own locks,
/// so any number of sessions (stdin, TCP connections) batch against it
/// concurrently; the [`ModelRegistry`] hot-swaps a bundle by replacing
/// the `Arc<ServiceCore>` in its slot — an in-flight batch keeps its
/// clone of the old core and completes bitwise-identically.
#[derive(Debug)]
pub struct ServiceCore {
    bundle: TrainedBundle,
    base: SyntheticBenchmark,
    config: ServiceConfig,
    cache: Mutex<ResponseCache>,
    /// Per-bundle telemetry registry — always on, isolated from the
    /// [`ppdl_obs::global`] registry. Counters and the batch-latency
    /// histogram below are cached handles into it.
    obs: ppdl_obs::Registry,
    requests: ppdl_obs::Counter,
    ok: ppdl_obs::Counter,
    errors: ppdl_obs::Counter,
    cache_hits: ppdl_obs::Counter,
    cache_collisions: ppdl_obs::Counter,
    batches: ppdl_obs::Counter,
    /// One sample per executed batch (milliseconds), the source of the
    /// `busy_ms` total and the p50/p95/p99 fields in
    /// [`PredictionService::stats_json`].
    batch_ms: ppdl_obs::HistogramHandle,
    /// Requests admitted and not yet answered, across every session on
    /// this core — the admission-control gauge.
    pending: AtomicUsize,
    last_batch: Mutex<(usize, f64)>,
}

impl ServiceCore {
    /// Builds a core from a validated bundle: the base design is
    /// regenerated once here and kept resident, so serving never
    /// re-runs generation, calibration, sizing, or training.
    ///
    /// # Errors
    ///
    /// Propagates bundle validation and base-instantiation errors.
    pub fn new(bundle: TrainedBundle, config: ServiceConfig) -> Result<Self, ServiceError> {
        bundle.validate()?;
        let base = bundle.instantiate_base()?;
        let cache = Mutex::new(ResponseCache::new(config.cache_capacity));
        let obs = ppdl_obs::Registry::new();
        let requests = obs.counter("service/requests");
        let ok = obs.counter("service/ok");
        let errors = obs.counter("service/errors");
        let cache_hits = obs.counter("service/cache_hits");
        let cache_collisions = obs.counter("service/cache_collisions");
        let batches = obs.counter("service/batches");
        let batch_ms = obs.histogram("service/batch_ms", &ppdl_obs::latency_buckets_ms());
        Ok(Self {
            bundle,
            base,
            config,
            cache,
            obs,
            requests,
            ok,
            errors,
            cache_hits,
            cache_collisions,
            batches,
            batch_ms,
            pending: AtomicUsize::new(0),
            last_batch: Mutex::new((0, 0.0)),
        })
    }

    /// The resident bundle.
    #[must_use]
    pub fn bundle(&self) -> &TrainedBundle {
        &self.bundle
    }

    /// The resident base design queries are answered against.
    #[must_use]
    pub fn base(&self) -> &SyntheticBenchmark {
        &self.base
    }

    /// The configuration the core was built with.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The per-bundle telemetry registry backing the stats.
    #[must_use]
    pub fn obs(&self) -> &ppdl_obs::Registry {
        &self.obs
    }

    /// Requests admitted and not yet answered, across all sessions.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.load(Ordering::Relaxed)
    }

    /// Counter snapshot, reconstructed from the telemetry registry.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        let (last_batch_size, last_batch_secs) = *lock(&self.last_batch);
        ServiceStats {
            requests: self.requests.get(),
            ok: self.ok.get(),
            errors: self.errors.get(),
            cache_hits: self.cache_hits.get(),
            cache_collisions: self.cache_collisions.get(),
            batches: self.batches.get(),
            pending: self.pending(),
            busy_secs: self.batch_ms.sum() / 1e3,
            last_batch_size,
            last_batch_secs,
        }
    }

    /// Admission control: reserves one pending slot and counts the
    /// request, or refuses with [`ServiceError::Overloaded`] when the
    /// core already has [`ServiceConfig::max_pending`] requests queued
    /// or executing across its sessions.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::Overloaded`]; nothing is reserved then.
    pub fn admit(&self) -> Result<(), ServiceError> {
        let capacity = self.config.max_pending.max(1);
        let mut current = self.pending.load(Ordering::Relaxed);
        loop {
            if current >= capacity {
                return Err(ServiceError::Overloaded {
                    pending: current,
                    capacity,
                });
            }
            match self.pending.compare_exchange_weak(
                current,
                current + 1,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.requests.inc();
                    return Ok(());
                }
                Err(observed) => current = observed,
            }
        }
    }

    /// Releases `n` admission slots reserved by [`admit`](Self::admit)
    /// — called once the requests are answered, or when a session is
    /// dropped with requests still queued.
    pub fn release(&self, n: usize) {
        if n > 0 {
            self.pending.fetch_sub(n, Ordering::AcqRel);
        }
    }

    /// Executes one batch against this core: verified cache probe,
    /// parallel inference for the misses, cache fill, and telemetry.
    /// Returns one reply per request in input order. Admission slots
    /// are *not* released here — the session that reserved them does
    /// that, because a hot-swap can retire a core between reservation
    /// and execution.
    pub fn run_batch(&self, batch: &[PredictRequest]) -> Vec<ServiceReply> {
        if batch.is_empty() {
            return Vec::new();
        }
        // ppdl-lint: allow(determinism/wall-clock) -- per-batch latency telemetry only
        let t0 = Instant::now();
        let mut slots: Vec<Option<ServiceReply>> = (0..batch.len()).map(|_| None).collect();
        let mut miss_indices = Vec::new();
        {
            let cache = lock(&self.cache);
            for (i, request) in batch.iter().enumerate() {
                match cache.probe(request.fingerprint(), request) {
                    CacheProbe::Hit(mut response) => {
                        response.id.clone_from(&request.id);
                        self.cache_hits.inc();
                        slots[i] = Some(ServiceReply {
                            id: request.id.clone(),
                            cached: true,
                            result: Ok(response),
                        });
                    }
                    CacheProbe::Collision => {
                        self.cache_collisions.inc();
                        miss_indices.push(i);
                    }
                    CacheProbe::Miss => miss_indices.push(i),
                }
            }
        }
        let misses: Vec<&PredictRequest> = miss_indices.iter().map(|&i| &batch[i]).collect();
        let predictor = &self.bundle.predictor;
        let base = &self.base;
        let stride = self.bundle.meta.inference_stride;
        // ppdl-lint: allow(determinism/tainted-parallel) -- predict reaches Perturbation::apply (StdRng seeded per perturbation) and its clock read is latency telemetry under its own wall-clock allow; replies are bitwise deterministic per request
        let computed = ppdl_solver::parallel::par_map_vec(&misses, |_, request| {
            predict(predictor, base, request, stride)
        });
        {
            let mut cache = lock(&self.cache);
            for (&i, outcome) in miss_indices.iter().zip(computed) {
                let request = &batch[i];
                let result = match outcome {
                    Ok(prediction) => {
                        cache.insert(request.fingerprint(), request, prediction.response.clone());
                        Ok(prediction.response)
                    }
                    Err(e) => Err(ServiceError::Core(e)),
                };
                slots[i] = Some(ServiceReply {
                    id: request.id.clone(),
                    cached: false,
                    result,
                });
            }
        }
        let batch_secs = t0.elapsed().as_secs_f64();
        self.batches.inc();
        // One latency sample per *batch* — request-level latency is the
        // batch's latency, so per-request samples would only skew the
        // quantiles toward large batches.
        self.batch_ms.record(batch_secs * 1e3);
        *lock(&self.last_batch) = (batch.len(), batch_secs);
        let replies: Vec<ServiceReply> = slots.into_iter().flatten().collect();
        for reply in &replies {
            match reply.result {
                Ok(_) => self.ok.inc(),
                Err(_) => self.errors.inc(),
            }
        }
        replies
    }

    /// The body of the stats JSON object (everything after the status
    /// tag), shared by the single-bundle snapshot and the registry's
    /// per-bundle map. `queue_depth` is session state, so the caller
    /// supplies it (a registry reports the core-wide pending count).
    pub(crate) fn stats_body(&self, queue_depth: usize) -> String {
        use ppdl_core::pipeline::{json_number, json_string};
        let s = self.stats();
        let quantile = |q: f64| {
            self.batch_ms
                .quantile(q)
                .map_or_else(|| "null".to_string(), json_number)
        };
        format!(
            concat!(
                "\"preset\":{},\"requests\":{},\"ok\":{},",
                "\"errors\":{},\"cache_hits\":{},\"batches\":{},\"queue_depth\":{},",
                "\"busy_ms\":{},\"last_batch_size\":{},\"last_batch_ms\":{},",
                "\"throughput_rps\":{},\"p50_ms\":{},\"p95_ms\":{},\"p99_ms\":{},",
                "\"cache_collisions\":{},\"pending\":{}"
            ),
            json_string(self.bundle.meta.preset.name()),
            s.requests,
            s.ok,
            s.errors,
            s.cache_hits,
            s.batches,
            queue_depth,
            json_number(s.busy_secs * 1e3),
            s.last_batch_size,
            json_number(s.last_batch_secs * 1e3),
            json_number(s.throughput_rps()),
            quantile(0.50),
            quantile(0.95),
            quantile(0.99),
            s.cache_collisions,
            s.pending,
        )
    }
}

/// The long-lived single-bundle batched prediction engine: a bounded
/// queue in front of one [`ServiceCore`]. This is what the `ppdl
/// serve` stdin/stdout mode runs; network serving routes through
/// [`ModelRegistry`] sessions instead, sharing the same core type.
///
/// # Example
///
/// ```
/// use ppdl_core::{DlFlowConfig, PredictRequest, TrainedBundle};
/// use ppdl_netlist::IbmPgPreset;
/// use ppdl_service::{PredictionService, ServiceConfig};
///
/// let bundle = TrainedBundle::train(
///     IbmPgPreset::Ibmpg1,
///     0.01,
///     3,
///     DlFlowConfig::fast(),
///     None,
/// )
/// .unwrap();
/// let mut service = PredictionService::new(bundle, ServiceConfig::default()).unwrap();
/// service.enqueue(PredictRequest::new("q1")).unwrap();
/// let replies = service.flush();
/// assert_eq!(replies.len(), 1);
/// assert!(replies[0].result.is_ok());
/// ```
#[derive(Debug)]
pub struct PredictionService {
    core: ServiceCore,
    queue: Vec<PredictRequest>,
}

impl PredictionService {
    /// Builds a service from a validated bundle: the base design is
    /// regenerated once here and kept resident, so serving never
    /// re-runs generation, calibration, sizing, or training.
    ///
    /// # Errors
    ///
    /// Propagates bundle validation and base-instantiation errors.
    pub fn new(bundle: TrainedBundle, config: ServiceConfig) -> Result<Self, ServiceError> {
        Ok(Self {
            core: ServiceCore::new(bundle, config)?,
            queue: Vec::new(),
        })
    }

    /// The loaded bundle.
    #[must_use]
    pub fn bundle(&self) -> &TrainedBundle {
        self.core.bundle()
    }

    /// The resident base design queries are answered against.
    #[must_use]
    pub fn base(&self) -> &SyntheticBenchmark {
        self.core.base()
    }

    /// The service configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        self.core.config()
    }

    /// Requests currently queued.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Counter snapshot, reconstructed from the telemetry registry.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        self.core.stats()
    }

    /// The per-instance telemetry registry backing the stats: the
    /// `service/…` counters, the `service/batch_ms` histogram, and the
    /// `service/flush` span.
    #[must_use]
    pub fn registry(&self) -> &ppdl_obs::Registry {
        self.core.obs()
    }

    /// Accepts a request into the bounded queue.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceError::QueueFull`] when the queue is at
    /// capacity — the backpressure signal; [`flush`](Self::flush) and
    /// retry — and [`ServiceError::Overloaded`] when the core's
    /// admission bound is hit.
    pub fn enqueue(&mut self, request: PredictRequest) -> Result<(), ServiceError> {
        if self.queue.len() >= self.core.config().queue_capacity {
            return Err(ServiceError::QueueFull {
                capacity: self.core.config().queue_capacity,
            });
        }
        self.core.admit()?;
        self.queue.push(request);
        Ok(())
    }

    /// Drains the queue: consults the response cache, executes the
    /// misses in parallel batches of at most `max_batch` through the
    /// shared [`ppdl_core::predict`] entry point, and returns one reply
    /// per request in enqueue order. Per-request failures become typed
    /// error replies; flush itself never fails.
    pub fn flush(&mut self) -> Vec<ServiceReply> {
        // ppdl-lint: allow(determinism/wall-clock) -- feeds only the latency histogram/span; never touches prediction values
        let flush_start = Instant::now();
        let mut replies = Vec::with_capacity(self.queue.len());
        while !self.queue.is_empty() {
            let n = self.queue.len().min(self.core.config().max_batch.max(1));
            let batch: Vec<PredictRequest> = self.queue.drain(..n).collect();
            replies.extend(self.core.run_batch(&batch));
            self.core.release(batch.len());
        }
        if !replies.is_empty() {
            self.core
                .obs()
                .record_span("service/flush", flush_start.elapsed().as_secs_f64());
        }
        replies
    }

    /// The JSON stats snapshot the wire protocol's `{"cmd":"stats"}`
    /// command returns: per-batch latency, lifetime throughput, cache
    /// hits, queue depth, and batch-latency percentiles. The legacy
    /// keys keep their order; `cache_collisions` (verified-cache misses
    /// from fingerprint collisions) and `pending` (admission gauge)
    /// extend the object at the end.
    #[must_use]
    pub fn stats_json(&self) -> String {
        format!(
            "{{\"status\":\"stats\",{}}}",
            self.core.stats_body(self.queue.len())
        )
    }

    /// The full telemetry snapshot the wire protocol's
    /// `{"cmd":"stats","spans":true}` command returns: the service's
    /// own registry plus the process-wide [`ppdl_obs::global`] registry
    /// (which is empty unless `--telemetry` enabled global collection).
    #[must_use]
    pub fn telemetry_json(&self) -> String {
        format!(
            "{{\"status\":\"telemetry\",\"service\":{},\"global\":{}}}",
            self.core.obs().snapshot_json(),
            ppdl_obs::global().snapshot_json()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ppdl_core::{DlFlowConfig, Perturbation, PerturbationKind};
    use ppdl_netlist::IbmPgPreset;

    fn service() -> PredictionService {
        let bundle =
            TrainedBundle::train(IbmPgPreset::Ibmpg1, 0.01, 3, DlFlowConfig::fast(), None).unwrap();
        PredictionService::new(bundle, ServiceConfig::default()).unwrap()
    }

    fn request(id: &str, seed: u64) -> PredictRequest {
        PredictRequest::new(id)
            .with_perturbation(Perturbation::new(0.1, PerturbationKind::Both, seed).unwrap())
    }

    #[test]
    fn batch_replies_in_order_and_counted() {
        let mut s = service();
        for i in 0..5 {
            s.enqueue(request(&format!("q{i}"), i)).unwrap();
        }
        let replies = s.flush();
        assert_eq!(replies.len(), 5);
        for (i, r) in replies.iter().enumerate() {
            assert_eq!(r.id, format!("q{i}"));
            let resp = r.result.as_ref().unwrap();
            assert!(resp.worst_ir_mv > 0.0);
            assert!(!resp.widths.is_empty());
        }
        let st = s.stats();
        assert_eq!(st.requests, 5);
        assert_eq!(st.ok, 5);
        assert_eq!(st.errors, 0);
        assert_eq!(st.pending, 0);
        assert!(st.busy_secs > 0.0);
        assert!(st.throughput_rps() > 0.0);
        assert_eq!(st.last_batch_size, 5);
    }

    #[test]
    fn batch_matches_sequential_inference() {
        let mut s = service();
        let reqs: Vec<PredictRequest> =
            (0..4).map(|i| request(&format!("q{i}"), 100 + i)).collect();
        for r in &reqs {
            s.enqueue(r.clone()).unwrap();
        }
        let replies = s.flush();
        for (reply, req) in replies.iter().zip(&reqs) {
            let direct = predict(
                &s.bundle().predictor,
                s.base(),
                req,
                s.bundle().meta.inference_stride,
            )
            .unwrap();
            let got = reply.result.as_ref().unwrap();
            assert_eq!(got.widths, direct.response.widths);
            assert_eq!(got.worst_ir_mv, direct.response.worst_ir_mv);
        }
    }

    #[test]
    fn cache_hits_repeat_payloads() {
        let mut s = service();
        s.enqueue(request("first", 9)).unwrap();
        let a = s.flush();
        // Same payload, different id: must be a cache hit with the new id.
        s.enqueue(request("second", 9)).unwrap();
        let b = s.flush();
        assert!(!a[0].cached);
        assert!(b[0].cached);
        assert_eq!(b[0].result.as_ref().unwrap().id, "second");
        assert_eq!(
            a[0].result.as_ref().unwrap().widths,
            b[0].result.as_ref().unwrap().widths
        );
        assert_eq!(s.stats().cache_hits, 1);
        assert_eq!(s.stats().cache_collisions, 0);
    }

    #[test]
    fn backpressure_and_recovery() {
        let bundle =
            TrainedBundle::train(IbmPgPreset::Ibmpg1, 0.01, 3, DlFlowConfig::fast(), None).unwrap();
        let mut s = PredictionService::new(
            bundle,
            ServiceConfig {
                queue_capacity: 2,
                max_batch: 1,
                cache_capacity: 0,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        s.enqueue(request("a", 1)).unwrap();
        s.enqueue(request("b", 2)).unwrap();
        let err = s.enqueue(request("c", 3)).unwrap_err();
        assert_eq!(err.code(), "service/queue_full");
        // max_batch=1 still drains the whole queue across two batches.
        let replies = s.flush();
        assert_eq!(replies.len(), 2);
        assert_eq!(s.stats().batches, 2);
        // After flushing there is room again.
        s.enqueue(request("c", 3)).unwrap();
        assert_eq!(s.queue_depth(), 1);
    }

    #[test]
    fn admission_control_refuses_past_max_pending() {
        let bundle =
            TrainedBundle::train(IbmPgPreset::Ibmpg1, 0.01, 3, DlFlowConfig::fast(), None).unwrap();
        let mut s = PredictionService::new(
            bundle,
            ServiceConfig {
                queue_capacity: 64,
                max_pending: 3,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        for i in 0..3 {
            s.enqueue(request(&format!("q{i}"), i)).unwrap();
        }
        let err = s.enqueue(request("q3", 3)).unwrap_err();
        assert_eq!(err.code(), "service/overloaded");
        assert_eq!(s.stats().pending, 3);
        // The refused request was not counted as admitted.
        assert_eq!(s.stats().requests, 3);
        // Flushing drains the gauge and admission recovers.
        let replies = s.flush();
        assert_eq!(replies.len(), 3);
        assert_eq!(s.stats().pending, 0);
        s.enqueue(request("q4", 4)).unwrap();
    }

    #[test]
    fn per_request_errors_are_typed_not_fatal() {
        let mut s = service();
        let n_loads = s.base().network().current_loads().len();
        s.enqueue(PredictRequest::new("bad").with_load_override(n_loads + 7, 1e-6))
            .unwrap();
        s.enqueue(request("good", 4)).unwrap();
        let replies = s.flush();
        assert_eq!(replies.len(), 2);
        let bad = replies[0].result.as_ref().unwrap_err();
        assert_eq!(bad.code(), "core/invalid_config");
        assert!(replies[1].result.is_ok());
        assert_eq!(s.stats().errors, 1);
        assert_eq!(s.stats().ok, 1);
    }

    #[test]
    fn burst_flush_on_full_keeps_accounting_consistent() {
        // Enqueue more requests than the queue holds in one loop,
        // flushing on backpressure exactly as the serve loop does, and
        // check every counter adds up afterwards. Seeds repeat (i % 5)
        // so the second half of the burst is served from the cache.
        let bundle =
            TrainedBundle::train(IbmPgPreset::Ibmpg1, 0.01, 3, DlFlowConfig::fast(), None).unwrap();
        let mut s = PredictionService::new(
            bundle,
            ServiceConfig {
                queue_capacity: 4,
                max_batch: 2,
                cache_capacity: 16,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        let mut replies = Vec::new();
        for i in 0..10u64 {
            if s.queue_depth() >= s.config().queue_capacity {
                replies.extend(s.flush());
            }
            s.enqueue(request(&format!("r{i}"), i % 5)).unwrap();
        }
        replies.extend(s.flush());

        assert_eq!(replies.len(), 10);
        assert_eq!(s.queue_depth(), 0);
        let st = s.stats();
        assert_eq!(st.requests, 10);
        assert_eq!(st.ok, 10);
        assert_eq!(st.errors, 0);
        assert_eq!(st.cache_hits, 5);
        assert_eq!(st.pending, 0);
        // 10 requests drained in batches of ≤2 → exactly 5 batches.
        assert_eq!(st.batches, 5);
        // The latency histogram records one sample per *batch*, never
        // per request.
        let telemetry = Json::parse(&s.telemetry_json()).unwrap();
        let batch_ms = telemetry
            .get("service")
            .and_then(|v| v.get("histograms"))
            .and_then(|v| v.get("service/batch_ms"))
            .expect("batch_ms histogram in snapshot");
        assert_eq!(batch_ms.get("count").unwrap().as_u64(), Some(st.batches));
    }

    #[test]
    fn cache_eviction_is_insertion_ordered() {
        // The FIFO cache must evict in *insertion* order under
        // capacity pressure — never in map-iteration order. With the
        // old HashMap backing this held only because eviction reads the
        // VecDeque; this pins the behaviour against the BTreeMap
        // rewrite and any future drain-based implementation. The
        // fingerprints are chosen out of numeric order so
        // insertion-order and key-order eviction disagree.
        let mut cache = ResponseCache::new(2);
        let resp = |id: &str| PredictResponse {
            id: id.to_string(),
            widths: vec![1.0],
            worst_ir_mv: 1.0,
            dl_ms: 0.0,
        };
        let req = |seed: u64| {
            PredictRequest::new("r")
                .with_perturbation(Perturbation::new(0.1, PerturbationKind::Both, seed).unwrap())
        };
        cache.insert(9, &req(9), resp("a"));
        cache.insert(1, &req(1), resp("b"));
        cache.insert(5, &req(5), resp("c")); // evicts fingerprint 9 (oldest), not 1 (smallest)
        assert!(
            matches!(cache.probe(9, &req(9)), CacheProbe::Miss),
            "oldest entry must be evicted"
        );
        assert!(matches!(cache.probe(1, &req(1)), CacheProbe::Hit(_)));
        assert!(matches!(cache.probe(5, &req(5)), CacheProbe::Hit(_)));
        // Re-inserting an existing key does not grow the queue or evict.
        cache.insert(1, &req(1), resp("b2"));
        assert!(matches!(cache.probe(5, &req(5)), CacheProbe::Hit(_)));
        assert_eq!(cache.order.len(), 2);
    }

    #[test]
    fn forced_fingerprint_collision_never_returns_wrong_response() {
        // Regression for the bare-u64 cache key: two requests with
        // *different* payloads stored under the same fingerprint (as a
        // real 64-bit collision would produce) must not be served each
        // other's response. Before the payload-verified cache, probe()
        // keyed by the bare fingerprint and returned request A's
        // response for request B.
        let mut cache = ResponseCache::new(8);
        let req_a = PredictRequest::new("a")
            .with_perturbation(Perturbation::new(0.1, PerturbationKind::Both, 1).unwrap());
        let req_b = PredictRequest::new("b")
            .with_perturbation(Perturbation::new(0.2, PerturbationKind::Both, 2).unwrap());
        assert!(!req_a.payload_eq(&req_b));
        let resp_a = PredictResponse {
            id: "a".to_string(),
            widths: vec![1.0, 2.0],
            worst_ir_mv: 3.0,
            dl_ms: 0.0,
        };
        const COLLIDING_FINGERPRINT: u64 = 0xDEAD_BEEF;
        cache.insert(COLLIDING_FINGERPRINT, &req_a, resp_a.clone());
        // The colliding probe must be a typed Collision (answered by
        // inference), never a Hit carrying request A's response.
        assert!(matches!(
            cache.probe(COLLIDING_FINGERPRINT, &req_b),
            CacheProbe::Collision
        ));
        // The true owner still hits.
        match cache.probe(COLLIDING_FINGERPRINT, &req_a) {
            CacheProbe::Hit(r) => assert_eq!(r.widths, resp_a.widths),
            _ => panic!("verified probe must hit for the owning payload"),
        }
        // A colliding insert takes the slot over; the old payload now
        // misses by verification instead of hitting the wrong entry.
        let resp_b = PredictResponse {
            id: "b".to_string(),
            widths: vec![9.0],
            worst_ir_mv: 1.0,
            dl_ms: 0.0,
        };
        cache.insert(COLLIDING_FINGERPRINT, &req_b, resp_b.clone());
        assert!(matches!(
            cache.probe(COLLIDING_FINGERPRINT, &req_a),
            CacheProbe::Collision
        ));
        match cache.probe(COLLIDING_FINGERPRINT, &req_b) {
            CacheProbe::Hit(r) => assert_eq!(r.widths, resp_b.widths),
            _ => panic!("newest payload owns the collided slot"),
        }
    }

    #[test]
    fn collision_counter_reaches_the_stats() {
        // End-to-end through a service: same gamma/kind/seed payloads
        // hit, and the collision counter surfaces in the stats JSON.
        let s = service();
        let v = Json::parse(&s.stats_json()).unwrap();
        assert_eq!(v.get("cache_collisions").unwrap().as_u64(), Some(0));
        assert_eq!(v.get("pending").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn stats_json_is_parseable() {
        let mut s = service();
        s.enqueue(request("q", 5)).unwrap();
        let _ = s.flush();
        let v = Json::parse(&s.stats_json()).unwrap();
        assert_eq!(v.get("status").unwrap().as_str(), Some("stats"));
        assert_eq!(v.get("ok").unwrap().as_u64(), Some(1));
        assert!(v.get("throughput_rps").unwrap().as_f64().unwrap() > 0.0);
        assert!(v.get("last_batch_ms").unwrap().as_f64().unwrap() > 0.0);
        // The percentile estimates ride along after the legacy keys.
        for key in ["p50_ms", "p95_ms", "p99_ms"] {
            assert!(v.get(key).unwrap().as_f64().unwrap() > 0.0, "{key}");
        }
    }

    #[test]
    fn percentiles_are_null_before_first_batch() {
        let s = service();
        let v = Json::parse(&s.stats_json()).unwrap();
        assert_eq!(v.get("p50_ms"), Some(&Json::Null));
        assert_eq!(v.get("p99_ms"), Some(&Json::Null));
    }
}

//! The newline-delimited JSON wire protocol.
//!
//! One JSON object per line, one line per reply. Request lines:
//!
//! ```json
//! {"id":"q1","gamma":0.1,"kind":"both","seed":5}
//! {"id":"q2","loads":[[0,0.0012],[17,0.0009]],"stride":2}
//! {"id":"q3","bundle":"ibmpg2","gamma":0.1}
//! {"cmd":"flush"}
//! {"cmd":"stats"}
//! {"cmd":"stats","spans":true}
//! {"cmd":"load","bundle":"ibmpg2","path":"new.bundle"}
//! {"cmd":"bundles"}
//! {"cmd":"quit"}
//! {"cmd":"shutdown"}
//! ```
//!
//! * `id` (required, string) — echoed in the reply.
//! * `bundle` (optional, string) — which registered bundle answers the
//!   request. Only meaningful against the multi-bundle registry
//!   listener (`ppdl serve --listen`/`--unix`); the single-bundle
//!   stdin/stdout mode rejects it with `service/unknown_bundle`.
//! * `gamma` (optional, number in `(0,1)`) — §IV-D perturbation size;
//!   `kind` (`voltages`|`loads`|`both`, default `both`) and `seed`
//!   (integer, default 1) refine it.
//! * `loads` (optional, array of `[index, amps]` pairs) — explicit ECO
//!   current overrides applied after the perturbation.
//! * `stride` (optional, integer ≥ 1) — inference stride override.
//!
//! Replies are `{"id":…,"status":"ok","worst_ir_mv":…,"dl_ms":…,
//! "cached":…,"widths":[…]}` or `{"id":…,"status":"error","code":…,
//! "detail":…}`; `{"cmd":"stats"}` answers with the service's
//! [`stats_json`](crate::PredictionService::stats_json) snapshot
//! (`"status":"stats"`), and `{"cmd":"stats","spans":true}` with the
//! full [`telemetry_json`](crate::PredictionService::telemetry_json)
//! span/histogram dump (`"status":"telemetry"`). Requests accumulate
//! in the bounded queue and execute as one parallel batch on `flush`,
//! on `quit`, at end of input, or when the queue reaches capacity
//! (backpressure flushes rather than drops). `{"cmd":"load"}` and
//! `{"cmd":"bundles"}` manage the registry in listener mode (hot-swap
//! a bundle / list the resident ones); `{"cmd":"shutdown"}` stops the
//! whole listener (in stdin mode it is equivalent to `quit`).
//!
//! Malformed lines produce an error reply and the loop keeps serving;
//! lines nesting JSON containers beyond [`MAX_DEPTH`](crate::MAX_DEPTH)
//! levels are rejected with code `service/json` before the reader
//! recurses into them, so a `[[[[…` bomb cannot overflow the stack.
//! Framing is byte-level (see `line.rs`): a final request line without
//! a trailing newline is parsed at EOF, an invalid-UTF-8 or oversized
//! line yields one typed `service/json` error and the stream continues,
//! and a transport error still flushes everything already queued before
//! surfacing — no accepted request is ever silently dropped.

use std::io::{self, BufRead, Write};

use ppdl_core::pipeline::{json_number, json_string};
use ppdl_core::predict::{parse_kind, PredictRequest};
use ppdl_core::Perturbation;

use crate::json::{Json, JsonError};
use crate::line::{LineEvent, LineReader, DEFAULT_MAX_LINE_BYTES};
use crate::{PredictionService, ServiceError, ServiceReply};

/// One parsed protocol line.
#[derive(Debug, Clone)]
pub enum Command {
    /// A prediction request to enqueue.
    Request {
        /// The registry bundle that should answer (`None` routes to
        /// the default bundle / the single loaded bundle).
        bundle: Option<String>,
        /// The request itself.
        request: PredictRequest,
    },
    /// Execute everything queued and emit the replies.
    Flush,
    /// Emit the stats snapshot (the full telemetry dump when `spans`).
    Stats {
        /// `true` requests the span/histogram telemetry snapshot
        /// instead of the flat stats object.
        spans: bool,
    },
    /// Hot-swap (or add) a registry bundle from a saved bundle file.
    Load {
        /// Registry name the bundle is installed under.
        bundle: String,
        /// Filesystem path of the saved bundle.
        path: String,
    },
    /// List the resident registry bundles.
    Bundles,
    /// Flush, then stop serving this connection.
    Quit,
    /// Flush, then stop the whole listener (all connections drain).
    Shutdown,
}

fn malformed(detail: impl Into<String>) -> ServiceError {
    ServiceError::Malformed {
        detail: detail.into(),
    }
}

/// Parses one protocol line into a [`Command`].
///
/// # Errors
///
/// Returns [`ServiceError::Malformed`] for JSON syntax/shape problems,
/// [`ServiceError::Json`] when the reader refuses the line outright
/// (nesting beyond the depth limit), and [`ServiceError::Core`] for
/// semantically invalid values (e.g. γ out of range), so wire replies
/// carry the precise error code.
pub fn parse_line(line: &str) -> Result<Command, ServiceError> {
    let value = Json::parse(line).map_err(|e| match e {
        JsonError::TooDeep { .. } => ServiceError::Json {
            detail: e.to_string(),
        },
        JsonError::Syntax(detail) => malformed(detail),
    })?;
    if !matches!(value, Json::Obj(_)) {
        return Err(malformed("request line must be a JSON object"));
    }
    if let Some(cmd) = value.get("cmd") {
        let cmd = cmd
            .as_str()
            .ok_or_else(|| malformed("\"cmd\" must be a string"))?;
        return match cmd {
            "flush" => Ok(Command::Flush),
            "stats" => {
                let spans = match value.get("spans") {
                    None => false,
                    Some(Json::Bool(b)) => *b,
                    Some(_) => return Err(malformed("\"spans\" must be a boolean")),
                };
                Ok(Command::Stats { spans })
            }
            "load" => {
                let bundle = value
                    .get("bundle")
                    .and_then(Json::as_str)
                    .ok_or_else(|| malformed("\"load\" needs a string \"bundle\" name"))?;
                let path = value
                    .get("path")
                    .and_then(Json::as_str)
                    .ok_or_else(|| malformed("\"load\" needs a string \"path\""))?;
                Ok(Command::Load {
                    bundle: bundle.to_string(),
                    path: path.to_string(),
                })
            }
            "bundles" => Ok(Command::Bundles),
            "quit" => Ok(Command::Quit),
            "shutdown" => Ok(Command::Shutdown),
            other => Err(malformed(format!(
                "unknown command '{other}' (flush|stats|load|bundles|quit|shutdown)"
            ))),
        };
    }
    let id = value
        .get("id")
        .and_then(Json::as_str)
        .ok_or_else(|| malformed("request needs a string \"id\""))?;
    let bundle = match value.get("bundle") {
        None => None,
        Some(b) => Some(
            b.as_str()
                .ok_or_else(|| malformed("\"bundle\" must be a string"))?
                .to_string(),
        ),
    };
    let mut request = PredictRequest::new(id);
    if let Some(gamma) = value.get("gamma") {
        let gamma = gamma
            .as_f64()
            .ok_or_else(|| malformed("\"gamma\" must be a number"))?;
        let kind = match value.get("kind") {
            Some(k) => parse_kind(
                k.as_str()
                    .ok_or_else(|| malformed("\"kind\" must be a string"))?,
            )
            .map_err(ServiceError::Core)?,
            None => ppdl_core::PerturbationKind::Both,
        };
        let seed = match value.get("seed") {
            Some(s) => s
                .as_u64()
                .ok_or_else(|| malformed("\"seed\" must be a non-negative integer"))?,
            None => 1,
        };
        request = request
            .with_perturbation(Perturbation::new(gamma, kind, seed).map_err(ServiceError::Core)?);
    } else if value.get("kind").is_some() || value.get("seed").is_some() {
        return Err(malformed("\"kind\"/\"seed\" need a \"gamma\""));
    }
    if let Some(loads) = value.get("loads") {
        let loads = loads
            .as_array()
            .ok_or_else(|| malformed("\"loads\" must be an array of [index, amps] pairs"))?;
        for pair in loads {
            let pair = pair
                .as_array()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| malformed("each load override must be an [index, amps] pair"))?;
            let index = pair[0]
                .as_u64()
                .ok_or_else(|| malformed("load override index must be a non-negative integer"))?;
            let amps = pair[1]
                .as_f64()
                .ok_or_else(|| malformed("load override amps must be a number"))?;
            request = request.with_load_override(index as usize, amps);
        }
    }
    if let Some(stride) = value.get("stride") {
        let stride = stride
            .as_u64()
            .ok_or_else(|| malformed("\"stride\" must be a non-negative integer"))?;
        request = request.with_stride(stride as usize);
    }
    request.validate().map_err(ServiceError::Core)?;
    Ok(Command::Request { bundle, request })
}

/// Renders one reply as a protocol line (no trailing newline).
#[must_use]
pub fn render_reply(reply: &ServiceReply) -> String {
    match &reply.result {
        Ok(response) => {
            let widths: Vec<String> = response.widths.iter().map(|w| json_number(*w)).collect();
            format!(
                "{{\"id\":{},\"status\":\"ok\",\"worst_ir_mv\":{},\"dl_ms\":{},\"cached\":{},\"widths\":[{}]}}",
                json_string(&response.id),
                json_number(response.worst_ir_mv),
                json_number(response.dl_ms),
                reply.cached,
                widths.join(",")
            )
        }
        Err(e) => render_error(&reply.id, e),
    }
}

/// Renders an error reply line for `id` (no trailing newline).
#[must_use]
pub fn render_error(id: &str, error: &ServiceError) -> String {
    format!(
        "{{\"id\":{},\"status\":\"error\",\"code\":{},\"detail\":{}}}",
        json_string(id),
        json_string(error.code()),
        json_string(&error.to_string())
    )
}

fn emit_replies(replies: &[ServiceReply], output: &mut impl Write) -> io::Result<()> {
    for reply in replies {
        writeln!(output, "{}", render_reply(reply))?;
    }
    output.flush()
}

/// Extracts the `id` of a line that failed to parse as a command, so
/// the typed error reply can still be correlated by the client.
pub(crate) fn salvage_id(line: &str) -> String {
    Json::parse(line)
        .ok()
        .and_then(|v| v.get("id").and_then(Json::as_str).map(str::to_string))
        .unwrap_or_default()
}

/// Serves the NDJSON protocol over any reader/writer pair until
/// `{"cmd":"quit"}`/`{"cmd":"shutdown"}` or end of input; pending
/// requests are flushed at both. Malformed or failing requests yield
/// `"status":"error"` lines — this loop itself only fails on transport
/// I/O errors, and even then it flushes everything already queued
/// before surfacing the error, so no accepted request is dropped.
///
/// This is the single-bundle stdin/stdout mode: requests naming a
/// `bundle` and the registry commands (`load`, `bundles`) are answered
/// with typed errors pointing at the `--listen` registry mode.
///
/// # Errors
///
/// Propagates I/O errors from `input`/`output`.
pub fn serve_ndjson(
    service: &mut PredictionService,
    input: impl BufRead,
    output: &mut impl Write,
) -> io::Result<()> {
    let mut reader = LineReader::new(input, DEFAULT_MAX_LINE_BYTES);
    loop {
        let line = match reader.next_event() {
            LineEvent::Line(line) => line,
            LineEvent::Refused { detail } => {
                writeln!(
                    output,
                    "{}",
                    render_error("", &ServiceError::Json { detail })
                )?;
                output.flush()?;
                continue;
            }
            // Stdin is blocking, but a caller may hand us a stream
            // with a read timeout; just keep reading.
            LineEvent::Pending => continue,
            LineEvent::Eof => break,
            LineEvent::Io(e) => {
                // Answer what was accepted before dying on transport.
                let replies = service.flush();
                emit_replies(&replies, output)?;
                return Err(e);
            }
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_line(line) {
            Ok(Command::Request {
                bundle: None,
                request,
            }) => {
                // Backpressure: a full queue flushes (emitting replies
                // in arrival order) instead of dropping the request.
                if service.queue_depth() >= service.config().queue_capacity {
                    let replies = service.flush();
                    emit_replies(&replies, output)?;
                }
                if let Err(e) = service.enqueue(request) {
                    // Reachable through admission control (the queue
                    // pre-flush covers queue_full): a typed reply, not
                    // a drop.
                    writeln!(output, "{}", render_error("", &e))?;
                    output.flush()?;
                }
            }
            Ok(Command::Request {
                bundle: Some(bundle),
                request,
            }) => {
                // One process, one bundle: routing needs the registry
                // listener.
                let e = ServiceError::UnknownBundle { bundle };
                writeln!(output, "{}", render_error(&request.id, &e))?;
                output.flush()?;
            }
            Ok(Command::Load { .. } | Command::Bundles) => {
                let e = ServiceError::Malformed {
                    detail: "registry commands need the listener mode (ppdl serve --listen)"
                        .to_string(),
                };
                writeln!(output, "{}", render_error("", &e))?;
                output.flush()?;
            }
            Ok(Command::Flush) => {
                let replies = service.flush();
                emit_replies(&replies, output)?;
            }
            Ok(Command::Stats { spans }) => {
                let snapshot = if spans {
                    service.telemetry_json()
                } else {
                    service.stats_json()
                };
                writeln!(output, "{snapshot}")?;
                output.flush()?;
            }
            Ok(Command::Quit | Command::Shutdown) => break,
            Err(e) => {
                writeln!(output, "{}", render_error(&salvage_id(line), &e))?;
                output.flush()?;
            }
        }
    }
    let replies = service.flush();
    emit_replies(&replies, output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;
    use ppdl_core::predict::TrainedBundle;
    use ppdl_core::DlFlowConfig;
    use ppdl_netlist::IbmPgPreset;

    fn service() -> PredictionService {
        let bundle =
            TrainedBundle::train(IbmPgPreset::Ibmpg1, 0.01, 3, DlFlowConfig::fast(), None).unwrap();
        PredictionService::new(bundle, ServiceConfig::default()).unwrap()
    }

    fn serve(input: &str) -> Vec<Json> {
        let mut s = service();
        let mut out = Vec::new();
        serve_ndjson(&mut s, input.as_bytes(), &mut out).unwrap();
        String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect()
    }

    #[test]
    fn parse_line_shapes() {
        assert!(matches!(
            parse_line("{\"cmd\":\"flush\"}"),
            Ok(Command::Flush)
        ));
        assert!(matches!(
            parse_line("{\"cmd\":\"stats\"}"),
            Ok(Command::Stats { spans: false })
        ));
        assert!(matches!(
            parse_line("{\"cmd\":\"stats\",\"spans\":true}"),
            Ok(Command::Stats { spans: true })
        ));
        assert!(matches!(
            parse_line("{\"cmd\":\"stats\",\"spans\":1}"),
            Err(ServiceError::Malformed { .. })
        ));
        assert!(matches!(
            parse_line("{\"cmd\":\"quit\"}"),
            Ok(Command::Quit)
        ));
        let Ok(Command::Request { bundle, request: r }) = parse_line(
            r#"{"id":"a","gamma":0.1,"kind":"loads","seed":9,"stride":2,"loads":[[3,1e-4]]}"#,
        ) else {
            panic!("expected request");
        };
        assert_eq!(bundle, None);
        assert_eq!(r.id, "a");
        let p = r.perturbation.unwrap();
        assert_eq!(p.gamma(), 0.1);
        assert_eq!(p.seed(), 9);
        assert_eq!(r.load_overrides, vec![(3, 1e-4)]);
        assert_eq!(r.stride, Some(2));
    }

    #[test]
    fn parse_line_registry_shapes() {
        let Ok(Command::Request { bundle, request }) =
            parse_line(r#"{"id":"q","bundle":"ibmpg2","gamma":0.1}"#)
        else {
            panic!("expected routed request");
        };
        assert_eq!(bundle.as_deref(), Some("ibmpg2"));
        assert_eq!(request.id, "q");
        let Ok(Command::Load { bundle, path }) =
            parse_line(r#"{"cmd":"load","bundle":"b2","path":"new.bundle"}"#)
        else {
            panic!("expected load");
        };
        assert_eq!(bundle, "b2");
        assert_eq!(path, "new.bundle");
        assert!(matches!(
            parse_line("{\"cmd\":\"bundles\"}"),
            Ok(Command::Bundles)
        ));
        assert!(matches!(
            parse_line("{\"cmd\":\"shutdown\"}"),
            Ok(Command::Shutdown)
        ));
        assert_eq!(
            parse_line("{\"cmd\":\"load\",\"bundle\":\"x\"}")
                .unwrap_err()
                .code(),
            "service/malformed"
        );
        assert_eq!(
            parse_line("{\"id\":\"q\",\"bundle\":7}")
                .unwrap_err()
                .code(),
            "service/malformed"
        );
    }

    #[test]
    fn parse_line_rejections_carry_codes() {
        assert_eq!(
            parse_line("not json").unwrap_err().code(),
            "service/malformed"
        );
        assert_eq!(
            parse_line("{\"gamma\":0.1}").unwrap_err().code(),
            "service/malformed"
        );
        assert_eq!(
            parse_line("{\"cmd\":\"dance\"}").unwrap_err().code(),
            "service/malformed"
        );
        assert_eq!(
            parse_line("{\"id\":\"a\",\"gamma\":7}").unwrap_err().code(),
            "core/invalid_config"
        );
        assert_eq!(
            parse_line("{\"id\":\"a\",\"kind\":\"both\"}")
                .unwrap_err()
                .code(),
            "service/malformed"
        );
        // Depth-bomb lines get their own code, distinct from typos.
        assert_eq!(
            parse_line(&"[".repeat(100_000)).unwrap_err().code(),
            "service/json"
        );
    }

    #[test]
    fn serves_batch_and_stats() {
        let replies = serve(concat!(
            "{\"id\":\"q1\",\"gamma\":0.1,\"seed\":5}\n",
            "{\"id\":\"q2\",\"gamma\":0.1,\"seed\":6}\n",
            "{\"cmd\":\"flush\"}\n",
            "{\"cmd\":\"stats\"}\n",
        ));
        assert_eq!(replies.len(), 3);
        assert_eq!(replies[0].get("id").unwrap().as_str(), Some("q1"));
        assert_eq!(replies[0].get("status").unwrap().as_str(), Some("ok"));
        assert!(replies[0].get("worst_ir_mv").unwrap().as_f64().unwrap() > 0.0);
        assert!(!replies[0]
            .get("widths")
            .unwrap()
            .as_array()
            .unwrap()
            .is_empty());
        assert_eq!(replies[1].get("id").unwrap().as_str(), Some("q2"));
        let stats = &replies[2];
        assert_eq!(stats.get("status").unwrap().as_str(), Some("stats"));
        assert_eq!(stats.get("ok").unwrap().as_u64(), Some(2));
        assert!(stats.get("throughput_rps").unwrap().as_f64().unwrap() > 0.0);
    }

    #[test]
    fn malformed_lines_do_not_kill_the_loop() {
        // Includes the 100k-deep nesting bomb: before the depth limit
        // it overflowed the parser's stack and killed the process.
        let input = format!(
            concat!(
                "this is not json\n",
                "{{\"id\":\"bad\",\"gamma\":42}}\n",
                "{}\n",
                "{{\"id\":\"ok\",\"gamma\":0.1,\"seed\":2}}\n",
            ),
            "[".repeat(100_000)
        );
        let replies = serve(&input);
        assert_eq!(replies.len(), 4);
        assert_eq!(replies[0].get("status").unwrap().as_str(), Some("error"));
        assert_eq!(
            replies[0].get("code").unwrap().as_str(),
            Some("service/malformed")
        );
        assert_eq!(replies[1].get("id").unwrap().as_str(), Some("bad"));
        assert_eq!(
            replies[1].get("code").unwrap().as_str(),
            Some("core/invalid_config")
        );
        assert_eq!(replies[2].get("status").unwrap().as_str(), Some("error"));
        assert_eq!(
            replies[2].get("code").unwrap().as_str(),
            Some("service/json")
        );
        // The surviving request is answered by the end-of-input flush.
        assert_eq!(replies[3].get("id").unwrap().as_str(), Some("ok"));
        assert_eq!(replies[3].get("status").unwrap().as_str(), Some("ok"));
    }

    #[test]
    fn stats_spans_returns_telemetry_snapshot() {
        let replies = serve(concat!(
            "{\"id\":\"q1\",\"gamma\":0.1,\"seed\":5}\n",
            "{\"cmd\":\"flush\"}\n",
            "{\"cmd\":\"stats\",\"spans\":true}\n",
        ));
        assert_eq!(replies.len(), 2);
        let telemetry = &replies[1];
        assert_eq!(telemetry.get("status").unwrap().as_str(), Some("telemetry"));
        let service = telemetry.get("service").unwrap();
        let counters = service.get("counters").unwrap();
        assert_eq!(counters.get("service/ok").unwrap().as_u64(), Some(1));
        let batch_ms = service.get("histograms").unwrap().get("service/batch_ms");
        assert_eq!(batch_ms.unwrap().get("count").unwrap().as_u64(), Some(1));
        assert!(service.get("spans").unwrap().get("service/flush").is_some());
        // The global registry section is present even when disabled.
        assert!(telemetry.get("global").unwrap().get("counters").is_some());
    }

    #[test]
    fn final_line_without_trailing_newline_is_answered() {
        // Regression: a client that writes its last request and closes
        // the pipe without a newline must still get a reply at EOF.
        let replies = serve("{\"id\":\"tail\",\"gamma\":0.1,\"seed\":3}");
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].get("id").unwrap().as_str(), Some("tail"));
        assert_eq!(replies[0].get("status").unwrap().as_str(), Some("ok"));
    }

    #[test]
    fn invalid_utf8_line_gets_typed_error_and_queued_work_survives() {
        // Regression: with the old `BufRead::lines()` loop an invalid
        // UTF-8 line was an I/O error — the loop died, the queued
        // request was silently dropped, and no error line was written.
        let mut input: Vec<u8> = b"{\"id\":\"before\",\"gamma\":0.1,\"seed\":3}\n".to_vec();
        input.extend_from_slice(&[0xff, 0xfe, b'\n']);
        input.extend_from_slice(b"{\"id\":\"after\",\"gamma\":0.1,\"seed\":4}\n");
        let mut s = service();
        let mut out = Vec::new();
        serve_ndjson(&mut s, &input[..], &mut out).unwrap();
        let replies: Vec<Json> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        assert_eq!(replies.len(), 3);
        assert_eq!(replies[0].get("status").unwrap().as_str(), Some("error"));
        assert_eq!(
            replies[0].get("code").unwrap().as_str(),
            Some("service/json")
        );
        assert_eq!(replies[1].get("id").unwrap().as_str(), Some("before"));
        assert_eq!(replies[1].get("status").unwrap().as_str(), Some("ok"));
        assert_eq!(replies[2].get("id").unwrap().as_str(), Some("after"));
    }

    #[test]
    fn transport_error_flushes_accepted_requests_before_surfacing() {
        // A connection reset mid-stream must not eat the requests that
        // were already accepted: they are answered, then the error
        // propagates to the transport owner.
        struct Reset {
            payload: std::io::Cursor<Vec<u8>>,
            done: bool,
        }
        impl std::io::Read for Reset {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                let n = self.payload.read(buf)?;
                if n == 0 {
                    if self.done {
                        return Err(io::Error::new(io::ErrorKind::ConnectionReset, "peer reset"));
                    }
                    self.done = true;
                    return Err(io::Error::new(io::ErrorKind::ConnectionReset, "peer reset"));
                }
                Ok(n)
            }
        }
        let reader = std::io::BufReader::new(Reset {
            payload: std::io::Cursor::new(
                b"{\"id\":\"queued\",\"gamma\":0.1,\"seed\":3}\n".to_vec(),
            ),
            done: false,
        });
        let mut s = service();
        let mut out = Vec::new();
        let err = serve_ndjson(&mut s, reader, &mut out).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        let replies: Vec<Json> = String::from_utf8(out)
            .unwrap()
            .lines()
            .map(|l| Json::parse(l).unwrap())
            .collect();
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].get("id").unwrap().as_str(), Some("queued"));
        assert_eq!(replies[0].get("status").unwrap().as_str(), Some("ok"));
    }

    #[test]
    fn registry_commands_are_typed_errors_in_stdio_mode() {
        let replies = serve(concat!(
            "{\"id\":\"routed\",\"bundle\":\"other\",\"gamma\":0.1}\n",
            "{\"cmd\":\"load\",\"bundle\":\"b\",\"path\":\"x.bundle\"}\n",
            "{\"cmd\":\"bundles\"}\n",
            "{\"cmd\":\"shutdown\"}\n",
        ));
        assert_eq!(replies.len(), 3);
        assert_eq!(
            replies[0].get("code").unwrap().as_str(),
            Some("service/unknown_bundle")
        );
        assert_eq!(replies[0].get("id").unwrap().as_str(), Some("routed"));
        assert_eq!(
            replies[1].get("code").unwrap().as_str(),
            Some("service/malformed")
        );
        assert_eq!(
            replies[2].get("code").unwrap().as_str(),
            Some("service/malformed")
        );
    }

    #[test]
    fn eof_flushes_and_quit_stops() {
        // No explicit flush: EOF answers the pending request.
        let replies = serve("{\"id\":\"pending\",\"gamma\":0.1,\"seed\":3}\n");
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].get("status").unwrap().as_str(), Some("ok"));
        // Lines after quit are not served.
        let replies = serve(concat!(
            "{\"id\":\"before\",\"gamma\":0.1,\"seed\":3}\n",
            "{\"cmd\":\"quit\"}\n",
            "{\"id\":\"after\",\"gamma\":0.1,\"seed\":4}\n",
        ));
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].get("id").unwrap().as_str(), Some("before"));
    }
}

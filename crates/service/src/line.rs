//! Byte-level NDJSON line framing that cannot lose a request.
//!
//! `BufRead::lines()` has three failure shapes that are fatal for a
//! wire protocol: a terminal line without a trailing `\n` is easy for
//! callers to mishandle, an I/O error mid-iteration aborts the loop
//! with requests still queued, and an invalid-UTF-8 line kills the
//! whole stream even though only one line was bad. [`LineReader`]
//! replaces it with an explicit event stream:
//!
//! * [`LineEvent::Line`] — one complete line (newline and any `\r`
//!   stripped), including a **final line that ends at EOF without a
//!   newline** — a client that writes a request and disconnects
//!   mid-frame still gets its request parsed.
//! * [`LineEvent::Refused`] — a line the reader will not hand to the
//!   parser: longer than the configured cap, or not valid UTF-8. The
//!   offending bytes are discarded up to the next newline and the
//!   stream continues; the caller renders one typed `service/json`
//!   error and keeps serving.
//! * [`LineEvent::Pending`] — the underlying read timed out or would
//!   block (`WouldBlock`/`TimedOut`). Network handlers use read
//!   timeouts to poll a shutdown flag between frames; a partial line
//!   is carried across `Pending` events and completes when more bytes
//!   arrive.
//! * [`LineEvent::Eof`] / [`LineEvent::Io`] — end of stream / a real
//!   transport error. Callers flush queued work before surfacing
//!   either, so nothing enqueued is silently dropped.

use std::io::{self, ErrorKind, Read};

/// Default cap on one NDJSON line (1 MiB): far above any legitimate
/// request (a full `loads` override array is a few hundred KiB at
/// most) and small enough that a hostile endless line cannot grow the
/// buffer without bound.
pub(crate) const DEFAULT_MAX_LINE_BYTES: usize = 1 << 20;

/// One framing event from a [`LineReader`].
#[derive(Debug)]
pub(crate) enum LineEvent {
    /// A complete UTF-8 line, newline (and trailing `\r`) stripped.
    Line(String),
    /// A line the reader refused (oversized or invalid UTF-8); the
    /// stream continues at the next line.
    Refused {
        /// Human-readable reason, carried into the `service/json`
        /// error reply.
        detail: String,
    },
    /// The read would block or timed out; call again for more.
    Pending,
    /// End of stream (any unterminated final line was already emitted
    /// as its own [`Line`](Self::Line) event).
    Eof,
    /// A transport error other than `WouldBlock`/`TimedOut`.
    Io(io::Error),
}

/// Incremental line framer over any [`Read`]; see the module docs for
/// the event contract.
#[derive(Debug)]
pub(crate) struct LineReader<R> {
    inner: R,
    /// Bytes read but not yet emitted: at most one partial line.
    buf: Vec<u8>,
    /// How far `buf` has already been scanned for a newline, so a slow
    /// trickle of bytes does not rescan the prefix quadratically.
    scanned: usize,
    max_line_bytes: usize,
    /// Set while discarding an oversized line: bytes are dropped until
    /// the terminating newline, then one `Refused` event is emitted.
    skipping: bool,
}

impl<R: Read> LineReader<R> {
    pub(crate) fn new(inner: R, max_line_bytes: usize) -> Self {
        Self {
            inner,
            buf: Vec::new(),
            scanned: 0,
            max_line_bytes: max_line_bytes.max(1),
            skipping: false,
        }
    }

    /// Converts a complete raw line into an event, refusing bad UTF-8.
    fn finish_line(&mut self, mut raw: Vec<u8>) -> LineEvent {
        if raw.last() == Some(&b'\r') {
            raw.pop();
        }
        if self.skipping || raw.len() > self.max_line_bytes {
            // Either we were already draining an over-cap line, or a
            // complete oversized line arrived inside one read before
            // the incremental cap check could trigger.
            self.skipping = false;
            return LineEvent::Refused {
                detail: format!("line exceeds the {} byte limit", self.max_line_bytes),
            };
        }
        match String::from_utf8(raw) {
            Ok(line) => LineEvent::Line(line),
            Err(_) => LineEvent::Refused {
                detail: "line is not valid UTF-8".to_string(),
            },
        }
    }

    /// Produces the next framing event, blocking only as long as one
    /// `read` on the underlying stream blocks.
    pub(crate) fn next_event(&mut self) -> LineEvent {
        loop {
            if let Some(pos) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
                let pos = self.scanned + pos;
                let rest = self.buf.split_off(pos + 1);
                let mut line = std::mem::replace(&mut self.buf, rest);
                line.pop();
                self.scanned = 0;
                return self.finish_line(line);
            }
            self.scanned = self.buf.len();
            if self.buf.len() > self.max_line_bytes {
                // Too long with no newline in sight: drop what we have
                // and keep discarding until the line ends.
                self.skipping = true;
                self.buf.clear();
                self.scanned = 0;
            }
            let mut chunk = [0u8; 8192];
            match self.inner.read(&mut chunk) {
                Ok(0) => {
                    if self.skipping {
                        // Oversized line truncated by EOF: still refuse
                        // it explicitly rather than vanishing.
                        let raw = std::mem::take(&mut self.buf);
                        self.scanned = 0;
                        return self.finish_line(raw);
                    }
                    if self.buf.is_empty() {
                        return LineEvent::Eof;
                    }
                    // Final line without a trailing newline.
                    let raw = std::mem::take(&mut self.buf);
                    self.scanned = 0;
                    return self.finish_line(raw);
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) => match e.kind() {
                    ErrorKind::Interrupted => {}
                    ErrorKind::WouldBlock | ErrorKind::TimedOut => return LineEvent::Pending,
                    _ => return LineEvent::Io(e),
                },
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lines(input: &[u8]) -> Vec<String> {
        let mut reader = LineReader::new(input, DEFAULT_MAX_LINE_BYTES);
        let mut out = Vec::new();
        loop {
            match reader.next_event() {
                LineEvent::Line(l) => out.push(l),
                LineEvent::Refused { detail } => out.push(format!("<refused: {detail}>")),
                LineEvent::Eof => return out,
                LineEvent::Pending => {}
                LineEvent::Io(e) => panic!("io: {e}"),
            }
        }
    }

    #[test]
    fn final_line_without_newline_is_emitted() {
        assert_eq!(lines(b"a\nb"), vec!["a", "b"]);
        assert_eq!(lines(b"only"), vec!["only"]);
        assert_eq!(lines(b""), Vec::<String>::new());
    }

    #[test]
    fn crlf_and_blank_lines() {
        assert_eq!(lines(b"a\r\n\nb\r\n"), vec!["a", "", "b"]);
    }

    #[test]
    fn invalid_utf8_refuses_just_that_line() {
        let got = lines(b"ok\n\xff\xfe\nafter\n");
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], "ok");
        assert!(got[1].contains("not valid UTF-8"), "{}", got[1]);
        assert_eq!(got[2], "after");
    }

    #[test]
    fn oversized_line_is_refused_and_stream_continues() {
        let mut input = Vec::new();
        input.extend_from_slice(b"first\n");
        input.extend(vec![b'x'; 64]);
        input.push(b'\n');
        input.extend_from_slice(b"last\n");
        let mut reader = LineReader::new(&input[..], 16);
        let mut got = Vec::new();
        loop {
            match reader.next_event() {
                LineEvent::Line(l) => got.push(l),
                LineEvent::Refused { detail } => got.push(format!("<{detail}>")),
                LineEvent::Eof => break,
                other => panic!("unexpected {other:?}"),
            }
        }
        assert_eq!(got.len(), 3);
        assert_eq!(got[0], "first");
        assert!(got[1].contains("byte limit"), "{}", got[1]);
        assert_eq!(got[2], "last");
    }

    #[test]
    fn oversized_line_truncated_by_eof_is_still_refused() {
        let input = [b'x'; 64];
        let mut reader = LineReader::new(&input[..], 16);
        assert!(matches!(reader.next_event(), LineEvent::Refused { .. }));
        assert!(matches!(reader.next_event(), LineEvent::Eof));
    }

    /// A reader that yields its scripted results one at a time —
    /// simulates a socket trickling bytes and timing out between them.
    struct Script(Vec<io::Result<Vec<u8>>>);

    impl Read for Script {
        fn read(&mut self, out: &mut [u8]) -> io::Result<usize> {
            if self.0.is_empty() {
                return Ok(0);
            }
            match self.0.remove(0) {
                Ok(bytes) => {
                    out[..bytes.len()].copy_from_slice(&bytes);
                    Ok(bytes.len())
                }
                Err(e) => Err(e),
            }
        }
    }

    #[test]
    fn partial_line_survives_pending_gaps() {
        let mut reader = LineReader::new(
            Script(vec![
                Ok(b"{\"id\":".to_vec()),
                Err(io::Error::new(ErrorKind::WouldBlock, "timeout")),
                Ok(b"\"q\"}".to_vec()),
                Err(io::Error::new(ErrorKind::TimedOut, "timeout")),
                Ok(b"\n".to_vec()),
            ]),
            DEFAULT_MAX_LINE_BYTES,
        );
        assert!(matches!(reader.next_event(), LineEvent::Pending));
        assert!(matches!(reader.next_event(), LineEvent::Pending));
        match reader.next_event() {
            LineEvent::Line(l) => assert_eq!(l, "{\"id\":\"q\"}"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(reader.next_event(), LineEvent::Eof));
    }

    #[test]
    fn disconnect_mid_line_emits_the_partial_line() {
        // A client that writes a frame and drops the connection without
        // the newline: the bytes still come through as a line.
        let mut reader = LineReader::new(&b"{\"cmd\":\"stats\"}"[..], DEFAULT_MAX_LINE_BYTES);
        match reader.next_event() {
            LineEvent::Line(l) => assert_eq!(l, "{\"cmd\":\"stats\"}"),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(reader.next_event(), LineEvent::Eof));
    }

    #[test]
    fn real_io_error_is_surfaced_not_swallowed() {
        let mut reader = LineReader::new(
            Script(vec![
                Ok(b"good\n".to_vec()),
                Err(io::Error::new(ErrorKind::ConnectionReset, "reset")),
            ]),
            DEFAULT_MAX_LINE_BYTES,
        );
        assert!(matches!(reader.next_event(), LineEvent::Line(_)));
        match reader.next_event() {
            LineEvent::Io(e) => assert_eq!(e.kind(), ErrorKind::ConnectionReset),
            other => panic!("unexpected {other:?}"),
        }
    }
}

//! The resident model registry: many [`TrainedBundle`]s loaded at
//! once, requests routed by a `bundle` id, and atomic hot-swap.
//!
//! PowerNet and OpeNPDN both frame a trained IR-drop model as a
//! *shared* artifact reused across designs; operationally that means
//! one serving process holding several bundles (one per preset/scale,
//! or an old and a new revision side by side) with clients naming the
//! one they want. The registry is a `name → Arc<ServiceCore>` map:
//!
//! * **Routing** — [`Session::enqueue`] resolves the bundle name to
//!   its current core *at enqueue time* and pins that `Arc`. A request
//!   without a name routes to the default bundle (the first installed).
//! * **Hot-swap** — [`ModelRegistry::install`] builds the replacement
//!   core off to the side (validate, regenerate the base — the slow
//!   part) and then swaps the map slot under a brief write lock.
//!   Requests already enqueued keep their pinned `Arc` and complete
//!   bitwise-identically on the old bundle; requests enqueued after the
//!   swap run on the new one. The old core is freed when its last
//!   in-flight batch drops the reference.
//! * **Admission control** — enqueueing reserves a slot on the pinned
//!   core ([`ServiceCore::admit`]); saturation yields a typed
//!   `service/overloaded` error instead of unbounded queueing, and the
//!   reservation is released even if the session dies before flushing.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;
use std::sync::{Arc, RwLock};

use ppdl_core::pipeline::json_string;
use ppdl_core::predict::{PredictRequest, TrainedBundle};

use crate::{ServiceConfig, ServiceCore, ServiceError, ServiceReply};

/// Recovering read/write locks: the maps hold only independent
/// `Arc` slots, so a guard from a poisoned lock is still consistent.
fn read<T>(lock: &RwLock<T>) -> std::sync::RwLockReadGuard<'_, T> {
    lock.read()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

fn write<T>(lock: &RwLock<T>) -> std::sync::RwLockWriteGuard<'_, T> {
    lock.write()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A resident map of named serving cores; see the module docs.
#[derive(Debug, Default)]
pub struct ModelRegistry {
    config: ServiceConfig,
    cores: RwLock<BTreeMap<String, Arc<ServiceCore>>>,
    /// The bundle unrouted requests go to: the first one installed.
    default_name: RwLock<Option<String>>,
}

impl ModelRegistry {
    /// An empty registry; every installed bundle gets a core built
    /// with this configuration.
    #[must_use]
    pub fn new(config: ServiceConfig) -> Self {
        Self {
            config,
            cores: RwLock::new(BTreeMap::new()),
            default_name: RwLock::new(None),
        }
    }

    /// The configuration shared by every core.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Installs (or hot-swaps) `bundle` under `name`. All the heavy
    /// work — validation, regenerating the base design — happens
    /// before the map lock is touched, so concurrent sessions never
    /// stall behind a load; the swap itself is one map insert.
    ///
    /// # Errors
    ///
    /// Propagates bundle validation / base-instantiation errors; the
    /// registry is unchanged then (the old bundle keeps serving).
    pub fn install(&self, name: &str, bundle: TrainedBundle) -> Result<(), ServiceError> {
        let core = Arc::new(ServiceCore::new(bundle, self.config.clone())?);
        write(&self.cores).insert(name.to_string(), core);
        let mut default = write(&self.default_name);
        if default.is_none() {
            *default = Some(name.to_string());
        }
        Ok(())
    }

    /// Installs (or hot-swaps) the bundle saved at `path` under `name`
    /// — the `{"cmd":"load",...}` implementation.
    ///
    /// # Errors
    ///
    /// Propagates load/validation errors; the registry is unchanged.
    pub fn install_path(&self, name: &str, path: impl AsRef<Path>) -> Result<(), ServiceError> {
        let bundle = TrainedBundle::load(path)?;
        self.install(name, bundle)
    }

    /// The current core registered under `name`, if any.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<Arc<ServiceCore>> {
        read(&self.cores).get(name).map(Arc::clone)
    }

    /// Resolves an optional route to `(name, current core)`: a named
    /// bundle, or the default bundle for unrouted requests.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownBundle`] when the name (or, for `None`,
    /// the registry itself) resolves to nothing.
    pub fn resolve(&self, name: Option<&str>) -> Result<(String, Arc<ServiceCore>), ServiceError> {
        let name = match name {
            Some(n) => n.to_string(),
            None => {
                read(&self.default_name)
                    .clone()
                    .ok_or_else(|| ServiceError::UnknownBundle {
                        bundle: "<default>".to_string(),
                    })?
            }
        };
        match self.get(&name) {
            Some(core) => Ok((name, core)),
            None => Err(ServiceError::UnknownBundle { bundle: name }),
        }
    }

    /// The registered bundle names, sorted.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        read(&self.cores).keys().cloned().collect()
    }

    /// Opens a routing session (one per client connection).
    #[must_use]
    pub fn session(self: &Arc<Self>) -> Session {
        Session {
            registry: Arc::clone(self),
            queue: Vec::new(),
        }
    }

    /// The `{"cmd":"bundles"}` reply: every resident bundle with its
    /// identity label and live pending count, plus the default route.
    #[must_use]
    pub fn bundles_json(&self) -> String {
        let cores = read(&self.cores);
        let default = read(&self.default_name).clone();
        let mut out = String::from("{\"status\":\"bundles\",\"default\":");
        out.push_str(&default.map_or_else(|| "null".to_string(), |n| json_string(&n)));
        out.push_str(",\"bundles\":{");
        for (i, (name, core)) in cores.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let meta = &core.bundle().meta;
            let _ = write!(
                out,
                "{}:{{\"label\":{},\"preset\":{},\"backend\":{},\"straps\":{},\"pending\":{}}}",
                json_string(name),
                json_string(&meta.label()),
                json_string(meta.preset.name()),
                json_string(core.bundle().backend().tag()),
                core.bundle().golden_widths.len(),
                core.pending(),
            );
        }
        out.push_str("}}");
        out
    }

    /// The registry-mode `{"cmd":"stats"}` reply: one stats body per
    /// resident bundle (same fields as the single-bundle snapshot,
    /// with the core-wide pending count as the queue depth).
    #[must_use]
    pub fn stats_json(&self) -> String {
        let cores = read(&self.cores);
        let mut out = String::from("{\"status\":\"stats\",\"bundles\":{");
        for (i, (name, core)) in cores.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{{}}}",
                json_string(name),
                core.stats_body(core.pending())
            );
        }
        out.push_str("}}");
        out
    }

    /// The registry-mode telemetry snapshot: one full per-bundle
    /// [`ppdl_obs::Registry`] dump each, plus the global registry.
    #[must_use]
    pub fn telemetry_json(&self) -> String {
        let cores = read(&self.cores);
        let mut out = String::from("{\"status\":\"telemetry\",\"bundles\":{");
        for (i, (name, core)) in cores.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(name), core.obs().snapshot_json());
        }
        let _ = write!(
            out,
            "}},\"global\":{}}}",
            ppdl_obs::global().snapshot_json()
        );
        out
    }
}

/// One client's routed view of the registry: a bounded queue of
/// `(pinned core, request)` pairs. Pinning at enqueue is what makes
/// hot-swap safe — see the module docs.
#[derive(Debug)]
pub struct Session {
    registry: Arc<ModelRegistry>,
    queue: Vec<(Arc<ServiceCore>, PredictRequest)>,
}

impl Session {
    /// Requests currently queued in this session.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// The registry this session routes into.
    #[must_use]
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }

    /// Routes and admits one request: resolves `bundle` to its current
    /// core, reserves an admission slot on it, and queues the pair.
    ///
    /// # Errors
    ///
    /// [`ServiceError::QueueFull`] when this session's queue is at
    /// capacity (flush first), [`ServiceError::UnknownBundle`] for an
    /// unroutable name, and [`ServiceError::Overloaded`] when the
    /// target core's admission bound is hit. Nothing is queued or
    /// reserved on error.
    pub fn enqueue(
        &mut self,
        bundle: Option<&str>,
        request: PredictRequest,
    ) -> Result<(), ServiceError> {
        let capacity = self.registry.config().queue_capacity;
        if self.queue.len() >= capacity {
            return Err(ServiceError::QueueFull { capacity });
        }
        let (_, core) = self.registry.resolve(bundle)?;
        core.admit()?;
        self.queue.push((core, request));
        Ok(())
    }

    /// Drains the queue: consecutive requests pinned to the same core
    /// run together in batches of at most `max_batch`, in enqueue
    /// order, and every admission slot is released on the core that
    /// granted it. Replies come back in enqueue order; per-request
    /// failures are typed error replies, flush itself never fails.
    pub fn flush(&mut self) -> Vec<ServiceReply> {
        let drained = std::mem::take(&mut self.queue);
        let mut replies = Vec::with_capacity(drained.len());
        let mut i = 0;
        while i < drained.len() {
            let core = &drained[i].0;
            let max_batch = core.config().max_batch.max(1);
            let mut j = i + 1;
            while j < drained.len() && j - i < max_batch && Arc::ptr_eq(&drained[j].0, core) {
                j += 1;
            }
            let batch: Vec<PredictRequest> = drained[i..j].iter().map(|(_, r)| r.clone()).collect();
            replies.extend(core.run_batch(&batch));
            core.release(batch.len());
            i = j;
        }
        replies
    }
}

impl Drop for Session {
    /// A session dropped with requests still queued (client
    /// disconnected between enqueue and flush) returns its admission
    /// slots so the cores do not leak capacity.
    fn drop(&mut self) {
        for (core, _) in &self.queue {
            core.release(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Json;
    use ppdl_core::predict::predict;
    use ppdl_core::{DlFlowConfig, Perturbation, PerturbationKind};
    use ppdl_netlist::IbmPgPreset;

    fn bundle(seed: u64) -> TrainedBundle {
        TrainedBundle::train(IbmPgPreset::Ibmpg1, 0.01, seed, DlFlowConfig::fast(), None).unwrap()
    }

    fn request(id: &str, seed: u64) -> PredictRequest {
        PredictRequest::new(id)
            .with_perturbation(Perturbation::new(0.1, PerturbationKind::Both, seed).unwrap())
    }

    fn registry_with(names_seeds: &[(&str, u64)]) -> Arc<ModelRegistry> {
        let registry = Arc::new(ModelRegistry::new(ServiceConfig::default()));
        for &(name, seed) in names_seeds {
            registry.install(name, bundle(seed)).unwrap();
        }
        registry
    }

    #[test]
    fn routes_by_bundle_name_and_defaults_to_first_installed() {
        let registry = registry_with(&[("a", 3), ("b", 5)]);
        let mut session = registry.session();
        session.enqueue(Some("b"), request("to-b", 1)).unwrap();
        session.enqueue(None, request("to-default", 2)).unwrap();
        session.enqueue(Some("a"), request("to-a", 3)).unwrap();
        let replies = session.flush();
        assert_eq!(replies.len(), 3);
        // Reply order is enqueue order even across different cores.
        assert_eq!(replies[0].id, "to-b");
        assert_eq!(replies[1].id, "to-default");
        assert_eq!(replies[2].id, "to-a");
        // Routed replies match direct inference on the named core.
        let core_b = registry.get("b").unwrap();
        let direct = predict(
            &core_b.bundle().predictor,
            core_b.base(),
            &request("to-b", 1),
            core_b.bundle().meta.inference_stride,
        )
        .unwrap();
        assert_eq!(
            replies[0].result.as_ref().unwrap().widths,
            direct.response.widths
        );
        // Unknown names are typed errors, nothing reserved.
        let err = session.enqueue(Some("ghost"), request("x", 9)).unwrap_err();
        assert_eq!(err.code(), "service/unknown_bundle");
        assert_eq!(registry.get("a").unwrap().pending(), 0);
    }

    #[test]
    fn hot_swap_completes_pinned_batch_on_old_bundle_and_routes_next_to_new() {
        let registry = registry_with(&[("m", 3)]);
        let old_core = registry.get("m").unwrap();
        let old_direct = predict(
            &old_core.bundle().predictor,
            old_core.base(),
            &request("inflight", 7),
            old_core.bundle().meta.inference_stride,
        )
        .unwrap();

        // A batch is enqueued (pinned to the old core), then the swap
        // lands before it flushes — exactly the mid-flight window.
        let mut session = registry.session();
        session.enqueue(Some("m"), request("inflight", 7)).unwrap();
        registry.install("m", bundle(11)).unwrap();

        let replies = session.flush();
        assert_eq!(replies.len(), 1);
        // Bitwise-identical to the old bundle's direct answer.
        assert_eq!(
            replies[0].result.as_ref().unwrap().widths,
            old_direct.response.widths
        );
        assert_eq!(
            replies[0].result.as_ref().unwrap().worst_ir_mv,
            old_direct.response.worst_ir_mv
        );
        // The old core's gauge drained even though the slot was swapped.
        assert_eq!(old_core.pending(), 0);

        // The next enqueue resolves to the new core and answers with
        // the new bundle (trained at a different seed → different base).
        let new_core = registry.get("m").unwrap();
        assert!(!Arc::ptr_eq(&old_core, &new_core));
        session.enqueue(Some("m"), request("next", 7)).unwrap();
        let replies = session.flush();
        let new_direct = predict(
            &new_core.bundle().predictor,
            new_core.base(),
            &request("next", 7),
            new_core.bundle().meta.inference_stride,
        )
        .unwrap();
        assert_eq!(
            replies[0].result.as_ref().unwrap().widths,
            new_direct.response.widths
        );
        assert_ne!(
            new_direct.response.widths, old_direct.response.widths,
            "swap must actually change the serving bundle"
        );
    }

    #[test]
    fn admission_is_shared_across_sessions_and_released_on_drop() {
        let registry = Arc::new(ModelRegistry::new(ServiceConfig {
            max_pending: 2,
            ..ServiceConfig::default()
        }));
        registry.install("m", bundle(3)).unwrap();
        let mut s1 = registry.session();
        let mut s2 = registry.session();
        s1.enqueue(None, request("a", 1)).unwrap();
        s2.enqueue(None, request("b", 2)).unwrap();
        // The *other* session hits the shared core-wide bound.
        let err = s1.enqueue(None, request("c", 3)).unwrap_err();
        assert_eq!(err.code(), "service/overloaded");
        assert!(matches!(
            err,
            ServiceError::Overloaded {
                pending: 2,
                capacity: 2
            }
        ));
        // Dropping an unflushed session returns its slot.
        drop(s2);
        assert_eq!(registry.get("m").unwrap().pending(), 1);
        s1.enqueue(None, request("c", 3)).unwrap();
        let replies = s1.flush();
        assert_eq!(replies.len(), 2);
        assert_eq!(registry.get("m").unwrap().pending(), 0);
    }

    #[test]
    fn registry_snapshots_are_parseable_and_complete() {
        let registry = registry_with(&[("a", 3), ("b", 5)]);
        let mut session = registry.session();
        session.enqueue(Some("a"), request("q", 1)).unwrap();
        let _ = session.flush();

        let bundles = Json::parse(&registry.bundles_json()).unwrap();
        assert_eq!(bundles.get("status").unwrap().as_str(), Some("bundles"));
        assert_eq!(bundles.get("default").unwrap().as_str(), Some("a"));
        let map = bundles.get("bundles").unwrap();
        for name in ["a", "b"] {
            assert_eq!(
                map.get(name).unwrap().get("preset").unwrap().as_str(),
                Some("ibmpg1")
            );
            assert_eq!(
                map.get(name).unwrap().get("backend").unwrap().as_str(),
                Some("mlp")
            );
        }

        let stats = Json::parse(&registry.stats_json()).unwrap();
        let a = stats.get("bundles").unwrap().get("a").unwrap();
        assert_eq!(a.get("ok").unwrap().as_u64(), Some(1));
        let b = stats.get("bundles").unwrap().get("b").unwrap();
        assert_eq!(b.get("ok").unwrap().as_u64(), Some(0));

        let telemetry = Json::parse(&registry.telemetry_json()).unwrap();
        assert!(telemetry
            .get("bundles")
            .unwrap()
            .get("a")
            .unwrap()
            .get("counters")
            .is_some());
        assert!(telemetry.get("global").is_some());
    }

    #[test]
    fn routes_across_backend_kinds() {
        use ppdl_core::BackendKind;
        let registry = Arc::new(ModelRegistry::new(ServiceConfig::default()));
        registry.install("mlp", bundle(3)).unwrap();
        let cnn = TrainedBundle::train(
            IbmPgPreset::Ibmpg1,
            0.01,
            3,
            DlFlowConfig::builder()
                .fast()
                .backend(BackendKind::Cnn)
                .build(),
            None,
        )
        .unwrap();
        assert_eq!(cnn.backend(), BackendKind::Cnn);
        registry.install("cnn", cnn).unwrap();

        let mut session = registry.session();
        session.enqueue(Some("cnn"), request("via-cnn", 1)).unwrap();
        session.enqueue(Some("mlp"), request("via-mlp", 1)).unwrap();
        let replies = session.flush();
        assert_eq!(replies.len(), 2);
        // Each request runs on the backend it was routed to, and the
        // two surrogates genuinely differ.
        for (reply, name) in replies.iter().zip(["cnn", "mlp"]) {
            let core = registry.get(name).unwrap();
            let direct = predict(
                &core.bundle().predictor,
                core.base(),
                &request(&reply.id, 1),
                core.bundle().meta.inference_stride,
            )
            .unwrap();
            assert_eq!(
                reply.result.as_ref().unwrap().widths,
                direct.response.widths
            );
        }
        assert_ne!(
            replies[0].result.as_ref().unwrap().widths,
            replies[1].result.as_ref().unwrap().widths
        );
        // The bundles snapshot reports each core's backend kind.
        let bundles = Json::parse(&registry.bundles_json()).unwrap();
        let map = bundles.get("bundles").unwrap();
        assert_eq!(
            map.get("cnn").unwrap().get("backend").unwrap().as_str(),
            Some("cnn")
        );
        assert_eq!(
            map.get("mlp").unwrap().get("backend").unwrap().as_str(),
            Some("mlp")
        );
    }
}

//! A minimal JSON reader for the NDJSON wire protocol.
//!
//! The workspace is dependency-free by policy (no serde), and the
//! protocol only needs objects, arrays, strings, numbers, and literals
//! — a hand-rolled recursive-descent parser is ~150 lines and keeps the
//! service crate self-contained. Writing JSON reuses
//! [`ppdl_core::pipeline::json_string`] / `json_number`.
//!
//! The parser is recursive, so nesting depth is bounded at
//! [`MAX_DEPTH`]: a hostile line of 100k `[` characters must produce a
//! typed [`JsonError::TooDeep`], not a stack overflow that kills the
//! serving process.

use std::fmt;

/// Maximum container nesting the reader accepts. Each level is one
/// recursion frame; real protocol lines nest three levels deep, so 128
/// leaves enormous headroom while keeping the stack bounded.
pub const MAX_DEPTH: usize = 128;

/// Why a line was rejected by the JSON reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JsonError {
    /// A syntax problem, with a human-readable description.
    Syntax(String),
    /// Arrays/objects nested beyond [`MAX_DEPTH`] — rejected before the
    /// recursion can exhaust the stack.
    TooDeep {
        /// The nesting level at which parsing stopped.
        depth: usize,
    },
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonError::Syntax(detail) => f.write_str(detail),
            JsonError::TooDeep { depth } => {
                write!(f, "containers nested deeper than {depth} levels")
            }
        }
    }
}

impl std::error::Error for JsonError {}

fn syntax(detail: impl Into<String>) -> JsonError {
    JsonError::Syntax(detail.into())
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON value; trailing non-whitespace is an
    /// error (protocol lines carry exactly one value).
    ///
    /// # Errors
    ///
    /// [`JsonError::Syntax`] describes the first syntax error;
    /// [`JsonError::TooDeep`] rejects nesting beyond [`MAX_DEPTH`].
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(syntax(format!("trailing data at byte {}", p.pos)));
        }
        Ok(value)
    }

    /// Object field lookup (last occurrence wins).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    /// Enters one container level; errors *before* recursing when the
    /// line nests deeper than [`MAX_DEPTH`], so the call stack stays
    /// bounded no matter what arrives on the wire.
    fn enter(&mut self) -> Result<(), JsonError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(JsonError::TooDeep { depth: self.depth });
        }
        Ok(())
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn expect_byte(&mut self, byte: u8) -> Result<(), JsonError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(syntax(format!(
                "expected '{}' at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(syntax(format!("bad literal at byte {}", self.pos)))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(syntax(format!(
                "unexpected '{}' at byte {}",
                c as char, self.pos
            ))),
            None => Err(syntax("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if matches!(c, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text =
            std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| syntax("bad utf-8"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| syntax(format!("bad number '{text}' at byte {start}")))
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(syntax("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| syntax("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| syntax("bad \\u escape"))?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(syntax(format!("bad escape at byte {}", self.pos))),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| syntax("bad utf-8 in string"))?;
                    let ch = rest
                        .chars()
                        .next()
                        .ok_or_else(|| syntax("unterminated string"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            self.leave();
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    self.leave();
                    return Ok(Json::Arr(items));
                }
                _ => return Err(syntax(format!("expected ',' or ']' at byte {}", self.pos))),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.enter()?;
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            self.leave();
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    self.leave();
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(syntax(format!("expected ',' or '}}' at byte {}", self.pos))),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shapes() {
        let v = Json::parse(
            r#"{"id":"a","gamma":0.1,"kind":"both","seed":5,"loads":[[0,1.2e-3]],"flag":true}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("a"));
        assert_eq!(v.get("gamma").unwrap().as_f64(), Some(0.1));
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(5));
        let loads = v.get("loads").unwrap().as_array().unwrap();
        let pair = loads[0].as_array().unwrap();
        assert_eq!(pair[0].as_u64(), Some(0));
        assert_eq!(pair[1].as_f64(), Some(1.2e-3));
        assert_eq!(v.get("flag"), Some(&Json::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::parse(r#"{"s":"a\"b\\c\nµA"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\nµA"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn integer_bounds() {
        assert_eq!(Json::parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-3").unwrap().as_u64(), None);
    }

    #[test]
    fn pathological_nesting_is_rejected_not_fatal() {
        // Regression: 100k unclosed brackets used to recurse once per
        // level and overflow the stack, killing the serving process.
        let bomb = "[".repeat(100_000);
        assert_eq!(
            Json::parse(&bomb),
            Err(JsonError::TooDeep {
                depth: MAX_DEPTH + 1
            })
        );
        // Same via objects, and for *closed* but too-deep documents.
        let obj_bomb = "{\"a\":".repeat(100_000);
        assert_eq!(
            Json::parse(&obj_bomb),
            Err(JsonError::TooDeep {
                depth: MAX_DEPTH + 1
            })
        );
        let closed = format!("{}{}", "[".repeat(200), "]".repeat(200));
        assert!(matches!(
            Json::parse(&closed),
            Err(JsonError::TooDeep { .. })
        ));
    }

    #[test]
    fn nesting_inside_the_limit_parses() {
        let deep = format!("{}1{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        let mut v = Json::parse(&deep).unwrap();
        for _ in 0..MAX_DEPTH {
            v = v.as_array().unwrap()[0].clone();
        }
        assert_eq!(v.as_f64(), Some(1.0));
        // Sibling containers do not accumulate depth.
        let wide = "[[1],[2],[3]]".to_string();
        assert!(Json::parse(&wide).is_ok());
    }
}

//! A minimal JSON reader for the NDJSON wire protocol.
//!
//! The workspace is dependency-free by policy (no serde), and the
//! protocol only needs objects, arrays, strings, numbers, and literals
//! — a hand-rolled recursive-descent parser is ~150 lines and keeps the
//! service crate self-contained. Writing JSON reuses
//! [`ppdl_core::pipeline::json_string`] / `json_number`.

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (always held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys keep the last).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one complete JSON value; trailing non-whitespace is an
    /// error (protocol lines carry exactly one value).
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup (last occurrence wins).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a string, if it is one.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 2f64.powi(53) => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(format!("unexpected '{}' at byte {}", c as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while let Some(c) = self.peek() {
            if matches!(c, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| "bad utf-8")?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or("truncated \\u escape")?;
                            let code =
                                u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x80 => {
                    out.push(c as char);
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8: copy the whole scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| "bad utf-8 in string")?;
                    let ch = rest.chars().next().ok_or("unterminated string")?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_protocol_shapes() {
        let v = Json::parse(
            r#"{"id":"a","gamma":0.1,"kind":"both","seed":5,"loads":[[0,1.2e-3]],"flag":true}"#,
        )
        .unwrap();
        assert_eq!(v.get("id").unwrap().as_str(), Some("a"));
        assert_eq!(v.get("gamma").unwrap().as_f64(), Some(0.1));
        assert_eq!(v.get("seed").unwrap().as_u64(), Some(5));
        let loads = v.get("loads").unwrap().as_array().unwrap();
        let pair = loads[0].as_array().unwrap();
        assert_eq!(pair[0].as_u64(), Some(0));
        assert_eq!(pair[1].as_f64(), Some(1.2e-3));
        assert_eq!(v.get("flag"), Some(&Json::Bool(true)));
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn escapes_and_unicode() {
        let v = Json::parse(r#"{"s":"a\"b\\c\nµA"}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("a\"b\\c\nµA"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(Json::parse("").is_err());
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("{\"a\":}").is_err());
        assert!(Json::parse("[1,2,]").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("{} trailing").is_err());
        assert!(Json::parse("\"open").is_err());
    }

    #[test]
    fn integer_bounds() {
        assert_eq!(Json::parse("3").unwrap().as_u64(), Some(3));
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-3").unwrap().as_u64(), None);
    }
}

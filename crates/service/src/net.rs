//! Hand-rolled multi-threaded TCP / Unix-socket listener speaking the
//! NDJSON protocol against a [`ModelRegistry`].
//!
//! One OS thread per connection (scoped, so the listener owns their
//! lifetime), each running the same command loop as the stdin mode but
//! routed through a registry [`Session`]: requests may name a
//! `bundle`, `{"cmd":"load",...}` hot-swaps a bundle for *every*
//! client, and `{"cmd":"shutdown"}` stops the whole listener after the
//! in-flight work drains. Admission is enforced twice: per-connection
//! at `max_clients` (excess connections get one typed
//! `service/overloaded` line and are closed) and per-bundle via
//! [`ServiceCore::admit`](crate::ServiceCore::admit) (saturated
//! bundles answer `service/overloaded` per request).
//!
//! Shutdown is cooperative: the accept loop runs the listener in
//! non-blocking mode and polls a shared flag; connection threads give
//! their socket a short read timeout, so the byte-level
//! [`LineReader`] yields `Pending` between frames and the handler
//! re-checks the flag — no thread blocks forever on a dead peer.

use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use crate::line::{LineEvent, LineReader};
use crate::proto::{render_error, render_reply, salvage_id, Command};
use crate::registry::{ModelRegistry, Session};
use crate::{parse_line, ServiceError, ServiceReply};

/// Listener tuning knobs, separate from the per-bundle
/// [`ServiceConfig`](crate::ServiceConfig).
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Concurrent connections served; further ones get one typed
    /// `service/overloaded` line and are closed.
    pub max_clients: usize,
    /// Cap on one NDJSON line in bytes; longer lines get a typed
    /// `service/json` error and are discarded up to the newline.
    pub max_line_bytes: usize,
}

impl Default for NetConfig {
    fn default() -> Self {
        Self {
            max_clients: 32,
            max_line_bytes: crate::line::DEFAULT_MAX_LINE_BYTES,
        }
    }
}

/// How often blocked reads and the accept loop wake up to re-check the
/// shutdown flag. Latency of the *flag*, not of requests — data-ready
/// sockets never wait on this.
const POLL_INTERVAL: Duration = Duration::from_millis(50);

/// The two transports, unified behind one accept/handle loop.
trait NetListener {
    type Stream: Read + Write + Send + 'static;

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()>;
    /// Accepts one connection; `WouldBlock` means none is waiting.
    fn accept_stream(&self) -> io::Result<Self::Stream>;
    /// An independently-readable clone of the stream (sockets are
    /// full-duplex; the handler reads via the clone, writes via the
    /// original).
    fn clone_stream(stream: &Self::Stream) -> io::Result<Self::Stream>;
    fn set_read_timeout(stream: &Self::Stream, timeout: Option<Duration>) -> io::Result<()>;
}

impl NetListener for TcpListener {
    type Stream = TcpStream;

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        TcpListener::set_nonblocking(self, nonblocking)
    }

    fn accept_stream(&self) -> io::Result<TcpStream> {
        let (stream, _) = self.accept()?;
        // Request lines are latency-sensitive and tiny; never Nagle.
        let _ = stream.set_nodelay(true);
        stream.set_nonblocking(false)?;
        Ok(stream)
    }

    fn clone_stream(stream: &TcpStream) -> io::Result<TcpStream> {
        stream.try_clone()
    }

    fn set_read_timeout(stream: &TcpStream, timeout: Option<Duration>) -> io::Result<()> {
        TcpStream::set_read_timeout(stream, timeout)
    }
}

impl NetListener for UnixListener {
    type Stream = UnixStream;

    fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        UnixListener::set_nonblocking(self, nonblocking)
    }

    fn accept_stream(&self) -> io::Result<UnixStream> {
        let (stream, _) = self.accept()?;
        stream.set_nonblocking(false)?;
        Ok(stream)
    }

    fn clone_stream(stream: &UnixStream) -> io::Result<UnixStream> {
        stream.try_clone()
    }

    fn set_read_timeout(stream: &UnixStream, timeout: Option<Duration>) -> io::Result<()> {
        UnixStream::set_read_timeout(stream, timeout)
    }
}

/// Serves the registry over a bound TCP listener until a client sends
/// `{"cmd":"shutdown"}`. Blocks the calling thread; connection handler
/// threads are scoped inside, so returning means everything drained.
///
/// # Errors
///
/// Propagates listener-level I/O errors (per-connection errors only
/// terminate that connection).
pub fn serve_tcp(
    registry: &Arc<ModelRegistry>,
    listener: &TcpListener,
    config: &NetConfig,
) -> io::Result<()> {
    serve_listener(registry, listener, config)
}

/// [`serve_tcp`], over a Unix domain socket. The caller owns the
/// socket path (bind before, unlink after).
///
/// # Errors
///
/// Propagates listener-level I/O errors.
pub fn serve_unix(
    registry: &Arc<ModelRegistry>,
    listener: &UnixListener,
    config: &NetConfig,
) -> io::Result<()> {
    serve_listener(registry, listener, config)
}

fn serve_listener<L: NetListener>(
    registry: &Arc<ModelRegistry>,
    listener: &L,
    config: &NetConfig,
) -> io::Result<()> {
    listener.set_nonblocking(true)?;
    let shutdown = AtomicBool::new(false);
    let active = AtomicUsize::new(0);
    // One scoped thread per connection: the scope joins them all
    // before serve_listener returns, so shutdown is always clean and
    // no handler outlives the registry borrow.
    // ppdl-lint: allow(parallel/raw-spawn) -- connection handlers block on socket I/O, which the par_map_vec compute pool must not; scoped threads keep their lifetime tied to the listener
    std::thread::scope(|scope| -> io::Result<()> {
        loop {
            if shutdown.load(Ordering::Acquire) {
                return Ok(());
            }
            match listener.accept_stream() {
                Ok(mut stream) => {
                    if active.load(Ordering::Acquire) >= config.max_clients.max(1) {
                        // Typed refusal, then close: the client learns
                        // *why* instead of seeing a hangup.
                        let err = ServiceError::Overloaded {
                            pending: active.load(Ordering::Relaxed),
                            capacity: config.max_clients,
                        };
                        let _ = writeln!(stream, "{}", render_error("", &err));
                        continue;
                    }
                    active.fetch_add(1, Ordering::AcqRel);
                    let session = registry.session();
                    let max_line_bytes = config.max_line_bytes;
                    let (shutdown, active) = (&shutdown, &active);
                    scope.spawn(move || {
                        let _ = handle_connection::<L>(session, stream, max_line_bytes, shutdown);
                        active.fetch_sub(1, Ordering::AcqRel);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(POLL_INTERVAL);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    })
}

/// Emits replies followed by a flush, so clients waiting line-by-line
/// never stall on a buffered response.
fn emit<W: Write>(replies: &[ServiceReply], out: &mut W) -> io::Result<()> {
    for reply in replies {
        writeln!(out, "{}", render_reply(reply))?;
    }
    out.flush()
}

/// One connection's command loop: the registry-routed twin of
/// `proto::serve_ndjson`.
fn handle_connection<L: NetListener>(
    mut session: Session,
    mut stream: L::Stream,
    max_line_bytes: usize,
    shutdown: &AtomicBool,
) -> io::Result<()> {
    L::set_read_timeout(&stream, Some(POLL_INTERVAL))?;
    let mut reader = LineReader::new(L::clone_stream(&stream)?, max_line_bytes);
    let out = &mut stream;
    loop {
        if shutdown.load(Ordering::Acquire) {
            break;
        }
        let line = match reader.next_event() {
            LineEvent::Line(line) => line,
            LineEvent::Refused { detail } => {
                writeln!(out, "{}", render_error("", &ServiceError::Json { detail }))?;
                out.flush()?;
                continue;
            }
            LineEvent::Pending => continue,
            LineEvent::Eof => break,
            LineEvent::Io(e) => {
                // Answer what was accepted before surfacing the
                // transport error (the write may fail too — the
                // session's Drop still releases the admission slots).
                let replies = session.flush();
                let _ = emit(&replies, out);
                return Err(e);
            }
        };
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match parse_line(line) {
            Ok(Command::Request { bundle, request }) => {
                if session.queue_depth() >= session.registry().config().queue_capacity {
                    let replies = session.flush();
                    emit(&replies, out)?;
                }
                let id = request.id.clone();
                if let Err(e) = session.enqueue(bundle.as_deref(), request) {
                    // service/unknown_bundle and service/overloaded
                    // land here as typed replies carrying the id.
                    writeln!(out, "{}", render_error(&id, &e))?;
                    out.flush()?;
                }
            }
            Ok(Command::Flush) => {
                let replies = session.flush();
                emit(&replies, out)?;
            }
            Ok(Command::Stats { spans }) => {
                let snapshot = if spans {
                    session.registry().telemetry_json()
                } else {
                    session.registry().stats_json()
                };
                writeln!(out, "{snapshot}")?;
                out.flush()?;
            }
            Ok(Command::Load { bundle, path }) => {
                let reply = match session.registry().install_path(&bundle, &path) {
                    Ok(()) => format!(
                        "{{\"status\":\"loaded\",\"bundle\":{}}}",
                        ppdl_core::pipeline::json_string(&bundle)
                    ),
                    Err(e) => render_error("", &e),
                };
                writeln!(out, "{reply}")?;
                out.flush()?;
            }
            Ok(Command::Bundles) => {
                writeln!(out, "{}", session.registry().bundles_json())?;
                out.flush()?;
            }
            Ok(Command::Quit) => break,
            Ok(Command::Shutdown) => {
                shutdown.store(true, Ordering::Release);
                break;
            }
            Err(e) => {
                writeln!(out, "{}", render_error(&salvage_id(line), &e))?;
                out.flush()?;
            }
        }
    }
    let replies = session.flush();
    emit(&replies, out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Json, ServiceConfig};
    use ppdl_core::predict::TrainedBundle;
    use ppdl_core::DlFlowConfig;
    use ppdl_netlist::IbmPgPreset;
    use std::io::{BufRead, BufReader};

    fn registry() -> Arc<ModelRegistry> {
        let registry = Arc::new(ModelRegistry::new(ServiceConfig::default()));
        let bundle =
            TrainedBundle::train(IbmPgPreset::Ibmpg1, 0.01, 3, DlFlowConfig::fast(), None).unwrap();
        registry.install("m", bundle).unwrap();
        registry
    }

    /// Starts a TCP listener on a loopback port, returns its address;
    /// the server thread exits on `{"cmd":"shutdown"}`.
    fn spawn_server(
        registry: Arc<ModelRegistry>,
        config: NetConfig,
    ) -> (std::net::SocketAddr, std::thread::JoinHandle<()>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let handle = std::thread::spawn(move || {
            serve_tcp(&registry, &listener, &config).unwrap();
        });
        (addr, handle)
    }

    fn roundtrip(addr: std::net::SocketAddr, input: &str, expect_lines: usize) -> Vec<Json> {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(input.as_bytes()).unwrap();
        // Half-close: the server sees EOF after the input and flushes,
        // while this end keeps reading the replies.
        stream.shutdown(std::net::Shutdown::Write).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut out = Vec::new();
        let mut line = String::new();
        while out.len() < expect_lines {
            line.clear();
            let n = reader.read_line(&mut line).unwrap();
            if n == 0 {
                break;
            }
            out.push(Json::parse(line.trim()).unwrap());
        }
        out
    }

    #[test]
    fn tcp_roundtrip_with_concurrent_clients_and_shutdown() {
        let registry = registry();
        let (addr, handle) = spawn_server(Arc::clone(&registry), NetConfig::default());

        // Concurrent clients, each with its own stream of requests.
        let clients: Vec<_> = (0..4)
            .map(|c| {
                std::thread::spawn(move || {
                    let input = format!(
                        "{{\"id\":\"c{c}-a\",\"gamma\":0.1,\"seed\":{}}}\n{{\"cmd\":\"flush\"}}\n{{\"id\":\"c{c}-b\",\"gamma\":0.1,\"seed\":{}}}\n{{\"cmd\":\"quit\"}}\n",
                        10 + c,
                        20 + c
                    );
                    roundtrip(addr, &input, 2)
                })
            })
            .collect();
        for (c, client) in clients.into_iter().enumerate() {
            let replies = client.join().unwrap();
            assert_eq!(replies.len(), 2);
            assert_eq!(
                replies[0].get("id").unwrap().as_str(),
                Some(format!("c{c}-a").as_str())
            );
            assert_eq!(replies[0].get("status").unwrap().as_str(), Some("ok"));
            assert_eq!(
                replies[1].get("id").unwrap().as_str(),
                Some(format!("c{c}-b").as_str())
            );
        }

        // Malformed + oversized + unknown-bundle lines produce typed
        // errors on a live connection.
        let big = "x".repeat(2 * NetConfig::default().max_line_bytes);
        let input = format!(
            "not json\n{big}\n{{\"id\":\"ghost\",\"bundle\":\"nope\",\"gamma\":0.1}}\n{{\"cmd\":\"quit\"}}\n"
        );
        let replies = roundtrip(addr, &input, 3);
        assert_eq!(
            replies[0].get("code").unwrap().as_str(),
            Some("service/malformed")
        );
        assert_eq!(
            replies[1].get("code").unwrap().as_str(),
            Some("service/json")
        );
        assert_eq!(
            replies[2].get("code").unwrap().as_str(),
            Some("service/unknown_bundle")
        );
        assert_eq!(replies[2].get("id").unwrap().as_str(), Some("ghost"));

        // A request with no trailing newline before the half-close is
        // still answered — the mid-frame-disconnect regression.
        let replies = roundtrip(addr, "{\"id\":\"tail\",\"gamma\":0.1,\"seed\":42}", 1);
        assert_eq!(replies.len(), 1);
        assert_eq!(replies[0].get("id").unwrap().as_str(), Some("tail"));
        assert_eq!(replies[0].get("status").unwrap().as_str(), Some("ok"));

        let _ = roundtrip(addr, "{\"cmd\":\"shutdown\"}\n", 0);
        handle.join().unwrap();
    }

    #[test]
    fn unix_socket_serves_the_same_protocol() {
        let registry = registry();
        let dir = std::env::temp_dir().join(format!("ppdl_net_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("serve.sock");
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).unwrap();
        let server = {
            let registry = Arc::clone(&registry);
            let config = NetConfig::default();
            std::thread::spawn(move || serve_unix(&registry, &listener, &config).unwrap())
        };
        let mut stream = UnixStream::connect(&path).unwrap();
        stream
            .write_all(b"{\"id\":\"u1\",\"gamma\":0.1,\"seed\":5}\n{\"cmd\":\"bundles\"}\n{\"cmd\":\"quit\"}\n")
            .unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let bundles = Json::parse(line.trim()).unwrap();
        assert_eq!(bundles.get("status").unwrap().as_str(), Some("bundles"));
        assert_eq!(bundles.get("default").unwrap().as_str(), Some("m"));
        line.clear();
        reader.read_line(&mut line).unwrap();
        let reply = Json::parse(line.trim()).unwrap();
        assert_eq!(reply.get("id").unwrap().as_str(), Some("u1"));
        assert_eq!(reply.get("status").unwrap().as_str(), Some("ok"));

        let mut stream = UnixStream::connect(&path).unwrap();
        stream.write_all(b"{\"cmd\":\"shutdown\"}\n").unwrap();
        server.join().unwrap();
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn connection_limit_refuses_with_typed_error() {
        let registry = registry();
        let (addr, handle) = spawn_server(
            Arc::clone(&registry),
            NetConfig {
                max_clients: 1,
                ..NetConfig::default()
            },
        );
        // Occupy the only slot with an idle connection.
        let mut first = TcpStream::connect(addr).unwrap();
        first.write_all(b"{\"cmd\":\"bundles\"}\n").unwrap();
        let mut reader = BufReader::new(first.try_clone().unwrap());
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("\"bundles\""));

        // The second connection is refused with one typed line.
        let second = TcpStream::connect(addr).unwrap();
        let mut refused = String::new();
        BufReader::new(second.try_clone().unwrap())
            .read_line(&mut refused)
            .unwrap();
        let reply = Json::parse(refused.trim()).unwrap();
        assert_eq!(
            reply.get("code").unwrap().as_str(),
            Some("service/overloaded")
        );
        drop(second);

        first.write_all(b"{\"cmd\":\"shutdown\"}\n").unwrap();
        drop(first);
        handle.join().unwrap();
    }
}

//! Property-based tests for the sparse linear-algebra kernels.

use ppdl_solver::{CgOptions, ConjugateGradient, CsrMatrix, PrecondKind, TripletMatrix};
use proptest::prelude::*;

/// Strategy: a random resistor network on `n` nodes that is guaranteed
/// SPD — a spanning chain plus extra random conductances plus at least
/// one grounded node.
fn spd_network(max_nodes: usize) -> impl Strategy<Value = CsrMatrix> {
    (2..max_nodes)
        .prop_flat_map(|n| {
            let extra = proptest::collection::vec((0..n, 0..n, 0.1_f64..10.0), 0..(3 * n));
            let chain_g = proptest::collection::vec(0.1_f64..10.0, n - 1);
            let ground = (0..n, 0.1_f64..10.0);
            (Just(n), chain_g, extra, ground)
        })
        .prop_map(|(n, chain_g, extra, (gnode, gg))| {
            let mut t = TripletMatrix::new(n, n);
            for (i, g) in chain_g.iter().enumerate() {
                t.stamp_conductance(i, i + 1, *g);
            }
            for (a, b, g) in extra {
                if a != b {
                    t.stamp_conductance(a, b, g);
                }
            }
            t.stamp_grounded_conductance(gnode, gg);
            t.to_csr()
        })
}

proptest! {
    /// Every assembled network matrix is symmetric and diagonally
    /// dominant — the invariant that guarantees CG convergence.
    #[test]
    fn assembled_networks_are_symmetric_dominant(a in spd_network(20)) {
        prop_assert!(a.is_symmetric(1e-12));
        prop_assert!(a.is_diagonally_dominant());
    }

    /// CG must actually solve the system: residual below tolerance.
    #[test]
    fn cg_residual_below_tolerance(
        a in spd_network(16),
        seed in proptest::collection::vec(-5.0_f64..5.0, 16),
    ) {
        let n = a.nrows();
        let b = &seed[..n];
        let cg = ConjugateGradient::new(CgOptions {
            tolerance: 1e-9,
            precond: PrecondKind::Identity,
            ..CgOptions::default()
        });
        let sol = cg.solve(&a, b).unwrap();
        let r = a.residual(&sol.x, b).unwrap();
        let bnorm = ppdl_solver::vecops::norm2(b);
        if bnorm > 0.0 {
            prop_assert!(ppdl_solver::vecops::norm2(&r) <= 1e-8 * bnorm.max(1.0));
        }
    }

    /// CG with every [`PrecondKind`] converges to the unpreconditioned
    /// solution on random SPD networks — the contract that makes the
    /// preconditioner a pure performance knob.
    #[test]
    fn every_precond_kind_agrees_with_unpreconditioned(
        a in spd_network(12),
        seed in proptest::collection::vec(-3.0_f64..3.0, 12),
        block in 1usize..8,
    ) {
        let n = a.nrows();
        let b = &seed[..n];
        let base = ConjugateGradient::new(CgOptions {
            tolerance: 1e-11,
            precond: PrecondKind::Identity,
            ..CgOptions::default()
        });
        let x_plain = base.solve(&a, b).unwrap().x;
        for kind in PrecondKind::ALL {
            let options = CgOptions::builder()
                .tolerance(1e-11)
                .precond(kind)
                .precond_block(block)
                .try_build()
                .unwrap();
            let x = ConjugateGradient::new(options).solve(&a, b).unwrap().x;
            for i in 0..n {
                prop_assert!(
                    (x_plain[i] - x[i]).abs() < 1e-6,
                    "{} node {}: {} vs {}", kind, i, x_plain[i], x[i]
                );
            }
        }
    }

    /// CG agrees with the dense Cholesky oracle.
    #[test]
    fn cg_matches_dense_oracle(
        a in spd_network(10),
        seed in proptest::collection::vec(-2.0_f64..2.0, 10),
    ) {
        let n = a.nrows();
        let b = &seed[..n];
        let cg = ConjugateGradient::new(CgOptions { tolerance: 1e-12, ..CgOptions::default() });
        let x = cg.solve(&a, b).unwrap().x;
        let dense = a.to_dense().cholesky().unwrap().solve(b).unwrap();
        for i in 0..n {
            prop_assert!((x[i] - dense[i]).abs() < 1e-6, "node {}: {} vs {}", i, x[i], dense[i]);
        }
    }

    /// Triplet-to-CSR then SpMV agrees with a naive dense accumulation.
    #[test]
    fn spmv_matches_naive(
        entries in proptest::collection::vec((0usize..8, 0usize..8, -10.0_f64..10.0), 1..40),
        x in proptest::collection::vec(-5.0_f64..5.0, 8),
    ) {
        let mut t = TripletMatrix::new(8, 8);
        let mut dense = vec![0.0; 64];
        for (r, c, v) in &entries {
            t.push(*r, *c, *v);
            dense[r * 8 + c] += v;
        }
        let a = t.to_csr();
        let y = a.mul_vec(&x).unwrap();
        for r in 0..8 {
            let naive: f64 = (0..8).map(|c| dense[r * 8 + c] * x[c]).sum();
            prop_assert!((y[r] - naive).abs() < 1e-9);
        }
    }

    /// Transpose is an involution and preserves the entry set.
    #[test]
    fn transpose_involution(
        entries in proptest::collection::vec((0usize..6, 0usize..9, -3.0_f64..3.0), 0..30),
    ) {
        let mut t = TripletMatrix::new(6, 9);
        for (r, c, v) in &entries {
            t.push(*r, *c, *v);
        }
        let a = t.to_csr();
        let at = a.transpose();
        prop_assert_eq!(at.nrows(), 9);
        prop_assert_eq!(at.ncols(), 6);
        prop_assert_eq!(&a.transpose().transpose(), &a);
        for r in 0..6 {
            for (c, v) in a.row(r) {
                prop_assert_eq!(at.get(c, r), v);
            }
        }
    }

    /// Sparse Cholesky agrees with the dense oracle on random SPD
    /// networks.
    #[test]
    fn sparse_cholesky_matches_dense(
        a in spd_network(14),
        seed in proptest::collection::vec(-4.0_f64..4.0, 14),
    ) {
        let n = a.nrows();
        let b = &seed[..n];
        let sparse = ppdl_solver::SparseCholesky::factor(&a).unwrap();
        let xs = sparse.solve(b).unwrap();
        let xd = a.to_dense().cholesky().unwrap().solve(b).unwrap();
        for i in 0..n {
            prop_assert!((xs[i] - xd[i]).abs() < 1e-7, "node {}: {} vs {}", i, xs[i], xd[i]);
        }
    }

    /// Dense LU solves random well-conditioned systems (diagonally
    /// boosted to avoid near-singularity).
    #[test]
    fn dense_lu_solves(
        vals in proptest::collection::vec(-1.0_f64..1.0, 16),
        b in proptest::collection::vec(-5.0_f64..5.0, 4),
    ) {
        let mut m = ppdl_solver::DenseMatrix::zeros(4, 4);
        for r in 0..4 {
            for c in 0..4 {
                let v = vals[r * 4 + c] + if r == c { 5.0 } else { 0.0 };
                m.set(r, c, v);
            }
        }
        let x = m.lu().unwrap().solve(&b).unwrap();
        let ax = m.mul_vec(&x).unwrap();
        for i in 0..4 {
            prop_assert!((ax[i] - b[i]).abs() < 1e-8);
        }
    }
}

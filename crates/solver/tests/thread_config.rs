//! Regression test for the `PPDL_THREADS` read-once semantics.
//!
//! The env var is sampled into a `OnceLock` at the first
//! `current_threads()` call (i.e. the first kernel use). Changing the
//! variable afterwards must be silently ignored, while `set_threads`
//! must keep working — that asymmetry is documented on
//! `current_threads` and is why every CLI routes `--threads` through
//! `set_threads` before any kernel runs.
//!
//! This lives in its own integration-test binary so the process starts
//! with the cache unset regardless of what other tests do.

use ppdl_solver::parallel::{current_threads, set_threads};

#[test]
fn env_is_cached_on_first_use_and_set_threads_still_wins() {
    // Pin the env value BEFORE the first current_threads() call. The
    // test binary may inherit PPDL_THREADS from CI; overriding here is
    // safe because nothing has sampled it yet (this is the binary's
    // only test, so no other thread races the cache initialisation).
    std::env::set_var("PPDL_THREADS", "2");
    assert_eq!(current_threads(), 2, "env read at first use");

    // Mutating the env after the first use is ignored: the OnceLock
    // sample is final.
    std::env::set_var("PPDL_THREADS", "7");
    assert_eq!(
        current_threads(),
        2,
        "PPDL_THREADS changes after first kernel use must be ignored"
    );

    // The runtime override always wins over the cached env value…
    set_threads(5);
    assert_eq!(current_threads(), 5, "set_threads overrides the cache");

    // …and resetting it restores the *original* sample, not the
    // mutated env var.
    set_threads(0);
    assert_eq!(
        current_threads(),
        2,
        "reset falls back to the first-use sample"
    );
}

//! Sparse and dense linear algebra kernels for power-grid analysis.
//!
//! Static IR-drop analysis of an on-chip power grid reduces to solving the
//! modified-nodal-analysis (MNA) system `G v = i`, where `G` is a large,
//! sparse, symmetric positive-definite conductance matrix. This crate
//! provides everything the analysis layer needs to do that from scratch:
//!
//! * [`TripletMatrix`] — a coordinate-format accumulator used while
//!   stamping conductances, with duplicate summing.
//! * [`CsrMatrix`] — compressed-sparse-row storage with matrix–vector
//!   products, transpose, and structural queries.
//! * [`DenseMatrix`] — small dense matrices with Cholesky and LU
//!   factorizations, used for tiny systems and as a test oracle.
//! * [`ConjugateGradient`] — (preconditioned) conjugate-gradient solver.
//!   The preconditioner is chosen at runtime by a [`PrecondKind`] carried
//!   in [`CgOptions`] ([`IdentityPreconditioner`], [`JacobiPreconditioner`],
//!   [`BlockJacobiPreconditioner`], or [`IncompleteCholesky`] IC(0));
//!   custom [`Preconditioner`] implementations go through
//!   [`ConjugateGradient::solve_using`].
//! * [`vecops`] — the BLAS-1 style kernels (`dot`, `axpy`, norms) shared
//!   by the iterative solvers.
//! * [`parallel`] — the workspace-wide parallel execution layer: thread
//!   count (`PPDL_THREADS`), sequential-fallback threshold, and the
//!   deterministic chunked primitives the hot paths above (and the NN /
//!   analysis crates) build on.
//!
//! # Example
//!
//! Solve a small SPD system with preconditioned CG:
//!
//! ```
//! use ppdl_solver::{TripletMatrix, ConjugateGradient, CgOptions, PrecondKind};
//!
//! // 2x2 SPD system: [[4, 1], [1, 3]] x = [1, 2]
//! let mut t = TripletMatrix::new(2, 2);
//! t.push(0, 0, 4.0);
//! t.push(0, 1, 1.0);
//! t.push(1, 0, 1.0);
//! t.push(1, 1, 3.0);
//! let a = t.to_csr();
//!
//! let options = CgOptions::builder()
//!     .precond(PrecondKind::Jacobi)
//!     .try_build()
//!     .unwrap();
//! let solver = ConjugateGradient::new(options);
//! let sol = solver.solve(&a, &[1.0, 2.0]).unwrap();
//! assert!((sol.x[0] - 1.0 / 11.0).abs() < 1e-8);
//! assert!((sol.x[1] - 7.0 / 11.0).abs() < 1e-8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cg;
mod csr;
mod dense;
mod error;
pub mod parallel;
mod precond;
mod sparse_chol;
mod stationary;
mod triplet;
pub mod vecops;

pub use cg::{CgOptions, CgOptionsBuilder, CgSolution, ConjugateGradient, DEFAULT_PRECOND_BLOCK};
pub use csr::CsrMatrix;
pub use dense::{DenseCholesky, DenseLu, DenseMatrix};
pub use error::SolverError;
pub use parallel::{parallel_config, set_par_threshold, set_threads, ParallelConfig};
pub use precond::{
    BlockJacobiPreconditioner, BuiltPreconditioner, IdentityPreconditioner, IncompleteCholesky,
    JacobiPreconditioner, PrecondKind, Preconditioner,
};
pub use sparse_chol::SparseCholesky;
pub use stationary::{GaussSeidel, StationaryOptions, StationarySolution};
pub use triplet::TripletMatrix;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, SolverError>;

//! Workspace-wide parallel execution layer.
//!
//! Every data-parallel hot path in the workspace — CSR SpMV and the
//! BLAS-1 kernels here in `ppdl-solver`, minibatch forward/backward in
//! `ppdl-nn`, per-scenario solves in `ppdl-analysis`, per-γ perturbation
//! sweeps in `ppdl-core` — runs through the primitives in this module,
//! so one configuration governs the whole stack:
//!
//! * **Thread count** — `PPDL_THREADS` env override (sampled once, at
//!   the first kernel use — see [`current_threads`]), else the hardware
//!   parallelism; [`set_threads`] overrides at runtime (`0` resets).
//! * **Threshold** — inputs smaller than [`par_threshold`] elements stay
//!   on the sequential code path, so small grids pay no thread-spawn
//!   overhead ([`set_par_threshold`] tunes it).
//!
//! # Determinism guarantee
//!
//! Results are **bit-stable across thread counts**. The rules that make
//! this hold, which every caller must preserve:
//!
//! 1. Work decomposition depends only on the input *size* (fixed
//!    [`REDUCTION_CHUNK`]-element chunks, or per-element independence),
//!    never on the thread count.
//! 2. Reductions compute one partial per fixed chunk and fold them on
//!    the calling thread in ascending chunk order ([`par_reduce`]).
//! 3. Element-wise kernels write disjoint output ranges whose values do
//!    not depend on the split ([`par_chunks_mut`], [`par_map_vec`]).
//!
//! Thread counts therefore change only *where* chunks execute, never
//! what is computed — `PPDL_THREADS=1` and `PPDL_THREADS=64` produce
//! bitwise-identical solver output and identical trained-model weights.
//!
//! The engine is hand-rolled on [`std::thread::scope`] rather than a
//! `rayon` pool because the build environment vendors no external
//! crates; the public surface is pool-agnostic so a later PR can swap
//! the engine without touching callers.

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::thread;

/// Default sequential-fallback threshold, in elements (rows for SpMV).
///
/// Below this size the cost of spawning scoped threads dominates the
/// kernel itself; the value is conservative so the ibmpg1-scale grids
/// keep their single-threaded performance profile.
pub const DEFAULT_PAR_THRESHOLD: usize = 4096;

/// Fixed reduction chunk size, in elements.
///
/// Chunk boundaries are a function of input length only — **never** of
/// the thread count — which is what makes chunked reductions bit-stable
/// across `PPDL_THREADS` settings.
pub const REDUCTION_CHUNK: usize = 4096;

/// Sentinel meaning "no runtime override installed".
const UNSET: usize = usize::MAX;

static THREAD_OVERRIDE: AtomicUsize = AtomicUsize::new(UNSET);
static THRESHOLD: AtomicUsize = AtomicUsize::new(DEFAULT_PAR_THRESHOLD);
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

fn hardware_threads() -> usize {
    thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
}

fn env_or_hardware_threads() -> usize {
    *ENV_THREADS.get_or_init(|| {
        std::env::var("PPDL_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(hardware_threads)
    })
}

/// The number of worker threads parallel kernels may use.
///
/// Resolution order: [`set_threads`] override → `PPDL_THREADS` env
/// variable (read once, first use) → hardware parallelism.
///
/// # Read-once semantics
///
/// `PPDL_THREADS` is sampled into a `OnceLock` the **first** time this
/// function runs (every kernel entry point calls it), and that sample
/// is final: mutating the env var afterwards — from a test, or from
/// code that runs after the first solve — is silently ignored. Two
/// consequences for callers:
///
/// * Set `PPDL_THREADS` in the *environment of the process*, before
///   any kernel executes, never via `std::env::set_var` mid-run.
/// * Anything that wants to change the count at runtime must go
///   through [`set_threads`], which always wins over the cached env
///   value. The `ppdl` CLI and `ppdl-bench` both route their
///   `--threads` flags through [`set_threads`] before the first kernel
///   use for exactly this reason.
#[must_use]
pub fn current_threads() -> usize {
    match THREAD_OVERRIDE.load(Ordering::Relaxed) {
        UNSET => env_or_hardware_threads(),
        n => n,
    }
}

/// Overrides the worker-thread count at runtime; `0` removes the
/// override, restoring the `PPDL_THREADS`/hardware default.
///
/// Takes effect for subsequent kernel invocations process-wide (the
/// determinism guarantee means results do not change, only speed).
pub fn set_threads(threads: usize) {
    let v = if threads == 0 { UNSET } else { threads };
    THREAD_OVERRIDE.store(v, Ordering::Relaxed);
}

/// The sequential-fallback threshold in elements: inputs smaller than
/// this run on the calling thread.
#[must_use]
pub fn par_threshold() -> usize {
    THRESHOLD.load(Ordering::Relaxed)
}

/// Tunes the sequential-fallback threshold (process-wide).
///
/// Note that [`par_reduce`] ties its *decomposition* to
/// [`REDUCTION_CHUNK`], not to this threshold, so changing the
/// threshold never changes reduction results — only which sizes bother
/// spawning threads.
pub fn set_par_threshold(threshold: usize) {
    THRESHOLD.store(threshold, Ordering::Relaxed);
}

/// Snapshot of the effective parallel configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker threads kernels may use (see [`current_threads`]).
    pub threads: usize,
    /// Sequential-fallback threshold in elements.
    pub threshold: usize,
}

/// Reads the effective configuration.
#[must_use]
pub fn parallel_config() -> ParallelConfig {
    ParallelConfig {
        threads: current_threads(),
        threshold: par_threshold(),
    }
}

/// Splits `0..len` into `parts` near-equal contiguous ranges.
fn split_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.clamp(1, len.max(1));
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(start..start + size);
        start += size;
    }
    out
}

/// Runs `f(offset, chunk)` over disjoint contiguous chunks of `out`,
/// in parallel when `out` is at least [`par_threshold`] elements and
/// more than one worker thread is configured; otherwise `f(0, out)`
/// runs on the calling thread.
///
/// Determinism: callers must compute each element identically however
/// the slice is split (true for element-wise kernels and for row-wise
/// SpMV, where each output element depends only on shared inputs).
pub fn par_chunks_mut<T, F>(out: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    let threads = current_threads();
    if threads <= 1 || out.len() < par_threshold() {
        f(0, out);
        return;
    }
    let ranges = split_ranges(out.len(), threads);
    thread::scope(|scope| {
        let mut rest = out;
        let mut consumed = 0;
        for range in ranges {
            let (chunk, tail) = rest.split_at_mut(range.len());
            rest = tail;
            let offset = consumed;
            consumed += chunk.len();
            let f = &f;
            scope.spawn(move || f(offset, chunk));
        }
    });
}

/// Row-aligned variant of [`par_chunks_mut`]: runs `f(row0, chunk)`
/// over disjoint chunks of `out` whose boundaries always fall on
/// multiples of `width` elements, so a caller can treat `out` as a
/// row-major matrix and hand each worker whole rows. `f` receives the
/// index of the first row in its chunk.
///
/// Parallel when the matrix has at least [`par_threshold`] *elements*
/// and more than one worker thread is configured; otherwise `f(0, out)`
/// runs inline. The GEMM row-block kernels in `ppdl-nn` are built on
/// this: each output row is a fixed-order accumulation independent of
/// the split, so results are bitwise identical at every thread count.
///
/// # Panics
///
/// Panics if `width == 0` or `out.len()` is not a multiple of `width`.
pub fn par_row_chunks_mut<T, F>(out: &mut [T], width: usize, f: F)
where
    T: Send,
    F: Fn(usize, &mut [T]) + Sync,
{
    assert!(width > 0, "par_row_chunks_mut: width must be positive");
    assert_eq!(
        out.len() % width,
        0,
        "par_row_chunks_mut: slice length {} is not a multiple of row width {width}",
        out.len()
    );
    let rows = out.len() / width;
    let threads = current_threads();
    if threads <= 1 || out.len() < par_threshold() {
        f(0, out);
        return;
    }
    let ranges = split_ranges(rows, threads);
    thread::scope(|scope| {
        let mut rest = out;
        let mut row0 = 0;
        for range in ranges {
            let (chunk, tail) = rest.split_at_mut(range.len() * width);
            rest = tail;
            let first_row = row0;
            row0 += range.len();
            let f = &f;
            scope.spawn(move || f(first_row, chunk));
        }
    });
}

/// Deterministic chunked map-reduce over `0..len`.
///
/// The index space is cut into fixed [`REDUCTION_CHUNK`]-element chunks
/// (boundaries depend on `len` only), `map` produces one partial per
/// chunk, and the partials are folded with `fold` on the calling thread
/// in ascending chunk order — so the result is bitwise identical for
/// any thread count, including one. Returns `None` when `len == 0`.
///
/// Below the [`par_threshold`] the single remaining chunk is mapped
/// inline, which is exactly the sequential kernel.
pub fn par_reduce<T, M, F>(len: usize, map: M, mut fold: F) -> Option<T>
where
    T: Send,
    M: Fn(Range<usize>) -> T + Sync,
    F: FnMut(T, T) -> T,
{
    if len == 0 {
        return None;
    }
    let n_chunks = len.div_ceil(REDUCTION_CHUNK);
    let chunk_range = |c: usize| c * REDUCTION_CHUNK..((c + 1) * REDUCTION_CHUNK).min(len);
    let threads = current_threads();
    let partials: Vec<T> = if threads <= 1 || n_chunks <= 1 || len < par_threshold() {
        (0..n_chunks).map(|c| map(chunk_range(c))).collect()
    } else {
        // Contiguous chunk-index spans per thread keep the concatenated
        // partials in ascending chunk order.
        let spans = split_ranges(n_chunks, threads);
        thread::scope(|scope| {
            let handles: Vec<_> = spans
                .into_iter()
                .map(|span| {
                    let map = &map;
                    scope.spawn(move || span.map(|c| map(chunk_range(c))).collect::<Vec<T>>())
                })
                .collect();
            handles
                .into_iter()
                // Re-raise a worker panic on the calling thread instead
                // of replacing it with a second panic message
                // (robustness/unwrap-in-lib).
                .flat_map(|h| {
                    h.join()
                        .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
                })
                .collect()
        })
    };
    partials.into_iter().reduce(&mut fold)
}

/// Index-preserving parallel map: `out[i] = f(i, &items[i])`.
///
/// Parallel when `items` has at least two elements, more than one
/// worker thread is configured, and `f` is presumed expensive (this
/// entry point is for coarse-grained work such as per-scenario solves;
/// it ignores the element threshold). Each item is computed
/// independently, so results never depend on the split.
pub fn par_map_vec<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let threads = current_threads();
    if threads <= 1 || items.len() < 2 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let spans = split_ranges(items.len(), threads);
    thread::scope(|scope| {
        let handles: Vec<_> = spans
            .into_iter()
            .map(|span| {
                let f = &f;
                scope.spawn(move || span.map(|i| f(i, &items[i])).collect::<Vec<R>>())
            })
            .collect();
        handles
            .into_iter()
            // Same: propagate the original worker panic payload
            // (robustness/unwrap-in-lib).
            .flat_map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serialises tests that mutate the global config.
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn split_ranges_cover_everything() {
        for len in [0usize, 1, 5, 17, 4096, 4097] {
            for parts in [1usize, 2, 3, 8] {
                let ranges = split_ranges(len, parts);
                let mut expect = 0;
                for r in &ranges {
                    assert_eq!(r.start, expect);
                    expect = r.end;
                }
                assert_eq!(expect, len);
            }
        }
    }

    #[test]
    fn config_roundtrip() {
        let _g = LOCK.lock().unwrap();
        set_threads(3);
        assert_eq!(current_threads(), 3);
        set_threads(0);
        assert!(current_threads() >= 1);
        let old = par_threshold();
        set_par_threshold(128);
        assert_eq!(parallel_config().threshold, 128);
        set_par_threshold(old);
    }

    #[test]
    fn par_chunks_mut_writes_every_element() {
        let _g = LOCK.lock().unwrap();
        let old = par_threshold();
        set_par_threshold(16);
        set_threads(4);
        let mut v = vec![0.0_f64; 1000];
        par_chunks_mut(&mut v, |offset, chunk| {
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = (offset + i) as f64;
            }
        });
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i as f64);
        }
        set_threads(0);
        set_par_threshold(old);
    }

    #[test]
    fn par_row_chunks_mut_respects_row_boundaries() {
        let _g = LOCK.lock().unwrap();
        let old = par_threshold();
        set_par_threshold(16);
        set_threads(3);
        const WIDTH: usize = 7;
        let mut v = vec![0usize; 100 * WIDTH];
        par_row_chunks_mut(&mut v, WIDTH, |row0, chunk| {
            assert_eq!(chunk.len() % WIDTH, 0, "chunk not row-aligned");
            for (i, x) in chunk.iter_mut().enumerate() {
                *x = (row0 * WIDTH + i) % WIDTH + row0 + i / WIDTH;
            }
        });
        set_threads(0);
        set_par_threshold(old);
        for (i, x) in v.iter().enumerate() {
            assert_eq!(*x, i % WIDTH + i / WIDTH, "element {i}");
        }
    }

    #[test]
    #[should_panic(expected = "multiple of row width")]
    fn par_row_chunks_mut_rejects_misaligned_slice() {
        let mut v = vec![0.0_f64; 10];
        par_row_chunks_mut(&mut v, 3, |_, _| {});
    }

    #[test]
    fn par_reduce_is_bit_stable_across_thread_counts() {
        let _g = LOCK.lock().unwrap();
        let old = par_threshold();
        set_par_threshold(16);
        let data: Vec<f64> = (0..100_000)
            .map(|i| ((i * 37) % 101) as f64 * 0.7)
            .collect();
        let sum = |r: Range<usize>| data[r].iter().sum::<f64>();
        let mut results = Vec::new();
        for threads in [1usize, 2, 4, 7] {
            set_threads(threads);
            results.push(par_reduce(data.len(), sum, |a, b| a + b).unwrap());
        }
        set_threads(0);
        set_par_threshold(old);
        for w in results.windows(2) {
            assert_eq!(w[0].to_bits(), w[1].to_bits());
        }
    }

    #[test]
    fn par_reduce_empty_is_none() {
        assert!(par_reduce(0, |_r| 0.0_f64, |a, b| a + b).is_none());
    }

    #[test]
    fn par_map_vec_preserves_order() {
        let _g = LOCK.lock().unwrap();
        set_threads(4);
        let items: Vec<usize> = (0..97).collect();
        let out = par_map_vec(&items, |i, &v| {
            assert_eq!(i, v);
            v * 2
        });
        set_threads(0);
        assert_eq!(out, (0..97).map(|v| v * 2).collect::<Vec<_>>());
    }
}

use crate::{CsrMatrix, SolverError};

/// Sparse Cholesky factorization `A = L Lᵀ` for symmetric
/// positive-definite matrices, in up-looking row form: row `i`'s
/// pattern is discovered by walking the elimination tree from the
/// nonzeros of `A(i, 0..i)`, then computed by a sparse triangular
/// solve against the rows already factored.
///
/// No fill-reducing ordering is applied (AMD/ND are out of scope for
/// this reproduction), so fill-in on 2-D grid matrices grows as
/// roughly O(n^1.5); the factorization is intended for the
/// small-to-medium systems where an exact solve is convenient — tiny
/// MNA systems, the coarse grids of the IR predictor, and as an oracle
/// against the iterative solvers. For full-size grids use
/// [`ConjugateGradient`](crate::ConjugateGradient).
///
/// # Example
///
/// ```
/// use ppdl_solver::{SparseCholesky, TripletMatrix};
///
/// let mut t = TripletMatrix::new(3, 3);
/// t.stamp_conductance(0, 1, 1.0);
/// t.stamp_conductance(1, 2, 2.0);
/// t.stamp_grounded_conductance(0, 0.5);
/// let a = t.to_csr();
/// let chol = SparseCholesky::factor(&a).unwrap();
/// let x = chol.solve(&[0.0, 0.0, 1.0]).unwrap();
/// // 1 A into node 2 -> drops accumulate: 2, 3, 3.5 V.
/// assert!((x[0] - 2.0).abs() < 1e-10);
/// assert!((x[2] - 3.5).abs() < 1e-10);
/// ```
#[derive(Debug, Clone)]
pub struct SparseCholesky {
    n: usize,
    /// Strictly-lower factor rows, compressed; columns ascending.
    indptr: Vec<usize>,
    indices: Vec<usize>,
    data: Vec<f64>,
    /// `L[i][i]`.
    diag: Vec<f64>,
}

impl SparseCholesky {
    /// Factors a symmetric positive-definite matrix. Only the lower
    /// triangle of `a` is read; symmetry is the caller's contract
    /// (assembled MNA matrices always satisfy it).
    ///
    /// # Errors
    ///
    /// * [`SolverError::DimensionMismatch`] — non-square input.
    /// * [`SolverError::NotPositiveDefinite`] — a pivot is not strictly
    ///   positive.
    pub fn factor(a: &CsrMatrix) -> crate::Result<Self> {
        let n = a.nrows();
        if a.ncols() != n {
            return Err(SolverError::DimensionMismatch {
                detail: format!("sparse cholesky of non-square {}x{}", n, a.ncols()),
            });
        }

        let mut parent = vec![usize::MAX; n]; // elimination tree
        let mut indptr = Vec::with_capacity(n + 1);
        let mut indices: Vec<usize> = Vec::new();
        let mut data: Vec<f64> = Vec::new();
        let mut diag = vec![0.0; n];

        let mut x = vec![0.0; n]; // dense scratch, zero outside the loop
        let mut marked = vec![usize::MAX; n]; // marked[t] == i -> in row i's pattern
        let mut pattern: Vec<usize> = Vec::with_capacity(64);

        indptr.push(0);
        for i in 0..n {
            // Discover the pattern of L(i, 0..i): the union of etree
            // paths from every structural nonzero of A(i, 0..i). The
            // first row to reach an unparented node becomes its etree
            // parent.
            pattern.clear();
            let mut aii = 0.0;
            for (j, v) in a.row(i) {
                match j.cmp(&i) {
                    std::cmp::Ordering::Greater => continue,
                    std::cmp::Ordering::Equal => {
                        aii = v;
                        continue;
                    }
                    std::cmp::Ordering::Less => {}
                }
                x[j] += v;
                let mut t = j;
                while t < i && marked[t] != i {
                    marked[t] = i;
                    pattern.push(t);
                    if parent[t] == usize::MAX {
                        parent[t] = i;
                    }
                    t = parent[t];
                }
            }
            pattern.sort_unstable();

            // Sparse forward solve over the pattern:
            //   L_ij = (x_j - sum_{m<j} L_jm * L_im) / L_jj
            // Row j of L is already stored, so the inner sum is a
            // gather against the current row's partial values in x.
            let mut sq = 0.0;
            for &j in &pattern {
                let mut s = x[j];
                for idx in indptr[j]..indptr[j + 1] {
                    s -= data[idx] * x[indices[idx]];
                }
                let lij = s / diag[j];
                x[j] = lij;
                sq += lij * lij;
            }
            let d = aii - sq;
            if d <= 0.0 || !d.is_finite() {
                // Clean the scratch before bailing out.
                for &j in &pattern {
                    x[j] = 0.0;
                }
                return Err(SolverError::NotPositiveDefinite { pivot: i, value: d });
            }
            diag[i] = d.sqrt();
            for &j in &pattern {
                indices.push(j);
                data.push(x[j]);
                x[j] = 0.0;
            }
            indptr.push(indices.len());
        }

        Ok(Self {
            n,
            indptr,
            indices,
            data,
            diag,
        })
    }

    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of stored strictly-lower entries (a fill measure).
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.data.len()
    }

    /// Solves `A x = b` by forward and backward substitution.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> crate::Result<Vec<f64>> {
        let n = self.n;
        if b.len() != n {
            return Err(SolverError::DimensionMismatch {
                detail: format!("sparse cholesky solve: dim {n}, b has length {}", b.len()),
            });
        }
        // Forward: L y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            let mut s = y[i];
            for idx in self.indptr[i]..self.indptr[i + 1] {
                s -= self.data[idx] * y[self.indices[idx]];
            }
            y[i] = s / self.diag[i];
        }
        // Backward: Lᵀ x = y, scattering row i into earlier columns.
        for i in (0..n).rev() {
            y[i] /= self.diag[i];
            let yi = y[i];
            for idx in self.indptr[i]..self.indptr[i + 1] {
                y[self.indices[idx]] -= self.data[idx] * yi;
            }
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn chain(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n - 1 {
            t.stamp_conductance(i, i + 1, 1.0);
        }
        t.stamp_grounded_conductance(0, 1.0);
        t.to_csr()
    }

    fn grid2d(side: usize) -> CsrMatrix {
        let n = side * side;
        let mut t = TripletMatrix::new(n, n);
        for r in 0..side {
            for c in 0..side {
                let i = r * side + c;
                if c + 1 < side {
                    t.stamp_conductance(i, i + 1, 1.0 + (i % 3) as f64 * 0.2);
                }
                if r + 1 < side {
                    t.stamp_conductance(i, i + side, 1.0 + (i % 5) as f64 * 0.1);
                }
            }
        }
        t.stamp_grounded_conductance(0, 2.0);
        t.stamp_grounded_conductance(n - 1, 1.5);
        t.to_csr()
    }

    #[test]
    fn tridiagonal_has_no_fill() {
        let a = chain(20);
        let chol = SparseCholesky::factor(&a).unwrap();
        // A tridiagonal matrix factors with exactly one sub-diagonal
        // entry per row after the first.
        assert_eq!(chol.nnz(), 19);
    }

    #[test]
    fn matches_dense_cholesky() {
        let a = grid2d(7);
        let chol = SparseCholesky::factor(&a).unwrap();
        let dense = a.to_dense().cholesky().unwrap();
        let b: Vec<f64> = (0..a.nrows())
            .map(|i| ((i * 13 + 5) % 17) as f64 * 0.1)
            .collect();
        let xs = chol.solve(&b).unwrap();
        let xd = dense.solve(&b).unwrap();
        for (s, d) in xs.iter().zip(&xd) {
            assert!((s - d).abs() < 1e-9, "{s} vs {d}");
        }
    }

    #[test]
    fn matches_cg() {
        use crate::{CgOptions, ConjugateGradient};
        let a = grid2d(9);
        let chol = SparseCholesky::factor(&a).unwrap();
        let b = vec![0.25; a.nrows()];
        let xs = chol.solve(&b).unwrap();
        let cg = ConjugateGradient::new(CgOptions {
            tolerance: 1e-12,
            ..CgOptions::default()
        });
        let xc = cg.solve(&a, &b).unwrap().x;
        for (s, c) in xs.iter().zip(&xc) {
            assert!((s - c).abs() < 1e-7);
        }
    }

    #[test]
    fn residual_is_tiny() {
        let a = grid2d(10);
        let chol = SparseCholesky::factor(&a).unwrap();
        let b: Vec<f64> = (0..a.nrows()).map(|i| (i % 7) as f64 - 3.0).collect();
        let x = chol.solve(&b).unwrap();
        let r = a.residual(&x, &b).unwrap();
        let rel = crate::vecops::norm2(&r) / crate::vecops::norm2(&b);
        assert!(rel < 1e-12, "relative residual {rel}");
    }

    #[test]
    fn rejects_indefinite() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 0, 1.0);
        t.push(0, 1, 2.0);
        t.push(1, 0, 2.0);
        t.push(1, 1, 1.0);
        let err = SparseCholesky::factor(&t.to_csr()).unwrap_err();
        assert!(matches!(err, SolverError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn rejects_non_square() {
        let t = TripletMatrix::new(2, 3);
        assert!(SparseCholesky::factor(&t.to_csr()).is_err());
    }

    #[test]
    fn solve_length_checked() {
        let a = chain(4);
        let chol = SparseCholesky::factor(&a).unwrap();
        assert!(chol.solve(&[1.0, 2.0]).is_err());
        assert_eq!(chol.dim(), 4);
    }

    #[test]
    fn disconnected_blocks_factor_independently() {
        // Two separate chains, each grounded: block-diagonal SPD.
        let mut t = TripletMatrix::new(6, 6);
        t.stamp_conductance(0, 1, 1.0);
        t.stamp_conductance(1, 2, 1.0);
        t.stamp_grounded_conductance(0, 1.0);
        t.stamp_conductance(3, 4, 2.0);
        t.stamp_conductance(4, 5, 2.0);
        t.stamp_grounded_conductance(3, 2.0);
        let a = t.to_csr();
        let chol = SparseCholesky::factor(&a).unwrap();
        let x = chol.solve(&[0.0, 0.0, 1.0, 0.0, 0.0, 1.0]).unwrap();
        // First chain: drops 1, 2, 3; second chain: 0.5, 1.0, 1.5.
        assert!((x[2] - 3.0).abs() < 1e-10);
        assert!((x[5] - 1.5).abs() < 1e-10);
        // No fill across the blocks.
        assert_eq!(chol.nnz(), 4);
    }
}

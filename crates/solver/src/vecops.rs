//! BLAS-1 style vector kernels shared by the iterative solvers.
//!
//! All functions panic on length mismatch — callers inside this crate
//! validate shapes at the solver boundary, so a mismatch here is a bug,
//! not a user error.
//!
//! Kernels run through [`crate::parallel`]: element-wise updates split
//! into disjoint chunks above the parallel threshold, and reductions
//! (`dot`, `norm2`) use the fixed-chunk deterministic scheme, so every
//! kernel returns bitwise-identical results at any thread count.

use crate::parallel::{par_chunks_mut, par_reduce};

/// Dot product `x · y`.
///
/// Computed as a fixed-chunk reduction (see
/// [`crate::parallel::par_reduce`]): per-chunk partial sums folded in
/// ascending chunk order, so the floating-point association — and
/// therefore the result — is independent of the thread count.
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
///
/// # Example
///
/// ```
/// assert_eq!(ppdl_solver::vecops::dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
/// ```
#[must_use]
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    par_reduce(
        x.len(),
        |r| {
            x[r.clone()]
                .iter()
                .zip(&y[r])
                .map(|(a, b)| a * b)
                .sum::<f64>()
        },
        |a, b| a + b,
    )
    .unwrap_or(0.0)
}

/// In-place `y += alpha * x`.
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    par_chunks_mut(y, |off, chunk| {
        let n = chunk.len();
        for (yi, xi) in chunk.iter_mut().zip(&x[off..off + n]) {
            *yi += alpha * xi;
        }
    });
}

/// In-place scale `x *= alpha`.
pub fn scale(alpha: f64, x: &mut [f64]) {
    par_chunks_mut(x, |_off, chunk| {
        for xi in chunk {
            *xi *= alpha;
        }
    });
}

/// In-place `y = x + beta * y` (the "xpby" update used by CG for the
/// search direction).
///
/// # Panics
///
/// Panics if `x` and `y` have different lengths.
pub fn xpby(x: &[f64], beta: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby: length mismatch");
    par_chunks_mut(y, |off, chunk| {
        let n = chunk.len();
        for (yi, xi) in chunk.iter_mut().zip(&x[off..off + n]) {
            *yi = xi + beta * *yi;
        }
    });
}

/// Euclidean norm `||x||_2`, computed with scaling to avoid overflow.
///
/// Both passes (max-abs and the scaled sum of squares) are fixed-chunk
/// reductions; `max` is exact under reassociation and the sum folds in
/// chunk order, so the norm is bit-stable across thread counts.
#[must_use]
pub fn norm2(x: &[f64]) -> f64 {
    let maxabs = par_reduce(
        x.len(),
        |r| x[r].iter().fold(0.0_f64, |m, v| m.max(v.abs())),
        f64::max,
    )
    .unwrap_or(0.0);
    if maxabs == 0.0 || !maxabs.is_finite() {
        return if maxabs.is_finite() {
            0.0
        } else {
            f64::INFINITY
        };
    }
    let sum: f64 = par_reduce(
        x.len(),
        |r| {
            x[r].iter()
                .map(|v| (v / maxabs) * (v / maxabs))
                .sum::<f64>()
        },
        |a, b| a + b,
    )
    .unwrap_or(0.0);
    maxabs * sum.sqrt()
}

/// Infinity norm `||x||_inf`.
#[must_use]
pub fn norm_inf(x: &[f64]) -> f64 {
    par_reduce(
        x.len(),
        |r| x[r].iter().fold(0.0_f64, |m, v| m.max(v.abs())),
        f64::max,
    )
    .unwrap_or(0.0)
}

/// Elementwise copy of `src` into `dst`.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn copy(src: &[f64], dst: &mut [f64]) {
    assert_eq!(src.len(), dst.len(), "copy: length mismatch");
    dst.copy_from_slice(src);
}

/// Returns `true` if every element of `x` is finite.
#[must_use]
pub fn all_finite(x: &[f64]) -> bool {
    x.iter().all(|v| v.is_finite())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_basic() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn dot_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_mismatch_panics() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, 4.0], &mut y);
        assert_eq!(y, vec![7.0, 9.0]);
    }

    #[test]
    fn xpby_updates_direction() {
        let mut p = vec![1.0, 2.0];
        xpby(&[10.0, 20.0], 0.5, &mut p);
        assert_eq!(p, vec![10.5, 21.0]);
    }

    #[test]
    fn scale_in_place() {
        let mut x = vec![1.0, -2.0];
        scale(-3.0, &mut x);
        assert_eq!(x, vec![-3.0, 6.0]);
    }

    #[test]
    fn norm2_pythagorean() {
        assert!((norm2(&[3.0, 4.0]) - 5.0).abs() < 1e-15);
    }

    #[test]
    fn norm2_zero_vector() {
        assert_eq!(norm2(&[0.0, 0.0, 0.0]), 0.0);
        assert_eq!(norm2(&[]), 0.0);
    }

    #[test]
    fn norm2_resists_overflow() {
        let big = 1e200;
        let n = norm2(&[big, big]);
        assert!(n.is_finite());
        assert!((n - big * std::f64::consts::SQRT_2).abs() / n < 1e-12);
    }

    #[test]
    fn norm_inf_picks_max_abs() {
        assert_eq!(norm_inf(&[1.0, -7.0, 3.0]), 7.0);
    }

    #[test]
    fn all_finite_detects_nan_and_inf() {
        assert!(all_finite(&[1.0, 2.0]));
        assert!(!all_finite(&[1.0, f64::NAN]));
        assert!(!all_finite(&[f64::INFINITY]));
    }
}

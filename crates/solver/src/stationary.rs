use crate::vecops::norm2;
use crate::{CsrMatrix, SolverError};

/// Options for the stationary (Gauss–Seidel) iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct StationaryOptions {
    /// Relative residual tolerance.
    pub tolerance: f64,
    /// Maximum number of sweeps.
    pub max_sweeps: usize,
    /// Successive over-relaxation factor in `(0, 2)`. `1.0` gives plain
    /// Gauss–Seidel.
    pub relaxation: f64,
}

impl Default for StationaryOptions {
    fn default() -> Self {
        Self {
            tolerance: 1e-8,
            max_sweeps: 10_000,
            relaxation: 1.0,
        }
    }
}

/// Result of a stationary solve.
#[derive(Debug, Clone)]
pub struct StationarySolution {
    /// The computed solution vector.
    pub x: Vec<f64>,
    /// Number of sweeps performed.
    pub sweeps: usize,
    /// Final relative residual.
    pub relative_residual: f64,
}

/// Gauss–Seidel / SOR solver.
///
/// Slower than preconditioned CG on power-grid matrices but useful as an
/// independent cross-check of the CG results (two very different
/// algorithms agreeing is strong evidence the assembly is right) and as a
/// smoother. Requires a nonzero diagonal; converges for the symmetric
/// diagonally dominant systems power grids produce.
///
/// # Example
///
/// ```
/// use ppdl_solver::{TripletMatrix, GaussSeidel, StationaryOptions};
///
/// let mut t = TripletMatrix::new(2, 2);
/// t.stamp_conductance(0, 1, 1.0);
/// t.stamp_grounded_conductance(0, 1.0);
/// let a = t.to_csr();
/// let sol = GaussSeidel::new(StationaryOptions::default())
///     .solve(&a, &[0.0, 1.0])
///     .unwrap();
/// assert!((sol.x[1] - 2.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GaussSeidel {
    options: StationaryOptions,
}

impl GaussSeidel {
    /// Creates a solver with the given options.
    #[must_use]
    pub fn new(options: StationaryOptions) -> Self {
        Self { options }
    }

    /// Solves `A x = b` from a zero initial guess.
    ///
    /// # Errors
    ///
    /// * [`SolverError::DimensionMismatch`] — inconsistent shapes.
    /// * [`SolverError::SingularMatrix`] — a zero diagonal entry.
    /// * [`SolverError::DidNotConverge`] — sweep cap reached.
    pub fn solve(&self, a: &CsrMatrix, b: &[f64]) -> crate::Result<StationarySolution> {
        if !(self.options.relaxation > 0.0 && self.options.relaxation < 2.0) {
            return Err(SolverError::DimensionMismatch {
                detail: format!(
                    "SOR relaxation factor {} outside (0, 2) cannot converge",
                    self.options.relaxation
                ),
            });
        }
        let n = a.nrows();
        if a.ncols() != n || b.len() != n {
            return Err(SolverError::DimensionMismatch {
                detail: format!(
                    "gauss-seidel: matrix {}x{}, b has length {}",
                    n,
                    a.ncols(),
                    b.len()
                ),
            });
        }
        let diag = a.diagonal();
        if let Some(i) = diag.iter().position(|&d| d == 0.0) {
            return Err(SolverError::SingularMatrix { pivot: i });
        }
        let bnorm = norm2(b);
        if bnorm == 0.0 {
            return Ok(StationarySolution {
                x: vec![0.0; n],
                sweeps: 0,
                relative_residual: 0.0,
            });
        }
        let omega = self.options.relaxation;
        let mut x = vec![0.0; n];
        let mut resid = f64::INFINITY;
        for sweep in 1..=self.options.max_sweeps {
            for i in 0..n {
                let mut s = b[i];
                for (j, v) in a.row(i) {
                    if j != i {
                        s -= v * x[j];
                    }
                }
                let xi_new = s / diag[i];
                x[i] += omega * (xi_new - x[i]);
            }
            let r = a.residual(&x, b)?;
            resid = norm2(&r) / bnorm;
            if resid <= self.options.tolerance {
                return Ok(StationarySolution {
                    x,
                    sweeps: sweep,
                    relative_residual: resid,
                });
            }
        }
        Err(SolverError::DidNotConverge {
            iterations: self.options.max_sweeps,
            residual: resid,
            tolerance: self.options.tolerance,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn chain(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n - 1 {
            t.stamp_conductance(i, i + 1, 1.0);
        }
        t.stamp_grounded_conductance(0, 1.0);
        t.to_csr()
    }

    #[test]
    fn solves_chain() {
        let a = chain(4);
        let sol = GaussSeidel::default()
            .solve(&a, &[0.0, 0.0, 0.0, 1.0])
            .unwrap();
        for (i, &v) in sol.x.iter().enumerate() {
            assert!((v - (i as f64 + 1.0)).abs() < 1e-6);
        }
    }

    #[test]
    fn agrees_with_cg() {
        use crate::{CgOptions, ConjugateGradient};
        let a = chain(10);
        let b: Vec<f64> = (0..10).map(|i| (i % 3) as f64 * 0.4).collect();
        let gs = GaussSeidel::new(StationaryOptions {
            tolerance: 1e-10,
            ..StationaryOptions::default()
        })
        .solve(&a, &b)
        .unwrap();
        let cg = ConjugateGradient::new(CgOptions {
            tolerance: 1e-12,
            ..CgOptions::default()
        })
        .solve(&a, &b)
        .unwrap();
        for (u, v) in gs.x.iter().zip(&cg.x) {
            assert!((u - v).abs() < 1e-6, "{u} vs {v}");
        }
    }

    #[test]
    fn sor_converges_in_fewer_sweeps() {
        let a = chain(30);
        let b = vec![0.1; 30];
        let plain = GaussSeidel::new(StationaryOptions::default())
            .solve(&a, &b)
            .unwrap();
        let sor = GaussSeidel::new(StationaryOptions {
            relaxation: 1.8,
            ..StationaryOptions::default()
        })
        .solve(&a, &b)
        .unwrap();
        assert!(
            sor.sweeps < plain.sweeps,
            "{} vs {}",
            sor.sweeps,
            plain.sweeps
        );
    }

    #[test]
    fn zero_diagonal_rejected() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(0, 1, 1.0);
        t.push(1, 0, 1.0);
        let err = GaussSeidel::default()
            .solve(&t.to_csr(), &[1.0, 1.0])
            .unwrap_err();
        assert!(matches!(err, SolverError::SingularMatrix { .. }));
    }

    #[test]
    fn zero_rhs_short_circuits() {
        let a = chain(3);
        let sol = GaussSeidel::default().solve(&a, &[0.0; 3]).unwrap();
        assert_eq!(sol.sweeps, 0);
    }

    #[test]
    fn invalid_relaxation_rejected() {
        let a = chain(3);
        for omega in [0.0, 2.0, -0.5, f64::NAN] {
            let err = GaussSeidel::new(StationaryOptions {
                relaxation: omega,
                ..StationaryOptions::default()
            })
            .solve(&a, &[1.0; 3]);
            assert!(err.is_err(), "omega {omega} should be rejected");
        }
    }

    #[test]
    fn sweep_cap_reported() {
        let a = chain(50);
        let err = GaussSeidel::new(StationaryOptions {
            tolerance: 1e-14,
            max_sweeps: 1,
            relaxation: 1.0,
        })
        .solve(&a, &vec![1.0; 50])
        .unwrap_err();
        assert!(matches!(err, SolverError::DidNotConverge { .. }));
    }
}

use crate::SolverError;

/// Row-major dense matrix.
///
/// Used for small MNA systems (a handful of straps), as the test oracle
/// for the sparse path, and inside the dense factorizations.
///
/// # Example
///
/// ```
/// use ppdl_solver::DenseMatrix;
///
/// let a = DenseMatrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]).unwrap();
/// let chol = a.cholesky().unwrap();
/// let x = chol.solve(&[1.0, 2.0]).unwrap();
/// assert!((x[0] - 1.0 / 11.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    nrows: usize,
    ncols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero matrix of the given shape.
    #[must_use]
    pub fn zeros(nrows: usize, ncols: usize) -> Self {
        Self {
            nrows,
            ncols,
            data: vec![0.0; nrows * ncols],
        }
    }

    /// Creates an identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] if the rows have unequal
    /// lengths.
    pub fn from_rows(rows: &[&[f64]]) -> crate::Result<Self> {
        let nrows = rows.len();
        let ncols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(nrows * ncols);
        for (i, row) in rows.iter().enumerate() {
            if row.len() != ncols {
                return Err(SolverError::DimensionMismatch {
                    detail: format!("row {i} has length {}, expected {ncols}", row.len()),
                });
            }
            data.extend_from_slice(row);
        }
        Ok(Self { nrows, ncols, data })
    }

    /// Number of rows.
    #[must_use]
    pub fn nrows(&self) -> usize {
        self.nrows
    }

    /// Number of columns.
    #[must_use]
    pub fn ncols(&self) -> usize {
        self.ncols
    }

    /// Element access.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    #[must_use]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        assert!(r < self.nrows && c < self.ncols, "dense get out of bounds");
        self.data[r * self.ncols + c]
    }

    /// Element assignment.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of bounds.
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.nrows && c < self.ncols, "dense set out of bounds");
        self.data[r * self.ncols + c] = v;
    }

    /// Adds `v` to the element at `(r, c)` (stamping accumulation).
    pub fn add_to(&mut self, r: usize, c: usize, v: f64) {
        assert!(r < self.nrows && c < self.ncols, "dense add out of bounds");
        self.data[r * self.ncols + c] += v;
    }

    /// Matrix–vector product.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] if `x.len() != ncols`.
    pub fn mul_vec(&self, x: &[f64]) -> crate::Result<Vec<f64>> {
        if x.len() != self.ncols {
            return Err(SolverError::DimensionMismatch {
                detail: format!(
                    "dense mul_vec: matrix is {}x{}, vector has length {}",
                    self.nrows,
                    self.ncols,
                    x.len()
                ),
            });
        }
        Ok((0..self.nrows)
            .map(|r| {
                let row = &self.data[r * self.ncols..(r + 1) * self.ncols];
                crate::vecops::dot(row, x)
            })
            .collect())
    }

    /// Cholesky factorization `A = L Lᵀ` for symmetric positive-definite
    /// matrices.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] if the matrix is not
    /// square, or [`SolverError::NotPositiveDefinite`] if a pivot is not
    /// strictly positive.
    pub fn cholesky(&self) -> crate::Result<DenseCholesky> {
        if self.nrows != self.ncols {
            return Err(SolverError::DimensionMismatch {
                detail: format!("cholesky of non-square {}x{}", self.nrows, self.ncols),
            });
        }
        let n = self.nrows;
        let mut l = vec![0.0; n * n];
        for j in 0..n {
            let mut d = self.get(j, j);
            for k in 0..j {
                d -= l[j * n + k] * l[j * n + k];
            }
            if d <= 0.0 || !d.is_finite() {
                return Err(SolverError::NotPositiveDefinite { pivot: j, value: d });
            }
            let dj = d.sqrt();
            l[j * n + j] = dj;
            for i in (j + 1)..n {
                let mut s = self.get(i, j);
                for k in 0..j {
                    s -= l[i * n + k] * l[j * n + k];
                }
                l[i * n + j] = s / dj;
            }
        }
        Ok(DenseCholesky { n, l })
    }

    /// LU factorization with partial pivoting, `P A = L U`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] if the matrix is not
    /// square, or [`SolverError::SingularMatrix`] if a pivot column is
    /// entirely (numerically) zero.
    pub fn lu(&self) -> crate::Result<DenseLu> {
        if self.nrows != self.ncols {
            return Err(SolverError::DimensionMismatch {
                detail: format!("lu of non-square {}x{}", self.nrows, self.ncols),
            });
        }
        let n = self.nrows;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivot: largest magnitude in column k at/below row k.
            let mut piv = k;
            let mut best = lu[k * n + k].abs();
            for i in (k + 1)..n {
                let v = lu[i * n + k].abs();
                if v > best {
                    best = v;
                    piv = i;
                }
            }
            if best < f64::EPSILON * n as f64 {
                return Err(SolverError::SingularMatrix { pivot: k });
            }
            if piv != k {
                for c in 0..n {
                    lu.swap(k * n + c, piv * n + c);
                }
                perm.swap(k, piv);
            }
            let pivval = lu[k * n + k];
            for i in (k + 1)..n {
                let m = lu[i * n + k] / pivval;
                lu[i * n + k] = m;
                for c in (k + 1)..n {
                    lu[i * n + c] -= m * lu[k * n + c];
                }
            }
        }
        Ok(DenseLu { n, lu, perm })
    }
}

/// Dense Cholesky factorization of a symmetric positive-definite matrix.
///
/// Produced by [`DenseMatrix::cholesky`]; solves `A x = b` by forward and
/// backward substitution.
#[derive(Debug, Clone)]
pub struct DenseCholesky {
    n: usize,
    /// Lower-triangular factor, row-major, including the diagonal.
    l: Vec<f64>,
}

impl DenseCholesky {
    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> crate::Result<Vec<f64>> {
        let n = self.n;
        if b.len() != n {
            return Err(SolverError::DimensionMismatch {
                detail: format!("cholesky solve: dim {n}, b has length {}", b.len()),
            });
        }
        // Forward: L y = b.
        let mut y = b.to_vec();
        for i in 0..n {
            for k in 0..i {
                y[i] -= self.l[i * n + k] * y[k];
            }
            y[i] /= self.l[i * n + i];
        }
        // Backward: Lᵀ x = y.
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                y[i] -= self.l[k * n + i] * y[k];
            }
            y[i] /= self.l[i * n + i];
        }
        Ok(y)
    }
}

/// Dense LU factorization with partial pivoting.
///
/// Produced by [`DenseMatrix::lu`].
#[derive(Debug, Clone)]
pub struct DenseLu {
    n: usize,
    /// Packed LU factors (unit lower diagonal implicit), row-major.
    lu: Vec<f64>,
    /// Row permutation: `perm[k]` is the original row now at position `k`.
    perm: Vec<usize>,
}

impl DenseLu {
    /// Dimension of the factored matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`SolverError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &[f64]) -> crate::Result<Vec<f64>> {
        let n = self.n;
        if b.len() != n {
            return Err(SolverError::DimensionMismatch {
                detail: format!("lu solve: dim {n}, b has length {}", b.len()),
            });
        }
        // Apply permutation, then forward/backward substitution.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for i in 0..n {
            for k in 0..i {
                x[i] -= self.lu[i * n + k] * x[k];
            }
        }
        for i in (0..n).rev() {
            for k in (i + 1)..n {
                x[i] -= self.lu[i * n + k] * x[k];
            }
            x[i] /= self.lu[i * n + i];
        }
        Ok(x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_rows_and_get() {
        let m = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(m.get(0, 1), 2.0);
        assert_eq!(m.get(1, 0), 3.0);
    }

    #[test]
    fn from_rows_ragged_rejected() {
        let err = DenseMatrix::from_rows(&[&[1.0], &[1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, SolverError::DimensionMismatch { .. }));
    }

    #[test]
    fn mul_vec_identity() {
        let i = DenseMatrix::identity(3);
        assert_eq!(i.mul_vec(&[1.0, 2.0, 3.0]).unwrap(), vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn add_to_accumulates() {
        let mut m = DenseMatrix::zeros(2, 2);
        m.add_to(0, 0, 1.5);
        m.add_to(0, 0, 2.5);
        assert_eq!(m.get(0, 0), 4.0);
    }

    #[test]
    fn cholesky_solves_spd() {
        let a = DenseMatrix::from_rows(&[
            &[4.0, 12.0, -16.0],
            &[12.0, 37.0, -43.0],
            &[-16.0, -43.0, 98.0],
        ])
        .unwrap();
        let chol = a.cholesky().unwrap();
        let b = vec![1.0, 2.0, 3.0];
        let x = chol.solve(&b).unwrap();
        let ax = a.mul_vec(&x).unwrap();
        for (axi, bi) in ax.iter().zip(&b) {
            assert!((axi - bi).abs() < 1e-9, "residual too large");
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        let err = a.cholesky().unwrap_err();
        assert!(matches!(err, SolverError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn cholesky_rejects_non_square() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(a.cholesky().is_err());
    }

    #[test]
    fn lu_solves_general_system() {
        // Needs pivoting: zero on the first diagonal entry.
        let a = DenseMatrix::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]).unwrap();
        let lu = a.lu().unwrap();
        let x = lu.solve(&[2.0, 2.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn lu_rejects_singular() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        let err = a.lu().unwrap_err();
        assert!(matches!(err, SolverError::SingularMatrix { .. }));
    }

    #[test]
    fn lu_matches_cholesky_on_spd() {
        let a = DenseMatrix::from_rows(&[&[5.0, 2.0], &[2.0, 3.0]]).unwrap();
        let b = [7.0, -1.0];
        let x1 = a.cholesky().unwrap().solve(&b).unwrap();
        let x2 = a.lu().unwrap().solve(&b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_wrong_rhs_length() {
        let a = DenseMatrix::identity(2);
        assert!(a.cholesky().unwrap().solve(&[1.0]).is_err());
        assert!(a.lu().unwrap().solve(&[1.0, 2.0, 3.0]).is_err());
    }
}
